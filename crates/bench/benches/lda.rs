//! Criterion bench: LDA Gibbs-sweep throughput (offline cost of AC2/LDA).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use longtail_data::{SyntheticConfig, SyntheticData};
use longtail_topics::{LdaConfig, LdaModel};

fn bench_lda(c: &mut Criterion) {
    let data = SyntheticData::generate(&SyntheticConfig {
        n_users: 300,
        n_items: 220,
        ..SyntheticConfig::movielens_like()
    });
    let counts = data.dataset.user_items();

    let mut group = c.benchmark_group("lda_train");
    for k in [4usize, 8, 16] {
        group.bench_with_input(BenchmarkId::new("topics", k), &k, |b, &k| {
            let config = LdaConfig {
                iterations: 10,
                ..LdaConfig::with_topics(k)
            };
            b.iter(|| std::hint::black_box(LdaModel::train(counts, &config)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_lda
}
criterion_main!(benches);
