//! Criterion bench: the truncated-vs-exact absorbing time ablation.
//!
//! DESIGN.md ablation #1 — the truncated dynamic program (Algorithm 1) vs
//! the exact LU solve, and the cost of each extra iteration τ.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use longtail_data::{SyntheticConfig, SyntheticData};
use longtail_graph::{Adjacency, Subgraph};
use longtail_markov::AbsorbingWalk;

fn setup() -> (Adjacency, Vec<usize>) {
    let data = SyntheticData::generate(&SyntheticConfig {
        n_users: 300,
        n_items: 220,
        ..SyntheticConfig::movielens_like()
    });
    let graph = data.dataset.to_graph();
    let user = 5u32;
    let seeds: Vec<usize> = data
        .dataset
        .rated_items(user)
        .iter()
        .map(|&i| graph.item_node(i))
        .collect();
    let sub = Subgraph::bfs_from(&graph, &seeds, usize::MAX);
    let absorbing: Vec<usize> = seeds
        .iter()
        .filter_map(|&s| sub.local_id(s).map(|l| l as usize))
        .collect();
    (sub.adjacency().clone(), absorbing)
}

fn bench_absorbing(c: &mut Criterion) {
    let (adj, absorbing) = setup();
    let walk = AbsorbingWalk::new(&adj, &absorbing);

    let mut group = c.benchmark_group("absorbing_time");
    for tau in [5usize, 15, 30, 60] {
        group.bench_with_input(BenchmarkId::new("truncated", tau), &tau, |b, &tau| {
            b.iter(|| std::hint::black_box(walk.truncated_times(tau)));
        });
    }
    group.bench_function("exact_lu", |b| {
        b.iter(|| std::hint::black_box(walk.exact_times().unwrap()));
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_absorbing
}
criterion_main!(benches);
