//! Criterion bench: per-query cost of AC2 as the subgraph budget µ grows
//! (the efficiency column of Table 4).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use longtail_core::{AbsorbingCostConfig, AbsorbingCostRecommender, GraphRecConfig, Recommender};
use longtail_data::{SyntheticConfig, SyntheticData};
use longtail_topics::{LdaConfig, LdaModel};

fn bench_mu(c: &mut Criterion) {
    let data = SyntheticData::generate(&SyntheticConfig {
        n_users: 800,
        n_items: 700,
        ..SyntheticConfig::douban_like()
    });
    let lda = LdaModel::train(data.dataset.user_items(), &LdaConfig::with_topics(8));
    let users: Vec<u32> = (0..data.dataset.n_users() as u32)
        .filter(|&u| data.dataset.rated_items(u).len() >= 3)
        .take(8)
        .collect();

    let mut group = c.benchmark_group("ac2_mu");
    for mu in [50usize, 150, 350, 700] {
        let rec = AbsorbingCostRecommender::topic_entropy(
            &data.dataset,
            &lda,
            AbsorbingCostConfig {
                graph: GraphRecConfig {
                    max_items: mu,
                    iterations: 15,
                },
                ..AbsorbingCostConfig::default()
            },
        );
        group.bench_with_input(BenchmarkId::from_parameter(mu), &rec, |b, rec| {
            let mut cursor = 0usize;
            b.iter(|| {
                let u = users[cursor % users.len()];
                cursor += 1;
                std::hint::black_box(rec.recommend(u, 10))
            });
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_mu
}
criterion_main!(benches);
