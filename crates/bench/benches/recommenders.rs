//! Criterion bench: per-query recommendation latency of every algorithm
//! (the statistically careful version of Table 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use longtail_bench::{Roster, RosterConfig};
use longtail_data::{SyntheticConfig, SyntheticData};

fn bench_recommenders(c: &mut Criterion) {
    // A mid-size corpus keeps the bench under a minute while preserving the
    // relative cost structure (subgraph methods vs model-based vs full-graph).
    let data = SyntheticData::generate(&SyntheticConfig {
        n_users: 500,
        n_items: 400,
        ..SyntheticConfig::douban_like()
    });
    let roster = Roster::train(
        &data.dataset,
        &RosterConfig {
            n_topics: 8,
            svd_rank: 16,
            ..RosterConfig::default()
        },
    );

    let users: Vec<u32> = (0..data.dataset.n_users() as u32)
        .filter(|&u| data.dataset.rated_items(u).len() >= 3)
        .take(16)
        .collect();
    let mut group = c.benchmark_group("top10_query");
    for rec in roster.all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(rec.name()),
            &users,
            |b, users| {
                let mut cursor = 0usize;
                b.iter(|| {
                    let u = users[cursor % users.len()];
                    cursor += 1;
                    std::hint::black_box(rec.recommend(u, 10))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_recommenders
}
criterion_main!(benches);
