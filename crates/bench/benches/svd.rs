//! Criterion bench: randomized SVD factorization (offline cost of PureSVD).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use longtail_core::PureSvdRecommender;
use longtail_data::{SyntheticConfig, SyntheticData};

fn bench_svd(c: &mut Criterion) {
    let data = SyntheticData::generate(&SyntheticConfig {
        n_users: 400,
        n_items: 300,
        ..SyntheticConfig::movielens_like()
    });

    let mut group = c.benchmark_group("puresvd_train");
    for rank in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::new("rank", rank), &rank, |b, &rank| {
            b.iter(|| std::hint::black_box(PureSvdRecommender::train(&data.dataset, rank)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_svd
}
criterion_main!(benches);
