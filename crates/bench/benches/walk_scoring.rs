//! Criterion bench: per-user vs batch scoring on the random-walk hot path.
//!
//! Three rungs per algorithm (HT and AC1) on a synthetic long-tail corpus:
//!
//! * `prerefactor`  — the seed's query path (owned subgraph, per-edge
//!   division, fresh allocations per query), one user per iteration;
//! * `context`      — the kernel + `ScoringContext` path, one user per
//!   iteration through a reused context;
//! * `batch64/t4`   — 64 users through `Recommender::score_batch` at 4
//!   worker threads, measured per batch;
//! * `topk_sort`    — top-10 by materializing the score vector and running
//!   `top_k` over it, one user per iteration;
//! * `topk_fused`   — top-10 through the fused `recommend_into` path, one
//!   user per iteration.
//!
//! `cargo run --release -p longtail-bench --bin bench_walk_scoring` runs the
//! same comparison standalone and writes `BENCH_walk_scoring.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use longtail_bench::baseline;
use longtail_core::{
    top_k, AbsorbingCostConfig, AbsorbingCostRecommender, GraphRecConfig, HittingTimeRecommender,
    RecommendOptions, Recommender, ScoringContext,
};
use longtail_data::{SyntheticConfig, SyntheticData};
use longtail_eval::sample_test_users;

fn bench_walk_scoring(c: &mut Criterion) {
    let data = SyntheticData::generate(&SyntheticConfig {
        n_users: 600,
        n_items: 450,
        ..SyntheticConfig::movielens_like()
    });
    let train = &data.dataset;
    let graph = train.to_graph();
    let config = GraphRecConfig {
        max_items: 300,
        iterations: 15,
    };
    let users = sample_test_users(&train.user_activity(), 64, 3, 0xbe9c);

    let ht = HittingTimeRecommender::new(train, config);
    let ac1 = AbsorbingCostRecommender::item_entropy(
        train,
        AbsorbingCostConfig {
            graph: config,
            item_entry_cost: 1.0,
        },
    );

    let mut group = c.benchmark_group("walk_scoring");
    let mut cursor = 0usize;

    group.bench_function("ht/prerefactor", |b| {
        b.iter(|| {
            let u = users[cursor % users.len()];
            cursor += 1;
            baseline::prerefactor_hitting_scores(&graph, u, &config)
        });
    });
    let mut ctx = ScoringContext::new();
    let mut out = Vec::new();
    group.bench_function("ht/context", |b| {
        b.iter(|| {
            let u = users[cursor % users.len()];
            cursor += 1;
            ht.score_into(u, &mut ctx, &mut out);
            out.last().copied()
        });
    });
    group.bench_function("ht/batch64_t4", |b| {
        b.iter(|| ht.score_batch(&users, 4));
    });
    let mut ctx = ScoringContext::new();
    let mut out = Vec::new();
    group.bench_function("ht/topk_sort", |b| {
        b.iter(|| {
            let u = users[cursor % users.len()];
            cursor += 1;
            ht.score_into(u, &mut ctx, &mut out);
            let rated = ht.rated_items(u);
            top_k(&out, 10, |i| rated.binary_search(&i).is_ok())
        });
    });
    let mut ctx = ScoringContext::new();
    let opts = RecommendOptions::default();
    let mut list = Vec::new();
    group.bench_function("ht/topk_fused", |b| {
        b.iter(|| {
            let u = users[cursor % users.len()];
            cursor += 1;
            ht.recommend_into(u, 10, &opts, &mut ctx, &mut list);
            list.first().copied()
        });
    });

    group.bench_function("ac1/prerefactor", |b| {
        b.iter(|| {
            let u = users[cursor % users.len()];
            cursor += 1;
            baseline::prerefactor_absorbing_cost_scores(
                &graph,
                ac1.user_entropies(),
                1.0,
                u,
                &config,
            )
        });
    });
    let mut ctx = ScoringContext::new();
    let mut out = Vec::new();
    group.bench_function("ac1/context", |b| {
        b.iter(|| {
            let u = users[cursor % users.len()];
            cursor += 1;
            ac1.score_into(u, &mut ctx, &mut out);
            out.last().copied()
        });
    });
    group.bench_function("ac1/batch64_t4", |b| {
        b.iter(|| ac1.score_batch(&users, 4));
    });
    let mut ctx = ScoringContext::new();
    let mut out = Vec::new();
    group.bench_function("ac1/topk_sort", |b| {
        b.iter(|| {
            let u = users[cursor % users.len()];
            cursor += 1;
            ac1.score_into(u, &mut ctx, &mut out);
            let rated = ac1.rated_items(u);
            top_k(&out, 10, |i| rated.binary_search(&i).is_ok())
        });
    });
    let mut ctx = ScoringContext::new();
    let opts = RecommendOptions::default();
    let mut list = Vec::new();
    group.bench_function("ac1/topk_fused", |b| {
        b.iter(|| {
            let u = users[cursor % users.len()];
            cursor += 1;
            ac1.recommend_into(u, 10, &opts, &mut ctx, &mut list);
            list.first().copied()
        });
    });

    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_walk_scoring
}
criterion_main!(benches);
