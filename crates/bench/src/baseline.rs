//! Pre-refactor scoring paths, preserved verbatim for benchmarking.
//!
//! The kernel/context refactor rebuilt the query hot path; these functions
//! keep the *seed* implementation alive — owned `Subgraph` per query (fresh
//! `O(n_nodes)` id map and induced adjacency), per-edge `w / d` division in
//! every DP iteration, fresh result vectors — so `BENCH_walk_scoring.json`
//! can track the speedup honestly against the exact code the project
//! started from. Not used on any production path.

use longtail_core::GraphRecConfig;
use longtail_graph::{Adjacency, BipartiteGraph, Node, Subgraph};

/// The seed's truncated absorbing-cost dynamic program: per-edge division,
/// freshly allocated state.
pub fn prerefactor_truncated_costs(
    adj: &Adjacency,
    absorbing: &[bool],
    entry_cost: &[f64],
    iterations: usize,
) -> Vec<f64> {
    let n = adj.n_nodes();
    let mut immediate = vec![0.0; n];
    for i in 0..n {
        if absorbing[i] {
            continue;
        }
        let d = adj.degree(i);
        if d == 0.0 {
            immediate[i] = f64::INFINITY;
            continue;
        }
        let mut acc = 0.0;
        for (j, w) in adj.neighbors(i) {
            acc += w / d * entry_cost[j as usize];
        }
        immediate[i] = acc;
    }

    let mut current = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        for i in 0..n {
            if absorbing[i] {
                next[i] = 0.0;
                continue;
            }
            let d = adj.degree(i);
            if d == 0.0 {
                next[i] = f64::INFINITY;
                continue;
            }
            let mut acc = 0.0;
            for (j, w) in adj.neighbors(i) {
                let v = current[j as usize];
                if v.is_finite() {
                    acc += w / d * v;
                } else {
                    acc = f64::INFINITY;
                    break;
                }
            }
            next[i] = immediate[i] + acc;
        }
        std::mem::swap(&mut current, &mut next);
    }
    current
}

fn scores_from_subgraph(graph: &BipartiteGraph, subgraph: &Subgraph, values: &[f64]) -> Vec<f64> {
    let mut scores = vec![f64::NEG_INFINITY; graph.n_items()];
    for (local, &global) in subgraph.global_ids().iter().enumerate() {
        if let Node::Item(i) = graph.node(global) {
            let v = values[local];
            if v.is_finite() {
                scores[i as usize] = -v;
            }
        }
    }
    scores
}

/// The seed's `HittingTimeRecommender::score_items`: owned subgraph, unit
/// costs, fresh vectors.
pub fn prerefactor_hitting_scores(
    graph: &BipartiteGraph,
    user: u32,
    config: &GraphRecConfig,
) -> Vec<f64> {
    let q = graph.user_node(user);
    let subgraph = Subgraph::bfs_from(graph, &[q], config.max_items);
    let Some(local_q) = subgraph.local_id(q) else {
        return vec![f64::NEG_INFINITY; graph.n_items()];
    };
    if subgraph.n_nodes() == 1 {
        return vec![f64::NEG_INFINITY; graph.n_items()];
    }
    let n = subgraph.n_nodes();
    let mut absorbing = vec![false; n];
    absorbing[local_q as usize] = true;
    let unit = vec![1.0; n];
    let times =
        prerefactor_truncated_costs(subgraph.adjacency(), &absorbing, &unit, config.iterations);
    scores_from_subgraph(graph, &subgraph, &times)
}

/// The seed's `AbsorbingCostRecommender::score_items`: owned subgraph,
/// per-query entropy cost vector, fresh vectors.
pub fn prerefactor_absorbing_cost_scores(
    graph: &BipartiteGraph,
    user_entropy: &[f64],
    item_entry_cost: f64,
    user: u32,
    config: &GraphRecConfig,
) -> Vec<f64> {
    let seeds: Vec<usize> = graph
        .user_items()
        .row(user as usize)
        .0
        .iter()
        .map(|&i| graph.item_node(i))
        .collect();
    if seeds.is_empty() {
        return vec![f64::NEG_INFINITY; graph.n_items()];
    }
    let subgraph = Subgraph::bfs_from(graph, &seeds, config.max_items);
    let mut absorbing = vec![false; subgraph.n_nodes()];
    for &s in &seeds {
        if let Some(l) = subgraph.local_id(s) {
            absorbing[l as usize] = true;
        }
    }
    let costs: Vec<f64> = subgraph
        .global_ids()
        .iter()
        .map(|&global| match graph.node(global) {
            Node::User(u) => user_entropy[u as usize],
            Node::Item(_) => item_entry_cost,
        })
        .collect();
    let values =
        prerefactor_truncated_costs(subgraph.adjacency(), &absorbing, &costs, config.iterations);
    scores_from_subgraph(graph, &subgraph, &values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_core::{
        AbsorbingCostConfig, AbsorbingCostRecommender, HittingTimeRecommender, Recommender,
    };
    use longtail_data::{Dataset, Rating};

    fn figure2() -> Dataset {
        let ratings = [
            (0, 0, 5.0),
            (0, 1, 3.0),
            (0, 4, 3.0),
            (0, 5, 5.0),
            (1, 0, 5.0),
            (1, 1, 4.0),
            (1, 2, 5.0),
            (1, 4, 4.0),
            (1, 5, 5.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
            (2, 2, 4.0),
            (3, 2, 5.0),
            (3, 3, 5.0),
            (4, 1, 4.0),
            (4, 2, 5.0),
        ]
        .map(|(user, item, value)| Rating { user, item, value });
        Dataset::from_ratings(5, 6, &ratings)
    }

    /// Same scores up to floating-point rounding: the refactored path keeps
    /// kernel rows in global-neighbor order rather than local-id order, so
    /// row sums can differ in the last ulp.
    fn assert_scores_agree(a: &[f64], b: &[f64], label: &str) {
        assert_eq!(a.len(), b.len(), "{label}: length");
        for (i, (&x, &y)) in a.iter().zip(b.iter()).enumerate() {
            if x.is_finite() || y.is_finite() {
                assert!(
                    (x - y).abs() <= 1e-12 * (1.0 + x.abs()),
                    "{label} item {i}: {x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn baselines_agree_with_refactored_recommenders() {
        let d = figure2();
        let config = GraphRecConfig::default();
        let graph = d.to_graph();

        let ht = HittingTimeRecommender::new(&d, config);
        let ac = AbsorbingCostRecommender::item_entropy(&d, AbsorbingCostConfig::default());
        for u in 0..d.n_users() as u32 {
            assert_scores_agree(
                &prerefactor_hitting_scores(&graph, u, &config),
                &ht.score_items(u),
                &format!("HT user {u}"),
            );
            assert_scores_agree(
                &prerefactor_absorbing_cost_scores(&graph, ac.user_entropies(), 1.0, u, &config),
                &ac.score_items(u),
                &format!("AC user {u}"),
            );
        }
    }
}
