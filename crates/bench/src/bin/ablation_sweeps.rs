//! Ablations for the design choices DESIGN.md §5 calls out (beyond the
//! truncation and µ ablations, which have their own targets):
//!
//! 1. **Cost constant C** (Eq. 9) — sensitivity of AC1's quality to the
//!    user→item entry cost;
//! 2. **Entropy source** — AC1 (item entropy) vs AC2 (topic entropy) vs AT
//!    (no entropy) on one corpus, all other parameters fixed;
//! 3. **LDA topic count K** — AC2 quality as the topic model is mis-sized;
//! 4. **PureSVD rank f** — the baseline's accuracy/popularity trade-off.

use longtail_bench::{emit, start_experiment, Corpus};
use longtail_core::{
    AbsorbingCostConfig, AbsorbingCostRecommender, AbsorbingTimeRecommender, GraphRecConfig,
    PureSvdRecommender, Recommender,
};
use longtail_data::{holdout_longtail_favorites, LongTailSplit, Ontology, SplitConfig};
use longtail_eval::{
    mean_popularity, mean_similarity, recall_at_n, sample_test_users, RecallConfig,
    RecommendationLists,
};
use longtail_topics::{LdaConfig, LdaModel};

fn main() {
    let name = "ablation_sweeps";
    start_experiment(name, "Ablations — C constant, entropy source, K, SVD rank");

    let data = Corpus::Douban.generate();
    let tail = LongTailSplit::by_rating_share(&data.dataset.item_popularity(), 0.2);
    let split = holdout_longtail_favorites(
        &data.dataset,
        &tail,
        &SplitConfig {
            n_test: 300,
            ..SplitConfig::default()
        },
    );
    let train = &split.train;
    let popularity = train.item_popularity();
    let ontology = Ontology::from_genres(&data.item_genres, 4, 0xab1a);
    let users = sample_test_users(&train.user_activity(), 500, 3, 0xab1a);
    let recall_config = RecallConfig::default();

    let evaluate = |rec: &dyn Recommender| -> (f64, f64, f64) {
        let curve = recall_at_n(rec, &data.dataset, &split, &recall_config);
        let lists = RecommendationLists::compute(rec, &users, 10, 4);
        (
            curve.at(20),
            mean_popularity(&lists, &popularity),
            mean_similarity(&lists, train, &ontology),
        )
    };

    // 1. C sensitivity (AC1).
    emit(name, "\n## 1. Cost constant C (AC1, Douban-like)\n");
    emit(name, "| C | Recall@20 | popularity | similarity |");
    emit(name, "|---|---|---|---|");
    for c in [0.25, 0.5, 1.0, 2.0, 4.0] {
        let rec = AbsorbingCostRecommender::item_entropy(
            train,
            AbsorbingCostConfig {
                item_entry_cost: c,
                ..AbsorbingCostConfig::default()
            },
        );
        let (r, p, s) = evaluate(&rec);
        emit(name, &format!("| {c} | {r:.3} | {p:.1} | {s:.3} |"));
    }
    emit(
        name,
        "\nReading: C rescales the user→item half of every hop uniformly, so \
         the ranking — and therefore all three metrics — moves only \
         marginally; the entropy *differences* on the item→user half carry \
         the signal. This is why the paper can treat C as a free constant.",
    );

    // 2. Entropy source.
    emit(name, "\n## 2. Entropy source at fixed walk parameters\n");
    emit(name, "| variant | Recall@20 | popularity | similarity |");
    emit(name, "|---|---|---|---|");
    let at = AbsorbingTimeRecommender::new(train, GraphRecConfig::default());
    let (r, p, s) = evaluate(&at);
    emit(
        name,
        &format!("| AT (no entropy) | {r:.3} | {p:.1} | {s:.3} |"),
    );
    let ac1 = AbsorbingCostRecommender::item_entropy(train, AbsorbingCostConfig::default());
    let (r, p, s) = evaluate(&ac1);
    emit(
        name,
        &format!("| AC1 (item entropy) | {r:.3} | {p:.1} | {s:.3} |"),
    );
    for k in [4usize, 10, 24] {
        let lda = LdaModel::train(train.user_items(), &LdaConfig::with_topics(k));
        let ac2 =
            AbsorbingCostRecommender::topic_entropy(train, &lda, AbsorbingCostConfig::default());
        let (r, p, s) = evaluate(&ac2);
        emit(
            name,
            &format!("| AC2 (topic entropy, K={k}) | {r:.3} | {p:.1} | {s:.3} |"),
        );
    }
    emit(
        name,
        "\nReading: topic entropy is the more faithful specificity estimate \
         (§4.2.3), and its advantage is robust to mis-sizing K around the \
         true genre count.",
    );

    // 3. PureSVD rank.
    emit(name, "\n## 3. PureSVD factor rank\n");
    emit(name, "| rank f | Recall@20 | popularity | similarity |");
    emit(name, "|---|---|---|---|");
    for f in [5usize, 10, 20, 40, 80] {
        let svd = PureSvdRecommender::train(train, f);
        let (r, p, s) = evaluate(&svd);
        emit(name, &format!("| {f} | {r:.3} | {p:.1} | {s:.3} |"));
    }
    emit(
        name,
        "\nReading: more factors let PureSVD see past the head (popularity \
         falls, long-tail recall rises), but even at f=80 it stays far from \
         the walk family on tail recall — Figure 5/6's core contrast is not \
         a rank artifact.",
    );
}
