//! Walk-scoring perf baseline: sequential pre-refactor vs batch scoring.
//!
//! Times 64-user scoring for HT and AC1 on a synthetic long-tail corpus
//! three ways — the seed's pre-refactor query path run sequentially, the
//! kernel + `ScoringContext` path run sequentially, and
//! `Recommender::score_batch` at 1 and 4 worker threads — plus single-query
//! latency for both paths, and writes a machine-readable summary to
//! `BENCH_walk_scoring.json` so future PRs have a perf trajectory.
//!
//! Run with `cargo run --release -p longtail-bench --bin bench_walk_scoring`.

use longtail_bench::baseline;
use longtail_core::{
    AbsorbingCostConfig, AbsorbingCostRecommender, GraphRecConfig, HittingTimeRecommender,
    Recommender, ScoringContext,
};
use longtail_data::{SyntheticConfig, SyntheticData};
use longtail_eval::sample_test_users;
use longtail_graph::BipartiteGraph;
use std::time::Instant;

const BATCH: usize = 64;
const REPEATS: usize = 5;

/// Best-of-`REPEATS` wall-clock seconds for `f`.
fn time_best(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct Measurement {
    name: &'static str,
    seconds_per_batch: f64,
}

fn measure_algorithm(
    label: &'static str,
    graph: &BipartiteGraph,
    config: &GraphRecConfig,
    users: &[u32],
    rec: &dyn Recommender,
    prerefactor: &dyn Fn(u32) -> Vec<f64>,
) -> Vec<Measurement> {
    let mut out = Vec::new();
    let _ = (graph, config);

    let seq_pre = time_best(|| {
        for &u in users {
            std::hint::black_box(prerefactor(u));
        }
    });
    out.push(Measurement {
        name: "sequential_prerefactor",
        seconds_per_batch: seq_pre,
    });

    let mut ctx = ScoringContext::new();
    let mut scores = Vec::new();
    let seq_ctx = time_best(|| {
        for &u in users {
            rec.score_into(u, &mut ctx, &mut scores);
            std::hint::black_box(scores.last());
        }
    });
    out.push(Measurement {
        name: "sequential_context",
        seconds_per_batch: seq_ctx,
    });

    for (name, threads) in [("batch_t1", 1usize), ("batch_t4", 4)] {
        let t = time_best(|| {
            std::hint::black_box(rec.score_batch(users, threads));
        });
        out.push(Measurement {
            name,
            seconds_per_batch: t,
        });
    }

    println!("\n{label}: {BATCH} users, best of {REPEATS} runs");
    let base = out[0].seconds_per_batch;
    for m in &out {
        println!(
            "  {:<24} {:>10.4} ms/batch  {:>8.4} ms/query  {:>5.2}x vs pre-refactor",
            m.name,
            m.seconds_per_batch * 1e3,
            m.seconds_per_batch * 1e3 / BATCH as f64,
            base / m.seconds_per_batch
        );
    }
    out
}

fn single_query_seconds(f: impl FnMut()) -> f64 {
    time_best(f)
}

fn main() {
    let config = SyntheticConfig {
        n_users: 600,
        n_items: 450,
        ..SyntheticConfig::movielens_like()
    };
    let data = SyntheticData::generate(&config);
    let train = &data.dataset;
    let graph = train.to_graph();
    let walk_config = GraphRecConfig {
        max_items: 300,
        iterations: 15,
    };
    let users = sample_test_users(&train.user_activity(), BATCH, 3, 0xbe9c);
    assert_eq!(users.len(), BATCH, "corpus too small for the batch");

    let ht = HittingTimeRecommender::new(train, walk_config);
    let ac1 = AbsorbingCostRecommender::item_entropy(
        train,
        AbsorbingCostConfig {
            graph: walk_config,
            item_entry_cost: 1.0,
        },
    );

    println!(
        "walk-scoring bench: {} users x {} items, {} ratings, mu={}, tau={}",
        train.n_users(),
        train.n_items(),
        train.n_ratings(),
        walk_config.max_items,
        walk_config.iterations
    );

    let ht_measurements = measure_algorithm("HT", &graph, &walk_config, &users, &ht, &|u| {
        baseline::prerefactor_hitting_scores(&graph, u, &walk_config)
    });
    let ac_measurements = measure_algorithm("AC1", &graph, &walk_config, &users, &ac1, &|u| {
        baseline::prerefactor_absorbing_cost_scores(
            &graph,
            ac1.user_entropies(),
            1.0,
            u,
            &walk_config,
        )
    });

    // Single-query latency: the refactored path must not regress.
    let probe = users[0];
    let single_pre = single_query_seconds(|| {
        std::hint::black_box(baseline::prerefactor_hitting_scores(
            &graph,
            probe,
            &walk_config,
        ));
    });
    let mut ctx = ScoringContext::new();
    let mut scores = Vec::new();
    let single_ctx = single_query_seconds(|| {
        ht.score_into(probe, &mut ctx, &mut scores);
        std::hint::black_box(scores.last());
    });
    println!(
        "\nsingle HT query: pre-refactor {:.4} ms, context {:.4} ms ({:.2}x)",
        single_pre * 1e3,
        single_ctx * 1e3,
        single_pre / single_ctx
    );

    let json = render_json(
        &config,
        &walk_config,
        &ht_measurements,
        &ac_measurements,
        single_pre,
        single_ctx,
    );
    let path = "BENCH_walk_scoring.json";
    std::fs::write(path, json).expect("write benchmark summary");
    println!("\nwrote {path}");
}

fn render_json(
    config: &SyntheticConfig,
    walk: &GraphRecConfig,
    ht: &[Measurement],
    ac: &[Measurement],
    single_pre: f64,
    single_ctx: f64,
) -> String {
    fn series(ms: &[Measurement]) -> String {
        let base = ms[0].seconds_per_batch;
        let entries: Vec<String> = ms
            .iter()
            .map(|m| {
                format!(
                    "      {{\"name\": \"{}\", \"seconds_per_batch\": {:.6e}, \"speedup_vs_prerefactor\": {:.3}}}",
                    m.name,
                    m.seconds_per_batch,
                    base / m.seconds_per_batch
                )
            })
            .collect();
        entries.join(",\n")
    }
    format!(
        "{{\n  \"bench\": \"walk_scoring\",\n  \"batch_users\": {BATCH},\n  \"repeats_best_of\": {REPEATS},\n  \
         \"dataset\": {{\"n_users\": {}, \"n_items\": {}}},\n  \
         \"walk\": {{\"max_items\": {}, \"iterations\": {}}},\n  \
         \"threads\": {},\n  \
         \"results\": {{\n    \"HT\": [\n{}\n    ],\n    \"AC1\": [\n{}\n    ]\n  }},\n  \
         \"single_query_ht\": {{\"prerefactor_seconds\": {:.6e}, \"context_seconds\": {:.6e}, \"speedup\": {:.3}}}\n}}\n",
        config.n_users,
        config.n_items,
        walk.max_items,
        walk.iterations,
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        series(ht),
        series(ac),
        single_pre,
        single_ctx,
        single_pre / single_ctx
    )
}
