//! Walk-scoring perf baseline: sequential pre-refactor vs batch scoring,
//! plus fused top-k serving vs score-then-sort.
//!
//! Times 64-user scoring for HT and AC1 on a synthetic long-tail corpus
//! three ways — the seed's pre-refactor query path run sequentially, the
//! kernel + `ScoringContext` path run sequentially, and
//! `Recommender::score_batch` at 1 and 4 worker threads — plus single-query
//! latency for both paths, and the top-10 *recommendation* comparison
//! (materialize-and-sort vs the fused `recommend_into`/`recommend_batch`
//! path), writing a machine-readable summary to `BENCH_walk_scoring.json`
//! so future PRs have a perf trajectory.
//!
//! Run with `cargo run --release -p longtail-bench --bin bench_walk_scoring`.

use longtail_bench::baseline;
use longtail_core::{
    top_k, AbsorbingCostConfig, AbsorbingCostRecommender, AbsorbingTimeRecommender, DpStopping,
    DpTelemetry, GraphRecConfig, HittingTimeRecommender, PopularityRecommender, RecommendOptions,
    Recommender, RerankIndex, RerankPolicy, Reranker, ScoringContext,
};
use longtail_data::{
    holdout_longtail_favorites, LongTailSplit, ProtocolSplit, SplitConfig, SyntheticConfig,
    SyntheticData,
};
use longtail_eval::{
    catalog_coverage, exposure_counts, gini_concentration, list_recall, novelty, sample_test_users,
    tail_recall_split, time_open_loop_submission, RecommendationLists, TimingStats,
};
use longtail_graph::BipartiteGraph;
use longtail_serve::{
    BreakerConfig, DeltaConfig, DeltaRating, DeltaStore, Engine, FaultKind, FaultPlan,
    FaultyRecommender, Priority, RecommendRequest, RecommendResponse, RetryPolicy, SchedPolicy,
    ServeError, SharedRecommender,
};
use std::sync::Arc;
use std::time::{Duration, Instant};

const BATCH: usize = 64;
const REPEATS: usize = 5;
const TOP_K: usize = 10;
/// Batches per sustained-throughput round of the serving-engine
/// comparison: enough round trips that per-batch thread start-up (the cost
/// the persistent pool removes) is what the measurement sees.
const ENGINE_ROUNDS: usize = 30;
/// Worker threads for both sides of the serving-engine comparison.
const ENGINE_WORKERS: usize = 4;
/// Admission-queue capacity of the async front-end measurement: deep
/// enough that a whole open-loop round fits without engaging backpressure
/// (throughput, not shedding, is what that series measures).
const ASYNC_QUEUE_CAPACITY: usize = 256;
/// Every this-many-th request of the async deadline pass carries an
/// already-expired deadline, making the shed count exact and
/// machine-independent.
const ASYNC_EXPIRED_STRIDE: usize = 4;

/// Request rounds of the fault-tolerance pass: `FAULT_ROUNDS * BATCH`
/// requests per engine, enough that the seeded fault mix lands dozens of
/// faults while the pass stays cheap next to the timing series.
const FAULT_ROUNDS: usize = 4;
/// Per-call probability of an injected panic in the chaos mix.
const FAULT_P_PANIC: f64 = 0.12;
/// Per-call probability of injected NaN score poisoning in the chaos mix.
const FAULT_P_NAN: f64 = 0.08;

/// Requests in the QoS overload mix (the sampled users, cycled): enough
/// that the single worker is overloaded for the whole pass and the seeded
/// class mix lands dozens of requests per class.
const QOS_REQUESTS: usize = 96;
/// Interactive deadline, as a fraction of the mix's total service demand
/// (`QOS_REQUESTS` × the calibrated per-request estimate). At 0.5, FIFO
/// meets it only for Interactive requests that happen to land in the first
/// half of the arrival order (~50% hit rate) while EDF-with-priority
/// serves the whole class first (~100%).
const QOS_INTERACTIVE_SLACK: f64 = 0.5;
/// Batch deadline fraction: generous enough that both schedulers meet it.
const QOS_BATCH_SLACK: f64 = 1.25;

/// Appends per published epoch of the streaming-ingest pass: the store's
/// auto-publish cadence, so visibility latency is bounded without paying
/// an epoch per append.
const INGEST_PUBLISH_EVERY: usize = 64;
/// Streamed appends of the ingest pass: enough for dozens of epochs and a
/// delta whose overlay merge is real per-query work.
const INGEST_APPENDS: usize = 2048;

/// τ budget of the early-termination comparison: a *high-fidelity* serving
/// tier whose truncation error is negligible (the paper's τ=15 trades
/// accuracy for speed; at τ=15 the sound remaining-change bounds cannot —
/// and should not — certify an earlier stop, so adaptive stopping leaves
/// that configuration untouched). With a generous budget, adaptive
/// stopping makes each query pay only for the iterations it actually
/// needs, which is what turns a conservative τ from a per-query tax into a
/// safety net.
const ET_ITERATIONS: usize = 240;

/// Best-of-`REPEATS` wall-clock seconds for `f`.
fn time_best(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..REPEATS {
        let start = Instant::now();
        f();
        best = best.min(start.elapsed().as_secs_f64());
    }
    best
}

struct Measurement {
    name: &'static str,
    seconds_per_batch: f64,
}

fn measure_algorithm(
    label: &'static str,
    graph: &BipartiteGraph,
    config: &GraphRecConfig,
    users: &[u32],
    rec: &dyn Recommender,
    prerefactor: &dyn Fn(u32) -> Vec<f64>,
) -> Vec<Measurement> {
    let mut out = Vec::new();
    let _ = (graph, config);

    let seq_pre = time_best(|| {
        for &u in users {
            std::hint::black_box(prerefactor(u));
        }
    });
    out.push(Measurement {
        name: "sequential_prerefactor",
        seconds_per_batch: seq_pre,
    });

    let mut ctx = ScoringContext::new();
    let mut scores = Vec::new();
    let seq_ctx = time_best(|| {
        for &u in users {
            rec.score_into(u, &mut ctx, &mut scores);
            std::hint::black_box(scores.last());
        }
    });
    out.push(Measurement {
        name: "sequential_context",
        seconds_per_batch: seq_ctx,
    });

    for (name, threads) in [("batch_t1", 1usize), ("batch_t4", 4)] {
        let t = time_best(|| {
            std::hint::black_box(rec.score_batch(users, threads));
        });
        out.push(Measurement {
            name,
            seconds_per_batch: t,
        });
    }

    println!("\n{label}: {BATCH} users, best of {REPEATS} runs");
    let base = out[0].seconds_per_batch;
    for m in &out {
        println!(
            "  {:<24} {:>10.4} ms/batch  {:>8.4} ms/query  {:>5.2}x vs pre-refactor",
            m.name,
            m.seconds_per_batch * 1e3,
            m.seconds_per_batch * 1e3 / BATCH as f64,
            base / m.seconds_per_batch
        );
    }
    out
}

fn single_query_seconds(f: impl FnMut()) -> f64 {
    time_best(f)
}

struct EarlyTermination {
    fixed_seconds: f64,
    adaptive_seconds: f64,
    lists_identical: bool,
    telemetry: DpTelemetry,
}

/// Adaptive early termination vs the fixed-τ walk on the fused top-10 path:
/// per-batch wall clock under both stopping policies, the DP iteration
/// counters of one adaptive pass, and a full item-by-item check that both
/// policies served identical rankings.
fn measure_early_termination(
    label: &'static str,
    users: &[u32],
    rec: &dyn Recommender,
) -> EarlyTermination {
    let fixed_opts = RecommendOptions::with_stopping(DpStopping::Fixed);
    let adaptive_opts = RecommendOptions::default();
    let mut fixed_ctx = ScoringContext::new();
    let mut adaptive_ctx = ScoringContext::new();
    let mut fixed_list = Vec::new();
    let mut adaptive_list = Vec::new();

    // Rank identity: the acceptance bar for serving with early termination.
    let mut lists_identical = true;
    for &u in users {
        rec.recommend_into(u, TOP_K, &fixed_opts, &mut fixed_ctx, &mut fixed_list);
        rec.recommend_into(
            u,
            TOP_K,
            &adaptive_opts,
            &mut adaptive_ctx,
            &mut adaptive_list,
        );
        if fixed_list
            .iter()
            .map(|s| s.item)
            .ne(adaptive_list.iter().map(|s| s.item))
        {
            lists_identical = false;
        }
    }

    // Iteration counters for exactly one adaptive pass over the batch.
    adaptive_ctx.reset_dp_telemetry();
    for &u in users {
        rec.recommend_into(
            u,
            TOP_K,
            &adaptive_opts,
            &mut adaptive_ctx,
            &mut adaptive_list,
        );
    }
    let telemetry = adaptive_ctx.dp_telemetry();

    let fixed_seconds = time_best(|| {
        for &u in users {
            rec.recommend_into(u, TOP_K, &fixed_opts, &mut fixed_ctx, &mut fixed_list);
            std::hint::black_box(&fixed_list);
        }
    });
    let adaptive_seconds = time_best(|| {
        for &u in users {
            rec.recommend_into(
                u,
                TOP_K,
                &adaptive_opts,
                &mut adaptive_ctx,
                &mut adaptive_list,
            );
            std::hint::black_box(&adaptive_list);
        }
    });

    println!(
        "\n{label} early termination: fixed {:.4} ms/batch, adaptive {:.4} ms/batch ({:.2}x), \
         {}/{} DP iterations ({:.0}% saved; {} converged, {} rank-frozen of {} queries), \
         top-{TOP_K} lists identical: {}",
        fixed_seconds * 1e3,
        adaptive_seconds * 1e3,
        fixed_seconds / adaptive_seconds,
        telemetry.iterations_run,
        telemetry.iterations_budget,
        telemetry.iterations_saved_fraction() * 100.0,
        telemetry.converged,
        telemetry.rank_frozen,
        telemetry.queries,
        lists_identical
    );

    EarlyTermination {
        fixed_seconds,
        adaptive_seconds,
        lists_identical,
        telemetry,
    }
}

/// Top-10 recommendation for the batch: score-then-sort (full vector +
/// `top_k` scan) vs the fused `recommend_into` path, plus the parallel
/// `recommend_batch` form.
///
/// Measured on a serving-scale catalog (see `main`): the point of the fused
/// path is that query cost tracks the *visited subgraph*, not the catalog,
/// so the catalog must be large enough for `O(n_items)` materialization to
/// register at all.
fn measure_recommend(
    label: &'static str,
    users: &[u32],
    rec: &dyn Recommender,
) -> Vec<Measurement> {
    let mut out = Vec::new();

    let mut ctx = ScoringContext::new();
    let mut scores = Vec::new();
    let score_then_sort = time_best(|| {
        for &u in users {
            rec.score_into(u, &mut ctx, &mut scores);
            let rated = rec.rated_items(u);
            let list = top_k(&scores, TOP_K, |i| rated.binary_search(&i).is_ok());
            std::hint::black_box(&list);
        }
    });
    out.push(Measurement {
        name: "score_then_sort",
        seconds_per_batch: score_then_sort,
    });

    let mut ctx = ScoringContext::new();
    let opts = RecommendOptions::default();
    let mut list = Vec::new();
    let fused = time_best(|| {
        for &u in users {
            rec.recommend_into(u, TOP_K, &opts, &mut ctx, &mut list);
            std::hint::black_box(&list);
        }
    });
    out.push(Measurement {
        name: "fused_topk",
        seconds_per_batch: fused,
    });

    for (name, threads) in [("recommend_batch_t1", 1usize), ("recommend_batch_t4", 4)] {
        let t = time_best(|| {
            std::hint::black_box(rec.recommend_batch(users, TOP_K, &opts, threads));
        });
        out.push(Measurement {
            name,
            seconds_per_batch: t,
        });
    }

    println!("\n{label} top-{TOP_K} recommend: {BATCH} users, best of {REPEATS} runs");
    let base = out[0].seconds_per_batch;
    for m in &out {
        println!(
            "  {:<24} {:>10.4} ms/batch  {:>8.4} ms/query  {:>5.2}x vs score-then-sort",
            m.name,
            m.seconds_per_batch * 1e3,
            m.seconds_per_batch * 1e3 / BATCH as f64,
            base / m.seconds_per_batch
        );
    }
    out
}

struct ServingEngine {
    engine_seconds: f64,
    scoped_seconds: f64,
    requests: usize,
    lists_match_direct: bool,
}

/// Sustained serving throughput: `ENGINE_ROUNDS` back-to-back 64-user
/// batches through a persistent-worker [`Engine`] vs the same batches
/// through `Recommender::recommend_batch` (which spawns and joins
/// `ENGINE_WORKERS` scoped threads *per batch*). Also checks the engine's
/// lists item-for-item against the direct fused path — routing and pooling
/// must never change a ranking.
fn measure_serving_engine(
    label: &'static str,
    users: &[u32],
    model: SharedRecommender,
) -> ServingEngine {
    let engine = Engine::builder()
        .model(label, Arc::clone(&model))
        .workers(ENGINE_WORKERS)
        .build();
    let requests: Vec<RecommendRequest> = users
        .iter()
        .map(|&u| RecommendRequest::new(label, u, TOP_K))
        .collect();
    let opts = RecommendOptions::default();

    // Correctness gate before timing anything.
    let mut ctx = ScoringContext::new();
    let mut direct = Vec::new();
    let mut lists_match_direct = true;
    for (req, response) in requests
        .iter()
        .zip(engine.recommend_batch(requests.clone()))
    {
        let response = response.expect("registered model");
        model.recommend_into(req.user, TOP_K, &opts, &mut ctx, &mut direct);
        if response
            .items
            .iter()
            .map(|s| s.item)
            .ne(direct.iter().map(|s| s.item))
        {
            lists_match_direct = false;
        }
    }

    let engine_seconds = time_best(|| {
        for _ in 0..ENGINE_ROUNDS {
            std::hint::black_box(engine.recommend_batch(requests.clone()));
        }
    });
    let scoped_seconds = time_best(|| {
        for _ in 0..ENGINE_ROUNDS {
            std::hint::black_box(model.recommend_batch(users, TOP_K, &opts, ENGINE_WORKERS));
        }
    });
    let requests_total = ENGINE_ROUNDS * users.len();
    println!(
        "\n{label} serving engine ({ENGINE_WORKERS} workers, {requests_total} requests): \
         persistent pool {:.1} req/s, per-call scoped threads {:.1} req/s ({:.2}x), \
         lists match direct path: {lists_match_direct}",
        requests_total as f64 / engine_seconds,
        requests_total as f64 / scoped_seconds,
        scoped_seconds / engine_seconds,
    );
    ServingEngine {
        engine_seconds,
        scoped_seconds,
        requests: requests_total,
        lists_match_direct,
    }
}

struct ModelLifecycle {
    snapshot_bytes: u64,
    save_seconds: f64,
    load_seconds: f64,
    deploy_publish_seconds: f64,
    requests: usize,
    served: u64,
    requests_lost: u64,
    served_during_swap_correct: bool,
    reloaded_rankings_identical: bool,
}

/// The model lifecycle on the serving corpus: snapshot save/load wall
/// time, the publish latency of an atomic hot swap, and the
/// served-during-swap correctness gates — every request submitted across
/// the deploy boundary must complete on exactly one version (none lost,
/// none torn), and the reloaded model must serve bit-identical rankings.
fn measure_model_lifecycle<R>(label: &'static str, users: &[u32], model: &R) -> ModelLifecycle
where
    R: longtail_core::Persistable + Clone + Send + Sync + 'static,
{
    let dir = std::env::temp_dir().join(format!("longtail_bench_lifecycle_{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create snapshot dir");
    let path = dir.join(format!("{label}.snap"));

    let save_seconds = time_best(|| {
        model.save_to_file(&path).expect("snapshot save");
    });
    let snapshot_bytes = std::fs::metadata(&path).expect("stat snapshot").len();
    let mut loaded = None;
    let load_seconds = time_best(|| {
        loaded = Some(R::load_from_file(&path).expect("snapshot load"));
    });
    let loaded = loaded.expect("at least one load ran");

    // Bit-identity gate: the reloaded model must reproduce every ranking
    // (items, ranks and f64 bit patterns) of the trained original.
    let mut ctx = ScoringContext::new();
    let opts = RecommendOptions::default();
    let (mut a, mut b) = (Vec::new(), Vec::new());
    let mut reloaded_rankings_identical = true;
    for &u in users {
        model.recommend_into(u, TOP_K, &opts, &mut ctx, &mut a);
        loaded.recommend_into(u, TOP_K, &opts, &mut ctx, &mut b);
        if a.len() != b.len()
            || a.iter()
                .zip(&b)
                .any(|(x, y)| x.item != y.item || x.score.to_bits() != y.score.to_bits())
        {
            reloaded_rankings_identical = false;
        }
    }

    // Hot swap under load: a wave of in-flight requests straddles the
    // deploy; afterwards a second wave must serve on the new version only.
    let engine = Engine::builder()
        .model(label, Arc::new(model.clone()))
        .workers(ENGINE_WORKERS)
        .build();
    let wave = |out: &mut Vec<longtail_serve::PendingResponse>| {
        for &u in users {
            out.push(
                engine
                    .submit(RecommendRequest::new(label, u, TOP_K))
                    .expect("registered model"),
            );
        }
    };
    let mut first = Vec::new();
    wave(&mut first);
    let deploy_start = Instant::now();
    engine
        .deploy_from(
            label,
            Arc::new(loaded),
            longtail_serve::ModelProvenance::Snapshot(path.clone()),
        )
        .expect("registered model");
    let deploy_publish_seconds = deploy_start.elapsed().as_secs_f64();
    let mut second = Vec::new();
    wave(&mut second);

    let mut served = 0u64;
    let mut requests_lost = 0u64;
    let mut served_during_swap_correct = true;
    for (wave_no, pending) in [(1u32, first), (2u32, second)] {
        for p in pending {
            match p.wait() {
                Ok(r) => {
                    served += 1;
                    // Exactly one version per response; post-deploy
                    // submissions must not serve stale.
                    let version_ok = match wave_no {
                        2 => r.version == 2,
                        _ => r.version == 1 || r.version == 2,
                    };
                    if !version_ok {
                        served_during_swap_correct = false;
                    }
                }
                Err(_) => requests_lost += 1,
            }
        }
    }
    if requests_lost > 0 {
        served_during_swap_correct = false;
    }
    let requests = 2 * users.len();
    std::fs::remove_dir_all(&dir).ok();
    println!(
        "\n{label} model lifecycle: snapshot {snapshot_bytes} B, save {:.3} ms, \
         load {:.3} ms, hot-swap publish {:.3} ms, {served}/{requests} served across \
         the swap (lost {requests_lost}), swap correct: {served_during_swap_correct}, \
         reload bit-identical: {reloaded_rankings_identical}",
        save_seconds * 1e3,
        load_seconds * 1e3,
        deploy_publish_seconds * 1e3,
    );
    ModelLifecycle {
        snapshot_bytes,
        save_seconds,
        load_seconds,
        deploy_publish_seconds,
        requests,
        served,
        requests_lost,
        served_during_swap_correct,
        reloaded_rankings_identical,
    }
}

struct StreamingIngest {
    appends: usize,
    append_seconds: f64,
    epochs_published: u64,
    base_query_seconds: f64,
    overlay_query_seconds: f64,
    compaction_total_seconds: f64,
    compaction_publish_seconds: f64,
    folded: usize,
    remaining: usize,
    requests: usize,
    requests_lost: u64,
    overlay_matches_rebuild: bool,
}

/// Streaming ingest on the serving corpus: append throughput into the
/// delta store, per-query cost of overlay scoring vs the frozen base,
/// the compaction fold-rebuild-publish cycle with a request wave
/// straddling it (zero lost requests is a gate), and the rank-identity
/// gate — overlay answers must be bit-identical to a model rebuilt on
/// the union of base + streamed ratings.
fn measure_streaming_ingest(
    label: &'static str,
    users: &[u32],
    base: &longtail_data::Dataset,
    build: &dyn Fn(&longtail_data::Dataset) -> SharedRecommender,
) -> StreamingIngest {
    let store = Arc::new(DeltaStore::new(
        base.clone(),
        DeltaConfig {
            publish_every: INGEST_PUBLISH_EVERY,
            ..DeltaConfig::default()
        },
    ));
    let engine = Engine::builder()
        .model(label, build(base))
        .ingest(label, Arc::clone(&store))
        .workers(ENGINE_WORKERS)
        .build();
    let query_round = || {
        for &u in users {
            std::hint::black_box(
                engine
                    .recommend(&RecommendRequest::new(label, u, TOP_K))
                    .expect("registered model"),
            );
        }
    };

    // Frozen base: the delta is empty, so this is the overlay fast path.
    let base_query_seconds = time_best(query_round) / users.len() as f64;

    // The stream. Deterministic, so the union can be rebuilt exactly for
    // the rank gate below. Timed once — appends mutate the store.
    let (n_users, n_items) = (base.n_users() as u32, base.n_items() as u32);
    let stream = |i: u32| DeltaRating {
        user: (i * 7) % n_users,
        item: (i * 13) % n_items,
        value: 1.0 + (i % 5) as f64,
        timestamp: i as f64,
    };
    let append_start = Instant::now();
    for i in 0..INGEST_APPENDS as u32 {
        store.append(stream(i));
    }
    store.publish();
    let append_seconds = append_start.elapsed().as_secs_f64();
    let epochs_published = store.stats().epochs_published;

    // Live overlay: every query now merges the delta rows into the walk.
    let overlay_query_seconds = time_best(query_round) / users.len() as f64;

    // Rank-identity gate: overlay ≡ rebuilt-on-union, bit for bit, under
    // deterministic stopping.
    let mut union_ratings = base.to_ratings();
    union_ratings.extend((0..INGEST_APPENDS as u32).map(|i| {
        let d = stream(i);
        longtail_data::Rating {
            user: d.user,
            item: d.item,
            value: d.value,
        }
    }));
    let union =
        longtail_data::Dataset::from_ratings(n_users as usize, n_items as usize, &union_ratings);
    let rebuilt = build(&union);
    let opts = RecommendOptions::with_stopping(DpStopping::Fixed);
    let mut ctx = ScoringContext::new();
    let mut want = Vec::new();
    let mut overlay_matches_rebuild = true;
    for &u in users {
        let got = engine
            .recommend(&RecommendRequest::new(label, u, TOP_K).with_stopping(DpStopping::Fixed))
            .expect("registered model");
        rebuilt.recommend_into(u, TOP_K, &opts, &mut ctx, &mut want);
        if got.items.len() != want.len()
            || got
                .items
                .iter()
                .zip(&want)
                .any(|(x, y)| x.item != y.item || x.score.to_bits() != y.score.to_bits())
        {
            overlay_matches_rebuild = false;
        }
    }

    // Compaction with a request wave straddling it: fold the delta into a
    // fresh base, rebuild, publish through the hot-swap path. No request
    // may be lost, and afterwards the residual delta must be empty (the
    // stream stopped, so nothing can race the rebuild).
    let wave = |out: &mut Vec<longtail_serve::PendingResponse>| {
        for &u in users {
            out.push(
                engine
                    .submit(RecommendRequest::new(label, u, TOP_K))
                    .expect("registered model"),
            );
        }
    };
    let mut pending = Vec::new();
    wave(&mut pending);
    let compact_start = Instant::now();
    let report = engine
        .compact_and_deploy(label, |union| build(union))
        .expect("registered ingest model");
    let compaction_total_seconds = compact_start.elapsed().as_secs_f64();
    wave(&mut pending);
    let requests = pending.len();
    let mut requests_lost = 0u64;
    for p in pending {
        if p.wait().is_err() {
            requests_lost += 1;
        }
    }

    println!(
        "\n{label} streaming ingest: {} appends in {:.3} ms ({:.0}/s), {epochs_published} epochs, \
         query {:.4} -> {:.4} ms (overlay {:.2}x), compaction fold {} + rebuild {:.1} ms \
         (publish {:.3} ms, residual {}), {requests} requests across the swap (lost \
         {requests_lost}), overlay == rebuild: {overlay_matches_rebuild}",
        INGEST_APPENDS,
        append_seconds * 1e3,
        INGEST_APPENDS as f64 / append_seconds,
        base_query_seconds * 1e3,
        overlay_query_seconds * 1e3,
        overlay_query_seconds / base_query_seconds,
        report.folded,
        compaction_total_seconds * 1e3,
        report.publish_seconds * 1e3,
        report.remaining,
    );
    StreamingIngest {
        appends: INGEST_APPENDS,
        append_seconds,
        epochs_published,
        base_query_seconds,
        overlay_query_seconds,
        compaction_total_seconds,
        compaction_publish_seconds: report.publish_seconds,
        folded: report.folded,
        remaining: report.remaining,
        requests,
        requests_lost,
        overlay_matches_rebuild,
    }
}

struct AsyncServing {
    open_loop_seconds: f64,
    closed_loop_seconds: f64,
    requests: usize,
    deadline_requests: usize,
    deadline_expired: usize,
    expired_at_dequeue: u64,
    expired_in_dp: u64,
    deadline_completed: u64,
    counts_consistent: bool,
    rankings_match_blocking: bool,
}

/// The async front-end under open-loop load: every request of a round is
/// submitted before any response is claimed (arrivals never wait on
/// completions), vs the closed-loop serial baseline (`Engine::recommend`
/// one request at a time). A second pass mixes in already-expired
/// deadlines — every `ASYNC_EXPIRED_STRIDE`-th request — so the shed
/// accounting is exact: expired requests must be dropped at dequeue
/// without running the DP, and every live request must still serve a
/// ranking identical to the blocking batch path.
fn measure_async_serving(
    label: &'static str,
    users: &[u32],
    model: SharedRecommender,
) -> AsyncServing {
    let engine = Engine::builder()
        .model(label, Arc::clone(&model))
        .workers(ENGINE_WORKERS)
        .queue_capacity(ASYNC_QUEUE_CAPACITY)
        .build();
    let requests: Vec<RecommendRequest> = users
        .iter()
        .map(|&u| RecommendRequest::new(label, u, TOP_K))
        .collect();

    // Correctness gate: open-loop responses ≡ the blocking batch path.
    let blocking = engine.recommend_batch(requests.clone());
    let (_, open_loop) = time_open_loop_submission(&engine, requests.clone());
    let mut rankings_match_blocking = true;
    for (a, b) in open_loop.iter().zip(&blocking) {
        let (a, b) = (a.as_ref().expect("admitted"), b.as_ref().expect("admitted"));
        if a.items
            .iter()
            .map(|s| s.item)
            .ne(b.items.iter().map(|s| s.item))
        {
            rankings_match_blocking = false;
        }
    }

    let open_loop_seconds = time_best(|| {
        for _ in 0..ENGINE_ROUNDS {
            let (_, results) = time_open_loop_submission(&engine, requests.clone());
            std::hint::black_box(&results);
        }
    });
    let closed_loop_seconds = time_best(|| {
        for _ in 0..ENGINE_ROUNDS {
            for req in &requests {
                std::hint::black_box(engine.recommend(req).expect("registered model"));
            }
        }
    });

    // Deadline pass: a deterministic mix of live and already-expired
    // requests, accounted through the eval timer's EngineStats diff.
    let deadlined: Vec<RecommendRequest> = requests
        .iter()
        .enumerate()
        .map(|(i, req)| {
            if i % ASYNC_EXPIRED_STRIDE == 0 {
                req.clone().deadline_at(Instant::now())
            } else {
                req.clone()
            }
        })
        .collect();
    let expected_expired = deadlined.iter().filter(|r| r.deadline.is_some()).count();
    let (deadline_stats, deadline_results) = time_open_loop_submission(&engine, deadlined);
    let stats = deadline_stats.engine.expect("engine timer carries stats");
    let mut deadline_ok = true;
    for (i, result) in deadline_results.iter().enumerate() {
        let expired = i % ASYNC_EXPIRED_STRIDE == 0;
        match result {
            Err(ServeError::DeadlineExceeded) if expired => {}
            Ok(response) if !expired => {
                // Live requests still serve the blocking path's ranking.
                let b = blocking[i].as_ref().expect("admitted");
                if response
                    .items
                    .iter()
                    .map(|s| s.item)
                    .ne(b.items.iter().map(|s| s.item))
                {
                    deadline_ok = false;
                }
            }
            _ => deadline_ok = false,
        }
    }
    rankings_match_blocking &= deadline_ok;
    let counts_consistent = stats.submitted == users.len() as u64
        && stats.expired_at_dequeue + stats.expired_in_dp == expected_expired as u64
        && stats.completed == (users.len() - expected_expired) as u64
        && deadline_stats.dp.queries == stats.completed;

    let requests_total = ENGINE_ROUNDS * users.len();
    println!(
        "\n{label} async front-end ({ENGINE_WORKERS} workers, {requests_total} requests): \
         open-loop submit+drain {:.1} req/s, closed-loop inline {:.1} req/s ({:.2}x); \
         deadline pass: {}/{} expired shed at dequeue, counts consistent: {counts_consistent}, \
         rankings match blocking path: {rankings_match_blocking}",
        requests_total as f64 / open_loop_seconds,
        requests_total as f64 / closed_loop_seconds,
        closed_loop_seconds / open_loop_seconds,
        stats.expired_at_dequeue,
        expected_expired,
    );
    AsyncServing {
        open_loop_seconds,
        closed_loop_seconds,
        requests: requests_total,
        deadline_requests: users.len(),
        deadline_expired: expected_expired,
        expired_at_dequeue: stats.expired_at_dequeue,
        expired_in_dp: stats.expired_in_dp,
        deadline_completed: stats.completed,
        counts_consistent,
        rankings_match_blocking,
    }
}

struct FaultTolerance {
    requests: usize,
    injected_faults_protected: u64,
    injected_faults_unprotected: u64,
    answered_protected: usize,
    degraded: usize,
    retries: u64,
    answered_unprotected: usize,
    non_degraded_rankings_match: bool,
}

impl FaultTolerance {
    fn availability_with_protection(&self) -> f64 {
        self.answered_protected as f64 / self.requests as f64
    }
    fn availability_without_protection(&self) -> f64 {
        self.answered_unprotected as f64 / self.requests as f64
    }
    /// The acceptance bar of the fault-tolerance work: breakers + retry +
    /// fallback keep at least 99% of in-deadline requests answered.
    fn meets_availability_target(&self) -> bool {
        self.availability_with_protection() >= 0.99
    }
}

/// Availability under a seeded chaos mix (injected panics + NaN-poisoned
/// scores), three engines on the same deterministic request sequence: the
/// *protected* engine (circuit breakers, one retry on a fresh context, POP
/// degraded-mode fallback), the *unprotected* engine (same fault plan, no
/// protection), and a fault-free reference engine. Every response the
/// protected engine serves non-degraded must be rank-identical to the
/// fault-free engine — protection machinery must never perturb a healthy
/// ranking.
fn measure_fault_tolerance(
    label: &'static str,
    users: &[u32],
    model: SharedRecommender,
    fallback: SharedRecommender,
) -> FaultTolerance {
    // Same seeds, same probabilities, same call-indexed fault set every
    // run; two instances so the protected and unprotected engines each
    // start from call 0.
    let plan = || {
        FaultPlan::new()
            .seeded(0xfa01, FAULT_P_PANIC, FaultKind::Panic)
            .seeded(0xfa02, FAULT_P_NAN, FaultKind::NanScores)
    };
    let requests: Vec<RecommendRequest> = (0..FAULT_ROUNDS)
        .flat_map(|_| {
            users
                .iter()
                .map(|&u| RecommendRequest::new(label, u, TOP_K))
        })
        .collect();

    let clean = Engine::builder()
        .model(label, Arc::clone(&model))
        .workers(0)
        .build();
    let protected_primary = Arc::new(FaultyRecommender::new(Arc::clone(&model), plan()));
    let protected = Engine::builder()
        .model(label, Arc::clone(&protected_primary) as SharedRecommender)
        .model("POP", Arc::clone(&fallback))
        .fallback(label, "POP")
        .breakers(BreakerConfig::default())
        .default_retry(RetryPolicy::attempts(2))
        .workers(0)
        .build();
    let unprotected_primary = Arc::new(FaultyRecommender::new(Arc::clone(&model), plan()));
    let unprotected = Engine::builder()
        .model(label, Arc::clone(&unprotected_primary) as SharedRecommender)
        .workers(0)
        .build();

    let mut answered_protected = 0usize;
    let mut degraded = 0usize;
    let mut non_degraded_rankings_match = true;
    for req in &requests {
        if let Ok(response) = protected.recommend(req) {
            answered_protected += 1;
            if response.degraded {
                degraded += 1;
            } else {
                let reference = clean.recommend(req).expect("fault-free engine serves");
                if response
                    .items
                    .iter()
                    .map(|s| s.item)
                    .ne(reference.items.iter().map(|s| s.item))
                {
                    non_degraded_rankings_match = false;
                }
            }
        }
    }
    let answered_unprotected = requests
        .iter()
        .filter(|req| unprotected.recommend(req).is_ok())
        .count();

    let out = FaultTolerance {
        requests: requests.len(),
        injected_faults_protected: protected_primary
            .plan()
            .count_faults(protected_primary.calls_made()),
        injected_faults_unprotected: unprotected_primary
            .plan()
            .count_faults(unprotected_primary.calls_made()),
        answered_protected,
        degraded,
        retries: protected.stats().retries,
        answered_unprotected,
        non_degraded_rankings_match,
    };
    println!(
        "\n{label} fault tolerance ({} requests, seeded p_panic={FAULT_P_PANIC}, \
         p_nan={FAULT_P_NAN}): protected {}/{} answered ({} degraded, {} retries, \
         {} faults injected, availability {:.1}%), unprotected {}/{} answered \
         ({} faults injected, availability {:.1}%), \
         non-degraded rankings match fault-free engine: {}",
        out.requests,
        out.answered_protected,
        out.requests,
        out.degraded,
        out.retries,
        out.injected_faults_protected,
        out.availability_with_protection() * 100.0,
        out.answered_unprotected,
        out.requests,
        out.injected_faults_unprotected,
        out.availability_without_protection() * 100.0,
        out.non_degraded_rankings_match
    );
    out
}

/// One scheduler's side of the QoS comparison: the open-loop overload mix
/// through one engine, accounted per class.
struct QosPass {
    seconds: f64,
    interactive_submitted: u64,
    interactive_served: u64,
    batch_submitted: u64,
    batch_served: u64,
    ledger_consistent: bool,
    rankings_match_blocking: bool,
}

impl QosPass {
    fn interactive_hit_rate(&self) -> f64 {
        self.interactive_served as f64 / self.interactive_submitted.max(1) as f64
    }
    fn batch_hit_rate(&self) -> f64 {
        self.batch_served as f64 / self.batch_submitted.max(1) as f64
    }
}

struct QosScheduling {
    requests: usize,
    service_estimate_seconds: f64,
    fifo: QosPass,
    qos: QosPass,
    shed_unmeetable: u64,
    interactive_p50_seconds: f64,
    interactive_p99_seconds: f64,
}

impl QosScheduling {
    /// The acceptance bar of the scheduling work: under the same overload,
    /// EDF-with-priority serves strictly more Interactive deadlines than
    /// FIFO.
    fn interactive_hit_rate_improves(&self) -> bool {
        self.qos.interactive_hit_rate() > self.fifo.interactive_hit_rate()
    }
}

/// splitmix64: the seeded class mix of the QoS pass, stable across runs
/// and machines.
fn qos_mix(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Deadline-hit rates under a seeded overload mix, FIFO vs the QoS
/// scheduler, on otherwise identical single-worker engines.
///
/// A calibration pass first serves the whole mix closed-loop — measuring
/// the per-request service estimate the deadlines are denominated in, and
/// training the QoS engine's service-time EWMA (the slack shedder never
/// acts without evidence). The overload mix then goes open loop: 96
/// requests submitted at once against one worker, every third request
/// (seeded) Interactive with a tight deadline, Batch with a loose one, or
/// deadline-free Background. The scheduler may only reorder or shed:
/// every response either matches the blocking path's ranking or is a typed
/// deadline failure, and each class's ledger must balance
/// (`submitted = served + shed + expired`, nothing `failed`).
fn measure_qos_scheduling(
    label: &'static str,
    users: &[u32],
    model: SharedRecommender,
) -> QosScheduling {
    let build = |sched: SchedPolicy| {
        Engine::builder()
            .model(label, Arc::clone(&model))
            .workers(1)
            .queue_capacity(ASYNC_QUEUE_CAPACITY)
            .scheduling(sched)
            .build()
    };
    let fifo = build(SchedPolicy::Fifo);
    let qos = build(SchedPolicy::Qos);
    let mix_users: Vec<u32> = (0..QOS_REQUESTS).map(|i| users[i % users.len()]).collect();

    // Calibration: the mix served closed-loop on the inline path — the
    // blocking-path reference rankings, the service estimate, and (on the
    // QoS engine) the EWMA the slack shedder consults.
    let start = Instant::now();
    let reference: Vec<Vec<u32>> = mix_users
        .iter()
        .map(|&u| {
            let resp = fifo
                .recommend(&RecommendRequest::new(label, u, TOP_K))
                .expect("calibration serves");
            resp.items.iter().map(|s| s.item).collect()
        })
        .collect();
    let estimate = start.elapsed().as_secs_f64() / QOS_REQUESTS as f64;
    for &u in &mix_users {
        qos.recommend(&RecommendRequest::new(label, u, TOP_K))
            .expect("calibration serves");
    }

    // The overload mix. Deadlines are absolute, so each engine gets its
    // own freshly-stamped copy of the same request sequence.
    let demand = estimate * QOS_REQUESTS as f64;
    let mix_requests = || -> Vec<RecommendRequest> {
        let now = Instant::now();
        mix_users
            .iter()
            .enumerate()
            .map(|(i, &u)| {
                let req = RecommendRequest::new(label, u, TOP_K);
                match qos_mix(0x9a05 ^ i as u64) % 3 {
                    0 => req
                        .deadline_at(now + Duration::from_secs_f64(QOS_INTERACTIVE_SLACK * demand)),
                    1 => req
                        .with_priority(Priority::Batch)
                        .deadline_at(now + Duration::from_secs_f64(QOS_BATCH_SLACK * demand)),
                    _ => req.with_priority(Priority::Background),
                }
            })
            .collect()
    };
    let evaluate = |timing: &TimingStats, results: &[Result<RecommendResponse, ServeError>]| {
        let stats = timing.engine.expect("engine timer carries stats");
        let mut rankings_match_blocking = true;
        for (i, result) in results.iter().enumerate() {
            match result {
                // A served ranking must be the blocking path's, whatever
                // the scheduler did to the queue around it.
                Ok(resp) => {
                    if resp
                        .items
                        .iter()
                        .map(|s| s.item)
                        .ne(reference[i].iter().copied())
                    {
                        rankings_match_blocking = false;
                    }
                }
                // The only acceptable failure in this mix: out of time.
                Err(ServeError::DeadlineExceeded) => {}
                Err(_) => rankings_match_blocking = false,
            }
        }
        let ledger_consistent = stats
            .per_class
            .iter()
            .all(|c| c.failed == 0 && c.submitted == c.served + c.shed + c.expired);
        let class = |p: Priority| stats.per_class[p.index()];
        QosPass {
            seconds: timing.total_seconds,
            interactive_submitted: class(Priority::Interactive).submitted,
            interactive_served: class(Priority::Interactive).served,
            batch_submitted: class(Priority::Batch).submitted,
            batch_served: class(Priority::Batch).served,
            ledger_consistent,
            rankings_match_blocking,
        }
    };

    let (fifo_timing, fifo_results) = time_open_loop_submission(&fifo, mix_requests());
    let (qos_timing, qos_results) = time_open_loop_submission(&qos, mix_requests());
    let qos_stats = qos_timing.engine.expect("engine timer carries stats");
    let interactive = qos_stats.per_class[Priority::Interactive.index()];
    let out = QosScheduling {
        requests: QOS_REQUESTS,
        service_estimate_seconds: estimate,
        fifo: evaluate(&fifo_timing, &fifo_results),
        qos: evaluate(&qos_timing, &qos_results),
        shed_unmeetable: qos_stats.shed_unmeetable,
        interactive_p50_seconds: interactive.latency_p50().unwrap_or(-1.0),
        interactive_p99_seconds: interactive.latency_p99().unwrap_or(-1.0),
    };
    println!(
        "\n{label} qos scheduling ({QOS_REQUESTS} requests, 1 worker, est {:.2} ms/req): \
         fifo {:.1} req/s, qos {:.1} req/s; interactive deadline hits \
         fifo {:.0}%, qos {:.0}% (improves: {}); batch hits fifo {:.0}%, qos {:.0}%; \
         {} slack-shed, interactive p50 {:.1} ms / p99 {:.1} ms, \
         ledgers consistent: {}, rankings match blocking path: {}",
        out.service_estimate_seconds * 1e3,
        out.requests as f64 / out.fifo.seconds,
        out.requests as f64 / out.qos.seconds,
        out.fifo.interactive_hit_rate() * 100.0,
        out.qos.interactive_hit_rate() * 100.0,
        out.interactive_hit_rate_improves(),
        out.fifo.batch_hit_rate() * 100.0,
        out.qos.batch_hit_rate() * 100.0,
        out.shed_unmeetable,
        out.interactive_p50_seconds * 1e3,
        out.interactive_p99_seconds * 1e3,
        out.fifo.ledger_consistent && out.qos.ledger_consistent,
        out.fifo.rankings_match_blocking && out.qos.rankings_match_blocking,
    );
    out
}

/// Maximum Recall@k an enabled re-rank policy may cost relative to the raw
/// fused path — the "quality for bounded accuracy" contract the JSON gate
/// checks.
const QUALITY_RECALL_DROP: f64 = 0.15;

/// The re-rank policy the on-arm of the quality pass measures: mild MMR
/// redundancy suppression, a popularity penalty, and a 3-slot tail quota.
fn quality_policy() -> RerankPolicy {
    RerankPolicy::new()
        .mmr(0.3)
        .popularity_penalty(0.25)
        .tail_quota(3)
}

/// One arm (re-rank off or on) of the long-tail quality comparison.
struct QualityArm {
    recall: f64,
    tail_recall: f64,
    head_recall: f64,
    coverage: f64,
    gini: f64,
    novelty: f64,
}

struct LongtailQuality {
    /// Held-out users whose served lists the metrics read.
    evaluated_users: usize,
    /// A `Default` (disabled) policy through the full rerank plumbing
    /// served lists bit-identical to no policy at all.
    disabled_identical: bool,
    off: QualityArm,
    on: QualityArm,
}

impl LongtailQuality {
    /// The enabled policy's served-list recall stayed within
    /// [`QUALITY_RECALL_DROP`] of the raw path.
    fn recall_drop_bounded(&self) -> bool {
        self.on.recall >= self.off.recall - QUALITY_RECALL_DROP
    }
}

/// Serve each held-out user's top-k list with re-ranking off, disabled,
/// and on, and read the quality suite (coverage, Gini concentration,
/// novelty, list-based recall split head/tail) off the same artifacts.
/// `rec` must be trained on `split.train` (the held-out favourites are the
/// recall ground truth), and `index` built over the same training data.
fn measure_longtail_quality(
    label: &'static str,
    rec: &dyn Recommender,
    split: &ProtocolSplit,
    index: &RerankIndex,
) -> LongtailQuality {
    let mut users: Vec<u32> = split.test_cases.iter().map(|c| c.user).collect();
    users.sort_unstable();
    let n_items = split.train.n_items();
    let n_users = split.train.n_users();
    let pops = split.train.item_popularity();
    let policy = quality_policy();

    let arm = |lists: &RecommendationLists| {
        let counts = exposure_counts(lists, n_items);
        let by_class = tail_recall_split(lists, &split.test_cases, |i| {
            index.tail(i, policy.tail_cutoff)
        });
        QualityArm {
            recall: list_recall(lists, &split.test_cases),
            tail_recall: by_class.tail,
            head_recall: by_class.head,
            coverage: catalog_coverage(lists, n_items),
            gini: gini_concentration(&counts),
            novelty: novelty(lists, &pops, n_users),
        }
    };

    let off_lists = RecommendationLists::compute_with(
        rec,
        &users,
        TOP_K,
        &RecommendOptions::default(),
        ENGINE_WORKERS,
    );
    let disabled_opts =
        RecommendOptions::new().rerank(Reranker::new(index, RerankPolicy::default()));
    let disabled_lists =
        RecommendationLists::compute_with(rec, &users, TOP_K, &disabled_opts, ENGINE_WORKERS);
    let on_opts = RecommendOptions::new().rerank(Reranker::new(index, policy));
    let on_lists = RecommendationLists::compute_with(rec, &users, TOP_K, &on_opts, ENGINE_WORKERS);

    let out = LongtailQuality {
        evaluated_users: users.len(),
        disabled_identical: off_lists.lists == disabled_lists.lists,
        off: arm(&off_lists),
        on: arm(&on_lists),
    };
    println!(
        "\n{label} longtail quality ({} held-out users, k={TOP_K}): \
         recall {:.3} -> {:.3} (tail {:.3} -> {:.3}), coverage {:.3} -> {:.3}, \
         gini {:.3} -> {:.3}, novelty {:.2} -> {:.2} bits; \
         disabled identical: {}, recall drop bounded: {}",
        out.evaluated_users,
        out.off.recall,
        out.on.recall,
        out.off.tail_recall,
        out.on.tail_recall,
        out.off.coverage,
        out.on.coverage,
        out.off.gini,
        out.on.gini,
        out.off.novelty,
        out.on.novelty,
        out.disabled_identical,
        out.recall_drop_bounded(),
    );
    out
}

fn main() {
    let config = SyntheticConfig {
        n_users: 600,
        n_items: 450,
        ..SyntheticConfig::movielens_like()
    };
    let data = SyntheticData::generate(&config);
    let train = &data.dataset;
    let graph = train.to_graph();
    let walk_config = GraphRecConfig {
        max_items: 300,
        iterations: 15,
    };
    let users = sample_test_users(&train.user_activity(), BATCH, 3, 0xbe9c);
    assert_eq!(users.len(), BATCH, "corpus too small for the batch");

    let ht = HittingTimeRecommender::new(train, walk_config);
    let ac1 = AbsorbingCostRecommender::item_entropy(
        train,
        AbsorbingCostConfig {
            graph: walk_config,
            item_entry_cost: 1.0,
        },
    );

    println!(
        "walk-scoring bench: {} users x {} items, {} ratings, mu={}, tau={}",
        train.n_users(),
        train.n_items(),
        train.n_ratings(),
        walk_config.max_items,
        walk_config.iterations
    );

    let ht_measurements = measure_algorithm("HT", &graph, &walk_config, &users, &ht, &|u| {
        baseline::prerefactor_hitting_scores(&graph, u, &walk_config)
    });
    let ac_measurements = measure_algorithm("AC1", &graph, &walk_config, &users, &ac1, &|u| {
        baseline::prerefactor_absorbing_cost_scores(
            &graph,
            ac1.user_entropies(),
            1.0,
            u,
            &walk_config,
        )
    });

    // Fused top-k vs score-then-sort on a serving-scale catalog: the same
    // walk budget, but a catalog where building + scanning a full score
    // vector per query is real work. Query cost on the fused path tracks
    // the visited subgraph, so it is insensitive to this scaling.
    let serve_config = SyntheticConfig {
        n_users: 2200,
        n_items: 24_000,
        ..SyntheticConfig::douban_like()
    };
    let serve_data = SyntheticData::generate(&serve_config);
    let serve_train = &serve_data.dataset;
    let serve_users = sample_test_users(&serve_train.user_activity(), BATCH, 3, 0xbe9c);
    assert_eq!(serve_users.len(), BATCH, "serving corpus too small");
    let serve_ht = HittingTimeRecommender::new(serve_train, walk_config);
    let serve_ac1 = AbsorbingCostRecommender::item_entropy(
        serve_train,
        AbsorbingCostConfig {
            graph: walk_config,
            item_entry_cost: 1.0,
        },
    );
    println!(
        "\nserving corpus: {} users x {} items, {} ratings, k={TOP_K}",
        serve_train.n_users(),
        serve_train.n_items(),
        serve_train.n_ratings()
    );
    let ht_recommend = measure_recommend("HT", &serve_users, &serve_ht);
    let ac_recommend = measure_recommend("AC1", &serve_users, &serve_ac1);

    // Sustained engine throughput on the same serving corpus: persistent
    // worker pool vs per-call scoped-thread spawning.
    let ht_engine = measure_serving_engine("HT", &serve_users, Arc::new(serve_ht.clone()));
    let ac_engine = measure_serving_engine("AC1", &serve_users, Arc::new(serve_ac1.clone()));

    // The async front-end on the same serving corpus: open-loop submission
    // throughput plus the deterministic deadline-shedding pass.
    let ht_async = measure_async_serving("HT", &serve_users, Arc::new(serve_ht.clone()));
    let ac_async = measure_async_serving("AC1", &serve_users, Arc::new(serve_ac1.clone()));

    // The model lifecycle on the same serving corpus: snapshot save/load,
    // hot-swap publish latency, and the served-during-swap gates.
    let ht_lifecycle = measure_model_lifecycle("HT", &serve_users, &serve_ht);
    let ac_lifecycle = measure_model_lifecycle("AC1", &serve_users, &serve_ac1);

    // Streaming ingest on the same serving corpus: append throughput,
    // overlay query cost vs the frozen base, the compaction redeploy
    // cycle under a request wave, and the overlay ≡ rebuild rank gate.
    let ht_ingest = measure_streaming_ingest("HT", &serve_users, serve_train, &|d| {
        Arc::new(HittingTimeRecommender::new(d, walk_config))
    });
    let ac_ingest = measure_streaming_ingest("AC1", &serve_users, serve_train, &|d| {
        Arc::new(AbsorbingCostRecommender::item_entropy(
            d,
            AbsorbingCostConfig {
                graph: walk_config,
                item_entry_cost: 1.0,
            },
        ))
    });

    // Deadline-hit rates under a seeded overload mix: the QoS scheduler
    // (strict priority + EDF + slack shedding) vs the FIFO baseline.
    let ht_qos = measure_qos_scheduling("HT", &serve_users, Arc::new(serve_ht.clone()));
    let ac_qos = measure_qos_scheduling("AC1", &serve_users, Arc::new(serve_ac1.clone()));

    // Availability under injected faults on the same serving corpus. The
    // engine catches every injected panic; silence the default hook's
    // per-panic backtrace for the duration so the bench output stays
    // readable, then restore it.
    let serve_pop: SharedRecommender = Arc::new(PopularityRecommender::train(serve_train));
    let panic_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let ht_fault = measure_fault_tolerance(
        "HT",
        &serve_users,
        Arc::new(serve_ht.clone()),
        Arc::clone(&serve_pop),
    );
    let ac_fault = measure_fault_tolerance(
        "AC1",
        &serve_users,
        Arc::new(serve_ac1.clone()),
        Arc::clone(&serve_pop),
    );
    std::panic::set_hook(panic_hook);

    // Long-tail quality on the small corpus: hold out tail favourites,
    // retrain on the remainder, and compare the quality suite with the
    // re-rank policy off vs on (plus the disabled-policy identity gate).
    let tail_split = LongTailSplit::by_rating_share(&train.item_popularity(), 0.2);
    let quality_split = holdout_longtail_favorites(train, &tail_split, &SplitConfig::default());
    let rerank_index = RerankIndex::from_dataset(&quality_split.train);
    let q_ht = HittingTimeRecommender::new(&quality_split.train, walk_config);
    let q_ac1 = AbsorbingCostRecommender::item_entropy(
        &quality_split.train,
        AbsorbingCostConfig {
            graph: walk_config,
            item_entry_cost: 1.0,
        },
    );
    let ht_quality = measure_longtail_quality("HT", &q_ht, &quality_split, &rerank_index);
    let ac_quality = measure_longtail_quality("AC1", &q_ac1, &quality_split, &rerank_index);

    // Early termination on the same serving corpus at the high-fidelity τ
    // budget (see ET_ITERATIONS): fixed-τ vs the default adaptive policy.
    let et_config = GraphRecConfig {
        max_items: walk_config.max_items,
        iterations: ET_ITERATIONS,
    };
    let et_ht = HittingTimeRecommender::new(serve_train, et_config);
    let et_at = AbsorbingTimeRecommender::new(serve_train, et_config);
    let et_ac1 = AbsorbingCostRecommender::item_entropy(
        serve_train,
        AbsorbingCostConfig {
            graph: et_config,
            item_entry_cost: 1.0,
        },
    );
    println!(
        "\nearly termination at tau={ET_ITERATIONS}, mu={}",
        et_config.max_items
    );
    let ht_early = measure_early_termination("HT", &serve_users, &et_ht);
    let at_early = measure_early_termination("AT", &serve_users, &et_at);
    let ac_early = measure_early_termination("AC1", &serve_users, &et_ac1);

    // Single-query latency: the refactored path must not regress.
    let probe = users[0];
    let single_pre = single_query_seconds(|| {
        std::hint::black_box(baseline::prerefactor_hitting_scores(
            &graph,
            probe,
            &walk_config,
        ));
    });
    let mut ctx = ScoringContext::new();
    let mut scores = Vec::new();
    let single_ctx = single_query_seconds(|| {
        ht.score_into(probe, &mut ctx, &mut scores);
        std::hint::black_box(scores.last());
    });
    println!(
        "\nsingle HT query: pre-refactor {:.4} ms, context {:.4} ms ({:.2}x)",
        single_pre * 1e3,
        single_ctx * 1e3,
        single_pre / single_ctx
    );

    let json = render_json(
        &config,
        &serve_config,
        &walk_config,
        &ht_measurements,
        &ac_measurements,
        &ht_recommend,
        &ac_recommend,
        &ht_engine,
        &ac_engine,
        &ht_async,
        &ac_async,
        &ht_lifecycle,
        &ac_lifecycle,
        &ht_ingest,
        &ac_ingest,
        &ht_qos,
        &ac_qos,
        &ht_fault,
        &ac_fault,
        &ht_early,
        &at_early,
        &ac_early,
        &ht_quality,
        &ac_quality,
        single_pre,
        single_ctx,
    );
    let path = "BENCH_walk_scoring.json";
    std::fs::write(path, json).expect("write benchmark summary");
    println!("\nwrote {path}");
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    config: &SyntheticConfig,
    serve_config: &SyntheticConfig,
    walk: &GraphRecConfig,
    ht: &[Measurement],
    ac: &[Measurement],
    ht_rec: &[Measurement],
    ac_rec: &[Measurement],
    ht_engine: &ServingEngine,
    ac_engine: &ServingEngine,
    ht_async: &AsyncServing,
    ac_async: &AsyncServing,
    ht_lifecycle: &ModelLifecycle,
    ac_lifecycle: &ModelLifecycle,
    ht_ingest: &StreamingIngest,
    ac_ingest: &StreamingIngest,
    ht_qos: &QosScheduling,
    ac_qos: &QosScheduling,
    ht_fault: &FaultTolerance,
    ac_fault: &FaultTolerance,
    ht_early: &EarlyTermination,
    at_early: &EarlyTermination,
    ac_early: &EarlyTermination,
    ht_quality: &LongtailQuality,
    ac_quality: &LongtailQuality,
    single_pre: f64,
    single_ctx: f64,
) -> String {
    fn series(ms: &[Measurement], baseline_key: &str) -> String {
        let base = ms[0].seconds_per_batch;
        let entries: Vec<String> = ms
            .iter()
            .map(|m| {
                format!(
                    "      {{\"name\": \"{}\", \"seconds_per_batch\": {:.6e}, \"{}\": {:.3}}}",
                    m.name,
                    m.seconds_per_batch,
                    baseline_key,
                    base / m.seconds_per_batch
                )
            })
            .collect();
        entries.join(",\n")
    }
    fn async_serving(a: &AsyncServing) -> String {
        format!(
            "{{\"open_loop_seconds\": {:.6e}, \"closed_loop_seconds\": {:.6e}, \
             \"open_loop_requests_per_sec\": {:.1}, \"closed_loop_requests_per_sec\": {:.1}, \
             \"speedup_vs_closed_loop\": {:.3}, \"rankings_match_blocking\": {}, \
             \"deadline\": {{\"requests\": {}, \"expired_requests\": {}, \
             \"expired_at_dequeue\": {}, \"expired_in_dp\": {}, \"completed\": {}, \
             \"counts_consistent\": {}}}}}",
            a.open_loop_seconds,
            a.closed_loop_seconds,
            a.requests as f64 / a.open_loop_seconds,
            a.requests as f64 / a.closed_loop_seconds,
            a.closed_loop_seconds / a.open_loop_seconds,
            a.rankings_match_blocking,
            a.deadline_requests,
            a.deadline_expired,
            a.expired_at_dequeue,
            a.expired_in_dp,
            a.deadline_completed,
            a.counts_consistent
        )
    }
    fn model_lifecycle(m: &ModelLifecycle) -> String {
        format!(
            "{{\"snapshot_bytes\": {}, \"save_seconds\": {:.6e}, \"load_seconds\": {:.6e}, \
             \"deploy_publish_seconds\": {:.6e}, \"requests\": {}, \"served\": {}, \
             \"requests_lost\": {}, \"served_during_swap_correct\": {}, \
             \"reloaded_rankings_identical\": {}}}",
            m.snapshot_bytes,
            m.save_seconds,
            m.load_seconds,
            m.deploy_publish_seconds,
            m.requests,
            m.served,
            m.requests_lost,
            m.served_during_swap_correct,
            m.reloaded_rankings_identical
        )
    }
    fn streaming_ingest(s: &StreamingIngest) -> String {
        format!(
            "{{\"appends\": {}, \"append_seconds\": {:.6e}, \"appends_per_sec\": {:.1}, \
             \"epochs_published\": {}, \"base_query_seconds\": {:.6e}, \
             \"overlay_query_seconds\": {:.6e}, \"overlay_overhead\": {:.3}, \
             \"compaction_total_seconds\": {:.6e}, \"compaction_publish_seconds\": {:.6e}, \
             \"folded\": {}, \"remaining\": {}, \"requests\": {}, \"requests_lost\": {}, \
             \"overlay_matches_rebuild\": {}}}",
            s.appends,
            s.append_seconds,
            s.appends as f64 / s.append_seconds,
            s.epochs_published,
            s.base_query_seconds,
            s.overlay_query_seconds,
            s.overlay_query_seconds / s.base_query_seconds,
            s.compaction_total_seconds,
            s.compaction_publish_seconds,
            s.folded,
            s.remaining,
            s.requests,
            s.requests_lost,
            s.overlay_matches_rebuild
        )
    }
    fn qos_scheduling(q: &QosScheduling) -> String {
        format!(
            "{{\"service_estimate_seconds\": {:.6e}, \
             \"fifo_requests_per_sec\": {:.1}, \"qos_requests_per_sec\": {:.1}, \
             \"fifo_interactive_hit_rate\": {:.4}, \"qos_interactive_hit_rate\": {:.4}, \
             \"fifo_batch_hit_rate\": {:.4}, \"qos_batch_hit_rate\": {:.4}, \
             \"interactive_p50_seconds\": {:.6e}, \"interactive_p99_seconds\": {:.6e}, \
             \"shed_unmeetable\": {}, \"ledger_consistent\": {}, \
             \"rankings_match_blocking\": {}, \"interactive_hit_rate_improves\": {}}}",
            q.service_estimate_seconds,
            q.requests as f64 / q.fifo.seconds,
            q.requests as f64 / q.qos.seconds,
            q.fifo.interactive_hit_rate(),
            q.qos.interactive_hit_rate(),
            q.fifo.batch_hit_rate(),
            q.qos.batch_hit_rate(),
            q.interactive_p50_seconds,
            q.interactive_p99_seconds,
            q.shed_unmeetable,
            q.fifo.ledger_consistent && q.qos.ledger_consistent,
            q.fifo.rankings_match_blocking && q.qos.rankings_match_blocking,
            q.interactive_hit_rate_improves()
        )
    }
    fn fault_tolerance(f: &FaultTolerance) -> String {
        format!(
            "{{\"requests\": {}, \"injected_faults_protected\": {}, \
             \"injected_faults_unprotected\": {}, \"answered_with_protection\": {}, \
             \"degraded\": {}, \"retries\": {}, \"answered_without_protection\": {}, \
             \"availability_with_protection\": {:.4}, \
             \"availability_without_protection\": {:.4}, \
             \"non_degraded_rankings_match\": {}, \"meets_availability_target\": {}}}",
            f.requests,
            f.injected_faults_protected,
            f.injected_faults_unprotected,
            f.answered_protected,
            f.degraded,
            f.retries,
            f.answered_unprotected,
            f.availability_with_protection(),
            f.availability_without_protection(),
            f.non_degraded_rankings_match,
            f.meets_availability_target()
        )
    }
    fn early(e: &EarlyTermination) -> String {
        format!(
            "{{\"fixed_seconds_per_batch\": {:.6e}, \"adaptive_seconds_per_batch\": {:.6e}, \
             \"speedup_vs_fixed_tau\": {:.3}, \"dp_iterations_budget\": {}, \
             \"dp_iterations_run\": {}, \"iterations_saved_fraction\": {:.3}, \
             \"queries\": {}, \"converged_queries\": {}, \"rank_frozen_queries\": {}, \
             \"top10_lists_identical\": {}}}",
            e.fixed_seconds,
            e.adaptive_seconds,
            e.fixed_seconds / e.adaptive_seconds,
            e.telemetry.iterations_budget,
            e.telemetry.iterations_run,
            e.telemetry.iterations_saved_fraction(),
            e.telemetry.queries,
            e.telemetry.converged,
            e.telemetry.rank_frozen,
            e.lists_identical
        )
    }
    fn quality_arm(a: &QualityArm) -> String {
        format!(
            "{{\"recall_at_k\": {:.4}, \"tail_recall_at_k\": {:.4}, \
             \"head_recall_at_k\": {:.4}, \"coverage\": {:.4}, \"gini\": {:.4}, \
             \"novelty_bits\": {:.4}}}",
            a.recall, a.tail_recall, a.head_recall, a.coverage, a.gini, a.novelty
        )
    }
    fn longtail_quality(q: &LongtailQuality) -> String {
        format!(
            "{{\"evaluated_users\": {}, \"rerank_off\": {}, \"rerank_on\": {}, \
             \"disabled_identical\": {}, \"recall_drop_bounded\": {}}}",
            q.evaluated_users,
            quality_arm(&q.off),
            quality_arm(&q.on),
            q.disabled_identical,
            q.recall_drop_bounded()
        )
    }
    fn engine(e: &ServingEngine) -> String {
        format!(
            "{{\"engine_pool_seconds\": {:.6e}, \"scoped_threads_seconds\": {:.6e}, \
             \"engine_requests_per_sec\": {:.1}, \"scoped_requests_per_sec\": {:.1}, \
             \"speedup_vs_scoped_threads\": {:.3}, \"lists_match_direct\": {}}}",
            e.engine_seconds,
            e.scoped_seconds,
            e.requests as f64 / e.engine_seconds,
            e.requests as f64 / e.scoped_seconds,
            e.scoped_seconds / e.engine_seconds,
            e.lists_match_direct
        )
    }
    let epsilon = match DpStopping::default() {
        DpStopping::Adaptive { epsilon } => epsilon,
        DpStopping::Fixed => -1.0,
    };
    format!(
        "{{\n  \"bench\": \"walk_scoring\",\n  \"batch_users\": {BATCH},\n  \"repeats_best_of\": {REPEATS},\n  \
         \"dataset\": {{\"n_users\": {}, \"n_items\": {}}},\n  \
         \"walk\": {{\"max_items\": {}, \"iterations\": {}}},\n  \
         \"threads\": {},\n  \
         \"results\": {{\n    \"HT\": [\n{}\n    ],\n    \"AC1\": [\n{}\n    ]\n  }},\n  \
         \"recommend_topk\": {{\n    \"k\": {TOP_K},\n    \
         \"dataset\": {{\"n_users\": {}, \"n_items\": {}}},\n    \
         \"HT\": [\n{}\n    ],\n    \"AC1\": [\n{}\n    ]\n  }},\n  \
         \"serving_engine\": {{\n    \"workers\": {ENGINE_WORKERS},\n    \
         \"rounds\": {ENGINE_ROUNDS},\n    \"requests\": {},\n    \
         \"HT\": {},\n    \"AC1\": {}\n  }},\n  \
         \"async_serving\": {{\n    \"workers\": {ENGINE_WORKERS},\n    \
         \"queue_capacity\": {ASYNC_QUEUE_CAPACITY},\n    \
         \"rounds\": {ENGINE_ROUNDS},\n    \"requests\": {},\n    \
         \"HT\": {},\n    \"AC1\": {}\n  }},\n  \
         \"model_lifecycle\": {{\n    \"workers\": {ENGINE_WORKERS},\n    \
         \"HT\": {},\n    \"AC1\": {}\n  }},\n  \
         \"streaming_ingest\": {{\n    \"workers\": {ENGINE_WORKERS},\n    \
         \"publish_every\": {INGEST_PUBLISH_EVERY},\n    \
         \"HT\": {},\n    \"AC1\": {}\n  }},\n  \
         \"qos_scheduling\": {{\n    \"workers\": 1,\n    \
         \"requests\": {QOS_REQUESTS},\n    \
         \"interactive_slack\": {QOS_INTERACTIVE_SLACK},\n    \
         \"batch_slack\": {QOS_BATCH_SLACK},\n    \
         \"HT\": {},\n    \"AC1\": {}\n  }},\n  \
         \"fault_tolerance\": {{\n    \"rounds\": {FAULT_ROUNDS},\n    \
         \"fault_plan\": {{\"p_panic\": {FAULT_P_PANIC}, \"p_nan\": {FAULT_P_NAN}}},\n    \
         \"HT\": {},\n    \"AC1\": {}\n  }},\n  \
         \"early_termination\": {{\n    \"epsilon\": {:e},\n    \"k\": {TOP_K},\n    \
         \"dp_budget\": {ET_ITERATIONS},\n    \
         \"HT\": {},\n    \"AT\": {},\n    \"AC1\": {}\n  }},\n  \
         \"longtail_quality\": {{\n    \"k\": {TOP_K},\n    \
         \"policy\": {{\"mmr_lambda\": {}, \"popularity_penalty\": {}, \
         \"tail_quota\": {}, \"tail_cutoff\": {}}},\n    \
         \"max_recall_drop\": {QUALITY_RECALL_DROP},\n    \
         \"HT\": {},\n    \"AC1\": {}\n  }},\n  \
         \"single_query_ht\": {{\"prerefactor_seconds\": {:.6e}, \"context_seconds\": {:.6e}, \"speedup\": {:.3}}}\n}}\n",
        config.n_users,
        config.n_items,
        walk.max_items,
        walk.iterations,
        std::thread::available_parallelism().map_or(1, |p| p.get()),
        series(ht, "speedup_vs_prerefactor"),
        series(ac, "speedup_vs_prerefactor"),
        serve_config.n_users,
        serve_config.n_items,
        series(ht_rec, "speedup_vs_score_then_sort"),
        series(ac_rec, "speedup_vs_score_then_sort"),
        ht_engine.requests,
        engine(ht_engine),
        engine(ac_engine),
        ht_async.requests,
        async_serving(ht_async),
        async_serving(ac_async),
        model_lifecycle(ht_lifecycle),
        model_lifecycle(ac_lifecycle),
        streaming_ingest(ht_ingest),
        streaming_ingest(ac_ingest),
        qos_scheduling(ht_qos),
        qos_scheduling(ac_qos),
        fault_tolerance(ht_fault),
        fault_tolerance(ac_fault),
        epsilon,
        early(ht_early),
        early(at_early),
        early(ac_early),
        quality_policy().mmr_lambda,
        quality_policy().popularity_penalty,
        quality_policy().tail_quota,
        quality_policy().tail_cutoff,
        longtail_quality(ht_quality),
        longtail_quality(ac_quality),
        single_pre,
        single_ctx,
        single_pre / single_ctx
    )
}
