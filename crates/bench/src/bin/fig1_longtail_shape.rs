//! Figure 1 + §5.1.2 — the long-tail shape of both corpora.
//!
//! Regenerates the rank-frequency curve behind Figure 1 and checks the
//! paper's tail facts: 66 % of MovieLens movies / 73 % of Douban books
//! carry 20 % of the ratings.

use longtail_bench::{emit, paper, start_experiment, Corpus};
use longtail_data::LongTailSplit;
use longtail_graph::stats::{popularity_curve, popularity_gini};
use longtail_graph::GraphStats;

fn main() {
    let name = "fig1_longtail_shape";
    start_experiment(name, "Figure 1 / §5.1.2 — long-tail shape of the corpora");

    for (corpus, paper_tail) in [
        (Corpus::Movielens, paper::TAIL_FRACTION_MOVIELENS),
        (Corpus::Douban, paper::TAIL_FRACTION_DOUBAN),
    ] {
        let data = corpus.generate();
        let graph = data.dataset.to_graph();
        let stats = GraphStats::compute(&graph);
        let split = LongTailSplit::by_rating_share(&data.dataset.item_popularity(), 0.2);
        let gini = popularity_gini(&graph);

        emit(name, &format!("## {}\n", corpus.name()));
        emit(
            name,
            &format!(
                "- {} users x {} items, {} ratings, density {:.3}%",
                stats.n_users,
                stats.n_items,
                stats.n_ratings,
                100.0 * stats.density
            ),
        );
        emit(
            name,
            &format!(
                "- item popularity range [{}, {}], user activity range [{}, {}], Gini {:.3}",
                stats.min_item_popularity,
                stats.max_item_popularity,
                stats.min_user_activity,
                stats.max_user_activity,
                gini
            ),
        );
        emit(
            name,
            &format!(
                "- tail at r=20%: {:.1}% of items carry {:.1}% of ratings (paper: {:.0}%)",
                100.0 * split.tail_item_fraction(),
                100.0 * split.tail_rating_share(),
                100.0 * paper_tail
            ),
        );

        // Decile summary of the rank-frequency curve (the shape of Fig. 1).
        let curve = popularity_curve(&graph);
        let total: usize = curve.iter().sum();
        let mut row = String::from("- cumulative rating share by popularity decile:");
        for d in 1..=10 {
            let upto = curve.len() * d / 10;
            let ratings: usize = curve.iter().take(upto).sum();
            row.push_str(&format!(
                " {:.0}%",
                100.0 * ratings as f64 / total.max(1) as f64
            ));
        }
        emit(name, &row);
        emit(name, "");
    }
    emit(
        name,
        "Shape check: the first popularity decile carries the bulk of the \
         ratings while the majority of the catalog shares the remainder — \
         the premise of the paper's Figure 1.",
    );
}
