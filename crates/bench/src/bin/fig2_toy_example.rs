//! Figure 2 / §3.3 — the worked hitting-time example.
//!
//! Rebuilds the paper's 5-user x 6-movie graph and reports the hitting
//! times from every candidate movie to the query user U5, next to the
//! values printed in the paper.

use longtail_bench::{emit, start_experiment};
use longtail_data::{Dataset, Rating};
use longtail_graph::Adjacency;
use longtail_markov::AbsorbingWalk;

fn main() {
    let name = "fig2_toy_example";
    start_experiment(name, "Figure 2 / §3.3 — hitting-time worked example");

    let ratings: Vec<Rating> = [
        (0, 0, 5.0),
        (0, 1, 3.0),
        (0, 4, 3.0),
        (0, 5, 5.0),
        (1, 0, 5.0),
        (1, 1, 4.0),
        (1, 2, 5.0),
        (1, 4, 4.0),
        (1, 5, 5.0),
        (2, 0, 4.0),
        (2, 1, 5.0),
        (2, 2, 4.0),
        (3, 2, 5.0),
        (3, 3, 5.0),
        (4, 1, 4.0),
        (4, 2, 5.0),
    ]
    .into_iter()
    .map(|(user, item, value)| Rating { user, item, value })
    .collect();
    let dataset = Dataset::from_ratings(5, 6, &ratings);
    let graph = dataset.to_graph();
    let adj = Adjacency::from_bipartite(&graph);
    let walk = AbsorbingWalk::new(&adj, &[graph.user_node(4)]);
    let exact = walk.exact_times().expect("connected graph");
    let truncated = walk.truncated_times(60);

    let paper = [(3u32, 17.7), (0, 19.6), (4, 20.2), (5, 20.3)];
    emit(
        name,
        "| movie | paper H(U5|M) | exact solve | truncated τ=60 |",
    );
    emit(name, "|---|---|---|---|");
    for (m, p) in paper {
        emit(
            name,
            &format!(
                "| M{} | {:.1} | {:.2} | {:.2} |",
                m + 1,
                p,
                exact[graph.item_node(m)],
                truncated[graph.item_node(m)]
            ),
        );
    }
    emit(
        name,
        "\nThe τ=60 truncation reproduces the paper's values to ±0.05 — that \
         is evidently the computation behind §3.3's numbers. The exact \
         linear solve lands ~0.8 steps higher with identical ordering and \
         pairwise gaps.",
    );

    // The recommendation conclusion of §3.3.
    let mut order: Vec<u32> = vec![0, 3, 4, 5];
    order.sort_by(|&a, &b| {
        exact[graph.item_node(a)]
            .partial_cmp(&exact[graph.item_node(b)])
            .unwrap()
    });
    assert_eq!(order[0], 3, "M4 must rank first");
    emit(
        name,
        "\nHT therefore recommends the niche movie M4 (one rating) to U5, \
         where classic CF would pick the locally popular M1.",
    );
}
