//! Figure 5 — Recall@N of all seven algorithms on both corpora.
//!
//! The paper's accuracy experiment (§5.2.1): hold out 5-star long-tail
//! favourites, rank each among 1000 random unrated items, report Recall@N
//! for N in [1, 50]. Expected shape: the absorbing-walk family on top
//! (AC2 best), DPPR/PureSVD/LDA at well under half of AC2's recall.

use longtail_bench::{emit, start_experiment, Corpus, Roster, RosterConfig};
use longtail_data::{holdout_longtail_favorites, LongTailSplit, SplitConfig};
use longtail_eval::{recall_at_n, RecallConfig, Series};

fn main() {
    let name = "fig5_recall";
    start_experiment(name, "Figure 5 — Recall@N on both corpora");

    for corpus in [Corpus::Movielens, Corpus::Douban] {
        let data = corpus.generate();
        let tail = LongTailSplit::by_rating_share(&data.dataset.item_popularity(), 0.2);
        let split = holdout_longtail_favorites(
            &data.dataset,
            &tail,
            &SplitConfig {
                n_test: 400,
                ..SplitConfig::default()
            },
        );
        let roster = Roster::train(&split.train, &RosterConfig::default());
        emit(
            name,
            &format!(
                "\n## {} ({} test cases, {} training ratings)\n",
                corpus.name(),
                split.test_cases.len(),
                split.train.n_ratings()
            ),
        );

        let config = RecallConfig::default();
        let mut series: Vec<Series> = Vec::new();
        for rec in roster.all() {
            let curve = recall_at_n(rec, &data.dataset, &split, &config);
            series.push(Series {
                label: rec.name().to_string(),
                x: (1..=config.max_n).map(|n| n as f64).collect(),
                y: curve.recall,
            });
        }

        // Print the curve at the positions the paper's figure makes visible.
        let positions = [1usize, 5, 10, 20, 30, 40, 50];
        let mut header = String::from("| N |");
        for s in &series {
            header.push_str(&format!(" {} |", s.label));
        }
        emit(name, &header);
        emit(name, &format!("|---|{}", "---|".repeat(series.len())));
        for &n in &positions {
            let mut row = format!("| {n} |");
            for s in &series {
                row.push_str(&format!(" {:.3} |", s.y[n - 1]));
            }
            emit(name, &row);
        }

        let at_10: Vec<(String, f64)> = series.iter().map(|s| (s.label.clone(), s.y[9])).collect();
        emit(
            name,
            &format!(
                "\nRecall@10 summary: {}",
                at_10
                    .iter()
                    .map(|(l, v)| format!("{l}={v:.3}"))
                    .collect::<Vec<_>>()
                    .join(", ")
            ),
        );
        emit(
            name,
            "Paper shape: AC2 > AC1 > AT > HT among the walk methods, with \
             DPPR, PureSVD and LDA below half of AC2's recall; recall is \
             higher on the sparser (Douban-like) corpus.",
        );
    }
}
