//! Figure 6 — Popularity@N of the recommended items.
//!
//! §5.2.2: over 2000 testing users' top-10 lists, the mean rating-count of
//! the item at each position. The walk methods and DPPR sit near the tail
//! (low popularity); LDA and PureSVD recommend the head, with popularity
//! *decreasing* in N (their top slots are the biggest hits).

use longtail_bench::{emit, start_experiment, Corpus, Roster, RosterConfig};
use longtail_eval::{popularity_at_n, sample_test_users, RecommendationLists, Series};

fn main() {
    let name = "fig6_popularity";
    start_experiment(name, "Figure 6 — Popularity@N of recommendations");

    for corpus in [Corpus::Douban, Corpus::Movielens] {
        let data = corpus.generate();
        let train = &data.dataset;
        let popularity = train.item_popularity();
        let roster = Roster::train(train, &RosterConfig::default());
        let users = sample_test_users(&train.user_activity(), 2000, 3, 0x6161);
        emit(
            name,
            &format!("\n## {} ({} testing users)\n", corpus.name(), users.len()),
        );

        let mut series: Vec<Series> = Vec::new();
        for rec in roster.all() {
            let lists = RecommendationLists::compute(rec, &users, 10, 4);
            let curve = popularity_at_n(&lists, &popularity);
            series.push(Series {
                label: rec.name().to_string(),
                x: (1..=curve.len()).map(|n| n as f64).collect(),
                y: curve,
            });
        }

        let mut header = String::from("| N |");
        for s in &series {
            header.push_str(&format!(" {} |", s.label));
        }
        emit(name, &header);
        emit(name, &format!("|---|{}", "---|".repeat(series.len())));
        for n in 1..=10usize {
            let mut row = format!("| {n} |");
            for s in &series {
                row.push_str(&format!(
                    " {:.1} |",
                    s.y.get(n - 1).copied().unwrap_or(f64::NAN)
                ));
            }
            emit(name, &row);
        }
        emit(
            name,
            "\nPaper shape: the four walk methods and DPPR recommend niche \
             items at every position; PureSVD and LDA recommend hits, with \
             Popularity@N *decreasing* in N for them (the top of their lists \
             is the most popular).",
        );
    }
}
