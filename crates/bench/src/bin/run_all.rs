//! Run every experiment binary in sequence (the full reproduction sweep).
//!
//! Each experiment also writes `experiments/<name>.md`; this driver just
//! invokes the sibling binaries so a single command regenerates everything:
//!
//! ```text
//! cargo run --release -p longtail-bench --bin run_all
//! ```

use std::process::Command;

const EXPERIMENTS: [&str; 11] = [
    "fig1_longtail_shape",
    "fig2_toy_example",
    "table1_topics",
    "fig5_recall",
    "fig6_popularity",
    "table2_diversity",
    "table3_similarity",
    "table4_mu_sweep",
    "table5_efficiency",
    "table6_user_study",
    "ablation_sweeps",
];

fn main() {
    let self_path = std::env::current_exe().expect("own path");
    let bin_dir = self_path.parent().expect("bin dir");
    let mut failures = Vec::new();
    for name in EXPERIMENTS {
        println!("\n=== {name} ===\n");
        let status = Command::new(bin_dir.join(name))
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {name}: {e}"));
        if !status.success() {
            failures.push(name);
        }
    }
    if failures.is_empty() {
        println!(
            "\nAll {} experiments completed; see experiments/*.md",
            EXPERIMENTS.len()
        );
    } else {
        eprintln!("\nFAILED: {failures:?}");
        std::process::exit(1);
    }
}
