//! Table 1 / §4.2.3 — genre-coherent topics from rating counts alone.
//!
//! The paper's Table 1 shows two LDA topics from MovieLens whose top-5
//! movies are genre-pure (Children's/Animation vs Action). On synthetic
//! data the generator's genres play that role: this binary trains the same
//! LDA, prints the top items per topic with their true genres, and scores
//! genre purity quantitatively.

use longtail_bench::{emit, start_experiment, Corpus};
use longtail_topics::{top_items_per_topic, topic_label_purity, LdaConfig, LdaModel};

fn main() {
    let name = "table1_topics";
    start_experiment(name, "Table 1 — topics extracted from rating counts");

    let data = Corpus::Movielens.generate();
    let n_genres = data
        .item_genres
        .iter()
        .copied()
        .max()
        .map_or(1, |g| g as usize + 1);
    let model = LdaModel::train(data.dataset.user_items(), &LdaConfig::with_topics(n_genres));

    emit(
        name,
        &format!(
            "Trained K={} topics on {} ratings ({} users x {} items).\n",
            n_genres,
            data.dataset.n_ratings(),
            data.dataset.n_users(),
            data.dataset.n_items()
        ),
    );

    let tops = top_items_per_topic(&model, 5);
    emit(name, "| topic | top-5 items (item:genre) |");
    emit(name, "|---|---|");
    for (z, top) in tops.iter().enumerate() {
        let cells: Vec<String> = top
            .iter()
            .map(|&(i, p)| format!("{}:g{} ({:.3})", i, data.item_genres[i as usize], p))
            .collect();
        emit(name, &format!("| {} | {} |", z, cells.join(", ")));
    }

    let purity = topic_label_purity(&model, &data.item_genres, 5);
    emit(
        name,
        &format!(
            "\nTop-5 genre purity: {:.2} (1.0 = every topic's top movies share \
             one genre). The paper's Table 1 exhibits exactly this pattern: \
             one topic of Children's/Animation titles, one of Action titles.",
            purity
        ),
    );
    assert!(
        purity > 0.5,
        "topics should be meaningfully genre-aligned, got purity {purity}"
    );
}
