//! Table 2 — aggregate recommendation diversity (Eq. 17).
//!
//! §5.2.3: the fraction of distinct items across all testing users' top-10
//! lists. The walk methods spread recommendations widely; LDA pushes nearly
//! the same short list to everyone (paper: 0.035 on Douban).

use longtail_bench::{emit, paper, start_experiment, Corpus, Roster, RosterConfig};
use longtail_eval::{diversity, sample_test_users, RecommendationLists};

fn main() {
    let name = "table2_diversity";
    start_experiment(name, "Table 2 — recommendation diversity");

    for (corpus, reference) in [
        (Corpus::Douban, &paper::DIVERSITY_DOUBAN),
        (Corpus::Movielens, &paper::DIVERSITY_MOVIELENS),
    ] {
        let data = corpus.generate();
        let train = &data.dataset;
        let roster = Roster::train(train, &RosterConfig::default());
        let users = sample_test_users(&train.user_activity(), 2000, 3, 0xd1e2);
        emit(
            name,
            &format!(
                "\n## {} ({} testing users, k=10)\n",
                corpus.name(),
                users.len()
            ),
        );
        emit(name, "| algorithm | diversity (ours) | diversity (paper) |");
        emit(name, "|---|---|---|");
        for rec in roster.all() {
            let lists = RecommendationLists::compute(rec, &users, 10, 4);
            let d = diversity(&lists, train.n_items());
            let p = reference
                .iter()
                .find(|(l, _)| *l == rec.name())
                .map(|(_, v)| *v)
                .unwrap_or(f64::NAN);
            emit(name, &format!("| {} | {:.3} | {:.3} |", rec.name(), d, p));
        }
        emit(
            name,
            "\nPaper shape: walk methods ≥ DPPR > PureSVD ≫ LDA; diversity is \
             lower on the denser (MovieLens-like) corpus because similar \
             users collide on the same items.",
        );
    }
}
