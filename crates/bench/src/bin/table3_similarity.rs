//! Table 3 — ontology similarity of recommendations (Eq. 18–19).
//!
//! §5.2.4: long-tail reach is worthless if the picks are off-taste. Every
//! recommended item is scored by its best category-path similarity to the
//! user's rated set over the (synthetic) book ontology; the paper's Dangdang
//! tree is replaced by a genre-aligned depth-4 tree (see DESIGN.md).

use longtail_bench::{emit, paper, start_experiment, Corpus, Roster, RosterConfig};
use longtail_data::Ontology;
use longtail_eval::{mean_similarity, sample_test_users, RecommendationLists};

fn main() {
    let name = "table3_similarity";
    start_experiment(name, "Table 3 — ontology similarity of recommendations");

    let data = Corpus::Douban.generate();
    let train = &data.dataset;
    let ontology = Ontology::from_genres(&data.item_genres, 4, 0x0470);
    let roster = Roster::train(train, &RosterConfig::default());
    let users = sample_test_users(&train.user_activity(), 2000, 3, 0x5171);

    emit(
        name,
        &format!(
            "\nDouban-like corpus, {} testing users, k=10, depth-4 ontology\n",
            users.len()
        ),
    );
    emit(
        name,
        "| algorithm | similarity (ours) | similarity (paper) |",
    );
    emit(name, "|---|---|---|");
    for rec in roster.all() {
        let lists = RecommendationLists::compute(rec, &users, 10, 4);
        let s = mean_similarity(&lists, train, &ontology);
        let p = paper::SIMILARITY_DOUBAN
            .iter()
            .find(|(l, _)| *l == rec.name())
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        emit(name, &format!("| {} | {:.3} | {:.3} |", rec.name(), s, p));
    }
    emit(
        name,
        "\nPaper shape: AC2 best overall; AC2 > AC1 > AT > HT within the walk \
         family; PureSVD and LDA score high (they recommend popular items, \
         which are broadly on-taste); DPPR lowest — it reaches the tail but \
         misses the user's taste.",
    );
}
