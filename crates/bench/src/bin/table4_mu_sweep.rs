//! Table 4 — impact of the subgraph budget µ on AC2 (Douban).
//!
//! §5.2.5: quality (popularity / similarity / diversity) saturates for µ in
//! the low thousands while the per-query cost keeps growing with µ — the
//! justification for the subgraph-bounded Algorithm 1. µ values are scaled
//! to this corpus (the paper sweeps 3k..6k against an 89,908-item catalog).

use longtail_bench::{emit, paper, start_experiment, Corpus, RosterConfig};
use longtail_core::{AbsorbingCostConfig, AbsorbingCostRecommender, GraphRecConfig};
use longtail_data::Ontology;
use longtail_eval::{
    diversity, mean_popularity, mean_similarity, sample_test_users, time_recommendations,
    RecommendationLists,
};
use longtail_topics::{LdaConfig, LdaModel};

fn main() {
    let name = "table4_mu_sweep";
    start_experiment(
        name,
        "Table 4 — impact of the subgraph budget µ (AC2, Douban-like)",
    );

    let data = Corpus::Douban.generate();
    let train = &data.dataset;
    let ontology = Ontology::from_genres(&data.item_genres, 4, 0x0470);
    let roster_config = RosterConfig::default();
    let lda = LdaModel::train(
        train.user_items(),
        &LdaConfig::with_topics(roster_config.n_topics),
    );
    let users = sample_test_users(&train.user_activity(), 400, 3, 0x0444);
    let popularity = train.item_popularity();

    // Scale the paper's µ grid (3k..6k of 89,908 items, i.e. 3.3%..6.7% of
    // the catalog) to this catalog, then extend it through the saturation
    // zone so the scaled sweep exhibits the same "quality flattens, cost
    // keeps growing" shape the paper reports.
    let catalog = train.n_items();
    let paper_catalog = 89_908.0;
    let mut fractions: Vec<f64> = paper::MU_SWEEP[..4]
        .iter()
        .map(|&(mu, ..)| mu as f64 / paper_catalog)
        .collect();
    fractions.extend([0.13, 0.2, 0.4]);
    let mut mus: Vec<usize> = fractions
        .iter()
        .map(|f| ((f * catalog as f64).round() as usize).max(10))
        .collect();
    mus.push(catalog); // the paper's final column: the whole graph

    emit(
        name,
        &format!(
            "\nDouban-like corpus ({} items), {} testing users, k=10\n",
            catalog,
            users.len()
        ),
    );
    emit(
        name,
        "| µ | popularity | similarity | diversity | sec/query |",
    );
    emit(name, "|---|---|---|---|---|");
    for &mu in &mus {
        let rec = AbsorbingCostRecommender::topic_entropy(
            train,
            &lda,
            AbsorbingCostConfig {
                graph: GraphRecConfig {
                    max_items: mu,
                    iterations: roster_config.graph.iterations,
                },
                ..AbsorbingCostConfig::default()
            },
        );
        let lists = RecommendationLists::compute(&rec, &users, 10, 4);
        let pop = mean_popularity(&lists, &popularity);
        let sim = mean_similarity(&lists, train, &ontology);
        let div = diversity(&lists, train.n_items());
        let timing = time_recommendations(&rec, &users[..50.min(users.len())], 10);
        emit(
            name,
            &format!(
                "| {} | {:.1} | {:.3} | {:.3} | {:.4} |",
                mu, pop, sim, div, timing.mean_seconds
            ),
        );
    }
    emit(
        name,
        "\nPaper shape (their µ grid 3000..89908): popularity drifts slightly \
         down, similarity up then flat, diversity slightly down, and cost \
         grows steeply once the subgraph approaches the whole catalog — so a \
         modest µ already buys full quality.",
    );
}
