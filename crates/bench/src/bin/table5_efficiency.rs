//! Table 5 — online recommendation time cost.
//!
//! §5.2.6: seconds per top-10 query on Douban (offline training excluded).
//! The claim: subgraph-bounded AC2 is in the same league as the model-based
//! LDA/PureSVD, and the full-graph DPPR is an order of magnitude slower.

use longtail_bench::{emit, paper, start_experiment, Corpus, Roster, RosterConfig};
use longtail_core::{GraphRecConfig, Recommender};
use longtail_eval::{
    sample_test_users, time_batch_recommendations, time_batch_scoring, time_recommendations,
};

fn main() {
    let name = "table5_efficiency";
    start_experiment(name, "Table 5 — online time cost per top-10 query");

    let data = Corpus::Douban.generate();
    let train = &data.dataset;
    // The paper's µ = 6000 is 6.7% of its 89,908-item catalog; keep that
    // proportion here, otherwise the "subgraph" covers the whole graph and
    // the comparison against full-graph DPPR is meaningless.
    let mu = ((train.n_items() as f64 * 6_000.0 / 89_908.0).round() as usize).max(50);
    let roster = Roster::train(
        train,
        &RosterConfig {
            graph: GraphRecConfig {
                max_items: mu,
                iterations: 15,
            },
            ..RosterConfig::default()
        },
    );
    let users = sample_test_users(&train.user_activity(), 100, 3, 0x7e57);

    emit(
        name,
        &format!(
            "\nDouban-like corpus, {} queries each, k=10, µ={} (offline training excluded)\n",
            users.len(),
            mu
        ),
    );
    emit(
        name,
        "| algorithm | sec/query (ours) | sec/query (paper, full-size Douban) |",
    );
    emit(name, "|---|---|---|");
    // The paper's Table 5 covers LDA, PureSVD, AC2, DPPR.
    let subjects: Vec<&dyn Recommender> = vec![&roster.lda, &roster.svd, &roster.ac2, &roster.dppr];
    let mut measured = Vec::new();
    for rec in subjects {
        let t = time_recommendations(rec, &users, 10);
        let p = paper::TIME_COST
            .iter()
            .find(|(l, _)| *l == rec.name())
            .map(|(_, v)| *v)
            .unwrap_or(f64::NAN);
        measured.push((rec.name(), t.mean_seconds));
        emit(
            name,
            &format!("| {} | {:.5} | {:.2} |", rec.name(), t.mean_seconds, p),
        );
    }
    let ac2 = measured.iter().find(|(n, _)| *n == "AC2").unwrap().1;
    let dppr = measured.iter().find(|(n, _)| *n == "DPPR").unwrap().1;
    emit(
        name,
        &format!(
            "\nDPPR/AC2 cost ratio: {:.1}x (paper: {:.1}x). Absolute numbers \
             differ — our corpus is a scaled synthetic and the paper timed a \
             Java implementation on a 32 GB server — but the relative claim \
             (subgraph-bounded AC2 ≪ full-graph DPPR) must hold.",
            dppr / ac2.max(1e-9),
            13.5 / 0.52
        ),
    );

    // Batch throughput: the same queries through Recommender::score_batch,
    // workers sharing nothing but the model (one ScoringContext each).
    let n_threads = std::thread::available_parallelism()
        .map_or(4, |p| p.get())
        .min(4);
    emit(
        name,
        &format!(
            "\nBatch serving ({n_threads} threads): full-vector score_batch vs \
             fused top-10 recommend_batch:\n"
        ),
    );
    // Both the sequential and batch columns ride the fused top-k path; the
    // last column is therefore batch-vs-sequential scaling (invisible on a
    // 1-core box). Fused-vs-score-then-sort itself is measured by
    // bench_walk_scoring and recorded in BENCH_walk_scoring.json.
    emit(
        name,
        "| algorithm | sec/query sequential | sec/query score_batch | sec/query recommend_batch | batch speedup |",
    );
    emit(name, "|---|---|---|---|---|");
    let subjects: Vec<&dyn Recommender> = vec![&roster.lda, &roster.svd, &roster.ac2, &roster.dppr];
    for rec in subjects {
        let seq = time_recommendations(rec, &users, 10);
        let batch = time_batch_scoring(rec, &users, n_threads);
        let fused = time_batch_recommendations(rec, &users, 10, n_threads);
        emit(
            name,
            &format!(
                "| {} | {:.5} | {:.5} | {:.5} | {:.2}x |",
                rec.name(),
                seq.mean_seconds,
                batch.mean_seconds,
                fused.mean_seconds,
                seq.mean_seconds / fused.mean_seconds.max(1e-12)
            ),
        );
    }
}
