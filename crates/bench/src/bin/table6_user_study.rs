//! Table 6 — the (simulated) user study.
//!
//! §5.2.7 hires 50 movie-lovers; here 50 simulated judges with ground-truth
//! tastes from the generator rate each algorithm's top-10 on Preference,
//! Novelty, Serendipity and overall Score (substitution documented in
//! DESIGN.md). The paper's pattern: AC2 wins Novelty/Serendipity/Score;
//! PureSVD edges out raw Preference but its picks are already known.

use longtail_bench::{emit, paper, start_experiment, Corpus, Roster, RosterConfig};
use longtail_core::Recommender;
use longtail_eval::{simulate_study, StudyConfig};

fn main() {
    let name = "table6_user_study";
    start_experiment(
        name,
        "Table 6 — simulated user study (50 judges, k=10, Douban-like)",
    );

    let data = Corpus::Douban.generate();
    let roster = Roster::train(&data.dataset, &RosterConfig::default());
    let config = StudyConfig::default();

    emit(
        name,
        "\n| algorithm | preference | novelty | serendipity | score | (paper: pref / nov / ser / score) |",
    );
    emit(name, "|---|---|---|---|---|---|");
    let subjects: Vec<&dyn Recommender> = vec![&roster.ac2, &roster.dppr, &roster.svd, &roster.lda];
    for rec in subjects {
        let r = simulate_study(rec, &data, &config);
        let p = paper::USER_STUDY
            .iter()
            .find(|(l, ..)| *l == rec.name())
            .copied()
            .unwrap_or(("", f64::NAN, f64::NAN, f64::NAN, f64::NAN));
        emit(
            name,
            &format!(
                "| {} | {:.2} | {:.2} | {:.2} | {:.2} | {:.2} / {:.2} / {:.2} / {:.2} |",
                rec.name(),
                r.preference,
                r.novelty,
                r.serendipity,
                r.score,
                p.1,
                p.2,
                p.3,
                p.4
            ),
        );
    }
    emit(
        name,
        "\nPaper shape: AC2 clearly first on novelty and serendipity and best \
         overall; DPPR novel but off-taste (lowest preference); PureSVD/LDA \
         on-taste but familiar (novelty ≈ 0.65, serendipity ≈ 2.1).",
    );
}
