//! Shared harness for the experiment binaries and Criterion benches.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper
//! (see `DESIGN.md` for the index). This library holds what they share:
//! dataset presets, the algorithm roster, and paper reference values for
//! side-by-side printing.

#![warn(missing_docs)]

pub mod baseline;

use longtail_core::{
    AbsorbingCostConfig, AbsorbingCostRecommender, AbsorbingTimeRecommender, GraphRecConfig,
    HittingTimeRecommender, LdaRecommender, PageRankRecommender, PureSvdRecommender, Recommender,
};
use longtail_data::{Dataset, SyntheticConfig, SyntheticData};
use longtail_topics::{LdaConfig, LdaModel};

/// Which of the paper's two corpora a run emulates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corpus {
    /// MovieLens-1M-like (denser, moderate tail).
    Movielens,
    /// Douban-books-like (sparser, heavy tail).
    Douban,
}

impl Corpus {
    /// Display name used in experiment output.
    pub fn name(self) -> &'static str {
        match self {
            Corpus::Movielens => "MovieLens-like",
            Corpus::Douban => "Douban-like",
        }
    }

    /// The generator preset, scaled by `LONGTAIL_SCALE` if set (default 1.0;
    /// e.g. `LONGTAIL_SCALE=0.3` for a quick smoke run).
    pub fn config(self) -> SyntheticConfig {
        let base = match self {
            Corpus::Movielens => SyntheticConfig::movielens_like(),
            Corpus::Douban => SyntheticConfig::douban_like(),
        };
        base.scaled(scale_factor())
    }

    /// Generate the corpus.
    pub fn generate(self) -> SyntheticData {
        SyntheticData::generate(&self.config())
    }
}

/// The experiment-wide scale factor from `LONGTAIL_SCALE` (default 1.0).
pub fn scale_factor() -> f64 {
    std::env::var("LONGTAIL_SCALE")
        .ok()
        .and_then(|v| v.parse::<f64>().ok())
        .filter(|&f| f > 0.0)
        .unwrap_or(1.0)
}

/// The full algorithm roster of §5.1.1, trained on one training set.
///
/// The LDA model is trained once and shared between the AC2 recommender and
/// the LDA baseline, as in the paper's setup.
pub struct Roster {
    /// AC2 — topic-entropy absorbing cost.
    pub ac2: AbsorbingCostRecommender,
    /// AC1 — item-entropy absorbing cost.
    pub ac1: AbsorbingCostRecommender,
    /// AT — absorbing time.
    pub at: AbsorbingTimeRecommender,
    /// HT — hitting time.
    pub ht: HittingTimeRecommender,
    /// DPPR — popularity-discounted personalized PageRank.
    pub dppr: PageRankRecommender,
    /// PureSVD at the roster's factor rank.
    pub svd: PureSvdRecommender,
    /// LDA predictive recommender.
    pub lda: LdaRecommender,
}

/// Hyper-parameters of the roster.
#[derive(Debug, Clone, Copy)]
pub struct RosterConfig {
    /// Topic count for LDA / AC2 (the paper tunes this; genre count is the
    /// natural choice on synthetic data).
    pub n_topics: usize,
    /// Factor rank for PureSVD.
    pub svd_rank: usize,
    /// Graph-walk parameters (µ, τ).
    pub graph: GraphRecConfig,
}

impl Default for RosterConfig {
    fn default() -> Self {
        Self {
            n_topics: 10,
            svd_rank: 20,
            graph: GraphRecConfig::default(),
        }
    }
}

impl Roster {
    /// Train every algorithm on `train`.
    pub fn train(train: &Dataset, config: &RosterConfig) -> Self {
        let lda_model =
            LdaModel::train(train.user_items(), &LdaConfig::with_topics(config.n_topics));
        let ac_config = AbsorbingCostConfig {
            graph: config.graph,
            ..AbsorbingCostConfig::default()
        };
        Self {
            ac2: AbsorbingCostRecommender::topic_entropy(train, &lda_model, ac_config),
            ac1: AbsorbingCostRecommender::item_entropy(train, ac_config),
            at: AbsorbingTimeRecommender::new(train, config.graph),
            ht: HittingTimeRecommender::new(train, config.graph),
            dppr: PageRankRecommender::discounted(train),
            svd: PureSvdRecommender::train(train, config.svd_rank),
            lda: LdaRecommender::from_model(train, lda_model),
        }
    }

    /// All algorithms in the paper's reporting order: AC2, AC1, AT, HT,
    /// DPPR, PureSVD, LDA.
    pub fn all(&self) -> Vec<&dyn Recommender> {
        vec![
            &self.ac2, &self.ac1, &self.at, &self.ht, &self.dppr, &self.svd, &self.lda,
        ]
    }
}

/// Paper reference values for side-by-side printing in experiment output.
pub mod paper {
    /// Table 2, Douban row: (algorithm, diversity).
    pub const DIVERSITY_DOUBAN: [(&str, f64); 7] = [
        ("AC2", 0.58),
        ("AC1", 0.625),
        ("AT", 0.58),
        ("HT", 0.55),
        ("DPPR", 0.45),
        ("PureSVD", 0.325),
        ("LDA", 0.035),
    ];

    /// Table 2, Movielens row.
    pub const DIVERSITY_MOVIELENS: [(&str, f64); 7] = [
        ("AC2", 0.42),
        ("AC1", 0.425),
        ("AT", 0.42),
        ("HT", 0.41),
        ("DPPR", 0.35),
        ("PureSVD", 0.245),
        ("LDA", 0.025),
    ];

    /// Table 3 (Douban similarity).
    pub const SIMILARITY_DOUBAN: [(&str, f64); 7] = [
        ("AC2", 0.48),
        ("AC1", 0.42),
        ("AT", 0.39),
        ("HT", 0.37),
        ("DPPR", 0.36),
        ("PureSVD", 0.45),
        ("LDA", 0.43),
    ];

    /// Table 6 (user study): (algorithm, preference, novelty, serendipity,
    /// score).
    pub const USER_STUDY: [(&str, f64, f64, f64, f64); 4] = [
        ("AC2", 4.32, 0.98, 4.78, 4.41),
        ("DPPR", 3.12, 0.89, 3.95, 3.65),
        ("PureSVD", 4.34, 0.64, 2.12, 4.25),
        ("LDA", 4.12, 0.66, 2.15, 4.22),
    ];

    /// Table 5 (online time cost in seconds on the authors' server).
    pub const TIME_COST: [(&str, f64); 4] = [
        ("LDA", 0.47),
        ("PureSVD", 0.45),
        ("AC2", 0.52),
        ("DPPR", 13.5),
    ];

    /// Table 4 (impact of µ on Douban, AC2): µ, popularity, similarity,
    /// diversity, seconds.
    pub const MU_SWEEP: [(usize, f64, f64, f64, f64); 5] = [
        (3000, 100.6, 0.44, 0.585, 0.17),
        (4000, 100.1, 0.46, 0.585, 0.3),
        (5000, 95.7, 0.47, 0.58, 0.42),
        (6000, 93.2, 0.48, 0.58, 0.52),
        (89908, 94.8, 0.48, 0.58, 12.7),
    ];

    /// §5.1.2 tail facts: fraction of items carrying 20 % of ratings.
    pub const TAIL_FRACTION_MOVIELENS: f64 = 0.66;
    /// Same for the Douban crawl.
    pub const TAIL_FRACTION_DOUBAN: f64 = 0.73;
}

/// Where experiment binaries drop their Markdown output
/// (`experiments/<name>.md` under the workspace root, created on demand).
pub fn output_path(name: &str) -> std::path::PathBuf {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .join("experiments");
    std::fs::create_dir_all(&dir).expect("create experiments dir");
    dir.join(format!("{name}.md"))
}

/// Print to stdout and append to the experiment's Markdown file.
pub fn emit(name: &str, content: &str) {
    println!("{content}");
    use std::io::Write;
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(output_path(name))
        .expect("open experiment output");
    writeln!(f, "{content}").expect("write experiment output");
}

/// Truncate the experiment's Markdown file (call once at binary start).
pub fn start_experiment(name: &str, title: &str) {
    std::fs::write(output_path(name), format!("# {title}\n\n")).expect("reset experiment output");
    println!("# {title}\n");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_configs_differ() {
        let ml = Corpus::Movielens.config();
        let db = Corpus::Douban.config();
        assert!(db.n_items > ml.n_items);
        assert!(db.min_activity < ml.min_activity);
    }

    #[test]
    fn roster_trains_on_tiny_data() {
        let data = SyntheticData::generate(&SyntheticConfig {
            n_users: 60,
            n_items: 50,
            ..SyntheticConfig::movielens_like()
        });
        let roster = Roster::train(
            &data.dataset,
            &RosterConfig {
                n_topics: 4,
                svd_rank: 8,
                ..RosterConfig::default()
            },
        );
        let names: Vec<&str> = roster.all().iter().map(|r| r.name()).collect();
        assert_eq!(
            names,
            vec!["AC2", "AC1", "AT", "HT", "DPPR", "PureSVD", "LDA"]
        );
        for rec in roster.all() {
            let top = rec.recommend(0, 3);
            assert!(top.len() <= 3);
        }
    }
}
