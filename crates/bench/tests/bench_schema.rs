//! Schema guard for `BENCH_walk_scoring.json`.
//!
//! The committed benchmark summary is the repo's perf trajectory: PRs diff
//! it to prove the hot path didn't regress. That only works if the file's
//! shape is stable, so this test fails on any schema drift — a renamed
//! series, a dropped section, a missing measurement — independent of the
//! (machine-specific) numbers. Regenerate the file with
//! `cargo run --release -p longtail-bench --bin bench_walk_scoring` after
//! intentionally changing the emitter, keeping this test in sync.

use std::path::PathBuf;

fn bench_json() -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_walk_scoring.json");
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("BENCH_walk_scoring.json must be committed at repo root: {e}"))
}

#[test]
fn walk_scoring_summary_keeps_its_schema() {
    let json = bench_json();

    // Top-level sections.
    for key in [
        "\"bench\": \"walk_scoring\"",
        "\"batch_users\"",
        "\"repeats_best_of\"",
        "\"dataset\"",
        "\"walk\"",
        "\"threads\"",
        "\"results\"",
        "\"recommend_topk\"",
        "\"serving_engine\"",
        "\"async_serving\"",
        "\"model_lifecycle\"",
        "\"streaming_ingest\"",
        "\"qos_scheduling\"",
        "\"fault_tolerance\"",
        "\"early_termination\"",
        "\"longtail_quality\"",
        "\"single_query_ht\"",
    ] {
        assert!(json.contains(key), "schema drift: missing {key}");
    }

    // Scoring series: both algorithms, all four measurements, with the
    // speedup field keyed to the pre-refactor baseline.
    for algo in ["\"HT\": [", "\"AC1\": ["] {
        assert_eq!(
            json.matches(algo).count(),
            2,
            "schema drift: {algo} must appear in both results and recommend_topk"
        );
    }

    // Serving-engine throughput: persistent worker pool vs per-call scoped
    // threads, for both algorithms, with the direct-path equivalence
    // verdict.
    for key in ["\"workers\"", "\"rounds\"", "\"requests\""] {
        assert!(json.contains(key), "schema drift: serving_engine.{key}");
    }
    for key in [
        "\"engine_pool_seconds\"",
        "\"scoped_threads_seconds\"",
        "\"engine_requests_per_sec\"",
        "\"scoped_requests_per_sec\"",
        "\"speedup_vs_scoped_threads\"",
        "\"lists_match_direct\"",
    ] {
        assert_eq!(
            json.matches(key).count(),
            2,
            "schema drift: serving-engine field {key} missing for an algorithm"
        );
    }
    // The committed summary must never record an engine ranking divergence.
    assert!(
        !json.contains("\"lists_match_direct\": false"),
        "engine serving diverged from the direct fused path"
    );

    // Async front-end: open-loop submission throughput vs the closed-loop
    // inline baseline, plus the deterministic deadline-shedding pass, for
    // both algorithms.
    assert!(
        json.contains("\"queue_capacity\""),
        "schema drift: async_serving.queue_capacity"
    );
    for key in [
        "\"open_loop_seconds\"",
        "\"closed_loop_seconds\"",
        "\"open_loop_requests_per_sec\"",
        "\"closed_loop_requests_per_sec\"",
        "\"speedup_vs_closed_loop\"",
        "\"deadline\": {",
        "\"expired_requests\"",
        "\"expired_at_dequeue\"",
        "\"expired_in_dp\"",
        "\"counts_consistent\"",
    ] {
        assert_eq!(
            json.matches(key).count(),
            2,
            "schema drift: async-serving field {key} missing for an algorithm"
        );
    }
    // The blocking-path equivalence verdict appears in the async section
    // and the qos_scheduling section, for both algorithms.
    assert_eq!(
        json.matches("\"rankings_match_blocking\"").count(),
        4,
        "schema drift: rankings_match_blocking missing for a section/algorithm"
    );
    // Shed/deadline accounting must balance, and no serving path may ever
    // record a ranking divergence from the blocking path.
    assert!(
        !json.contains("\"counts_consistent\": false"),
        "async serving shed/deadline counters do not reconcile"
    );
    assert!(
        !json.contains("\"rankings_match_blocking\": false"),
        "a serving path diverged from the blocking batch path"
    );

    // Model lifecycle: snapshot save/load wall time, hot-swap publish
    // latency, and the served-during-swap gates, for both algorithms.
    for key in [
        "\"snapshot_bytes\"",
        "\"save_seconds\"",
        "\"load_seconds\"",
        "\"deploy_publish_seconds\"",
        "\"served_during_swap_correct\"",
        "\"reloaded_rankings_identical\"",
    ] {
        assert_eq!(
            json.matches(key).count(),
            2,
            "schema drift: model-lifecycle field {key} missing for an algorithm"
        );
    }
    // Both lifecycle and streaming-ingest waves account for lost requests,
    // per algorithm — and the committed summary must never record one, nor
    // a hot swap that tore a request, nor a snapshot reload that perturbed
    // a ranking.
    assert_eq!(
        json.matches("\"requests_lost\"").count(),
        4,
        "schema drift: requests_lost missing for a section/algorithm"
    );
    assert_eq!(
        json.matches("\"requests_lost\": 0").count(),
        4,
        "a hot swap or compaction lost an in-flight request"
    );
    assert!(
        !json.contains("\"served_during_swap_correct\": false"),
        "a request served on an ambiguous version across a hot swap"
    );
    assert!(
        !json.contains("\"reloaded_rankings_identical\": false"),
        "a snapshot round trip changed a served ranking"
    );

    // Streaming ingest: append throughput into the delta store, overlay
    // query cost vs the frozen base, the compaction redeploy cycle, and
    // the overlay ≡ rebuilt-on-union rank gate, for both algorithms.
    assert!(
        json.contains("\"publish_every\""),
        "schema drift: streaming_ingest.publish_every"
    );
    for key in [
        "\"appends\"",
        "\"append_seconds\"",
        "\"appends_per_sec\"",
        "\"epochs_published\"",
        "\"base_query_seconds\"",
        "\"overlay_query_seconds\"",
        "\"overlay_overhead\"",
        "\"compaction_total_seconds\"",
        "\"compaction_publish_seconds\"",
        "\"folded\"",
        "\"remaining\"",
        "\"overlay_matches_rebuild\"",
    ] {
        assert_eq!(
            json.matches(key).count(),
            2,
            "schema drift: streaming-ingest field {key} missing for an algorithm"
        );
    }
    // The committed summary must never record an overlay ranking that
    // diverges from a model rebuilt on the union of base + stream.
    assert!(
        !json.contains("\"overlay_matches_rebuild\": false"),
        "overlay serving diverged from the rebuilt-on-union model"
    );

    // QoS scheduling: per-class deadline-hit rates under the seeded
    // overload mix, FIFO vs the EDF/priority scheduler, for both
    // algorithms, plus the mix parameters the pass ran under.
    for key in ["\"interactive_slack\"", "\"batch_slack\""] {
        assert!(json.contains(key), "schema drift: qos_scheduling.{key}");
    }
    for key in [
        "\"service_estimate_seconds\"",
        "\"fifo_requests_per_sec\"",
        "\"qos_requests_per_sec\"",
        "\"fifo_interactive_hit_rate\"",
        "\"qos_interactive_hit_rate\"",
        "\"fifo_batch_hit_rate\"",
        "\"qos_batch_hit_rate\"",
        "\"interactive_p50_seconds\"",
        "\"interactive_p99_seconds\"",
        "\"shed_unmeetable\"",
        "\"ledger_consistent\"",
        "\"interactive_hit_rate_improves\"",
    ] {
        assert_eq!(
            json.matches(key).count(),
            2,
            "schema drift: qos-scheduling field {key} missing for an algorithm"
        );
    }
    // The committed summary must never record an out-of-balance per-class
    // ledger (submitted = served + shed + expired, nothing failed) or a
    // scheduler that fails to beat FIFO on Interactive deadline hits.
    assert!(
        !json.contains("\"ledger_consistent\": false"),
        "a per-class QoS ledger does not reconcile"
    );
    assert!(
        !json.contains("\"interactive_hit_rate_improves\": false"),
        "the QoS scheduler did not improve the Interactive deadline-hit rate over FIFO"
    );

    // Fault tolerance: availability under the seeded chaos mix with and
    // without protection (breakers + retry + POP fallback), for both
    // algorithms, plus the fault-plan parameters the pass ran under.
    for key in ["\"fault_plan\"", "\"p_panic\"", "\"p_nan\""] {
        assert!(json.contains(key), "schema drift: fault_tolerance.{key}");
    }
    for key in [
        "\"injected_faults_protected\"",
        "\"injected_faults_unprotected\"",
        "\"answered_with_protection\"",
        "\"degraded\"",
        "\"retries\"",
        "\"answered_without_protection\"",
        "\"availability_with_protection\"",
        "\"availability_without_protection\"",
        "\"non_degraded_rankings_match\"",
        "\"meets_availability_target\"",
    ] {
        assert_eq!(
            json.matches(key).count(),
            2,
            "schema drift: fault-tolerance field {key} missing for an algorithm"
        );
    }
    // The committed summary must never record a protected engine that
    // perturbed a healthy ranking or missed the ≥99% availability bar.
    assert!(
        !json.contains("\"non_degraded_rankings_match\": false"),
        "a non-degraded response diverged from the fault-free engine"
    );
    assert!(
        !json.contains("\"meets_availability_target\": false"),
        "protected engine availability fell below the 99% target"
    );

    for series in [
        "sequential_prerefactor",
        "sequential_context",
        "batch_t1",
        "batch_t4",
    ] {
        assert_eq!(
            json.matches(&format!("\"name\": \"{series}\"")).count(),
            2,
            "schema drift: scoring series {series} missing for an algorithm"
        );
    }
    assert!(json.contains("\"speedup_vs_prerefactor\""));

    // Fused top-k series: score-then-sort baseline plus the fused and batch
    // forms, with speedups keyed to score-then-sort.
    assert!(json.contains("\"k\": 10"), "schema drift: recommend_topk.k");
    for series in [
        "score_then_sort",
        "fused_topk",
        "recommend_batch_t1",
        "recommend_batch_t4",
    ] {
        assert_eq!(
            json.matches(&format!("\"name\": \"{series}\"")).count(),
            2,
            "schema drift: recommend series {series} missing for an algorithm"
        );
    }
    assert!(json.contains("\"speedup_vs_score_then_sort\""));

    // Early-termination section: one entry per walk recommender (HT is the
    // honest no-win data point; AT/AC1 carry the measured speedup), each
    // reporting timing under both stopping policies, the DP iteration
    // counters, and the rank-identity verdict.
    assert!(
        json.contains("\"epsilon\""),
        "schema drift: early_termination.epsilon"
    );
    assert!(
        json.contains("\"dp_budget\""),
        "schema drift: early_termination.dp_budget"
    );
    for algo in ["\"HT\": {", "\"AT\": {", "\"AC1\": {"] {
        assert!(
            json.contains(algo),
            "schema drift: early_termination entry {algo} missing"
        );
    }
    for key in [
        "\"fixed_seconds_per_batch\"",
        "\"adaptive_seconds_per_batch\"",
        "\"speedup_vs_fixed_tau\"",
        "\"dp_iterations_budget\"",
        "\"dp_iterations_run\"",
        "\"iterations_saved_fraction\"",
        "\"queries\"",
        "\"converged_queries\"",
        "\"rank_frozen_queries\"",
        "\"top10_lists_identical\"",
    ] {
        assert_eq!(
            json.matches(key).count(),
            3,
            "schema drift: early-termination field {key} missing for an algorithm"
        );
    }
    // The committed summary must never record a ranking divergence.
    assert!(
        !json.contains("\"top10_lists_identical\": false"),
        "early termination diverged from the fixed-τ ranking"
    );

    // Long-tail quality: the re-rank policy the pass ran under, plus the
    // off-vs-on quality arms — coverage, Gini exposure concentration,
    // novelty, and list recall split by head/tail ground truth — for both
    // algorithms.
    for key in [
        "\"mmr_lambda\"",
        "\"popularity_penalty\"",
        "\"tail_quota\"",
        "\"tail_cutoff\"",
        "\"max_recall_drop\"",
    ] {
        assert!(json.contains(key), "schema drift: longtail_quality.{key}");
    }
    for key in ["\"rerank_off\"", "\"rerank_on\"", "\"evaluated_users\""] {
        assert_eq!(
            json.matches(key).count(),
            2,
            "schema drift: longtail-quality field {key} missing for an algorithm"
        );
    }
    // Each quality arm carries the full metric set: 2 algorithms × off/on.
    for key in [
        "\"recall_at_k\"",
        "\"tail_recall_at_k\"",
        "\"head_recall_at_k\"",
        "\"coverage\"",
        "\"gini\"",
        "\"novelty_bits\"",
    ] {
        assert_eq!(
            json.matches(key).count(),
            4,
            "schema drift: quality-arm field {key} missing for an arm"
        );
    }
    for key in ["\"disabled_identical\"", "\"recall_drop_bounded\""] {
        assert_eq!(
            json.matches(key).count(),
            2,
            "schema drift: longtail-quality gate {key} missing for an algorithm"
        );
    }
    // The committed summary must never record a disabled policy that
    // perturbed a ranking, nor an enabled policy that pays more than the
    // bounded recall budget for its diversity gains.
    assert!(
        !json.contains("\"disabled_identical\": false"),
        "a disabled re-rank policy changed a served ranking"
    );
    assert!(
        !json.contains("\"recall_drop_bounded\": false"),
        "the re-rank policy dropped recall beyond the allowed budget"
    );

    // Single-query latency fields.
    for key in [
        "\"prerefactor_seconds\"",
        "\"context_seconds\"",
        "\"speedup\"",
    ] {
        assert!(json.contains(key), "schema drift: single_query_ht.{key}");
    }

    // Structural sanity: brace balance, so a truncated write is caught too.
    let opens = json.matches('{').count();
    let closes = json.matches('}').count();
    assert_eq!(opens, closes, "unbalanced JSON braces");
}
