//! Shared configuration for the graph-based recommenders.

/// Parameters of the subgraph-bounded random-walk recommenders (HT, AT, AC).
#[derive(Debug, Clone, Copy)]
pub struct GraphRecConfig {
    /// BFS item budget µ (Algorithm 1, step 2). Table 4 shows quality is
    /// stable for µ in the thousands while cost grows, with 6k the paper's
    /// default.
    pub max_items: usize,
    /// Truncation depth τ of the dynamic program (Algorithm 1, step 4). The
    /// paper uses 15, which already reproduces the exact ranking.
    pub iterations: usize,
}

impl Default for GraphRecConfig {
    fn default() -> Self {
        Self {
            max_items: 6000,
            iterations: 15,
        }
    }
}

/// How the truncated DP behind the fused serving path decides when to stop
/// iterating (carried per worker on [`crate::ScoringContext::stopping`]).
///
/// The τ in [`GraphRecConfig::iterations`] is always the *budget*; the
/// policy governs whether a serving query may spend less of it. Reference
/// scoring ([`crate::Recommender::score_into`], the Recall@N protocol) is
/// unaffected — it always runs the full fixed τ so scored values stay
/// bit-for-bit reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DpStopping {
    /// Always run the full τ iterations — serving scores are bit-identical
    /// to `top_k` over [`crate::Recommender::score_into`].
    Fixed,
    /// Stop early when further iterations provably cannot matter: at an
    /// exact value fixed point (`δ_t = 0`, bit-identical to the full run),
    /// or when the rank-stability probe certifies the query's top-k list
    /// frozen (no candidate can cross its remaining-change bound) — the
    /// probe also arbitrates the `δ_t ≤ epsilon · scale` value-convergence
    /// rule, since converged *values* alone don't pin near-tied *orders*.
    /// Rankings are identical to [`DpStopping::Fixed`]; the reported
    /// scores sit within the remaining-change bound above the fixed-τ
    /// scores.
    Adaptive {
        /// Relative convergence threshold for the `δ_t ≤ ε · scale` rule
        /// (`scale` = largest value so far, floored at 1). Negative
        /// restricts the convergence rule to exact fixed points.
        epsilon: f64,
    },
}

impl DpStopping {
    /// Convergence threshold of the default adaptive policy: tight enough
    /// that a convergence stop perturbs values by well under any score gap
    /// a real ranking hinges on, loose enough to fire once the DP reaches
    /// its floating-point plateau.
    pub const DEFAULT_EPSILON: f64 = 1e-9;

    /// The default adaptive policy.
    pub fn adaptive() -> Self {
        Self::Adaptive {
            epsilon: Self::DEFAULT_EPSILON,
        }
    }
}

impl Default for DpStopping {
    /// Early termination is on by default: serving stops iterating as soon
    /// as the top-k list is provably frozen.
    fn default() -> Self {
        Self::adaptive()
    }
}

/// Parameters of the Absorbing Cost recommenders (AC1/AC2).
#[derive(Debug, Clone, Copy)]
pub struct AbsorbingCostConfig {
    /// Subgraph / truncation parameters shared with AT.
    pub graph: GraphRecConfig,
    /// The constant `C` of Eq. 9 — the mean cost of a user→item hop. The
    /// paper treats it as a tuning parameter; 1.0 makes user→item hops cost
    /// exactly one step, so only the item→user direction is entropy-biased.
    pub item_entry_cost: f64,
}

impl Default for AbsorbingCostConfig {
    fn default() -> Self {
        Self {
            graph: GraphRecConfig::default(),
            item_entry_cost: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let g = GraphRecConfig::default();
        assert_eq!(g.max_items, 6000);
        assert_eq!(g.iterations, 15);
        let c = AbsorbingCostConfig::default();
        assert_eq!(c.item_entry_cost, 1.0);
    }

    #[test]
    fn stopping_defaults_to_adaptive() {
        assert_eq!(
            DpStopping::default(),
            DpStopping::Adaptive {
                epsilon: DpStopping::DEFAULT_EPSILON
            }
        );
        assert_eq!(DpStopping::default(), DpStopping::adaptive());
    }
}
