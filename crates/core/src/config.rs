//! Shared configuration for the graph-based recommenders.

/// Parameters of the subgraph-bounded random-walk recommenders (HT, AT, AC).
#[derive(Debug, Clone, Copy)]
pub struct GraphRecConfig {
    /// BFS item budget µ (Algorithm 1, step 2). Table 4 shows quality is
    /// stable for µ in the thousands while cost grows, with 6k the paper's
    /// default.
    pub max_items: usize,
    /// Truncation depth τ of the dynamic program (Algorithm 1, step 4). The
    /// paper uses 15, which already reproduces the exact ranking.
    pub iterations: usize,
}

impl Default for GraphRecConfig {
    fn default() -> Self {
        Self {
            max_items: 6000,
            iterations: 15,
        }
    }
}

/// How the truncated DP behind the fused serving path decides when to stop
/// iterating (a per-request parameter, carried on
/// [`RecommendOptions::stopping`]).
///
/// The τ in [`GraphRecConfig::iterations`] is always the *budget*; the
/// policy governs whether a serving query may spend less of it. Reference
/// scoring ([`crate::Recommender::score_into`], the Recall@N protocol) is
/// unaffected — it always runs the full fixed τ so scored values stay
/// bit-for-bit reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DpStopping {
    /// Always run the full τ iterations — serving scores are bit-identical
    /// to `top_k` over [`crate::Recommender::score_into`].
    Fixed,
    /// Stop early when further iterations provably cannot matter: at an
    /// exact value fixed point (`δ_t = 0`, bit-identical to the full run),
    /// or when the rank-stability probe certifies the query's top-k list
    /// frozen (no candidate can cross its remaining-change bound) — the
    /// probe also arbitrates the `δ_t ≤ epsilon · scale` value-convergence
    /// rule, since converged *values* alone don't pin near-tied *orders*.
    /// Rankings are identical to [`DpStopping::Fixed`]; the reported
    /// scores sit within the remaining-change bound above the fixed-τ
    /// scores.
    Adaptive {
        /// Relative convergence threshold for the `δ_t ≤ ε · scale` rule
        /// (`scale` = largest value so far, floored at 1). Negative
        /// restricts the convergence rule to exact fixed points.
        epsilon: f64,
    },
}

impl DpStopping {
    /// Convergence threshold of the default adaptive policy: tight enough
    /// that a convergence stop perturbs values by well under any score gap
    /// a real ranking hinges on, loose enough to fire once the DP reaches
    /// its floating-point plateau.
    pub const DEFAULT_EPSILON: f64 = 1e-9;

    /// The default adaptive policy.
    pub fn adaptive() -> Self {
        Self::Adaptive {
            epsilon: Self::DEFAULT_EPSILON,
        }
    }
}

impl Default for DpStopping {
    /// Early termination is on by default: serving stops iterating as soon
    /// as the top-k list is provably frozen.
    fn default() -> Self {
        Self::adaptive()
    }
}

/// Per-request serving parameters of [`crate::Recommender::recommend_into`]
/// and [`crate::Recommender::recommend_batch`].
///
/// The typed request surface of the serving API: everything that varies per
/// query but is not the query itself (user, k) lives here, so a context can
/// be shared by requests with different policies. `Default` is the plain
/// serving configuration — adaptive stopping, no extra exclusions — and is
/// what the convenience methods ([`crate::Recommender::recommend`],
/// [`crate::Recommender::recommend_with`]) use.
///
/// ```
/// use longtail_core::{DpStopping, RecommendOptions};
///
/// // Exact fixed-τ scores, with two request-scoped exclusions on top of
/// // the user's training items.
/// let hidden = [3u32, 17];
/// let opts = RecommendOptions {
///     stopping: DpStopping::Fixed,
///     exclude: &hidden,
///     ..RecommendOptions::default()
/// };
/// assert!(opts.is_excluded(17) && !opts.is_excluded(4));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct RecommendOptions<'a> {
    /// Stopping policy for the walk family's serving DP (ignored by the
    /// non-walk families). Defaults to [`DpStopping::adaptive`].
    pub stopping: DpStopping,
    /// Request-scoped exclusions: item ids removed from the list *in
    /// addition to* the user's training items, e.g. items already on the
    /// page or filtered by business rules. Must be sorted ascending and
    /// deduplicated (the serving engine normalizes request exclusion sets
    /// before building options; direct callers sort their own slice).
    pub exclude: &'a [u32],
    /// Cooperative deadline for the walk family's serving DP: once this
    /// instant passes, the truncated walk aborts at its next measured
    /// iteration (the stride-scheduled δ pass, so the hot loop pays
    /// nothing) and the query's [`crate::DpTelemetry`] records a
    /// `deadline_expired` run. A cancelled query serves an **empty list**
    /// (never a ranking over partially-iterated values); callers that set
    /// a deadline distinguish "cancelled" from "nothing to recommend" via
    /// the telemetry (the `longtail-serve` engine does, answering
    /// `DeadlineExceeded` instead). Non-walk families ignore the
    /// deadline: their queries have no iteration loop to interrupt.
    /// `None` (the default) never cancels.
    pub deadline: Option<std::time::Instant>,
    /// Optional recency-decay edge weighting for the walk families: when
    /// set, every edge weight is scaled by
    /// [`RecencyDecay::factor`](longtail_graph::RecencyDecay::factor) of its
    /// timestamp before the walk kernel is built, de-emphasizing stale
    /// ratings per query without touching the stored graph. Graphs built
    /// without timestamps read every edge as t = 0 (maximally stale), which
    /// scales all weights uniformly — the renormalized kernel, and hence
    /// the ranking, is then unchanged. Ignored by the non-walk families.
    /// `None` (the default) serves undecayed weights.
    pub recency: Option<longtail_graph::RecencyDecay>,
}

impl<'a> RecommendOptions<'a> {
    /// The default options: adaptive stopping, no extra exclusions.
    pub fn new() -> Self {
        Self::default()
    }

    /// Options with an explicit stopping policy and no extra exclusions.
    pub fn with_stopping(stopping: DpStopping) -> Self {
        Self {
            stopping,
            ..Self::default()
        }
    }

    /// These options with a cooperative walk-DP deadline (see
    /// [`RecommendOptions::deadline`] for the cancelled-query contract).
    pub fn deadline_at(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// These options with recency-decay edge weighting (see
    /// [`RecommendOptions::recency`]).
    pub fn with_recency(mut self, decay: longtail_graph::RecencyDecay) -> Self {
        self.recency = Some(decay);
        self
    }

    /// Options excluding `exclude` (sorted ascending, deduplicated) on top
    /// of the user's rated items, under the default adaptive stopping.
    pub fn excluding(exclude: &'a [u32]) -> Self {
        let opts = Self {
            exclude,
            ..Self::default()
        };
        debug_assert!(
            exclude.windows(2).all(|w| w[0] < w[1]),
            "RecommendOptions::exclude must be sorted ascending and deduplicated"
        );
        opts
    }

    /// Whether `item` is in the request-scoped exclusion set (training-item
    /// exclusion is separate — see
    /// [`crate::Recommender::recommend_into`]).
    #[inline]
    pub fn is_excluded(&self, item: u32) -> bool {
        !self.exclude.is_empty() && self.exclude.binary_search(&item).is_ok()
    }
}

/// Parameters of the Absorbing Cost recommenders (AC1/AC2).
#[derive(Debug, Clone, Copy)]
pub struct AbsorbingCostConfig {
    /// Subgraph / truncation parameters shared with AT.
    pub graph: GraphRecConfig,
    /// The constant `C` of Eq. 9 — the mean cost of a user→item hop. The
    /// paper treats it as a tuning parameter; 1.0 makes user→item hops cost
    /// exactly one step, so only the item→user direction is entropy-biased.
    pub item_entry_cost: f64,
}

impl Default for AbsorbingCostConfig {
    fn default() -> Self {
        Self {
            graph: GraphRecConfig::default(),
            item_entry_cost: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let g = GraphRecConfig::default();
        assert_eq!(g.max_items, 6000);
        assert_eq!(g.iterations, 15);
        let c = AbsorbingCostConfig::default();
        assert_eq!(c.item_entry_cost, 1.0);
    }

    #[test]
    fn options_default_to_adaptive_and_empty_exclusions() {
        let opts = RecommendOptions::new();
        assert_eq!(opts.stopping, DpStopping::adaptive());
        assert!(opts.exclude.is_empty());
        assert!(!opts.is_excluded(0));

        let fixed = RecommendOptions::with_stopping(DpStopping::Fixed);
        assert_eq!(fixed.stopping, DpStopping::Fixed);

        let hidden = [2u32, 5, 9];
        let opts = RecommendOptions::excluding(&hidden);
        assert!(opts.is_excluded(5));
        assert!(!opts.is_excluded(4));
        assert_eq!(opts.stopping, DpStopping::adaptive());
    }

    #[test]
    fn stopping_defaults_to_adaptive() {
        assert_eq!(
            DpStopping::default(),
            DpStopping::Adaptive {
                epsilon: DpStopping::DEFAULT_EPSILON
            }
        );
        assert_eq!(DpStopping::default(), DpStopping::adaptive());
    }
}
