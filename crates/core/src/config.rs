//! Shared configuration for the graph-based recommenders.

/// Parameters of the subgraph-bounded random-walk recommenders (HT, AT, AC).
#[derive(Debug, Clone, Copy)]
pub struct GraphRecConfig {
    /// BFS item budget µ (Algorithm 1, step 2). Table 4 shows quality is
    /// stable for µ in the thousands while cost grows, with 6k the paper's
    /// default.
    pub max_items: usize,
    /// Truncation depth τ of the dynamic program (Algorithm 1, step 4). The
    /// paper uses 15, which already reproduces the exact ranking.
    pub iterations: usize,
}

impl Default for GraphRecConfig {
    fn default() -> Self {
        Self {
            max_items: 6000,
            iterations: 15,
        }
    }
}

/// How the truncated DP behind the fused serving path decides when to stop
/// iterating (a per-request parameter, carried on
/// [`RecommendOptions::stopping`]).
///
/// The τ in [`GraphRecConfig::iterations`] is always the *budget*; the
/// policy governs whether a serving query may spend less of it. Reference
/// scoring ([`crate::Recommender::score_into`], the Recall@N protocol) is
/// unaffected — it always runs the full fixed τ so scored values stay
/// bit-for-bit reproducible.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum DpStopping {
    /// Always run the full τ iterations — serving scores are bit-identical
    /// to `top_k` over [`crate::Recommender::score_into`].
    Fixed,
    /// Stop early when further iterations provably cannot matter: at an
    /// exact value fixed point (`δ_t = 0`, bit-identical to the full run),
    /// or when the rank-stability probe certifies the query's top-k list
    /// frozen (no candidate can cross its remaining-change bound) — the
    /// probe also arbitrates the `δ_t ≤ epsilon · scale` value-convergence
    /// rule, since converged *values* alone don't pin near-tied *orders*.
    /// Rankings are identical to [`DpStopping::Fixed`]; the reported
    /// scores sit within the remaining-change bound above the fixed-τ
    /// scores.
    Adaptive {
        /// Relative convergence threshold for the `δ_t ≤ ε · scale` rule
        /// (`scale` = largest value so far, floored at 1). Negative
        /// restricts the convergence rule to exact fixed points.
        epsilon: f64,
    },
}

impl DpStopping {
    /// Convergence threshold of the default adaptive policy: tight enough
    /// that a convergence stop perturbs values by well under any score gap
    /// a real ranking hinges on, loose enough to fire once the DP reaches
    /// its floating-point plateau.
    pub const DEFAULT_EPSILON: f64 = 1e-9;

    /// The default adaptive policy.
    pub fn adaptive() -> Self {
        Self::Adaptive {
            epsilon: Self::DEFAULT_EPSILON,
        }
    }
}

impl Default for DpStopping {
    /// Early termination is on by default: serving stops iterating as soon
    /// as the top-k list is provably frozen.
    fn default() -> Self {
        Self::adaptive()
    }
}

/// A checked request-scoped exclusion set: item ids removed from served
/// lists *in addition to* the user's training items, e.g. items already on
/// the page or filtered by business rules.
///
/// Replaces the old "must be sorted ascending" raw-slice footgun on
/// [`RecommendOptions::exclude`]: [`ExclusionSet::new`] normalizes (sorts
/// and dedups) once at construction — the serving engine builds it a
/// single time per request instead of per retry attempt — and borrowing
/// it into options is free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ExclusionSet {
    items: Vec<u32>,
}

static EMPTY_EXCLUSIONS: ExclusionSet = ExclusionSet { items: Vec::new() };

impl ExclusionSet {
    /// Normalize `items` (sort ascending, deduplicate) into a set.
    pub fn new(mut items: Vec<u32>) -> Self {
        items.sort_unstable();
        items.dedup();
        Self { items }
    }

    /// Wrap an already-normalized list without re-sorting; debug-asserts
    /// strictly ascending order.
    pub fn from_sorted(items: Vec<u32>) -> Self {
        debug_assert!(
            items.windows(2).all(|w| w[0] < w[1]),
            "ExclusionSet::from_sorted requires strictly ascending ids"
        );
        Self { items }
    }

    /// The shared empty set ([`RecommendOptions::default`] borrows it).
    pub fn empty() -> &'static Self {
        &EMPTY_EXCLUSIONS
    }

    /// Whether the set excludes nothing.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Number of excluded ids.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether `item` is excluded.
    #[inline]
    pub fn contains(&self, item: u32) -> bool {
        !self.items.is_empty() && self.items.binary_search(&item).is_ok()
    }

    /// The normalized ids, sorted ascending (the form the walk kernels
    /// consume).
    pub fn as_slice(&self) -> &[u32] {
        &self.items
    }
}

impl From<Vec<u32>> for ExclusionSet {
    fn from(items: Vec<u32>) -> Self {
        Self::new(items)
    }
}

/// Per-request serving parameters of [`crate::Recommender::recommend_into`]
/// and [`crate::Recommender::recommend_batch`].
///
/// The typed request surface of the serving API: everything that varies per
/// query but is not the query itself (user, k) lives here, so a context can
/// be shared by requests with different policies. `Default` is the plain
/// serving configuration — adaptive stopping, no extra exclusions, no
/// re-ranking — and is what the convenience methods
/// ([`crate::Recommender::recommend`],
/// [`crate::Recommender::recommend_with`]) use.
///
/// `#[non_exhaustive]` + builder methods: construct with
/// [`RecommendOptions::new`] and chain setters, so future knobs are
/// non-breaking.
///
/// ```
/// use longtail_core::{DpStopping, ExclusionSet, RecommendOptions};
///
/// // Exact fixed-τ scores, with two request-scoped exclusions on top of
/// // the user's training items.
/// let hidden = ExclusionSet::new(vec![17, 3]);
/// let opts = RecommendOptions::new()
///     .stopping(DpStopping::Fixed)
///     .exclude(&hidden);
/// assert!(opts.is_excluded(17) && !opts.is_excluded(4));
/// ```
#[non_exhaustive]
#[derive(Debug, Clone, Copy)]
pub struct RecommendOptions<'a> {
    /// Stopping policy for the walk family's serving DP (ignored by the
    /// non-walk families). Defaults to [`DpStopping::adaptive`].
    pub stopping: DpStopping,
    /// Request-scoped exclusions (normalized at construction — see
    /// [`ExclusionSet`]). Defaults to the shared empty set.
    pub exclude: &'a ExclusionSet,
    /// Cooperative deadline for the walk family's serving DP: once this
    /// instant passes, the truncated walk aborts at its next measured
    /// iteration (the stride-scheduled δ pass, so the hot loop pays
    /// nothing) and the query's [`crate::DpTelemetry`] records a
    /// `deadline_expired` run. A cancelled query serves an **empty list**
    /// (never a ranking over partially-iterated values); callers that set
    /// a deadline distinguish "cancelled" from "nothing to recommend" via
    /// the telemetry (the `longtail-serve` engine does, answering
    /// `DeadlineExceeded` instead). Non-walk families ignore the
    /// deadline: their queries have no iteration loop to interrupt.
    /// `None` (the default) never cancels.
    pub deadline: Option<std::time::Instant>,
    /// Optional recency-decay edge weighting for the walk families: when
    /// set, every edge weight is scaled by
    /// [`RecencyDecay::factor`](longtail_graph::RecencyDecay::factor) of its
    /// timestamp before the walk kernel is built, de-emphasizing stale
    /// ratings per query without touching the stored graph. Graphs built
    /// without timestamps read every edge as t = 0 (maximally stale), which
    /// scales all weights uniformly — the renormalized kernel, and hence
    /// the ranking, is then unchanged. Ignored by the non-walk families.
    /// `None` (the default) serves undecayed weights.
    pub recency: Option<longtail_graph::RecencyDecay>,
    /// Optional post-scoring long-tail re-ranking: a
    /// [`RerankPolicy`](crate::RerankPolicy) bound to the model's
    /// [`RerankIndex`](crate::RerankIndex). When set (and enabled), the
    /// fused serving path over-fetches a top-M candidate pool
    /// ([`RecommendOptions::fetch`]) and re-ranks it down to `k`
    /// ([`RecommendOptions::finalize_topk`]), leaving per-item provenance
    /// in the context. `None` (the default) serves raw walk order.
    pub rerank: Option<crate::rerank::Reranker<'a>>,
}

impl Default for RecommendOptions<'_> {
    fn default() -> Self {
        Self {
            stopping: DpStopping::default(),
            exclude: ExclusionSet::empty(),
            deadline: None,
            recency: None,
            rerank: None,
        }
    }
}

impl<'a> RecommendOptions<'a> {
    /// The default options: adaptive stopping, no extra exclusions, no
    /// re-ranking.
    pub fn new() -> Self {
        Self::default()
    }

    /// These options with an explicit stopping policy.
    pub fn stopping(mut self, stopping: DpStopping) -> Self {
        self.stopping = stopping;
        self
    }

    /// Options with an explicit stopping policy and no extra exclusions.
    pub fn with_stopping(stopping: DpStopping) -> Self {
        Self::new().stopping(stopping)
    }

    /// These options with a cooperative walk-DP deadline (see
    /// [`RecommendOptions::deadline`] for the cancelled-query contract).
    pub fn deadline_at(mut self, deadline: std::time::Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// These options with recency-decay edge weighting (see
    /// [`RecommendOptions::recency`]).
    pub fn with_recency(mut self, decay: longtail_graph::RecencyDecay) -> Self {
        self.recency = Some(decay);
        self
    }

    /// These options with the request-scoped exclusion set `exclude`.
    pub fn exclude(mut self, exclude: &'a ExclusionSet) -> Self {
        self.exclude = exclude;
        self
    }

    /// Options excluding `exclude` on top of the user's rated items, under
    /// the default adaptive stopping.
    pub fn excluding(exclude: &'a ExclusionSet) -> Self {
        Self::new().exclude(exclude)
    }

    /// These options with post-scoring re-ranking (see
    /// [`RecommendOptions::rerank`]).
    pub fn rerank(mut self, reranker: crate::rerank::Reranker<'a>) -> Self {
        self.rerank = Some(reranker);
        self
    }

    /// Whether `item` is in the request-scoped exclusion set (training-item
    /// exclusion is separate — see
    /// [`crate::Recommender::recommend_into`]).
    #[inline]
    pub fn is_excluded(&self, item: u32) -> bool {
        self.exclude.contains(item)
    }

    /// The candidate-pool size the fused path must collect for a final
    /// top-`k`: `k` itself without an enabled re-rank policy (the strict
    /// no-op path, bit-identical to pre-rerank serving), otherwise the
    /// policy's over-fetch M
    /// ([`RerankPolicy::effective_pool`](crate::RerankPolicy::effective_pool)).
    #[inline]
    pub fn fetch(&self, k: usize) -> usize {
        match &self.rerank {
            Some(r) => r.policy.effective_pool(k),
            None => k,
        }
    }

    /// Finalize a drained candidate pool into the served top-`k`: apply
    /// the attached re-rank policy (leaving its provenance trace in
    /// `ctx`), or a strict no-op without one. Every fused
    /// `recommend_into` path calls this exactly once, after draining its
    /// collector.
    pub fn finalize_topk(
        &self,
        k: usize,
        ctx: &mut crate::context::ScoringContext,
        out: &mut Vec<crate::topk::ScoredItem>,
    ) {
        match &self.rerank {
            Some(r) => crate::rerank::apply(r, k, &mut ctx.rerank, out),
            // The trace always describes the *last* query: clear it so a
            // plain query never surfaces a stale re-rank provenance.
            None => ctx.rerank.clear_trace(),
        }
    }
}

/// Parameters of the Absorbing Cost recommenders (AC1/AC2).
#[derive(Debug, Clone, Copy)]
pub struct AbsorbingCostConfig {
    /// Subgraph / truncation parameters shared with AT.
    pub graph: GraphRecConfig,
    /// The constant `C` of Eq. 9 — the mean cost of a user→item hop. The
    /// paper treats it as a tuning parameter; 1.0 makes user→item hops cost
    /// exactly one step, so only the item→user direction is entropy-biased.
    pub item_entry_cost: f64,
}

impl Default for AbsorbingCostConfig {
    fn default() -> Self {
        Self {
            graph: GraphRecConfig::default(),
            item_entry_cost: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let g = GraphRecConfig::default();
        assert_eq!(g.max_items, 6000);
        assert_eq!(g.iterations, 15);
        let c = AbsorbingCostConfig::default();
        assert_eq!(c.item_entry_cost, 1.0);
    }

    #[test]
    fn options_default_to_adaptive_and_empty_exclusions() {
        let opts = RecommendOptions::new();
        assert_eq!(opts.stopping, DpStopping::adaptive());
        assert!(opts.exclude.is_empty());
        assert!(!opts.is_excluded(0));
        assert!(opts.rerank.is_none());

        let fixed = RecommendOptions::with_stopping(DpStopping::Fixed);
        assert_eq!(fixed.stopping, DpStopping::Fixed);

        let hidden = ExclusionSet::new(vec![2, 5, 9]);
        let opts = RecommendOptions::excluding(&hidden);
        assert!(opts.is_excluded(5));
        assert!(!opts.is_excluded(4));
        assert_eq!(opts.stopping, DpStopping::adaptive());
    }

    #[test]
    fn exclusion_set_normalizes_once() {
        let set = ExclusionSet::new(vec![9, 1, 5, 1, 9]);
        assert_eq!(set.as_slice(), &[1, 5, 9]);
        assert_eq!(set.len(), 3);
        assert!(set.contains(5) && !set.contains(2));

        let sorted = ExclusionSet::from_sorted(vec![1, 2, 3]);
        assert_eq!(sorted.as_slice(), &[1, 2, 3]);
        assert!(ExclusionSet::empty().is_empty());
        assert_eq!(ExclusionSet::from(vec![3, 1]).as_slice(), &[1, 3]);
    }

    #[test]
    fn builder_chain_sets_every_knob() {
        let hidden = ExclusionSet::new(vec![7]);
        let opts = RecommendOptions::new()
            .stopping(DpStopping::Fixed)
            .exclude(&hidden);
        assert_eq!(opts.stopping, DpStopping::Fixed);
        assert!(opts.is_excluded(7));
        // Without a re-ranker the fused path fetches exactly k.
        assert_eq!(opts.fetch(10), 10);
    }

    #[test]
    fn stopping_defaults_to_adaptive() {
        assert_eq!(
            DpStopping::default(),
            DpStopping::Adaptive {
                epsilon: DpStopping::DEFAULT_EPSILON
            }
        );
        assert_eq!(DpStopping::default(), DpStopping::adaptive());
    }
}
