//! Shared configuration for the graph-based recommenders.

/// Parameters of the subgraph-bounded random-walk recommenders (HT, AT, AC).
#[derive(Debug, Clone, Copy)]
pub struct GraphRecConfig {
    /// BFS item budget µ (Algorithm 1, step 2). Table 4 shows quality is
    /// stable for µ in the thousands while cost grows, with 6k the paper's
    /// default.
    pub max_items: usize,
    /// Truncation depth τ of the dynamic program (Algorithm 1, step 4). The
    /// paper uses 15, which already reproduces the exact ranking.
    pub iterations: usize,
}

impl Default for GraphRecConfig {
    fn default() -> Self {
        Self {
            max_items: 6000,
            iterations: 15,
        }
    }
}

/// Parameters of the Absorbing Cost recommenders (AC1/AC2).
#[derive(Debug, Clone, Copy)]
pub struct AbsorbingCostConfig {
    /// Subgraph / truncation parameters shared with AT.
    pub graph: GraphRecConfig,
    /// The constant `C` of Eq. 9 — the mean cost of a user→item hop. The
    /// paper treats it as a tuning parameter; 1.0 makes user→item hops cost
    /// exactly one step, so only the item→user direction is entropy-biased.
    pub item_entry_cost: f64,
}

impl Default for AbsorbingCostConfig {
    fn default() -> Self {
        Self {
            graph: GraphRecConfig::default(),
            item_entry_cost: 1.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let g = GraphRecConfig::default();
        assert_eq!(g.max_items, 6000);
        assert_eq!(g.iterations, 15);
        let c = AbsorbingCostConfig::default();
        assert_eq!(c.item_entry_cost, 1.0);
    }
}
