//! Reusable per-query scoring state.
//!
//! A single `score_items` call on the graph recommenders used to allocate a
//! full `O(n_nodes)` id map, a fresh induced adjacency, DP vectors and a
//! score vector — every query, for every user. [`ScoringContext`] owns all
//! of that state instead: create one per worker thread, thread it through
//! [`crate::Recommender::score_into`], and steady-state scoring performs no
//! `O(n_nodes)` allocations at all (buffers are resized in place, retaining
//! capacity across queries).
//!
//! The context carries no serving *policy*: the [`crate::DpStopping`] rule
//! the walk family applies to its truncated DP is a per-request parameter
//! on [`crate::RecommendOptions`]. What the context does carry besides
//! scratch is [`DpTelemetry`] — cumulative counters recording how many of
//! the budgeted DP iterations each query actually spent.
//!
//! Convenience methods that take no context
//! ([`crate::Recommender::score_items`], [`crate::Recommender::recommend`])
//! borrow a thread-local instance via [`with_thread_context`], so even
//! naive callers reuse buffers across queries.

use crate::topk::{ScoredItem, TopKCollector};
use longtail_graph::SubgraphScratch;
use longtail_markov::{DpBuffers, DpRun, PageRankBuffers};
use std::cell::RefCell;

/// Cumulative counters over every truncated-DP run a context performed —
/// the observability half of adaptive early termination.
///
/// `iterations_budget − iterations_run` is the work adaptive stopping
/// saved; `converged` and `rank_frozen` attribute the saving to the two
/// stopping rules. Counters accumulate across queries until
/// [`ScoringContext::reset_dp_telemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpTelemetry {
    /// Number of DP runs (one per walk-family query that reached the DP).
    pub queries: u64,
    /// Iterations actually performed, summed over runs.
    pub iterations_run: u64,
    /// Fixed-τ iterations the runs were budgeted, summed.
    pub iterations_budget: u64,
    /// Runs stopped by the value-convergence rule.
    pub converged: u64,
    /// Runs stopped by the rank-stability probe.
    pub rank_frozen: u64,
    /// Runs aborted by an expired request deadline (cooperative
    /// cancellation inside the DP loop). Lists produced by such runs are
    /// invalid and must not be served — the serving engine answers
    /// `DeadlineExceeded` whenever a request's diff shows one.
    pub deadline_expired: u64,
}

impl DpTelemetry {
    /// Fold one run's outcome into the counters.
    pub fn record(&mut self, run: &DpRun) {
        self.queries += 1;
        self.iterations_run += run.iterations as u64;
        self.iterations_budget += run.budget as u64;
        self.converged += u64::from(run.converged);
        self.rank_frozen += u64::from(run.rank_frozen);
        self.deadline_expired += u64::from(run.cancelled);
    }

    /// Fraction of the budgeted iterations early termination skipped
    /// (0 when nothing ran).
    pub fn iterations_saved_fraction(&self) -> f64 {
        if self.iterations_budget == 0 {
            0.0
        } else {
            1.0 - self.iterations_run as f64 / self.iterations_budget as f64
        }
    }

    /// Merge another telemetry block (e.g. from a batch worker) into this
    /// one.
    pub fn merge(&mut self, other: &DpTelemetry) {
        self.queries += other.queries;
        self.iterations_run += other.iterations_run;
        self.iterations_budget += other.iterations_budget;
        self.converged += other.converged;
        self.rank_frozen += other.rank_frozen;
        self.deadline_expired += other.deadline_expired;
    }

    /// Counter-wise difference against an `earlier` snapshot of the same
    /// monotone counters — the telemetry attributable to the queries run
    /// between the two reads (saturating, so a reset between snapshots
    /// yields the post-reset counts instead of wrapping).
    pub fn since(&self, earlier: &DpTelemetry) -> DpTelemetry {
        DpTelemetry {
            queries: self.queries.saturating_sub(earlier.queries),
            iterations_run: self.iterations_run.saturating_sub(earlier.iterations_run),
            iterations_budget: self
                .iterations_budget
                .saturating_sub(earlier.iterations_budget),
            converged: self.converged.saturating_sub(earlier.converged),
            rank_frozen: self.rank_frozen.saturating_sub(earlier.rank_frozen),
            deadline_expired: self
                .deadline_expired
                .saturating_sub(earlier.deadline_expired),
        }
    }
}

/// All reusable buffers a recommender query needs.
///
/// The context is intentionally recommender-agnostic: the same instance can
/// serve HT, AT, AC and PageRank queries back to back (the evaluation
/// harness does exactly that when timing a roster). A context holds no
/// query *results* — only scratch plus the serving policy and telemetry —
/// so reusing it never changes scores; the batch-equivalence tests pin that
/// guarantee.
#[derive(Debug, Clone, Default)]
pub struct ScoringContext {
    /// BFS subgraph extraction + induced transition kernel (Algorithm 1,
    /// step 2).
    pub(crate) subgraph: SubgraphScratch,
    /// Truncated dynamic-program state (Algorithm 1, steps 3–4).
    pub(crate) walk: DpBuffers,
    /// Power-iteration state for the (D)PPR baselines.
    pub(crate) pagerank: PageRankBuffers,
    /// Per-local-node absorbing flags for the current query.
    pub(crate) absorbing: Vec<bool>,
    /// Flat node ids of the query's seed / absorbing set.
    pub(crate) seeds: Vec<usize>,
    /// Per-local-node entry costs (Eq. 9) for the AC variants.
    pub(crate) entry_costs: Vec<f64>,
    /// General-purpose `f64` scratch for model-specific intermediates
    /// (e.g. PureSVD's factor-space projection).
    pub(crate) scratch: Vec<f64>,
    /// Bounded heap for fused top-k queries
    /// ([`crate::Recommender::recommend_into`]).
    pub(crate) topk: TopKCollector,
    /// Full score vector scratch for the score-then-sort fallback of
    /// [`crate::Recommender::recommend_into`].
    pub(crate) score_buf: Vec<f64>,
    /// Dense sparse-candidate accumulator for the fused kNN / association-
    /// rule paths. Invariant between queries: every slot is
    /// `f64::NEG_INFINITY` (each query restores the slots it touched), so a
    /// fused query costs `O(candidates)`, not `O(n_items)`.
    pub(crate) accum: Vec<f64>,
    /// Item ids whose [`ScoringContext::accum`] slot the current query set.
    pub(crate) touched: Vec<u32>,
    /// Sorted item ids the query user has rated across base + delta, for
    /// the streaming-overlay serving path (exclusion + absorbing seeds).
    pub(crate) merged_rated: Vec<u32>,
    /// Bounded heap the rank-stability probe collects the provisional
    /// top-(k+1) into (distinct from `topk`, which belongs to the final
    /// collection).
    pub(crate) probe_topk: TopKCollector,
    /// Sorted scratch list the probe drains `probe_topk` into.
    pub(crate) probe_items: Vec<ScoredItem>,
    /// Cumulative DP iteration counters (see [`DpTelemetry`]).
    pub(crate) dp_telemetry: DpTelemetry,
    /// Buffers + last-query provenance trace of the post-scoring re-rank
    /// stage (see [`crate::rerank`]).
    pub(crate) rerank: crate::rerank::RerankScratch,
}

impl ScoringContext {
    /// An empty context; every buffer sizes itself lazily on first use, so
    /// construction is cheap regardless of catalog size.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative truncated-DP iteration counters for every walk-family
    /// query this context served since creation or the last
    /// [`ScoringContext::reset_dp_telemetry`].
    pub fn dp_telemetry(&self) -> DpTelemetry {
        self.dp_telemetry
    }

    /// Zero the [`DpTelemetry`] counters (e.g. between benchmark phases).
    pub fn reset_dp_telemetry(&mut self) {
        self.dp_telemetry = DpTelemetry::default();
    }

    /// Per-item provenance of the last re-ranked query this context served
    /// (empty when that query ran without an enabled
    /// [`crate::RerankPolicy`]). Read it right after `recommend_into` —
    /// the next query overwrites it.
    pub fn rerank_trace(&self) -> &[crate::rerank::ItemProvenance] {
        self.rerank.trace()
    }
}

thread_local! {
    /// The per-thread context behind the no-context convenience methods.
    static THREAD_CONTEXT: RefCell<ScoringContext> = RefCell::new(ScoringContext::new());
}

/// Run `f` with this thread's shared [`ScoringContext`].
///
/// This is what makes [`crate::Recommender::score_items`] and
/// [`crate::Recommender::recommend`] cheap to call in a loop: the
/// `O(n_nodes)` buffer setup is paid once per thread, not once per query.
/// Results never depend on prior context use (a pinned invariant), so
/// sharing is invisible.
///
/// Prefer an explicitly owned context ([`crate::Recommender::score_into`] /
/// [`crate::Recommender::recommend_into`], or a `longtail-serve` engine's
/// pooled contexts) when you need the [`DpTelemetry`] of your own queries —
/// the thread-local accumulates counters across every caller on the thread
/// — or when a long-lived service thread should not pin catalog-sized
/// buffers between request bursts. If the thread-local is already borrowed
/// (a reentrant call from inside a scoring path), a fresh transient context
/// is used instead, preserving correctness at the old allocation cost.
pub fn with_thread_context<R>(f: impl FnOnce(&mut ScoringContext) -> R) -> R {
    THREAD_CONTEXT.with(|cell| match cell.try_borrow_mut() {
        Ok(mut ctx) => f(&mut ctx),
        Err(_) => f(&mut ScoringContext::new()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_records_and_resets() {
        let mut t = DpTelemetry::default();
        t.record(&DpRun {
            iterations: 5,
            budget: 15,
            converged: true,
            rank_frozen: false,
            cancelled: false,
            last_delta: 0.0,
        });
        t.record(&DpRun::fixed(15));
        assert_eq!(t.queries, 2);
        assert_eq!(t.iterations_run, 20);
        assert_eq!(t.iterations_budget, 30);
        assert_eq!(t.converged, 1);
        assert_eq!(t.rank_frozen, 0);
        assert!((t.iterations_saved_fraction() - 10.0 / 30.0).abs() < 1e-12);

        let mut merged = DpTelemetry::default();
        merged.merge(&t);
        merged.merge(&t);
        assert_eq!(merged.queries, 4);
        assert_eq!(merged.iterations_run, 40);

        let mut ctx = ScoringContext::new();
        ctx.dp_telemetry.record(&DpRun::fixed(7));
        assert_eq!(ctx.dp_telemetry().queries, 1);
        ctx.reset_dp_telemetry();
        assert_eq!(ctx.dp_telemetry(), DpTelemetry::default());
    }

    #[test]
    fn empty_telemetry_saved_fraction_is_zero() {
        assert_eq!(DpTelemetry::default().iterations_saved_fraction(), 0.0);
    }

    #[test]
    fn since_diffs_monotone_snapshots() {
        let mut t = DpTelemetry::default();
        t.record(&DpRun::fixed(10));
        let snapshot = t;
        t.record(&DpRun {
            iterations: 4,
            budget: 10,
            converged: true,
            rank_frozen: false,
            cancelled: false,
            last_delta: 0.0,
        });
        let diff = t.since(&snapshot);
        assert_eq!(diff.queries, 1);
        assert_eq!(diff.iterations_run, 4);
        assert_eq!(diff.iterations_budget, 10);
        assert_eq!(diff.converged, 1);
        // A reset between snapshots saturates instead of wrapping.
        assert_eq!(DpTelemetry::default().since(&snapshot).queries, 0);
    }

    #[test]
    fn thread_context_is_reused_and_reentrancy_safe() {
        let first = with_thread_context(|ctx| {
            ctx.scratch.push(1.0);
            ctx as *const ScoringContext as usize
        });
        let second = with_thread_context(|ctx| {
            assert_eq!(ctx.scratch, vec![1.0], "buffer survived between calls");
            ctx.scratch.clear();
            // Reentrant borrow falls back to a transient context rather
            // than panicking.
            let inner = with_thread_context(|inner| inner as *const ScoringContext as usize);
            assert_ne!(inner, ctx as *const ScoringContext as usize);
            ctx as *const ScoringContext as usize
        });
        assert_eq!(first, second, "same thread shares one context");
    }
}
