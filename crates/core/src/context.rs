//! Reusable per-query scoring state.
//!
//! A single `score_items` call on the graph recommenders used to allocate a
//! full `O(n_nodes)` id map, a fresh induced adjacency, DP vectors and a
//! score vector — every query, for every user. [`ScoringContext`] owns all
//! of that state instead: create one per worker thread, thread it through
//! [`crate::Recommender::score_into`], and steady-state scoring performs no
//! `O(n_nodes)` allocations at all (buffers are resized in place, retaining
//! capacity across queries).

use crate::topk::TopKCollector;
use longtail_graph::SubgraphScratch;
use longtail_markov::{DpBuffers, PageRankBuffers};

/// All reusable buffers a recommender query needs.
///
/// The context is intentionally recommender-agnostic: the same instance can
/// serve HT, AT, AC and PageRank queries back to back (the evaluation
/// harness does exactly that when timing a roster). A context holds no
/// query *results* — only scratch — so reusing it never changes scores; the
/// batch-equivalence tests pin that guarantee.
#[derive(Debug, Clone, Default)]
pub struct ScoringContext {
    /// BFS subgraph extraction + induced transition kernel (Algorithm 1,
    /// step 2).
    pub(crate) subgraph: SubgraphScratch,
    /// Truncated dynamic-program state (Algorithm 1, steps 3–4).
    pub(crate) walk: DpBuffers,
    /// Power-iteration state for the (D)PPR baselines.
    pub(crate) pagerank: PageRankBuffers,
    /// Per-local-node absorbing flags for the current query.
    pub(crate) absorbing: Vec<bool>,
    /// Flat node ids of the query's seed / absorbing set.
    pub(crate) seeds: Vec<usize>,
    /// Per-local-node entry costs (Eq. 9) for the AC variants.
    pub(crate) entry_costs: Vec<f64>,
    /// General-purpose `f64` scratch for model-specific intermediates
    /// (e.g. PureSVD's factor-space projection).
    pub(crate) scratch: Vec<f64>,
    /// Bounded heap for fused top-k queries
    /// ([`crate::Recommender::recommend_into`]).
    pub(crate) topk: TopKCollector,
    /// Full score vector scratch for the score-then-sort fallback of
    /// [`crate::Recommender::recommend_into`].
    pub(crate) score_buf: Vec<f64>,
    /// Dense sparse-candidate accumulator for the fused kNN / association-
    /// rule paths. Invariant between queries: every slot is
    /// `f64::NEG_INFINITY` (each query restores the slots it touched), so a
    /// fused query costs `O(candidates)`, not `O(n_items)`.
    pub(crate) accum: Vec<f64>,
    /// Item ids whose [`ScoringContext::accum`] slot the current query set.
    pub(crate) touched: Vec<u32>,
}

impl ScoringContext {
    /// An empty context; every buffer sizes itself lazily on first use, so
    /// construction is cheap regardless of catalog size.
    pub fn new() -> Self {
        Self::default()
    }
}
