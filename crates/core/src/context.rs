//! Reusable per-query scoring state.
//!
//! A single `score_items` call on the graph recommenders used to allocate a
//! full `O(n_nodes)` id map, a fresh induced adjacency, DP vectors and a
//! score vector — every query, for every user. [`ScoringContext`] owns all
//! of that state instead: create one per worker thread, thread it through
//! [`crate::Recommender::score_into`], and steady-state scoring performs no
//! `O(n_nodes)` allocations at all (buffers are resized in place, retaining
//! capacity across queries).
//!
//! The context also carries the per-worker *serving policy*: the
//! [`DpStopping`] rule the walk family's fused top-k path applies to its
//! truncated DP, plus [`DpTelemetry`] counters recording how many of the
//! budgeted iterations each query actually spent.

use crate::config::DpStopping;
use crate::topk::{ScoredItem, TopKCollector};
use longtail_graph::SubgraphScratch;
use longtail_markov::{DpBuffers, DpRun, PageRankBuffers};

/// Cumulative counters over every truncated-DP run a context performed —
/// the observability half of adaptive early termination.
///
/// `iterations_budget − iterations_run` is the work adaptive stopping
/// saved; `converged` and `rank_frozen` attribute the saving to the two
/// stopping rules. Counters accumulate across queries until
/// [`ScoringContext::reset_dp_telemetry`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DpTelemetry {
    /// Number of DP runs (one per walk-family query that reached the DP).
    pub queries: u64,
    /// Iterations actually performed, summed over runs.
    pub iterations_run: u64,
    /// Fixed-τ iterations the runs were budgeted, summed.
    pub iterations_budget: u64,
    /// Runs stopped by the value-convergence rule.
    pub converged: u64,
    /// Runs stopped by the rank-stability probe.
    pub rank_frozen: u64,
}

impl DpTelemetry {
    /// Fold one run's outcome into the counters.
    pub fn record(&mut self, run: &DpRun) {
        self.queries += 1;
        self.iterations_run += run.iterations as u64;
        self.iterations_budget += run.budget as u64;
        self.converged += u64::from(run.converged);
        self.rank_frozen += u64::from(run.rank_frozen);
    }

    /// Fraction of the budgeted iterations early termination skipped
    /// (0 when nothing ran).
    pub fn iterations_saved_fraction(&self) -> f64 {
        if self.iterations_budget == 0 {
            0.0
        } else {
            1.0 - self.iterations_run as f64 / self.iterations_budget as f64
        }
    }

    /// Merge another telemetry block (e.g. from a batch worker) into this
    /// one.
    pub fn merge(&mut self, other: &DpTelemetry) {
        self.queries += other.queries;
        self.iterations_run += other.iterations_run;
        self.iterations_budget += other.iterations_budget;
        self.converged += other.converged;
        self.rank_frozen += other.rank_frozen;
    }
}

/// All reusable buffers a recommender query needs.
///
/// The context is intentionally recommender-agnostic: the same instance can
/// serve HT, AT, AC and PageRank queries back to back (the evaluation
/// harness does exactly that when timing a roster). A context holds no
/// query *results* — only scratch plus the serving policy and telemetry —
/// so reusing it never changes scores; the batch-equivalence tests pin that
/// guarantee.
#[derive(Debug, Clone, Default)]
pub struct ScoringContext {
    /// Stopping policy for the walk family's fused serving DP. Defaults to
    /// [`DpStopping::adaptive`]; set to [`DpStopping::Fixed`] to force the
    /// full fixed-τ semantics (bit-identical scores to
    /// [`crate::Recommender::score_into`]).
    pub stopping: DpStopping,
    /// BFS subgraph extraction + induced transition kernel (Algorithm 1,
    /// step 2).
    pub(crate) subgraph: SubgraphScratch,
    /// Truncated dynamic-program state (Algorithm 1, steps 3–4).
    pub(crate) walk: DpBuffers,
    /// Power-iteration state for the (D)PPR baselines.
    pub(crate) pagerank: PageRankBuffers,
    /// Per-local-node absorbing flags for the current query.
    pub(crate) absorbing: Vec<bool>,
    /// Flat node ids of the query's seed / absorbing set.
    pub(crate) seeds: Vec<usize>,
    /// Per-local-node entry costs (Eq. 9) for the AC variants.
    pub(crate) entry_costs: Vec<f64>,
    /// General-purpose `f64` scratch for model-specific intermediates
    /// (e.g. PureSVD's factor-space projection).
    pub(crate) scratch: Vec<f64>,
    /// Bounded heap for fused top-k queries
    /// ([`crate::Recommender::recommend_into`]).
    pub(crate) topk: TopKCollector,
    /// Full score vector scratch for the score-then-sort fallback of
    /// [`crate::Recommender::recommend_into`].
    pub(crate) score_buf: Vec<f64>,
    /// Dense sparse-candidate accumulator for the fused kNN / association-
    /// rule paths. Invariant between queries: every slot is
    /// `f64::NEG_INFINITY` (each query restores the slots it touched), so a
    /// fused query costs `O(candidates)`, not `O(n_items)`.
    pub(crate) accum: Vec<f64>,
    /// Item ids whose [`ScoringContext::accum`] slot the current query set.
    pub(crate) touched: Vec<u32>,
    /// Bounded heap the rank-stability probe collects the provisional
    /// top-(k+1) into (distinct from `topk`, which belongs to the final
    /// collection).
    pub(crate) probe_topk: TopKCollector,
    /// Sorted scratch list the probe drains `probe_topk` into.
    pub(crate) probe_items: Vec<ScoredItem>,
    /// Cumulative DP iteration counters (see [`DpTelemetry`]).
    pub(crate) dp_telemetry: DpTelemetry,
}

impl ScoringContext {
    /// An empty context; every buffer sizes itself lazily on first use, so
    /// construction is cheap regardless of catalog size.
    pub fn new() -> Self {
        Self::default()
    }

    /// A context serving with the given stopping policy.
    pub fn with_stopping(stopping: DpStopping) -> Self {
        Self {
            stopping,
            ..Self::default()
        }
    }

    /// Cumulative truncated-DP iteration counters for every walk-family
    /// query this context served since creation or the last
    /// [`ScoringContext::reset_dp_telemetry`].
    pub fn dp_telemetry(&self) -> DpTelemetry {
        self.dp_telemetry
    }

    /// Zero the [`DpTelemetry`] counters (e.g. between benchmark phases).
    pub fn reset_dp_telemetry(&mut self) {
        self.dp_telemetry = DpTelemetry::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn telemetry_records_and_resets() {
        let mut t = DpTelemetry::default();
        t.record(&DpRun {
            iterations: 5,
            budget: 15,
            converged: true,
            rank_frozen: false,
            last_delta: 0.0,
        });
        t.record(&DpRun::fixed(15));
        assert_eq!(t.queries, 2);
        assert_eq!(t.iterations_run, 20);
        assert_eq!(t.iterations_budget, 30);
        assert_eq!(t.converged, 1);
        assert_eq!(t.rank_frozen, 0);
        assert!((t.iterations_saved_fraction() - 10.0 / 30.0).abs() < 1e-12);

        let mut merged = DpTelemetry::default();
        merged.merge(&t);
        merged.merge(&t);
        assert_eq!(merged.queries, 4);
        assert_eq!(merged.iterations_run, 40);

        let mut ctx = ScoringContext::new();
        ctx.dp_telemetry.record(&DpRun::fixed(7));
        assert_eq!(ctx.dp_telemetry().queries, 1);
        ctx.reset_dp_telemetry();
        assert_eq!(ctx.dp_telemetry(), DpTelemetry::default());
    }

    #[test]
    fn empty_telemetry_saved_fraction_is_zero() {
        assert_eq!(DpTelemetry::default().iterations_saved_fraction(), 0.0);
    }

    #[test]
    fn with_stopping_sets_policy() {
        let ctx = ScoringContext::with_stopping(DpStopping::Fixed);
        assert_eq!(ctx.stopping, DpStopping::Fixed);
        assert_eq!(ScoringContext::new().stopping, DpStopping::adaptive());
    }
}
