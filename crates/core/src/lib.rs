//! Long-tail recommenders — the primary contribution of *Challenging the
//! Long Tail Recommendation* (Yin et al., VLDB 2012) plus every baseline of
//! its evaluation.
//!
//! The paper's four variants:
//!
//! * **HT** ([`HittingTimeRecommender`], §3.3) — rank items by the hitting
//!   time of a random walk from the item to the query user;
//! * **AT** ([`AbsorbingTimeRecommender`], §4.1) — absorb at the user's
//!   rated set instead, with the truncated subgraph algorithm (Algorithm 1);
//! * **AC1 / AC2** ([`AbsorbingCostRecommender`], §4.2) — bias the walk by
//!   the *user entropy* of each hop, item-based (Eq. 10) or LDA topic-based
//!   (Eq. 11).
//!
//! Baselines: [`LdaRecommender`], [`PureSvdRecommender`], and
//! [`PageRankRecommender`] (plain and popularity-discounted, Eq. 15).
//!
//! All algorithms implement the [`Recommender`] trait, whose contract is
//! the paper's evaluation protocol: score every catalog item for a user,
//! rank, exclude the user's training items.
//!
//! ```
//! use longtail_core::{Recommender, AbsorbingTimeRecommender, GraphRecConfig};
//! use longtail_data::{Dataset, Rating};
//!
//! let ratings = [
//!     Rating { user: 0, item: 0, value: 5.0 },
//!     Rating { user: 0, item: 1, value: 4.0 },
//!     Rating { user: 1, item: 1, value: 5.0 },
//!     Rating { user: 1, item: 2, value: 5.0 },
//! ];
//! let train = Dataset::from_ratings(2, 3, &ratings);
//! let rec = AbsorbingTimeRecommender::new(&train, GraphRecConfig::default());
//! let top = rec.recommend(0, 1);
//! assert_eq!(top[0].item, 2); // the item user 0 hasn't seen yet
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod context;
pub mod parallel;
pub mod persist;
pub mod recommenders;
pub mod rerank;
pub mod topk;
mod walk_common;

pub use config::{AbsorbingCostConfig, DpStopping, ExclusionSet, GraphRecConfig, RecommendOptions};
pub use context::{with_thread_context, DpTelemetry, ScoringContext};
pub use parallel::{parallel_map_indexed, parallel_map_indexed_with_states};
pub use persist::Persistable;
pub use recommenders::{
    AbsorbingCostRecommender, AbsorbingTimeRecommender, AssociationRuleRecommender, EntropySource,
    HittingTimeRecommender, KnnRecommender, LdaRecommender, PageRankFlavor, PageRankRecommender,
    PopularityRecommender, PureSvdRecommender, RuleConfig, UserSimilarity,
};
pub use rerank::{ItemProvenance, RerankIndex, RerankPolicy, Reranker};
pub use topk::{rank_of, top_k, ScoredItem, TopKCollector};

pub use longtail_graph::{EdgeDelta, RecencyDecay};

/// A top-N recommendation algorithm over a fixed training dataset.
///
/// The single required scoring method is [`Recommender::score_into`], which
/// writes scores through a reusable [`ScoringContext`]; ranking, exclusion
/// of training items, top-k selection, one-shot scoring and multi-threaded
/// batch scoring are all provided on top of it. Scores are model-specific
/// but always ordered "higher = more recommended"; items a model cannot
/// reach score `f64::NEG_INFINITY` and are never recommended.
///
/// Serving rides [`Recommender::recommend_into`] (and its batch form
/// [`Recommender::recommend_batch`]): a fused top-k path that every
/// recommender overrides to push candidates into a bounded
/// [`TopKCollector`] instead of materializing and sorting a full
/// `O(n_items)` score vector. Fused output is pinned — by property tests —
/// to be identical to `top_k` over [`Recommender::score_into`].
///
/// `Sync` is a supertrait: every recommender is an immutable model after
/// construction, and the evaluation harness shares one instance across
/// scoring threads.
pub trait Recommender: Sync {
    /// Short display name ("HT", "AC2", "PureSVD", ...) used in experiment
    /// tables.
    fn name(&self) -> &'static str;

    /// Score every item in the catalog for `user`, writing into `out`
    /// (cleared and resized to [`Recommender::n_items`]).
    ///
    /// All per-query scratch lives in `ctx`; a caller looping over users
    /// with one context and one `out` vector performs no `O(n_nodes)`
    /// allocations per query. Results are identical no matter how `ctx` was
    /// previously used.
    fn score_into(&self, user: u32, ctx: &mut ScoringContext, out: &mut Vec<f64>);

    /// The items `user` rated in the training data (excluded from
    /// recommendations).
    fn rated_items(&self, user: u32) -> &[u32];

    /// Catalog size.
    fn n_items(&self) -> usize;

    /// Score every item for `user` into a fresh vector (convenience form of
    /// [`Recommender::score_into`] through this thread's shared context —
    /// see [`with_thread_context`] for when to prefer an owned or pooled
    /// context instead).
    fn score_items(&self, user: u32) -> Vec<f64> {
        context::with_thread_context(|ctx| {
            let mut out = Vec::new();
            self.score_into(user, ctx, &mut out);
            out
        })
    }

    /// Top-`k` recommendations for `user` under the default
    /// [`RecommendOptions`], excluding training items.
    ///
    /// Runs through this thread's shared [`ScoringContext`], so calling it
    /// in a loop pays no `O(n_nodes)` setup per query; see
    /// [`with_thread_context`] for when to prefer an owned or pooled
    /// context (per-query telemetry, long-lived service threads).
    fn recommend(&self, user: u32, k: usize) -> Vec<ScoredItem> {
        context::with_thread_context(|ctx| {
            self.recommend_with(user, k, &RecommendOptions::default(), ctx)
        })
    }

    /// [`Recommender::recommend`] through explicit per-request options and
    /// a caller-owned context — the form to use when producing lists for
    /// many users.
    fn recommend_with(
        &self,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
    ) -> Vec<ScoredItem> {
        let mut out = Vec::new();
        self.recommend_into(user, k, opts, ctx, &mut out);
        out
    }

    /// Write the top-`k` recommendations for `user` into `out` (cleared
    /// first), excluding training items and the request-scoped
    /// [`RecommendOptions::exclude`] set — the fused serving primitive.
    ///
    /// The contract, pinned by the equivalence property tests: the result
    /// is item-for-item and rank-for-rank identical to
    /// `top_k(score_into(user), k, rated ∪ opts.exclude)`, including
    /// tie-breaking by ascending item id. Scores are also identical, with
    /// one carve-out: under the default [`DpStopping::Adaptive`] policy on
    /// `opts`, the walk family (HT/AT/AC) may terminate its truncated DP
    /// early once this top-k list is provably frozen, reporting each item's
    /// score from the stop iteration — at or above the fixed-τ score,
    /// within the certified remaining-change bound, and never reordered.
    /// Set [`RecommendOptions::stopping`] to [`DpStopping::Fixed`] for
    /// score-for-score identity.
    ///
    /// With an enabled [`RecommendOptions::rerank`] policy, the path
    /// instead collects the policy's top-M candidate pool
    /// ([`RecommendOptions::fetch`]) and re-ranks it down to `k`
    /// ([`RecommendOptions::finalize_topk`]); a disabled or absent policy
    /// is a strict no-op, preserving the identity contract above.
    ///
    /// The default implementation *is* the score-then-sort computation
    /// (through reusable context buffers); recommenders override it with
    /// fused paths that push candidates straight into the context's
    /// [`TopKCollector`] — only the visited subgraph for the walk family,
    /// only the candidate set for kNN / association rules — so no
    /// `O(n_items)` score vector is materialized or sorted.
    fn recommend_into(
        &self,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        // Move the score buffer out of the context so `score_into` can
        // borrow the rest of it; capacity is retained across queries.
        let mut scores = std::mem::take(&mut ctx.score_buf);
        self.score_into(user, ctx, &mut scores);
        let rated = self.rated_items(user);
        ctx.topk.reset(opts.fetch(k));
        for (i, &s) in scores.iter().enumerate() {
            let i = i as u32;
            if rated.binary_search(&i).is_err() && !opts.is_excluded(i) {
                ctx.topk.push(i, s);
            }
        }
        ctx.topk.drain_sorted_into(out);
        ctx.score_buf = scores;
        opts.finalize_topk(k, ctx, out);
    }

    /// [`Recommender::recommend_into`] with a streamed [`EdgeDelta`] of
    /// rating appends overlaid on the model's base graph — the serving
    /// primitive behind `longtail-serve`'s ingest path.
    ///
    /// The contract, pinned by the overlay-equivalence property tests: the
    /// list is identical to what a model **rebuilt from scratch on the
    /// union** of base and delta ratings would serve (for the walk family;
    /// bit-identical when the weights are exact-sum values like integer
    /// stars). The user's exclusion set is the merged base + delta rated
    /// set, and `delta`-only users and items are first-class: a user who
    /// exists only in the delta is served off their appended ratings alone.
    ///
    /// The default implementation ignores the delta and serves the frozen
    /// base model — correct-but-stale for the non-walk families, which
    /// would need retraining to absorb new ratings. HT/AT/AC override it
    /// with the true merge, scoring base + delta without any rebuild.
    fn recommend_delta_into(
        &self,
        _delta: &EdgeDelta,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        self.recommend_into(user, k, opts, ctx, out);
    }

    /// Top-`k` lists for a batch of users, sharding the queries over
    /// `n_threads` scoped worker threads that each own one
    /// [`ScoringContext`] — the top-k counterpart of
    /// [`Recommender::score_batch`]. `opts` applies to every query of the
    /// batch.
    ///
    /// `results[j]` is exactly what `recommend_with(users[j], k, opts)`
    /// returns — output is bit-identical to the sequential loop for every
    /// thread count, with workers pulling queries off a shared atomic
    /// cursor so stragglers cannot imbalance the shards.
    ///
    /// Worker threads are spawned (and joined) per call; sustained serving
    /// traffic should prefer a `longtail-serve` engine, whose persistent
    /// worker pool amortizes thread start-up across batches.
    fn recommend_batch(
        &self,
        users: &[u32],
        k: usize,
        opts: &RecommendOptions<'_>,
        n_threads: usize,
    ) -> Vec<Vec<ScoredItem>> {
        self.recommend_batch_telemetry(users, k, opts, n_threads).0
    }

    /// [`Recommender::recommend_batch`] that also returns the batch's
    /// [`DpTelemetry`], merged across every worker context via
    /// [`DpTelemetry::merge`] — without this, the iteration counters of the
    /// internally-owned worker contexts would be dropped with them.
    fn recommend_batch_telemetry(
        &self,
        users: &[u32],
        k: usize,
        opts: &RecommendOptions<'_>,
        n_threads: usize,
    ) -> (Vec<Vec<ScoredItem>>, DpTelemetry) {
        let (lists, contexts) = parallel_map_indexed_with_states(
            users.len(),
            n_threads,
            ScoringContext::new,
            |ctx, idx| {
                let mut out = Vec::new();
                self.recommend_into(users[idx], k, opts, ctx, &mut out);
                out
            },
        );
        let mut dp = DpTelemetry::default();
        for ctx in &contexts {
            dp.merge(&ctx.dp_telemetry());
        }
        (lists, dp)
    }

    /// Score a batch of users, sharding the queries over `n_threads` scoped
    /// worker threads that each own one [`ScoringContext`].
    ///
    /// `results[j]` is exactly what `score_items(users[j])` returns — output
    /// is bit-identical to the sequential loop for every thread count, with
    /// workers pulling queries off a shared atomic cursor so stragglers
    /// cannot imbalance the shards.
    fn score_batch(&self, users: &[u32], n_threads: usize) -> Vec<Vec<f64>> {
        parallel_map_indexed(users.len(), n_threads, ScoringContext::new, |ctx, idx| {
            let mut out = Vec::new();
            self.score_into(users[idx], ctx, &mut out);
            out
        })
    }
}
