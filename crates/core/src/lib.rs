//! Long-tail recommenders — the primary contribution of *Challenging the
//! Long Tail Recommendation* (Yin et al., VLDB 2012) plus every baseline of
//! its evaluation.
//!
//! The paper's four variants:
//!
//! * **HT** ([`HittingTimeRecommender`], §3.3) — rank items by the hitting
//!   time of a random walk from the item to the query user;
//! * **AT** ([`AbsorbingTimeRecommender`], §4.1) — absorb at the user's
//!   rated set instead, with the truncated subgraph algorithm (Algorithm 1);
//! * **AC1 / AC2** ([`AbsorbingCostRecommender`], §4.2) — bias the walk by
//!   the *user entropy* of each hop, item-based (Eq. 10) or LDA topic-based
//!   (Eq. 11).
//!
//! Baselines: [`LdaRecommender`], [`PureSvdRecommender`], and
//! [`PageRankRecommender`] (plain and popularity-discounted, Eq. 15).
//!
//! All algorithms implement the [`Recommender`] trait, whose contract is
//! the paper's evaluation protocol: score every catalog item for a user,
//! rank, exclude the user's training items.
//!
//! ```
//! use longtail_core::{Recommender, AbsorbingTimeRecommender, GraphRecConfig};
//! use longtail_data::{Dataset, Rating};
//!
//! let ratings = [
//!     Rating { user: 0, item: 0, value: 5.0 },
//!     Rating { user: 0, item: 1, value: 4.0 },
//!     Rating { user: 1, item: 1, value: 5.0 },
//!     Rating { user: 1, item: 2, value: 5.0 },
//! ];
//! let train = Dataset::from_ratings(2, 3, &ratings);
//! let rec = AbsorbingTimeRecommender::new(&train, GraphRecConfig::default());
//! let top = rec.recommend(0, 1);
//! assert_eq!(top[0].item, 2); // the item user 0 hasn't seen yet
//! ```

#![warn(missing_docs)]

pub mod config;
pub mod recommenders;
pub mod topk;
mod walk_common;

pub use config::{AbsorbingCostConfig, GraphRecConfig};
pub use recommenders::{
    AbsorbingCostRecommender, AbsorbingTimeRecommender, AssociationRuleRecommender,
    EntropySource, HittingTimeRecommender, KnnRecommender, LdaRecommender, PageRankFlavor,
    PageRankRecommender, PureSvdRecommender, RuleConfig, UserSimilarity,
};
pub use topk::{rank_of, top_k, ScoredItem};

/// A top-N recommendation algorithm over a fixed training dataset.
///
/// The single required method is [`Recommender::score_items`]; ranking,
/// exclusion of training items and top-k selection are provided. Scores are
/// model-specific but always ordered "higher = more recommended"; items a
/// model cannot reach score `f64::NEG_INFINITY` and are never recommended.
pub trait Recommender {
    /// Short display name ("HT", "AC2", "PureSVD", ...) used in experiment
    /// tables.
    fn name(&self) -> &'static str;

    /// Score every item in the catalog for `user`.
    fn score_items(&self, user: u32) -> Vec<f64>;

    /// The items `user` rated in the training data (excluded from
    /// recommendations).
    fn rated_items(&self, user: u32) -> &[u32];

    /// Catalog size.
    fn n_items(&self) -> usize;

    /// Top-`k` recommendations for `user`, excluding training items.
    fn recommend(&self, user: u32, k: usize) -> Vec<ScoredItem> {
        let scores = self.score_items(user);
        let rated = self.rated_items(user);
        top_k(&scores, k, |i| rated.binary_search(&i).is_ok())
    }
}
