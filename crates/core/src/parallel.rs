//! Shared scoped-worker parallelism for per-user scoring loops.
//!
//! Batch scoring, list computation and the Recall@N protocol all shard the
//! same shape of work: an indexed set of independent queries, each worker
//! owning reusable per-worker state (a [`crate::ScoringContext`] and
//! friends). This module holds the one implementation of that idiom —
//! dynamic work-stealing off an atomic cursor, so stragglers cannot
//! imbalance the shards — with results slotted by index, making output
//! independent of the thread count.

/// Map `f` over `0..n`, sharding indices across `n_threads` scoped worker
/// threads that each own one state value from `init`.
///
/// `results[i]` is exactly `f(&mut state, i)`; ordering and values are
/// independent of `n_threads` (workers race only for *which* index they
/// process next). With `n_threads <= 1` (or `n <= 1`) everything runs on
/// the calling thread with no synchronization at all.
pub fn parallel_map_indexed<T, S>(
    n: usize,
    n_threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize) -> T + Sync,
) -> Vec<T>
where
    T: Send,
    S: Send,
{
    parallel_map_indexed_with_states(n, n_threads, init, f).0
}

/// [`parallel_map_indexed`] that also hands back every worker's final state
/// (in no particular order; one state per worker that ran, at least one).
///
/// This is how batch callers recover per-worker accumulators — e.g. the
/// [`crate::DpTelemetry`] counters a [`crate::ScoringContext`] collected
/// over its shard of the queries — that would otherwise be dropped with the
/// worker.
pub fn parallel_map_indexed_with_states<T, S>(
    n: usize,
    n_threads: usize,
    init: impl Fn() -> S + Sync,
    f: impl Fn(&mut S, usize) -> T + Sync,
) -> (Vec<T>, Vec<S>)
where
    T: Send,
    S: Send,
{
    let n_threads = n_threads.max(1).min(n.max(1));
    if n_threads <= 1 {
        let mut state = init();
        let results = (0..n).map(|i| f(&mut state, i)).collect();
        return (results, vec![state]);
    }

    let results = parking_lot::Mutex::new((0..n).map(|_| None).collect::<Vec<Option<T>>>());
    let states = parking_lot::Mutex::new(Vec::with_capacity(n_threads));
    let next = std::sync::atomic::AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..n_threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= n {
                        break;
                    }
                    let value = f(&mut state, idx);
                    results.lock()[idx] = Some(value);
                }
                states.lock().push(state);
            });
        }
    });
    let results = results
        .into_inner()
        .into_iter()
        .map(|v| v.expect("worker produced every index"))
        .collect();
    (results, states.into_inner())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_every_index_in_order() {
        for n_threads in [0usize, 1, 2, 7, 64] {
            let out = parallel_map_indexed(
                25,
                n_threads,
                || 0u32,
                |state, i| {
                    *state += 1;
                    (i, *state >= 1)
                },
            );
            assert_eq!(out.len(), 25, "{n_threads} threads");
            for (k, &(i, initialized)) in out.iter().enumerate() {
                assert_eq!(i, k);
                assert!(initialized);
            }
        }
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let out = parallel_map_indexed(0, 4, || (), |(), i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn states_cover_all_work() {
        for n_threads in [1usize, 3, 8] {
            let (out, states) = parallel_map_indexed_with_states(
                20,
                n_threads,
                || 0usize,
                |state, i| {
                    *state += 1;
                    i
                },
            );
            assert_eq!(out, (0..20).collect::<Vec<_>>());
            assert!(!states.is_empty() && states.len() <= n_threads.max(1));
            // Every index was processed by exactly one worker.
            assert_eq!(states.iter().sum::<usize>(), 20, "{n_threads} threads");
        }
        // Even a zero-length batch returns the initialized state.
        let (out, states) = parallel_map_indexed_with_states(0, 4, || 7u32, |_, i| i);
        assert!(out.is_empty());
        assert_eq!(states, vec![7]);
    }
}
