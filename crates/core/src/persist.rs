//! Model persistence: the [`Persistable`] capability that saves every
//! recommender family's trained state into the versioned, checksummed
//! binary snapshot format of [`longtail_graph::snapshot`] and loads it
//! back — bit-identically.
//!
//! The contract is *rankings survive the round trip*: for every family,
//! `load(save(model))` serves the same scores (and therefore the same
//! ranked lists) as the original, bit for bit. Two strategies get there:
//!
//! * **Deterministic rebuild** — families whose trained state is a pure,
//!   deterministic function of the rating matrix (HT, AT, PageRank,
//!   popularity) persist the `CsrMatrix` plus their configuration and
//!   re-derive the rest on load. Re-derivation is O(ratings), not
//!   O(training), so the restart-without-retrain property holds.
//! * **Verbatim state** — families whose training is expensive or seeded
//!   (kNN's quadratic neighbor search, rule mining, the randomized SVD
//!   sketch, collapsed-Gibbs LDA, AC2's topic entropies) persist the
//!   trained arrays themselves and restore them without recomputation.
//!
//! Each family declares a `KIND` tag and a `STATE_VERSION`; loading a
//! snapshot of the wrong family or schema version fails with the matching
//! typed [`SnapshotError`], as does any corrupt, truncated, or
//! structurally invalid payload — never a panic.

use crate::recommenders::{
    AbsorbingCostRecommender, AbsorbingTimeRecommender, AssociationRuleRecommender, EntropySource,
    HittingTimeRecommender, KnnRecommender, LdaRecommender, PageRankFlavor, PageRankRecommender,
    PopularityRecommender, PureSvdRecommender,
};
use crate::{AbsorbingCostConfig, GraphRecConfig, Recommender};
use longtail_data::Dataset;
use longtail_graph::snapshot::{Snapshot, SnapshotError, SnapshotWriter};
use longtail_graph::{BipartiteGraph, CsrMatrix};
use longtail_markov::PageRankConfig;
use longtail_topics::LdaModel;
use std::path::Path;

/// A recommender whose trained state can be saved to and restored from the
/// binary snapshot format, with bit-identical rankings after the round
/// trip.
///
/// Implementors provide the two section-level hooks
/// ([`Persistable::save_into`] / [`Persistable::load_from`]); the provided
/// methods handle the container — header, kind and state-version checks,
/// bytes and files.
pub trait Persistable: Recommender + Sized {
    /// Model-family tag recorded in the snapshot header (e.g. `"HT"`).
    const KIND: &'static str;
    /// Per-family schema version of the persisted sections; bumped whenever
    /// the section layout changes incompatibly.
    const STATE_VERSION: u32;

    /// Write this model's sections into `w`.
    fn save_into(&self, w: &mut SnapshotWriter);

    /// Reassemble a model from the sections of a parsed snapshot whose kind
    /// and state version have already been verified.
    fn load_from(snap: &Snapshot) -> Result<Self, SnapshotError>;

    /// Serialize to the complete snapshot byte layout.
    fn to_snapshot_bytes(&self) -> Vec<u8> {
        let mut w = SnapshotWriter::new(Self::KIND, Self::STATE_VERSION);
        self.save_into(&mut w);
        w.to_bytes()
    }

    /// Load from a parsed snapshot, verifying it holds this family at this
    /// state version first.
    fn from_snapshot(snap: &Snapshot) -> Result<Self, SnapshotError> {
        if snap.kind() != Self::KIND {
            return Err(SnapshotError::KindMismatch {
                expected: Self::KIND,
                found: snap.kind().to_string(),
            });
        }
        if snap.state_version() != Self::STATE_VERSION {
            return Err(SnapshotError::StateVersionMismatch {
                kind: Self::KIND.to_string(),
                found: snap.state_version(),
                supported: Self::STATE_VERSION,
            });
        }
        Self::load_from(snap)
    }

    /// Parse `bytes` as a snapshot and load this family from it.
    fn load_from_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        Self::from_snapshot(&Snapshot::from_bytes(bytes)?)
    }

    /// Serialize and write the snapshot to `path`.
    fn save_to_file(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        let mut w = SnapshotWriter::new(Self::KIND, Self::STATE_VERSION);
        self.save_into(&mut w);
        w.write_to_file(path)
    }

    /// Read, parse, and load a snapshot file.
    fn load_from_file(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_snapshot(&Snapshot::read_from_file(path)?)
    }
}

fn invalid(section: &str, reason: String) -> SnapshotError {
    SnapshotError::InvalidSection {
        section: section.to_string(),
        reason,
    }
}

/// Read a section expected to hold exactly `N` `u64`s.
fn u64_array<const N: usize>(snap: &Snapshot, name: &str) -> Result<[u64; N], SnapshotError> {
    let vals = snap.u64s(name)?;
    <[u64; N]>::try_from(vals.as_slice()).map_err(|_| {
        invalid(
            name,
            format!("expected {N} element(s), found {}", vals.len()),
        )
    })
}

/// Read a section expected to hold exactly `N` `f64`s.
fn f64_array<const N: usize>(snap: &Snapshot, name: &str) -> Result<[f64; N], SnapshotError> {
    let vals = snap.f64s(name)?;
    <[f64; N]>::try_from(vals.as_slice()).map_err(|_| {
        invalid(
            name,
            format!("expected {N} element(s), found {}", vals.len()),
        )
    })
}

/// Persist a jagged list of `(u32, f64)` rows (kNN neighbor lists, rule
/// lists) as three flat sections: `{prefix}.ptr`, `{prefix}.ids`,
/// `{prefix}.weights`.
fn save_jagged(w: &mut SnapshotWriter, prefix: &str, lists: &[Vec<(u32, f64)>]) {
    let total: usize = lists.iter().map(Vec::len).sum();
    let mut ptr = Vec::with_capacity(lists.len() + 1);
    let mut ids = Vec::with_capacity(total);
    let mut weights = Vec::with_capacity(total);
    ptr.push(0u64);
    for list in lists {
        for &(id, weight) in list {
            ids.push(id);
            weights.push(weight);
        }
        ptr.push(ids.len() as u64);
    }
    w.put_u64s(&format!("{prefix}.ptr"), &ptr);
    w.put_u32s(&format!("{prefix}.ids"), &ids);
    w.put_f64s(&format!("{prefix}.weights"), &weights);
}

/// Load a jagged list written by [`save_jagged`], expecting exactly `n`
/// rows whose ids stay below `id_bound`.
fn load_jagged(
    snap: &Snapshot,
    prefix: &str,
    n: usize,
    id_bound: usize,
) -> Result<Vec<Vec<(u32, f64)>>, SnapshotError> {
    let ptr_name = format!("{prefix}.ptr");
    let ptr = snap.usizes(&ptr_name)?;
    let ids = snap.u32s(&format!("{prefix}.ids"))?;
    let weights = snap.f64s(&format!("{prefix}.weights"))?;
    if ptr.len() != n + 1 {
        return Err(invalid(
            &ptr_name,
            format!("length {} != expected {} rows + 1", ptr.len(), n),
        ));
    }
    if ptr[0] != 0 || ptr.windows(2).any(|w| w[0] > w[1]) {
        return Err(invalid(
            &ptr_name,
            "pointers must start at 0 and be non-decreasing".to_string(),
        ));
    }
    let total = *ptr.last().unwrap();
    if ids.len() != total || weights.len() != total {
        return Err(invalid(
            &format!("{prefix}.ids"),
            format!(
                "pointers promise {total} entries, found {} ids / {} weights",
                ids.len(),
                weights.len()
            ),
        ));
    }
    if let Some(&bad) = ids.iter().find(|&&id| id as usize >= id_bound) {
        return Err(invalid(
            &format!("{prefix}.ids"),
            format!("id {bad} out of bounds ({id_bound})"),
        ));
    }
    Ok((0..n)
        .map(|r| {
            ids[ptr[r]..ptr[r + 1]]
                .iter()
                .copied()
                .zip(weights[ptr[r]..ptr[r + 1]].iter().copied())
                .collect()
        })
        .collect())
}

/// Shared load prologue: rating matrix → dataset.
fn load_dataset(snap: &Snapshot) -> Result<Dataset, SnapshotError> {
    Ok(Dataset::from_matrix(CsrMatrix::load_from(snap, "ratings")?))
}

fn load_graph_config(snap: &Snapshot) -> Result<GraphRecConfig, SnapshotError> {
    let [max_items, iterations] = u64_array(snap, "config")?;
    Ok(GraphRecConfig {
        max_items: max_items as usize,
        iterations: iterations as usize,
    })
}

impl Persistable for HittingTimeRecommender {
    const KIND: &'static str = "HT";
    const STATE_VERSION: u32 = 1;

    fn save_into(&self, w: &mut SnapshotWriter) {
        self.graph().user_items().save_into(w, "ratings");
        let config = self.config();
        w.put_u64s(
            "config",
            &[config.max_items as u64, config.iterations as u64],
        );
    }

    fn load_from(snap: &Snapshot) -> Result<Self, SnapshotError> {
        let train = load_dataset(snap)?;
        let config = load_graph_config(snap)?;
        Ok(Self::new(&train, config))
    }
}

impl Persistable for AbsorbingTimeRecommender {
    const KIND: &'static str = "AT";
    const STATE_VERSION: u32 = 1;

    fn save_into(&self, w: &mut SnapshotWriter) {
        self.graph().user_items().save_into(w, "ratings");
        let config = self.config();
        w.put_u64s(
            "config",
            &[config.max_items as u64, config.iterations as u64],
        );
    }

    fn load_from(snap: &Snapshot) -> Result<Self, SnapshotError> {
        let train = load_dataset(snap)?;
        let config = load_graph_config(snap)?;
        Ok(Self::new(&train, config))
    }
}

impl Persistable for AbsorbingCostRecommender {
    const KIND: &'static str = "AC";
    const STATE_VERSION: u32 = 1;

    fn save_into(&self, w: &mut SnapshotWriter) {
        self.user_items().save_into(w, "ratings");
        let config = self.config();
        w.put_u64s(
            "config",
            &[
                config.graph.max_items as u64,
                config.graph.iterations as u64,
            ],
        );
        w.put_f64s("item_entry_cost", &[config.item_entry_cost]);
        // The entropies are trained state: AC2's come from an LDA model
        // that is not persisted, so both variants restore them verbatim.
        w.put_f64s("user_entropy", self.user_entropies());
        let source = match self.entropy_source() {
            EntropySource::ItemBased => 0,
            EntropySource::TopicBased => 1,
        };
        w.put_u32s("entropy_source", &[source]);
    }

    fn load_from(snap: &Snapshot) -> Result<Self, SnapshotError> {
        let ratings = CsrMatrix::load_from(snap, "ratings")?;
        let graph_config = load_graph_config(snap)?;
        let [item_entry_cost] = f64_array(snap, "item_entry_cost")?;
        let user_entropy = snap.f64s("user_entropy")?;
        if user_entropy.len() != ratings.rows() {
            return Err(invalid(
                "user_entropy",
                format!("length {} != {} users", user_entropy.len(), ratings.rows()),
            ));
        }
        let source = match snap.u32s("entropy_source")?.as_slice() {
            [0] => EntropySource::ItemBased,
            [1] => EntropySource::TopicBased,
            other => {
                return Err(invalid(
                    "entropy_source",
                    format!("expected [0] or [1], found {other:?}"),
                ))
            }
        };
        Ok(Self::from_parts(
            BipartiteGraph::from_user_item_matrix(ratings),
            user_entropy,
            source,
            AbsorbingCostConfig {
                graph: graph_config,
                item_entry_cost,
            },
        ))
    }
}

impl Persistable for PageRankRecommender {
    const KIND: &'static str = "PR";
    const STATE_VERSION: u32 = 1;

    fn save_into(&self, w: &mut SnapshotWriter) {
        self.user_items().save_into(w, "ratings");
        let flavor = match self.flavor() {
            PageRankFlavor::Plain => 0,
            PageRankFlavor::Discounted => 1,
        };
        w.put_u32s("flavor", &[flavor]);
        let config = self.config();
        w.put_f64s("config.real", &[config.damping, config.tolerance]);
        w.put_u64s("config.max_iterations", &[config.max_iterations as u64]);
    }

    fn load_from(snap: &Snapshot) -> Result<Self, SnapshotError> {
        let train = load_dataset(snap)?;
        let flavor = match snap.u32s("flavor")?.as_slice() {
            [0] => PageRankFlavor::Plain,
            [1] => PageRankFlavor::Discounted,
            other => {
                return Err(invalid(
                    "flavor",
                    format!("expected [0] or [1], found {other:?}"),
                ))
            }
        };
        let [damping, tolerance] = f64_array(snap, "config.real")?;
        let [max_iterations] = u64_array(snap, "config.max_iterations")?;
        // The kernel and popularity vector are deterministic functions of
        // the rating matrix; `new` re-derives them in O(ratings).
        Ok(Self::new(
            &train,
            flavor,
            PageRankConfig {
                damping,
                tolerance,
                max_iterations: max_iterations as usize,
            },
        ))
    }
}

impl Persistable for PopularityRecommender {
    const KIND: &'static str = "POP";
    const STATE_VERSION: u32 = 1;

    fn save_into(&self, w: &mut SnapshotWriter) {
        self.user_items().save_into(w, "ratings");
    }

    fn load_from(snap: &Snapshot) -> Result<Self, SnapshotError> {
        // Counts and the popularity order are deterministic (count desc,
        // id asc), so the matrix alone reproduces the model exactly.
        Ok(Self::train(&load_dataset(snap)?))
    }
}

impl Persistable for KnnRecommender {
    const KIND: &'static str = "KNN";
    const STATE_VERSION: u32 = 1;

    fn save_into(&self, w: &mut SnapshotWriter) {
        self.user_items().save_into(w, "ratings");
        save_jagged(w, "neighbors", self.neighbor_lists());
    }

    fn load_from(snap: &Snapshot) -> Result<Self, SnapshotError> {
        let ratings = CsrMatrix::load_from(snap, "ratings")?;
        let neighbors = load_jagged(snap, "neighbors", ratings.rows(), ratings.rows())?;
        Ok(Self::from_parts(ratings, neighbors))
    }
}

impl Persistable for AssociationRuleRecommender {
    const KIND: &'static str = "RULES";
    const STATE_VERSION: u32 = 1;

    fn save_into(&self, w: &mut SnapshotWriter) {
        self.user_items().save_into(w, "ratings");
        save_jagged(w, "rules", self.rule_lists());
    }

    fn load_from(snap: &Snapshot) -> Result<Self, SnapshotError> {
        let ratings = CsrMatrix::load_from(snap, "ratings")?;
        let rules = load_jagged(snap, "rules", ratings.cols(), ratings.cols())?;
        Ok(Self::from_parts(ratings, rules))
    }
}

impl Persistable for PureSvdRecommender {
    const KIND: &'static str = "SVD";
    const STATE_VERSION: u32 = 1;

    fn save_into(&self, w: &mut SnapshotWriter) {
        self.user_items().save_into(w, "ratings");
        // The factor basis of a randomized SVD depends on the sketch; it
        // must be restored bit-exactly, not re-derived.
        w.put_f64s("item_factors", self.item_factors_flat());
        w.put_u64s("rank", &[self.rank() as u64]);
    }

    fn load_from(snap: &Snapshot) -> Result<Self, SnapshotError> {
        let ratings = CsrMatrix::load_from(snap, "ratings")?;
        let [rank] = u64_array(snap, "rank")?;
        let rank = rank as usize;
        let item_factors = snap.f64s("item_factors")?;
        if item_factors.len() != ratings.cols() * rank {
            return Err(invalid(
                "item_factors",
                format!(
                    "length {} != {} items x rank {rank}",
                    item_factors.len(),
                    ratings.cols()
                ),
            ));
        }
        Ok(Self::from_parts(ratings, item_factors, rank))
    }
}

impl Persistable for LdaRecommender {
    const KIND: &'static str = "LDA";
    const STATE_VERSION: u32 = 1;

    fn save_into(&self, w: &mut SnapshotWriter) {
        self.user_items().save_into(w, "ratings");
        let model = self.model();
        w.put_u64s("n_topics", &[model.n_topics() as u64]);
        w.put_f64s("theta", model.theta_flat());
        w.put_f64s("phi", model.phi_flat());
        w.put_f64s("log_likelihood", model.log_likelihood_trace());
    }

    fn load_from(snap: &Snapshot) -> Result<Self, SnapshotError> {
        let ratings = CsrMatrix::load_from(snap, "ratings")?;
        let [n_topics] = u64_array(snap, "n_topics")?;
        let n_topics = n_topics as usize;
        let theta = snap.f64s("theta")?;
        let phi = snap.f64s("phi")?;
        let log_likelihood = snap.f64s("log_likelihood")?;
        if theta.len() != ratings.rows() * n_topics {
            return Err(invalid(
                "theta",
                format!(
                    "length {} != {} users x {n_topics} topics",
                    theta.len(),
                    ratings.rows()
                ),
            ));
        }
        if phi.len() != n_topics * ratings.cols() {
            return Err(invalid(
                "phi",
                format!(
                    "length {} != {n_topics} topics x {} items",
                    phi.len(),
                    ratings.cols()
                ),
            ));
        }
        let model = LdaModel::from_parts(
            n_topics,
            ratings.rows(),
            ratings.cols(),
            theta,
            phi,
            log_likelihood,
        );
        Ok(Self::from_model(&Dataset::from_matrix(ratings), model))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_data::Rating;

    fn tiny_dataset() -> Dataset {
        let ratings: Vec<Rating> = [
            (0, 0, 5.0),
            (0, 1, 4.0),
            (0, 2, 3.0),
            (1, 1, 5.0),
            (1, 2, 4.0),
            (1, 3, 2.0),
            (2, 0, 1.0),
            (2, 3, 5.0),
            (2, 4, 4.0),
            (3, 2, 2.0),
            (3, 4, 5.0),
        ]
        .iter()
        .map(|&(user, item, value)| Rating { user, item, value })
        .collect();
        Dataset::from_ratings(4, 5, &ratings)
    }

    fn assert_round_trip<R: Persistable>(model: &R) {
        let bytes = model.to_snapshot_bytes();
        let back = R::load_from_bytes(bytes).unwrap();
        for user in 0..4u32 {
            let original = model.recommend(user, 5);
            let reloaded = back.recommend(user, 5);
            assert_eq!(original.len(), reloaded.len(), "user {user}");
            for (a, b) in original.iter().zip(&reloaded) {
                assert_eq!(a.item, b.item, "user {user}");
                assert_eq!(
                    a.score.to_bits(),
                    b.score.to_bits(),
                    "user {user}: scores must be bit-identical"
                );
            }
        }
    }

    #[test]
    fn every_family_round_trips_bit_identically() {
        let train = tiny_dataset();
        let config = GraphRecConfig {
            max_items: 10,
            iterations: 8,
        };
        assert_round_trip(&HittingTimeRecommender::new(&train, config));
        assert_round_trip(&AbsorbingTimeRecommender::new(&train, config));
        let ac_config = AbsorbingCostConfig {
            graph: config,
            item_entry_cost: 1.0,
        };
        assert_round_trip(&AbsorbingCostRecommender::item_entropy(&train, ac_config));
        assert_round_trip(&AbsorbingCostRecommender::topic_entropy_auto(
            &train, 2, ac_config,
        ));
        assert_round_trip(&PageRankRecommender::plain(&train));
        assert_round_trip(&PageRankRecommender::discounted(&train));
        assert_round_trip(&PopularityRecommender::train(&train));
        assert_round_trip(&KnnRecommender::train(
            &train,
            2,
            crate::recommenders::UserSimilarity::Cosine,
        ));
        assert_round_trip(&AssociationRuleRecommender::train(
            &train,
            &crate::recommenders::RuleConfig {
                min_support: 1,
                min_confidence: 0.0,
            },
        ));
        assert_round_trip(&PureSvdRecommender::train(&train, 2));
        assert_round_trip(&LdaRecommender::train(&train, 2));
    }

    #[test]
    fn kind_and_state_version_mismatches_are_typed() {
        let train = tiny_dataset();
        let pop = PopularityRecommender::train(&train);
        let bytes = pop.to_snapshot_bytes();
        assert!(matches!(
            KnnRecommender::load_from_bytes(bytes),
            Err(SnapshotError::KindMismatch {
                expected: "KNN",
                ..
            })
        ));
        // Wrong state version: re-wrap the same sections under a bumped one.
        let mut w = SnapshotWriter::new("POP", 999);
        pop.save_into(&mut w);
        assert!(matches!(
            PopularityRecommender::load_from_bytes(w.to_bytes()),
            Err(SnapshotError::StateVersionMismatch { found: 999, .. })
        ));
    }

    #[test]
    fn structurally_invalid_payloads_fail_typed() {
        let train = tiny_dataset();
        // Neighbor id out of bounds.
        let knn = KnnRecommender::train(&train, 2, crate::recommenders::UserSimilarity::Cosine);
        let mut w = SnapshotWriter::new("KNN", 1);
        knn.user_items().save_into(&mut w, "ratings");
        save_jagged(
            &mut w,
            "neighbors",
            &[vec![(99, 1.0)], vec![], vec![], vec![]],
        );
        assert!(matches!(
            KnnRecommender::load_from_bytes(w.to_bytes()),
            Err(SnapshotError::InvalidSection { .. })
        ));
        // SVD factor matrix with the wrong length.
        let svd = PureSvdRecommender::train(&train, 2);
        let mut w = SnapshotWriter::new("SVD", 1);
        svd.user_items().save_into(&mut w, "ratings");
        w.put_f64s("item_factors", &[1.0, 2.0, 3.0]);
        w.put_u64s("rank", &[2]);
        assert!(matches!(
            PureSvdRecommender::load_from_bytes(w.to_bytes()),
            Err(SnapshotError::InvalidSection { .. })
        ));
        // Missing section.
        let mut w = SnapshotWriter::new("POP", 1);
        w.put_u64s("unrelated", &[1]);
        assert!(matches!(
            PopularityRecommender::load_from_bytes(w.to_bytes()),
            Err(SnapshotError::MissingSection(_))
        ));
    }

    #[test]
    fn file_round_trip_reports_io_errors() {
        let train = tiny_dataset();
        let pop = PopularityRecommender::train(&train);
        let dir = std::env::temp_dir().join("longtail_persist_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("pop.snap");
        pop.save_to_file(&path).unwrap();
        let back = PopularityRecommender::load_from_file(&path).unwrap();
        assert_eq!(back.recommend(0, 3), pop.recommend(0, 3));
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            PopularityRecommender::load_from_file(&path),
            Err(SnapshotError::Io(_))
        ));
    }
}
