//! AC — the entropy-biased Absorbing Cost recommenders (§4.2).
//!
//! Refines AT by charging the walk the *target user's entropy* when it hops
//! from an item into a user (Eq. 9): passing through an omnivorous user is
//! expensive, passing through a taste-specific user is cheap, so items
//! reached through specialists — strong taste evidence — rank first. Two
//! entropy sources give the paper's two variants:
//!
//! * **AC1** — item-based entropy (Eq. 10) straight off the rating rows;
//! * **AC2** — topic-based entropy (Eq. 11) from the LDA model of §4.2.3,
//!   the best performer in every experiment of §5.

use crate::config::{AbsorbingCostConfig, DpStopping, RecommendOptions};
use crate::context::ScoringContext;
use crate::walk_common::{
    collect_walk_topk, grow_absorbing_subgraph, reset_scores, run_truncated_walk,
    write_scores_from_scratch, WalkCostModel, WalkMode,
};
use crate::{Recommender, ScoredItem};
use longtail_data::Dataset;
use longtail_graph::{BipartiteGraph, Decayed, EdgeDelta, GraphView, OverlayGraph};
use longtail_topics::{item_based_entropy, topic_based_entropy, LdaConfig, LdaModel};

/// Which entropy estimator an [`AbsorbingCostRecommender`] uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntropySource {
    /// Item-based entropy (Eq. 10) — the AC1 variant.
    ItemBased,
    /// Topic-based entropy from an LDA model (Eq. 11) — the AC2 variant.
    TopicBased,
}

/// The Absorbing Cost recommender (AC1 or AC2 depending on construction).
#[derive(Debug, Clone)]
pub struct AbsorbingCostRecommender {
    graph: BipartiteGraph,
    user_entropy: Vec<f64>,
    source: EntropySource,
    config: AbsorbingCostConfig,
}

impl AbsorbingCostRecommender {
    /// AC1: item-based user entropy computed directly from the training
    /// ratings.
    pub fn item_entropy(train: &Dataset, config: AbsorbingCostConfig) -> Self {
        let user_entropy = item_based_entropy(train.user_items());
        Self {
            graph: train.to_graph(),
            user_entropy,
            source: EntropySource::ItemBased,
            config,
        }
    }

    /// AC2: topic-based user entropy from a trained LDA model.
    ///
    /// # Panics
    ///
    /// Panics if the model's user count differs from the dataset's.
    pub fn topic_entropy(train: &Dataset, model: &LdaModel, config: AbsorbingCostConfig) -> Self {
        assert_eq!(
            model.n_users(),
            train.n_users(),
            "LDA model and dataset disagree on user count"
        );
        let user_entropy = topic_based_entropy(model);
        Self {
            graph: train.to_graph(),
            user_entropy,
            source: EntropySource::TopicBased,
            config,
        }
    }

    /// AC2 convenience: train the LDA model internally with the paper's
    /// default priors.
    pub fn topic_entropy_auto(
        train: &Dataset,
        n_topics: usize,
        config: AbsorbingCostConfig,
    ) -> Self {
        let model = LdaModel::train(train.user_items(), &LdaConfig::with_topics(n_topics));
        Self::topic_entropy(train, &model, config)
    }

    /// Reassemble from persisted state — the snapshot load path. The
    /// entropies were computed at training time (AC2's depend on an LDA
    /// model that is not persisted), so they are restored verbatim.
    pub(crate) fn from_parts(
        graph: BipartiteGraph,
        user_entropy: Vec<f64>,
        source: EntropySource,
        config: AbsorbingCostConfig,
    ) -> Self {
        Self {
            graph,
            user_entropy,
            source,
            config,
        }
    }

    /// Training configuration (the snapshot save path persists it).
    pub(crate) fn config(&self) -> AbsorbingCostConfig {
        self.config
    }

    /// Training matrix (the snapshot save path persists it).
    pub(crate) fn user_items(&self) -> &longtail_graph::CsrMatrix {
        self.graph.user_items()
    }

    /// Which entropy estimator this instance uses.
    pub fn entropy_source(&self) -> EntropySource {
        self.source
    }

    /// The per-user entropies in use.
    pub fn user_entropies(&self) -> &[f64] {
        &self.user_entropy
    }

    /// Fill `costs` with per-local-node entry costs for the current
    /// subgraph: entering user `u` costs `entropy_of(u)`, entering an item
    /// costs the constant `C` (Eq. 9). `n_users` is the view's user count
    /// (which may exceed the base graph's when a delta adds users).
    fn fill_local_costs(
        &self,
        n_users: usize,
        entropy_of: &dyn Fn(u32) -> f64,
        global_ids: &[usize],
        costs: &mut Vec<f64>,
    ) {
        costs.clear();
        costs.extend(global_ids.iter().map(|&global| {
            if global < n_users {
                entropy_of(global as u32)
            } else {
                self.config.item_entry_cost
            }
        }));
    }

    /// Entry cost of `user` when serving over a base + `overlay` merge.
    ///
    /// * **AC1** — a user untouched by the delta keeps their precomputed
    ///   Eq. 10 entropy; a touched (or delta-only) user's entropy is
    ///   recomputed from the merged rating row, term-for-term in the same
    ///   ascending-item order as
    ///   [`item_based_entropy`], so it matches a full rebuild exactly.
    /// * **AC2** — topic entropies come from the fixed LDA model, which the
    ///   delta does not retrain: base users keep their model entropy (what
    ///   a rebuild sharing the model computes); delta-only users, absent
    ///   from the model, fall back to the mean base entropy — neutral
    ///   until the next compaction retrains.
    fn overlay_entropy(&self, overlay: &OverlayGraph<'_>, user: u32) -> f64 {
        let in_base = (user as usize) < self.graph.n_users();
        match self.source {
            EntropySource::ItemBased => {
                if in_base && !overlay.delta().touches_user(user) {
                    return self.user_entropy[user as usize];
                }
                let mut total = 0.0;
                overlay.for_each_rated(user, |_, w| total += w);
                if total <= 0.0 {
                    return 0.0;
                }
                let mut h = 0.0;
                overlay.for_each_rated(user, |_, w| {
                    if w > 0.0 {
                        let p = w / total;
                        h += -p * p.ln();
                    }
                });
                h
            }
            EntropySource::TopicBased => {
                if in_base {
                    self.user_entropy[user as usize]
                } else {
                    let n = self.user_entropy.len();
                    if n == 0 {
                        0.0
                    } else {
                        self.user_entropy.iter().sum::<f64>() / n as f64
                    }
                }
            }
        }
    }

    /// Run the entropy-biased absorbing-cost walk for `user` under `mode`
    /// and the request's `stopping` policy, leaving per-node costs in
    /// `ctx.walk`. Returns `false` when the user rated nothing (no
    /// absorbing set), or
    /// when the request's deadline cancelled the walk (the values then
    /// rank nothing — see [`crate::RecommendOptions::deadline`]).
    #[allow(clippy::too_many_arguments)]
    fn run_walk<G: GraphView>(
        &self,
        view: &G,
        entropy_of: &dyn Fn(u32) -> f64,
        user: u32,
        mode: WalkMode<'_>,
        stopping: DpStopping,
        deadline: Option<std::time::Instant>,
        ctx: &mut ScoringContext,
    ) -> bool {
        if !grow_absorbing_subgraph(view, user, self.config.graph.max_items, ctx) {
            return false;
        }
        self.fill_local_costs(
            view.n_users(),
            entropy_of,
            ctx.subgraph.global_ids(),
            &mut ctx.entry_costs,
        );
        let run = run_truncated_walk(
            view,
            WalkCostModel::EntryCosts,
            self.config.graph.iterations,
            mode,
            stopping,
            deadline,
            ctx,
        );
        // A deadline-cancelled run ranks partially-iterated values:
        // report it like an empty walk so no caller ever collects a
        // garbage list (the telemetry records the cancellation).
        !run.cancelled
    }

    /// The fused serving path over any [`GraphView`] — the frozen base, a
    /// base + delta overlay, or either under recency decay.
    #[allow(clippy::too_many_arguments)]
    fn serve_view<G: GraphView>(
        &self,
        view: &G,
        entropy_of: &dyn Fn(u32) -> f64,
        user: u32,
        k: usize,
        rated: &[u32],
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        // Fused: only subgraph-visited items can carry a finite absorbing
        // cost, so the collector sees the visited neighborhood only. With
        // an enabled re-rank policy the collector (and the rank-stability
        // probe, via the mode's k) is armed for the top-M pool instead of
        // k.
        let fetch = opts.fetch(k);
        ctx.topk.reset(fetch);
        let mode = WalkMode::Serving {
            k: fetch,
            rated,
            extra: opts.exclude.as_slice(),
            rated_absorbing: true,
        };
        if self.run_walk(
            view,
            entropy_of,
            user,
            mode,
            opts.stopping,
            opts.deadline,
            ctx,
        ) {
            collect_walk_topk(
                view,
                &ctx.subgraph,
                &ctx.walk,
                rated,
                opts.exclude.as_slice(),
                &mut ctx.topk,
            );
        }
        ctx.topk.drain_sorted_into(out);
        opts.finalize_topk(k, ctx, out);
    }
}

impl Recommender for AbsorbingCostRecommender {
    fn name(&self) -> &'static str {
        match self.source {
            EntropySource::ItemBased => "AC1",
            EntropySource::TopicBased => "AC2",
        }
    }

    fn score_into(&self, user: u32, ctx: &mut ScoringContext, out: &mut Vec<f64>) {
        reset_scores(&self.graph, out);
        let base_entropy = |u: u32| self.user_entropy[u as usize];
        if self.run_walk(
            &self.graph,
            &base_entropy,
            user,
            WalkMode::Reference,
            DpStopping::Fixed,
            None,
            ctx,
        ) {
            write_scores_from_scratch(&self.graph, &ctx.subgraph, ctx.walk.values(), out);
        }
    }

    fn recommend_into(
        &self,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        let rated = self.rated_items(user);
        let base_entropy = |u: u32| self.user_entropy[u as usize];
        match opts.recency {
            None => self.serve_view(&self.graph, &base_entropy, user, k, rated, opts, ctx, out),
            Some(decay) => self.serve_view(
                &Decayed::new(&self.graph, decay),
                &base_entropy,
                user,
                k,
                rated,
                opts,
                ctx,
                out,
            ),
        }
    }

    fn recommend_delta_into(
        &self,
        delta: &EdgeDelta,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        if delta.is_empty() {
            return self.recommend_into(user, k, opts, ctx, out);
        }
        let overlay = OverlayGraph::new(&self.graph, delta);
        // Entropies always come from the *undecayed* merged ratings (Eq. 10
        // is defined on the rating distribution, not on decayed weights),
        // matching what a rebuild on the union computes.
        let entropy = |u: u32| self.overlay_entropy(&overlay, u);
        // The absorbing set and exclusion list are both the merged base +
        // delta rated set (the subgraph growth re-reads it off the view).
        let mut merged = std::mem::take(&mut ctx.merged_rated);
        merged.clear();
        overlay.for_each_rated(user, |i, _| merged.push(i));
        match opts.recency {
            None => self.serve_view(&overlay, &entropy, user, k, &merged, opts, ctx, out),
            Some(decay) => self.serve_view(
                &Decayed::new(&overlay, decay),
                &entropy,
                user,
                k,
                &merged,
                opts,
                ctx,
                out,
            ),
        }
        ctx.merged_rated = merged;
    }

    fn rated_items(&self, user: u32) -> &[u32] {
        self.graph.user_items().row(user as usize).0
    }

    fn n_items(&self) -> usize {
        self.graph.n_items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GraphRecConfig;
    use longtail_data::Rating;

    fn figure2() -> Dataset {
        let ratings = [
            (0, 0, 5.0),
            (0, 1, 3.0),
            (0, 4, 3.0),
            (0, 5, 5.0),
            (1, 0, 5.0),
            (1, 1, 4.0),
            (1, 2, 5.0),
            (1, 4, 4.0),
            (1, 5, 5.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
            (2, 2, 4.0),
            (3, 2, 5.0),
            (3, 3, 5.0),
            (4, 1, 4.0),
            (4, 2, 5.0),
        ]
        .map(|(user, item, value)| Rating { user, item, value });
        Dataset::from_ratings(5, 6, &ratings)
    }

    #[test]
    fn ac1_still_finds_the_niche_item() {
        let rec =
            AbsorbingCostRecommender::item_entropy(&figure2(), AbsorbingCostConfig::default());
        assert_eq!(rec.name(), "AC1");
        let top = rec.recommend(4, 1);
        assert_eq!(top[0].item, 3, "expected M4, got {top:?}");
    }

    #[test]
    fn ac2_constructs_and_recommends() {
        let rec = AbsorbingCostRecommender::topic_entropy_auto(
            &figure2(),
            2,
            AbsorbingCostConfig::default(),
        );
        assert_eq!(rec.name(), "AC2");
        assert_eq!(rec.entropy_source(), EntropySource::TopicBased);
        let top = rec.recommend(4, 2);
        assert!(!top.is_empty());
        assert!(top.iter().all(|s| s.item != 1 && s.item != 2));
    }

    #[test]
    fn entropy_bias_penalizes_paths_through_omnivores() {
        // §4.2's motivating example: M3 is rated 5 by both U2 (omnivore,
        // 5 ratings spread over genres) and U4 (specialist, 2 ratings).
        // Jumping M3→U4 must be cheaper than M3→U2.
        let d = figure2();
        let rec = AbsorbingCostRecommender::item_entropy(&d, AbsorbingCostConfig::default());
        let e = rec.user_entropies();
        assert!(
            e[3] < e[1],
            "specialist U4 entropy {} should undercut omnivore U2 {}",
            e[3],
            e[1]
        );
    }

    #[test]
    fn unit_entropy_reduces_to_absorbing_time() {
        // If every user had entropy == C == 1, AC degenerates to AT.
        let d = figure2();
        let mut rec = AbsorbingCostRecommender::item_entropy(&d, AbsorbingCostConfig::default());
        rec.user_entropy = vec![1.0; d.n_users()];
        let at = crate::recommenders::absorbing_time::AbsorbingTimeRecommender::new(
            &d,
            GraphRecConfig::default(),
        );
        let sc = rec.score_items(4);
        let st = at.score_items(4);
        for i in 0..d.n_items() {
            if sc[i].is_finite() && st[i].is_finite() {
                assert!(
                    (sc[i] - st[i]).abs() < 1e-10,
                    "item {i}: {} vs {}",
                    sc[i],
                    st[i]
                );
            }
        }
    }

    #[test]
    fn adaptive_serving_matches_fixed_tau_ranking() {
        use crate::config::{DpStopping, GraphRecConfig};
        let rec = AbsorbingCostRecommender::item_entropy(
            &figure2(),
            AbsorbingCostConfig {
                graph: GraphRecConfig {
                    max_items: 6000,
                    iterations: 120,
                },
                item_entry_cost: 1.0,
            },
        );
        let mut fixed = ScoringContext::new();
        let mut adaptive = ScoringContext::new();
        for u in 0..5u32 {
            let f: Vec<u32> = rec
                .recommend_with(
                    u,
                    6,
                    &RecommendOptions::with_stopping(DpStopping::Fixed),
                    &mut fixed,
                )
                .iter()
                .map(|s| s.item)
                .collect();
            let a: Vec<u32> = rec
                .recommend_with(u, 6, &RecommendOptions::default(), &mut adaptive)
                .iter()
                .map(|s| s.item)
                .collect();
            assert_eq!(a, f, "user {u}");
        }
        let t = adaptive.dp_telemetry();
        assert!(t.iterations_run < t.iterations_budget, "{t:?}");
    }

    #[test]
    fn unrated_user_gets_no_recommendations() {
        let ratings = [Rating {
            user: 0,
            item: 0,
            value: 5.0,
        }];
        let d = Dataset::from_ratings(2, 2, &ratings);
        let rec = AbsorbingCostRecommender::item_entropy(&d, AbsorbingCostConfig::default());
        assert!(rec.recommend(1, 3).is_empty());
    }
}
