//! AT — the Absorbing Time recommender (§4.1, Algorithm 1).
//!
//! Item-based refinement of HT: instead of walking to the query *user*, the
//! walk is absorbed by the query user's whole rated set `S_q`. Items have
//! more ratings than users on average, so anchoring on `S_q` exposes more
//! signal (the paper's Problem 3), and the paper finds AT beats HT on every
//! metric.

use crate::config::{DpStopping, GraphRecConfig, RecommendOptions};
use crate::context::ScoringContext;
use crate::walk_common::{
    collect_walk_topk, grow_absorbing_subgraph, reset_scores, run_truncated_walk,
    write_scores_from_scratch, WalkCostModel, WalkMode,
};
use crate::{Recommender, ScoredItem};
use longtail_data::Dataset;
use longtail_graph::{BipartiteGraph, Decayed, EdgeDelta, GraphView, OverlayGraph};

/// The item-based Absorbing Time recommender.
#[derive(Debug, Clone)]
pub struct AbsorbingTimeRecommender {
    graph: BipartiteGraph,
    config: GraphRecConfig,
}

impl AbsorbingTimeRecommender {
    /// Build from training data.
    pub fn new(train: &Dataset, config: GraphRecConfig) -> Self {
        Self {
            graph: train.to_graph(),
            config,
        }
    }

    /// The training graph.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Training configuration (the snapshot save path persists it).
    pub(crate) fn config(&self) -> GraphRecConfig {
        self.config
    }

    /// Absorbing times of every item for `user` (lower = better), `+∞` for
    /// unreachable items. Exposed for tests and the µ-sweep experiment.
    pub fn absorbing_times(&self, user: u32) -> Vec<f64> {
        self.score_items(user).iter().map(|s| -s).collect()
    }

    /// Run the absorbing-time walk for `user` under `mode` and the
    /// request's `stopping` policy, leaving per-node times in `ctx.walk`.
    /// Returns `false` when the user rated nothing (no absorbing set), or
    /// when the request's deadline cancelled the walk (the values then
    /// rank nothing — see [`crate::RecommendOptions::deadline`]).
    #[allow(clippy::too_many_arguments)]
    fn run_walk<G: GraphView>(
        &self,
        view: &G,
        user: u32,
        mode: WalkMode<'_>,
        stopping: DpStopping,
        deadline: Option<std::time::Instant>,
        ctx: &mut ScoringContext,
    ) -> bool {
        if !grow_absorbing_subgraph(view, user, self.config.max_items, ctx) {
            return false;
        }
        let run = run_truncated_walk(
            view,
            WalkCostModel::Unit,
            self.config.iterations,
            mode,
            stopping,
            deadline,
            ctx,
        );
        // A deadline-cancelled run ranks partially-iterated values:
        // report it like an empty walk so no caller ever collects a
        // garbage list (the telemetry records the cancellation).
        !run.cancelled
    }

    /// The fused serving path over any [`GraphView`] — the frozen base, a
    /// base + delta overlay, or either under recency decay.
    #[allow(clippy::too_many_arguments)]
    fn serve_view<G: GraphView>(
        &self,
        view: &G,
        user: u32,
        k: usize,
        rated: &[u32],
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        // Fused: only subgraph-visited items can score; the rated set is
        // absorbing (time 0) but also excluded, so it never surfaces.
        // With an enabled re-rank policy the collector (and the
        // rank-stability probe, via the mode's k) is armed for the top-M
        // pool instead of k.
        let fetch = opts.fetch(k);
        ctx.topk.reset(fetch);
        let mode = WalkMode::Serving {
            k: fetch,
            rated,
            extra: opts.exclude.as_slice(),
            rated_absorbing: true,
        };
        if self.run_walk(view, user, mode, opts.stopping, opts.deadline, ctx) {
            collect_walk_topk(
                view,
                &ctx.subgraph,
                &ctx.walk,
                rated,
                opts.exclude.as_slice(),
                &mut ctx.topk,
            );
        }
        ctx.topk.drain_sorted_into(out);
        opts.finalize_topk(k, ctx, out);
    }
}

impl Recommender for AbsorbingTimeRecommender {
    fn name(&self) -> &'static str {
        "AT"
    }

    fn score_into(&self, user: u32, ctx: &mut ScoringContext, out: &mut Vec<f64>) {
        reset_scores(&self.graph, out);
        if self.run_walk(
            &self.graph,
            user,
            WalkMode::Reference,
            DpStopping::Fixed,
            None,
            ctx,
        ) {
            write_scores_from_scratch(&self.graph, &ctx.subgraph, ctx.walk.values(), out);
        }
    }

    fn recommend_into(
        &self,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        let rated = self.rated_items(user);
        match opts.recency {
            None => self.serve_view(&self.graph, user, k, rated, opts, ctx, out),
            Some(decay) => self.serve_view(
                &Decayed::new(&self.graph, decay),
                user,
                k,
                rated,
                opts,
                ctx,
                out,
            ),
        }
    }

    fn recommend_delta_into(
        &self,
        delta: &EdgeDelta,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        if delta.is_empty() {
            return self.recommend_into(user, k, opts, ctx, out);
        }
        let overlay = OverlayGraph::new(&self.graph, delta);
        // The absorbing set and exclusion list are both the merged base +
        // delta rated set (the subgraph growth re-reads it off the view).
        let mut merged = std::mem::take(&mut ctx.merged_rated);
        merged.clear();
        overlay.for_each_rated(user, |i, _| merged.push(i));
        match opts.recency {
            None => self.serve_view(&overlay, user, k, &merged, opts, ctx, out),
            Some(decay) => self.serve_view(
                &Decayed::new(&overlay, decay),
                user,
                k,
                &merged,
                opts,
                ctx,
                out,
            ),
        }
        ctx.merged_rated = merged;
    }

    fn rated_items(&self, user: u32) -> &[u32] {
        self.graph.user_items().row(user as usize).0
    }

    fn n_items(&self) -> usize {
        self.graph.n_items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_data::Rating;

    fn figure2() -> Dataset {
        let ratings = [
            (0, 0, 5.0),
            (0, 1, 3.0),
            (0, 4, 3.0),
            (0, 5, 5.0),
            (1, 0, 5.0),
            (1, 1, 4.0),
            (1, 2, 5.0),
            (1, 4, 4.0),
            (1, 5, 5.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
            (2, 2, 4.0),
            (3, 2, 5.0),
            (3, 3, 5.0),
            (4, 1, 4.0),
            (4, 2, 5.0),
        ]
        .map(|(user, item, value)| Rating { user, item, value });
        Dataset::from_ratings(5, 6, &ratings)
    }

    #[test]
    fn niche_item_connected_through_rated_set_wins() {
        // U5's rated set is {M2, M3}; M4 hangs off M3 through U4 while
        // M1/M5/M6 sit in the dense popular cluster. AT must surface M4.
        let rec = AbsorbingTimeRecommender::new(
            &figure2(),
            GraphRecConfig {
                max_items: 6000,
                iterations: 30,
            },
        );
        let top = rec.recommend(4, 1);
        assert_eq!(top[0].item, 3, "expected M4, got {top:?}");
    }

    #[test]
    fn absorbing_items_never_reappear() {
        let rec = AbsorbingTimeRecommender::new(&figure2(), GraphRecConfig::default());
        let top = rec.recommend(4, 6);
        assert!(top.iter().all(|s| s.item != 1 && s.item != 2));
    }

    #[test]
    fn times_positive_for_candidates() {
        let rec = AbsorbingTimeRecommender::new(&figure2(), GraphRecConfig::default());
        let times = rec.absorbing_times(0);
        // Every unrated-but-reachable item has a strictly positive time.
        for (i, &t) in times.iter().enumerate() {
            if t.is_finite() && !rec.rated_items(0).contains(&(i as u32)) {
                assert!(t > 0.0, "item {i} has non-positive time {t}");
            }
        }
    }

    #[test]
    fn unrated_user_scores_nothing() {
        let ratings = [Rating {
            user: 0,
            item: 0,
            value: 5.0,
        }];
        let d = Dataset::from_ratings(2, 3, &ratings);
        let rec = AbsorbingTimeRecommender::new(&d, GraphRecConfig::default());
        assert!(rec.recommend(1, 3).is_empty());
    }

    #[test]
    fn more_iterations_refine_but_keep_order_stable() {
        let d = figure2();
        let short = AbsorbingTimeRecommender::new(
            &d,
            GraphRecConfig {
                max_items: 6000,
                iterations: 15,
            },
        );
        let long = AbsorbingTimeRecommender::new(
            &d,
            GraphRecConfig {
                max_items: 6000,
                iterations: 200,
            },
        );
        let a: Vec<u32> = short.recommend(4, 4).iter().map(|s| s.item).collect();
        let b: Vec<u32> = long.recommend(4, 4).iter().map(|s| s.item).collect();
        assert_eq!(a, b, "τ=15 ranking should already be stable");
    }
}
