//! Association-rule recommendation (support/confidence co-occurrence).
//!
//! The paper's §1 explains why rule mining cannot serve the tail: a rule
//! `item1 ⇒ item2` needs high *support*, so both items must be popular —
//! "they typically recommend rather generic, popular items". This
//! implementation mines pairwise rules with the usual support/confidence
//! thresholds and exists to demonstrate exactly that bias against the
//! walk-based methods.

use crate::{RecommendOptions, Recommender, ScoredItem, ScoringContext};
use longtail_data::Dataset;
use longtail_graph::CsrMatrix;

/// Pairwise association-rule recommender.
#[derive(Debug, Clone)]
pub struct AssociationRuleRecommender {
    user_items: CsrMatrix,
    /// For each antecedent item: consequents with rule confidence, sorted by
    /// item id.
    rules: Vec<Vec<(u32, f64)>>,
}

/// Mining thresholds.
#[derive(Debug, Clone, Copy)]
pub struct RuleConfig {
    /// Minimum number of users who rated *both* items (absolute support).
    pub min_support: u32,
    /// Minimum confidence `P(j | i) = support(i, j) / support(i)`.
    pub min_confidence: f64,
}

impl Default for RuleConfig {
    fn default() -> Self {
        Self {
            min_support: 3,
            min_confidence: 0.1,
        }
    }
}

impl AssociationRuleRecommender {
    /// Mine all pairwise rules above the thresholds.
    ///
    /// O(Σ_u activity(u)²) — quadratic in per-user basket size, the usual
    /// cost of pairwise co-occurrence counting.
    pub fn train(train: &Dataset, config: &RuleConfig) -> Self {
        let m = train.user_items();
        let n_items = m.cols();
        let popularity = train.item_popularity();

        // Count co-occurrences via a sparse accumulation per item pair.
        let mut cooc: std::collections::HashMap<(u32, u32), u32> = std::collections::HashMap::new();
        for u in 0..m.rows() {
            let (items, _) = m.row(u);
            for (a_idx, &a) in items.iter().enumerate() {
                for &b in &items[a_idx + 1..] {
                    *cooc.entry((a, b)).or_insert(0) += 1;
                }
            }
        }

        let mut rules: Vec<Vec<(u32, f64)>> = vec![Vec::new(); n_items];
        for (&(a, b), &support) in &cooc {
            if support < config.min_support {
                continue;
            }
            let conf_ab = support as f64 / popularity[a as usize].max(1) as f64;
            let conf_ba = support as f64 / popularity[b as usize].max(1) as f64;
            if conf_ab >= config.min_confidence {
                rules[a as usize].push((b, conf_ab));
            }
            if conf_ba >= config.min_confidence {
                rules[b as usize].push((a, conf_ba));
            }
        }
        for r in rules.iter_mut() {
            r.sort_unstable_by_key(|&(b, _)| b);
        }
        Self {
            user_items: m.clone(),
            rules,
        }
    }

    /// Reassemble from persisted state — the snapshot load path. Rule
    /// lists are restored verbatim (confidences depend only on the mined
    /// counts, but re-mining is the work snapshots exist to avoid).
    pub(crate) fn from_parts(user_items: CsrMatrix, rules: Vec<Vec<(u32, f64)>>) -> Self {
        Self { user_items, rules }
    }

    /// The mined rules with `antecedent` on the left side, as
    /// `(consequent, confidence)`.
    pub fn rules_from(&self, antecedent: u32) -> &[(u32, f64)] {
        &self.rules[antecedent as usize]
    }

    /// Total number of mined rules.
    pub fn n_rules(&self) -> usize {
        self.rules.iter().map(|r| r.len()).sum()
    }

    /// Training matrix (the snapshot save path persists it).
    pub(crate) fn user_items(&self) -> &CsrMatrix {
        &self.user_items
    }

    /// All rule lists, indexed by antecedent item (the snapshot save path
    /// persists them).
    pub(crate) fn rule_lists(&self) -> &[Vec<(u32, f64)>] {
        &self.rules
    }
}

impl Recommender for AssociationRuleRecommender {
    fn name(&self) -> &'static str {
        "AssocRules"
    }

    fn score_into(&self, user: u32, _ctx: &mut crate::ScoringContext, out: &mut Vec<f64>) {
        // Score each candidate by its best rule confidence from any rated
        // antecedent (max-confidence aggregation); items no rule fires for
        // are unreachable, not zero-scored ties.
        out.clear();
        out.resize(self.user_items.cols(), f64::NEG_INFINITY);
        for &a in self.user_items.row(user as usize).0 {
            for &(b, conf) in &self.rules[a as usize] {
                let slot = &mut out[b as usize];
                if conf > *slot {
                    *slot = conf;
                }
            }
        }
    }

    fn recommend_into(
        &self,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        // Fused: the candidate set is only the consequents of rules firing
        // from the user's rated antecedents. Max-aggregate into the
        // context's all-`-∞` dense scratch (same comparison as
        // `score_into`), then drain the touched slots through the bounded
        // heap, restoring the scratch invariant as we go.
        ctx.topk.reset(opts.fetch(k));
        let n_items = self.user_items.cols();
        if ctx.accum.len() != n_items {
            ctx.accum.clear();
            ctx.accum.resize(n_items, f64::NEG_INFINITY);
        }
        ctx.touched.clear();
        for &a in self.user_items.row(user as usize).0 {
            for &(b, conf) in &self.rules[a as usize] {
                let slot = &mut ctx.accum[b as usize];
                if conf > *slot {
                    if *slot == f64::NEG_INFINITY {
                        ctx.touched.push(b);
                    }
                    *slot = conf;
                }
            }
        }
        let rated = self.rated_items(user);
        for &b in &ctx.touched {
            let score = ctx.accum[b as usize];
            ctx.accum[b as usize] = f64::NEG_INFINITY;
            if rated.binary_search(&b).is_err() && !opts.is_excluded(b) {
                ctx.topk.push(b, score);
            }
        }
        ctx.topk.drain_sorted_into(out);
        opts.finalize_topk(k, ctx, out);
    }

    fn rated_items(&self, user: u32) -> &[u32] {
        self.user_items.row(user as usize).0
    }

    fn n_items(&self) -> usize {
        self.user_items.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_data::{Rating, SyntheticConfig, SyntheticData};

    fn basket_data() -> Dataset {
        // Items 0 and 1 co-occur for 4 users; item 2 appears once.
        let mut ratings = Vec::new();
        for u in 0..4u32 {
            ratings.push(Rating {
                user: u,
                item: 0,
                value: 5.0,
            });
            ratings.push(Rating {
                user: u,
                item: 1,
                value: 4.0,
            });
        }
        ratings.push(Rating {
            user: 4,
            item: 0,
            value: 3.0,
        });
        ratings.push(Rating {
            user: 4,
            item: 2,
            value: 5.0,
        });
        Dataset::from_ratings(5, 3, &ratings)
    }

    #[test]
    fn mines_high_support_pairs() {
        let rec = AssociationRuleRecommender::train(&basket_data(), &RuleConfig::default());
        // 0 => 1 has support 4, confidence 4/5.
        let rules = rec.rules_from(0);
        assert!(rules
            .iter()
            .any(|&(b, c)| b == 1 && (c - 0.8).abs() < 1e-12));
        // 0 => 2 has support 1 < min_support: pruned.
        assert!(!rules.iter().any(|&(b, _)| b == 2));
    }

    #[test]
    fn confidence_is_directional() {
        let rec = AssociationRuleRecommender::train(&basket_data(), &RuleConfig::default());
        // 1 => 0: support 4, popularity(1) = 4, confidence 1.0.
        let back = rec.rules_from(1);
        assert!(back.iter().any(|&(b, c)| b == 0 && (c - 1.0).abs() < 1e-12));
    }

    #[test]
    fn recommends_via_best_rule() {
        let rec = AssociationRuleRecommender::train(&basket_data(), &RuleConfig::default());
        let top = rec.recommend(4, 2); // user 4 rated items 0 and 2
        assert_eq!(top[0].item, 1);
    }

    #[test]
    fn thresholds_prune_rules() {
        let strict = AssociationRuleRecommender::train(
            &basket_data(),
            &RuleConfig {
                min_support: 10,
                min_confidence: 0.1,
            },
        );
        assert_eq!(strict.n_rules(), 0);
        assert!(strict.recommend(4, 3).is_empty());
    }

    #[test]
    fn rules_favor_popular_items_on_longtail_data() {
        // The §1 claim this baseline exists to demonstrate: rule consequents
        // are much more popular than the catalog average.
        // A sparse long-tailed corpus: most items are barely rated, so the
        // head bias of support thresholds stands out.
        let data = SyntheticData::generate(&SyntheticConfig {
            n_users: 400,
            n_items: 300,
            ..SyntheticConfig::douban_like()
        });
        let rec = AssociationRuleRecommender::train(&data.dataset, &RuleConfig::default());
        let popularity = data.dataset.item_popularity();
        let catalog_mean =
            popularity.iter().map(|&p| p as f64).sum::<f64>() / popularity.len() as f64;
        let mut conseq_sum = 0.0;
        let mut conseq_n = 0usize;
        for a in 0..300u32 {
            for &(b, _) in rec.rules_from(a) {
                conseq_sum += popularity[b as usize] as f64;
                conseq_n += 1;
            }
        }
        assert!(conseq_n > 0, "no rules mined");
        let conseq_mean = conseq_sum / conseq_n as f64;
        assert!(
            conseq_mean > 1.5 * catalog_mean,
            "rule consequents should skew popular: {conseq_mean:.1} vs catalog {catalog_mean:.1}"
        );
    }
}
