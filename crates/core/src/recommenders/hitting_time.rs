//! HT — the Hitting Time recommender (§3.3, the paper's basic solution).
//!
//! Ranks items by the expected number of random-walk steps from the item
//! node to the query-user node: `H(q|j)` small means `j` is both relevant to
//! `q` (many short paths) and unpopular (low stationary mass — Eq. 5 divides
//! by `π_j`). Computed as an absorbing walk with `S = {q}` on a BFS subgraph
//! around the query user.

use crate::config::{DpStopping, GraphRecConfig, RecommendOptions};
use crate::context::ScoringContext;
use crate::walk_common::{
    collect_walk_topk, reset_scores, run_truncated_walk, write_scores_from_scratch, WalkCostModel,
    WalkMode,
};
use crate::{Recommender, ScoredItem};
use longtail_data::Dataset;
use longtail_graph::{BipartiteGraph, Decayed, EdgeDelta, GraphView, OverlayGraph};

/// The user-based Hitting Time recommender.
#[derive(Debug, Clone)]
pub struct HittingTimeRecommender {
    graph: BipartiteGraph,
    config: GraphRecConfig,
}

impl HittingTimeRecommender {
    /// Build from training data.
    pub fn new(train: &Dataset, config: GraphRecConfig) -> Self {
        Self {
            graph: train.to_graph(),
            config,
        }
    }

    /// The training graph.
    pub fn graph(&self) -> &BipartiteGraph {
        &self.graph
    }

    /// Training configuration (the snapshot save path persists it).
    pub(crate) fn config(&self) -> GraphRecConfig {
        self.config
    }

    /// Run the hitting-time walk for `user` under `mode` and the request's
    /// `stopping` policy, leaving the per-node times in `ctx.walk`. Returns
    /// `false` when the query user reaches nothing (an unrated, isolated
    /// node), or
    /// when the request's deadline cancelled the walk (the values then
    /// rank nothing — see [`crate::RecommendOptions::deadline`]).
    #[allow(clippy::too_many_arguments)]
    fn run_walk<G: GraphView>(
        &self,
        view: &G,
        user: u32,
        mode: WalkMode<'_>,
        stopping: DpStopping,
        deadline: Option<std::time::Instant>,
        ctx: &mut ScoringContext,
    ) -> bool {
        let q = view.user_node(user);
        ctx.subgraph.grow(view, &[q], self.config.max_items);
        if ctx.subgraph.n_nodes() == 1 {
            return false;
        }
        let local_q = ctx
            .subgraph
            .local_id(q)
            .expect("seed user is always admitted");
        ctx.absorbing.clear();
        ctx.absorbing.resize(ctx.subgraph.n_nodes(), false);
        ctx.absorbing[local_q as usize] = true;
        let run = run_truncated_walk(
            view,
            WalkCostModel::Unit,
            self.config.iterations,
            mode,
            stopping,
            deadline,
            ctx,
        );
        // A deadline-cancelled run ranks partially-iterated values:
        // report it like an empty walk so no caller ever collects a
        // garbage list (the telemetry records the cancellation).
        !run.cancelled
    }

    /// The fused serving path over any [`GraphView`] — the frozen base, a
    /// base + delta overlay, or either under recency decay.
    #[allow(clippy::too_many_arguments)]
    fn serve_view<G: GraphView>(
        &self,
        view: &G,
        user: u32,
        k: usize,
        rated: &[u32],
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        // Fused: only subgraph-visited items can score, so collect them
        // straight from the DP state — no global score vector, no full
        // sort; under the adaptive policy the walk also stops the moment
        // this top-k is provably frozen. With an enabled re-rank policy
        // the collector (and the rank-stability probe, via the mode's k)
        // is armed for the top-M pool instead of k.
        let fetch = opts.fetch(k);
        ctx.topk.reset(fetch);
        let mode = WalkMode::Serving {
            k: fetch,
            rated,
            extra: opts.exclude.as_slice(),
            rated_absorbing: false,
        };
        if self.run_walk(view, user, mode, opts.stopping, opts.deadline, ctx) {
            collect_walk_topk(
                view,
                &ctx.subgraph,
                &ctx.walk,
                rated,
                opts.exclude.as_slice(),
                &mut ctx.topk,
            );
        }
        ctx.topk.drain_sorted_into(out);
        opts.finalize_topk(k, ctx, out);
    }
}

impl Recommender for HittingTimeRecommender {
    fn name(&self) -> &'static str {
        "HT"
    }

    fn score_into(&self, user: u32, ctx: &mut ScoringContext, out: &mut Vec<f64>) {
        reset_scores(&self.graph, out);
        if self.run_walk(
            &self.graph,
            user,
            WalkMode::Reference,
            DpStopping::Fixed,
            None,
            ctx,
        ) {
            write_scores_from_scratch(&self.graph, &ctx.subgraph, ctx.walk.values(), out);
        }
    }

    fn recommend_into(
        &self,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        let rated = self.rated_items(user);
        match opts.recency {
            None => self.serve_view(&self.graph, user, k, rated, opts, ctx, out),
            Some(decay) => self.serve_view(
                &Decayed::new(&self.graph, decay),
                user,
                k,
                rated,
                opts,
                ctx,
                out,
            ),
        }
    }

    fn recommend_delta_into(
        &self,
        delta: &EdgeDelta,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        if delta.is_empty() {
            return self.recommend_into(user, k, opts, ctx, out);
        }
        let overlay = OverlayGraph::new(&self.graph, delta);
        // The exclusion set is the merged base + delta rated list.
        let mut merged = std::mem::take(&mut ctx.merged_rated);
        merged.clear();
        overlay.for_each_rated(user, |i, _| merged.push(i));
        match opts.recency {
            None => self.serve_view(&overlay, user, k, &merged, opts, ctx, out),
            Some(decay) => self.serve_view(
                &Decayed::new(&overlay, decay),
                user,
                k,
                &merged,
                opts,
                ctx,
                out,
            ),
        }
        ctx.merged_rated = merged;
    }

    fn rated_items(&self, user: u32) -> &[u32] {
        self.graph.user_items().row(user as usize).0
    }

    fn n_items(&self) -> usize {
        self.graph.n_items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_data::Rating;

    /// The Figure 2 example dataset.
    fn figure2() -> Dataset {
        let ratings = [
            (0, 0, 5.0),
            (0, 1, 3.0),
            (0, 4, 3.0),
            (0, 5, 5.0),
            (1, 0, 5.0),
            (1, 1, 4.0),
            (1, 2, 5.0),
            (1, 4, 4.0),
            (1, 5, 5.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
            (2, 2, 4.0),
            (3, 2, 5.0),
            (3, 3, 5.0),
            (4, 1, 4.0),
            (4, 2, 5.0),
        ]
        .map(|(user, item, value)| Rating { user, item, value });
        Dataset::from_ratings(5, 6, &ratings)
    }

    #[test]
    fn recommends_niche_movie_m4_to_u5() {
        // §3.3's worked example: HT suggests the niche movie M4 to U5,
        // where classic CF would pick the locally popular M1.
        let rec = HittingTimeRecommender::new(
            &figure2(),
            GraphRecConfig {
                max_items: 6000,
                iterations: 60,
            },
        );
        let top = rec.recommend(4, 1);
        assert_eq!(top[0].item, 3, "expected M4 first, got {:?}", top);
    }

    #[test]
    fn full_ranking_matches_paper_order() {
        let rec = HittingTimeRecommender::new(
            &figure2(),
            GraphRecConfig {
                max_items: 6000,
                iterations: 60,
            },
        );
        let top = rec.recommend(4, 4);
        let order: Vec<u32> = top.iter().map(|s| s.item).collect();
        assert_eq!(order, vec![3, 0, 4, 5]); // M4, M1, M5, M6
    }

    #[test]
    fn rated_items_never_recommended() {
        let rec = HittingTimeRecommender::new(&figure2(), GraphRecConfig::default());
        let top = rec.recommend(4, 6);
        assert!(top.iter().all(|s| s.item != 1 && s.item != 2));
    }

    #[test]
    fn isolated_user_gets_nothing() {
        let ratings = [Rating {
            user: 0,
            item: 0,
            value: 5.0,
        }];
        let d = Dataset::from_ratings(2, 2, &ratings);
        let rec = HittingTimeRecommender::new(&d, GraphRecConfig::default());
        assert!(rec.recommend(1, 5).is_empty());
    }

    #[test]
    fn expired_deadline_cancels_the_serving_walk() {
        use crate::config::DpStopping;
        use std::time::{Duration, Instant};
        let rec = HittingTimeRecommender::new(
            &figure2(),
            GraphRecConfig {
                max_items: 6000,
                iterations: 200,
            },
        );
        let mut ctx = ScoringContext::new();
        let mut out = Vec::new();
        // A deadline already in the past: the walk must abort at its first
        // measured iteration (well short of the 200 budget) and record the
        // cancellation, under both stopping policies.
        for stopping in [DpStopping::Fixed, DpStopping::adaptive()] {
            ctx.reset_dp_telemetry();
            let opts = RecommendOptions::with_stopping(stopping).deadline_at(Instant::now());
            rec.recommend_into(4, 3, &opts, &mut ctx, &mut out);
            assert!(
                out.is_empty(),
                "{stopping:?}: a cancelled walk must serve an empty list, got {out:?}"
            );
            let t = ctx.dp_telemetry();
            assert_eq!(t.deadline_expired, 1, "{stopping:?}");
            assert!(
                t.iterations_run < t.iterations_budget,
                "{stopping:?}: cancellation saved nothing ({t:?})"
            );
        }

        // A generous deadline changes nothing: list identical to the
        // undeadlined query, no cancellation recorded.
        ctx.reset_dp_telemetry();
        let far = Instant::now() + Duration::from_secs(3600);
        let with_deadline = rec.recommend_with(
            4,
            3,
            &RecommendOptions::default().deadline_at(far),
            &mut ctx,
        );
        assert_eq!(ctx.dp_telemetry().deadline_expired, 0);
        let without = rec.recommend_with(4, 3, &RecommendOptions::default(), &mut ctx);
        assert_eq!(with_deadline, without);
    }

    #[test]
    fn adaptive_serving_matches_fixed_tau_ranking_and_saves_iterations() {
        use crate::config::DpStopping;
        let rec = HittingTimeRecommender::new(
            &figure2(),
            GraphRecConfig {
                max_items: 6000,
                iterations: 200,
            },
        );
        let mut fixed = ScoringContext::new();
        let mut adaptive = ScoringContext::new();
        let fixed_opts = RecommendOptions::with_stopping(DpStopping::Fixed);
        let adaptive_opts = RecommendOptions::default();
        for u in 0..5u32 {
            for k in [1usize, 3, 6] {
                let f = rec.recommend_with(u, k, &fixed_opts, &mut fixed);
                let a = rec.recommend_with(u, k, &adaptive_opts, &mut adaptive);
                let fi: Vec<u32> = f.iter().map(|s| s.item).collect();
                let ai: Vec<u32> = a.iter().map(|s| s.item).collect();
                assert_eq!(ai, fi, "user {u} k {k}");
                // Early-stopped scores sit at or above the fixed-τ scores
                // (monotone DP), never below.
                for (av, fv) in a.iter().zip(&f) {
                    assert!(av.score >= fv.score - 1e-12, "user {u} k {k}");
                }
            }
        }
        let t = adaptive.dp_telemetry();
        assert_eq!(fixed.dp_telemetry().iterations_saved_fraction(), 0.0);
        assert!(
            t.iterations_run < t.iterations_budget,
            "τ=200 on a 6-item graph must terminate early: {t:?}"
        );
        assert!(t.converged + t.rank_frozen > 0, "{t:?}");
    }

    #[test]
    fn budget_restricts_candidates() {
        let rec = HittingTimeRecommender::new(
            &figure2(),
            GraphRecConfig {
                max_items: 1,
                iterations: 15,
            },
        );
        // With µ = 1 only U5's own neighborhood is explored; M4 (two hops
        // out) cannot be scored.
        let scores = rec.score_items(4);
        assert_eq!(scores[3], f64::NEG_INFINITY);
    }
}
