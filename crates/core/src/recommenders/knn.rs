//! User-based k-nearest-neighbor collaborative filtering.
//!
//! The classic recommender the paper's introduction argues against (§1–2,
//! citing Herlocker et al.): find the k most similar users by cosine
//! similarity over rating vectors, then score items by the similarity-
//! weighted ratings of those neighbors. Its §3.3 failure mode is testable
//! here: on the Figure 2 example it recommends the *locally popular* M1 to
//! U5 where the walk methods surface the niche M4.

use crate::{RecommendOptions, Recommender, ScoredItem, ScoringContext};
use longtail_data::Dataset;
use longtail_graph::CsrMatrix;

/// Similarity measure between user rating vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UserSimilarity {
    /// Cosine similarity over the sparse rating vectors.
    Cosine,
    /// Pearson correlation over co-rated items (the Netflix-era classic);
    /// pairs with fewer than 2 co-rated items get similarity 0.
    Pearson,
}

/// User-based k-NN collaborative filtering.
#[derive(Debug, Clone)]
pub struct KnnRecommender {
    user_items: CsrMatrix,
    /// Per user: the k highest-similarity neighbors as `(user, sim)`.
    neighbors: Vec<Vec<(u32, f64)>>,
}

impl KnnRecommender {
    /// Precompute each user's `k` nearest neighbors on the training data.
    ///
    /// O(|U|² · avg activity) — the quadratic all-pairs pass the paper
    /// contrasts with its subgraph-bounded walks. Fine at laptop scale.
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`.
    pub fn train(train: &Dataset, k: usize, similarity: UserSimilarity) -> Self {
        assert!(k > 0, "need at least one neighbor");
        let m = train.user_items();
        let n_users = m.rows();
        let norms: Vec<f64> = (0..n_users)
            .map(|u| m.row(u).1.iter().map(|v| v * v).sum::<f64>().sqrt())
            .collect();
        let means: Vec<f64> = (0..n_users)
            .map(|u| {
                let (_, vals) = m.row(u);
                if vals.is_empty() {
                    0.0
                } else {
                    vals.iter().sum::<f64>() / vals.len() as f64
                }
            })
            .collect();

        let mut neighbors = Vec::with_capacity(n_users);
        for u in 0..n_users {
            let mut sims: Vec<(u32, f64)> = (0..n_users)
                .filter(|&v| v != u)
                .map(|v| {
                    let s = match similarity {
                        UserSimilarity::Cosine => cosine(m, u, v, &norms),
                        UserSimilarity::Pearson => pearson(m, u, v, &means),
                    };
                    (v as u32, s)
                })
                .filter(|&(_, s)| s > 0.0)
                .collect();
            sims.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
            sims.truncate(k);
            neighbors.push(sims);
        }
        Self {
            user_items: m.clone(),
            neighbors,
        }
    }

    /// Reassemble from persisted state — the snapshot load path. The
    /// neighbor lists are restored verbatim (recomputing them would be the
    /// quadratic pass snapshots exist to avoid).
    pub(crate) fn from_parts(user_items: CsrMatrix, neighbors: Vec<Vec<(u32, f64)>>) -> Self {
        Self {
            user_items,
            neighbors,
        }
    }

    /// The neighbor list of `user` as `(user, similarity)` pairs.
    pub fn neighbors_of(&self, user: u32) -> &[(u32, f64)] {
        &self.neighbors[user as usize]
    }

    /// Training matrix (the snapshot save path persists it).
    pub(crate) fn user_items(&self) -> &CsrMatrix {
        &self.user_items
    }

    /// All neighbor lists (the snapshot save path persists them).
    pub(crate) fn neighbor_lists(&self) -> &[Vec<(u32, f64)>] {
        &self.neighbors
    }
}

fn cosine(m: &CsrMatrix, u: usize, v: usize, norms: &[f64]) -> f64 {
    let dot = sparse_dot(m, u, v);
    let denom = norms[u] * norms[v];
    if denom == 0.0 {
        0.0
    } else {
        dot / denom
    }
}

fn pearson(m: &CsrMatrix, u: usize, v: usize, means: &[f64]) -> f64 {
    let (cu, vu) = m.row(u);
    let (cv, vv) = m.row(v);
    let (mut i, mut j) = (0usize, 0usize);
    let (mut num, mut du, mut dv) = (0.0f64, 0.0f64, 0.0f64);
    let mut co_rated = 0usize;
    while i < cu.len() && j < cv.len() {
        match cu[i].cmp(&cv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                let a = vu[i] - means[u];
                let b = vv[j] - means[v];
                num += a * b;
                du += a * a;
                dv += b * b;
                co_rated += 1;
                i += 1;
                j += 1;
            }
        }
    }
    if co_rated < 2 || du == 0.0 || dv == 0.0 {
        0.0
    } else {
        num / (du.sqrt() * dv.sqrt())
    }
}

/// Dot product of two sorted sparse rows.
fn sparse_dot(m: &CsrMatrix, u: usize, v: usize) -> f64 {
    let (cu, vu) = m.row(u);
    let (cv, vv) = m.row(v);
    let (mut i, mut j) = (0usize, 0usize);
    let mut dot = 0.0;
    while i < cu.len() && j < cv.len() {
        match cu[i].cmp(&cv[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                dot += vu[i] * vv[j];
                i += 1;
                j += 1;
            }
        }
    }
    dot
}

impl Recommender for KnnRecommender {
    fn name(&self) -> &'static str {
        "kNN-CF"
    }

    fn score_into(&self, user: u32, _ctx: &mut crate::ScoringContext, out: &mut Vec<f64>) {
        // Items no neighbor rated carry no evidence at all; mark them
        // unreachable rather than tied at zero so they are never
        // recommended.
        out.clear();
        out.resize(self.user_items.cols(), f64::NEG_INFINITY);
        for &(v, sim) in &self.neighbors[user as usize] {
            for (i, r) in self.user_items.iter_row(v as usize) {
                let slot = &mut out[i as usize];
                if slot.is_finite() {
                    *slot += sim * r;
                } else {
                    *slot = sim * r;
                }
            }
        }
    }

    fn recommend_into(
        &self,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        // Fused: the candidate set is only what the neighbors rated.
        // Accumulate into the context's all-`-∞` dense scratch (same slot
        // arithmetic as `score_into`, so scores are bit-identical), then
        // drain exactly the touched slots through the bounded heap,
        // restoring the scratch invariant as we go.
        ctx.topk.reset(opts.fetch(k));
        let n_items = self.user_items.cols();
        if ctx.accum.len() != n_items {
            ctx.accum.clear();
            ctx.accum.resize(n_items, f64::NEG_INFINITY);
        }
        ctx.touched.clear();
        for &(v, sim) in &self.neighbors[user as usize] {
            for (i, r) in self.user_items.iter_row(v as usize) {
                let slot = &mut ctx.accum[i as usize];
                if slot.is_finite() {
                    *slot += sim * r;
                } else {
                    *slot = sim * r;
                    ctx.touched.push(i);
                }
            }
        }
        let rated = self.rated_items(user);
        for &i in &ctx.touched {
            let score = ctx.accum[i as usize];
            ctx.accum[i as usize] = f64::NEG_INFINITY;
            if rated.binary_search(&i).is_err() && !opts.is_excluded(i) {
                ctx.topk.push(i, score);
            }
        }
        ctx.topk.drain_sorted_into(out);
        opts.finalize_topk(k, ctx, out);
    }

    fn rated_items(&self, user: u32) -> &[u32] {
        self.user_items.row(user as usize).0
    }

    fn n_items(&self) -> usize {
        self.user_items.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_data::Rating;

    fn figure2() -> Dataset {
        let ratings = [
            (0, 0, 5.0),
            (0, 1, 3.0),
            (0, 4, 3.0),
            (0, 5, 5.0),
            (1, 0, 5.0),
            (1, 1, 4.0),
            (1, 2, 5.0),
            (1, 4, 4.0),
            (1, 5, 5.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
            (2, 2, 4.0),
            (3, 2, 5.0),
            (3, 3, 5.0),
            (4, 1, 4.0),
            (4, 2, 5.0),
        ]
        .map(|(user, item, value)| Rating { user, item, value });
        Dataset::from_ratings(5, 6, &ratings)
    }

    #[test]
    fn recommends_the_locally_popular_movie_in_figure2() {
        // §3.3: "traditional CF based algorithms would suggest the local
        // popular movie M1" to U5 — the behaviour the paper fixes.
        let rec = KnnRecommender::train(&figure2(), 2, UserSimilarity::Cosine);
        let top = rec.recommend(4, 1);
        assert_eq!(top[0].item, 0, "classic CF should pick M1, got {top:?}");
    }

    #[test]
    fn neighbors_are_sorted_and_capped() {
        let rec = KnnRecommender::train(&figure2(), 2, UserSimilarity::Cosine);
        for u in 0..5u32 {
            let n = rec.neighbors_of(u);
            assert!(n.len() <= 2);
            for w in n.windows(2) {
                assert!(w[0].1 >= w[1].1);
            }
            assert!(n.iter().all(|&(v, _)| v != u), "self-neighbor for {u}");
        }
    }

    #[test]
    fn cosine_identical_users_are_nearest() {
        let ratings = [
            Rating {
                user: 0,
                item: 0,
                value: 5.0,
            },
            Rating {
                user: 0,
                item: 1,
                value: 3.0,
            },
            Rating {
                user: 1,
                item: 0,
                value: 5.0,
            },
            Rating {
                user: 1,
                item: 1,
                value: 3.0,
            },
            Rating {
                user: 2,
                item: 2,
                value: 4.0,
            },
        ];
        let d = Dataset::from_ratings(3, 3, &ratings);
        let rec = KnnRecommender::train(&d, 2, UserSimilarity::Cosine);
        assert_eq!(rec.neighbors_of(0)[0].0, 1);
        assert!((rec.neighbors_of(0)[0].1 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pearson_requires_co_rated_overlap() {
        let ratings = [
            Rating {
                user: 0,
                item: 0,
                value: 5.0,
            },
            Rating {
                user: 1,
                item: 1,
                value: 5.0,
            },
        ];
        let d = Dataset::from_ratings(2, 2, &ratings);
        let rec = KnnRecommender::train(&d, 1, UserSimilarity::Pearson);
        // No co-rated items: no usable neighbors, so no recommendations.
        assert!(rec.neighbors_of(0).is_empty());
        assert!(rec.recommend(0, 1).is_empty());
    }

    #[test]
    fn rated_items_excluded() {
        let rec = KnnRecommender::train(&figure2(), 3, UserSimilarity::Cosine);
        let top = rec.recommend(4, 6);
        assert!(top.iter().all(|s| s.item != 1 && s.item != 2));
    }
}
