//! LDA recommender baseline (§5.1.1).
//!
//! Ranks items by the predictive probability `p(i|u) = Σ_z θ̂_u[z] φ̂_z[i]`
//! of the topic model. A strong personalization baseline, but φ is dominated
//! by each topic's most-rated items, so its suggestions concentrate on the
//! short head — the behaviour Figure 6 and Table 2 document.

use crate::Recommender;
use longtail_data::Dataset;
use longtail_graph::CsrMatrix;
use longtail_topics::{LdaConfig, LdaModel};

/// The LDA-based recommender.
#[derive(Debug, Clone)]
pub struct LdaRecommender {
    model: LdaModel,
    user_items: CsrMatrix,
}

impl LdaRecommender {
    /// Train an LDA model on the training ratings with the paper's default
    /// priors (`α = 50/K`, `β = 0.1`).
    pub fn train(train: &Dataset, n_topics: usize) -> Self {
        Self::train_with(train, &LdaConfig::with_topics(n_topics))
    }

    /// Train with explicit LDA hyper-parameters.
    pub fn train_with(train: &Dataset, config: &LdaConfig) -> Self {
        let model = LdaModel::train(train.user_items(), config);
        Self {
            model,
            user_items: train.user_items().clone(),
        }
    }

    /// Wrap an externally trained model (shared with AC2, as in the paper's
    /// experimental setup).
    ///
    /// # Panics
    ///
    /// Panics if model and dataset disagree on dimensions.
    pub fn from_model(train: &Dataset, model: LdaModel) -> Self {
        assert_eq!(model.n_users(), train.n_users(), "user count mismatch");
        assert_eq!(model.n_items(), train.n_items(), "item count mismatch");
        Self {
            model,
            user_items: train.user_items().clone(),
        }
    }

    /// The underlying topic model.
    pub fn model(&self) -> &LdaModel {
        &self.model
    }

    /// Training matrix (the snapshot save path persists it).
    pub(crate) fn user_items(&self) -> &CsrMatrix {
        &self.user_items
    }
}

impl Recommender for LdaRecommender {
    fn name(&self) -> &'static str {
        "LDA"
    }

    fn score_into(&self, user: u32, _ctx: &mut crate::ScoringContext, out: &mut Vec<f64>) {
        self.model.score_all_into(user, out);
    }

    // `recommend_into` deliberately keeps the default implementation: the
    // topic model is dense (every item scores `Σ_z θ̂_u[z] φ̂_z[i]` with φ
    // stored topic-major), so accumulating the predictive row topic-by-topic
    // into the context's reused buffer and feeding the bounded heap is the
    // cache-optimal candidate enumeration. Streaming `LdaModel::score` per
    // item instead would stride φ by `n_items` per topic — measurably slower
    // than the "full vector" it avoids.

    fn rated_items(&self, user: u32) -> &[u32] {
        self.user_items.row(user as usize).0
    }

    fn n_items(&self) -> usize {
        self.user_items.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_data::Rating;

    /// The paper's α = 50/K prior is tuned for corpora with thousands of
    /// tokens per user; on this 8-user toy it washes out the clusters, so
    /// the tests use a sharper prior.
    fn toy_config() -> LdaConfig {
        LdaConfig {
            alpha: 0.5,
            iterations: 120,
            ..LdaConfig::with_topics(2)
        }
    }

    /// Two user clusters with disjoint item sets; one held-out item per
    /// cluster that only half the cluster rated.
    fn clustered() -> Dataset {
        let mut ratings = Vec::new();
        for u in 0..4u32 {
            for i in 0..4u32 {
                if !(u >= 2 && i == 3) {
                    ratings.push(Rating {
                        user: u,
                        item: i,
                        value: 5.0,
                    });
                }
            }
        }
        for u in 4..8u32 {
            for i in 4..8u32 {
                if !(u >= 6 && i == 7) {
                    ratings.push(Rating {
                        user: u,
                        item: i,
                        value: 5.0,
                    });
                }
            }
        }
        Dataset::from_ratings(8, 8, &ratings)
    }

    #[test]
    fn recommends_within_cluster() {
        let rec = LdaRecommender::train_with(&clustered(), &toy_config());
        // User 2 has not rated item 3 (own cluster) — it must beat every
        // cross-cluster item.
        let top = rec.recommend(2, 1);
        assert_eq!(top[0].item, 3, "got {top:?}");
        let top = rec.recommend(6, 1);
        assert_eq!(top[0].item, 7, "got {top:?}");
    }

    #[test]
    fn scores_are_probabilities() {
        let rec = LdaRecommender::train_with(&clustered(), &toy_config());
        let scores = rec.score_items(0);
        assert!(scores.iter().all(|&s| (0.0..=1.0).contains(&s)));
        // p(i|u) sums to 1 over the catalog.
        let sum: f64 = scores.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
    }

    #[test]
    fn excludes_rated_items() {
        let rec = LdaRecommender::train_with(&clustered(), &toy_config());
        let top = rec.recommend(0, 8);
        assert!(top.iter().all(|s| s.item >= 4 || s.item == 3));
    }

    #[test]
    fn from_model_shares_training() {
        let d = clustered();
        let model = LdaModel::train(d.user_items(), &LdaConfig::with_topics(2));
        let rec = LdaRecommender::from_model(&d, model.clone());
        assert_eq!(rec.score_items(1), model.score_all(1));
    }
}
