//! The recommendation algorithms: the paper's four variants and the four
//! baselines it compares against.

pub mod absorbing_cost;
pub mod absorbing_time;
pub mod assoc_rules;
pub mod hitting_time;
pub mod knn;
pub mod lda_rec;
pub mod pagerank_rec;
pub mod popularity;
pub mod pure_svd;

pub use absorbing_cost::{AbsorbingCostRecommender, EntropySource};
pub use absorbing_time::AbsorbingTimeRecommender;
pub use assoc_rules::{AssociationRuleRecommender, RuleConfig};
pub use hitting_time::HittingTimeRecommender;
pub use knn::{KnnRecommender, UserSimilarity};
pub use lda_rec::LdaRecommender;
pub use pagerank_rec::{PageRankFlavor, PageRankRecommender};
pub use popularity::PopularityRecommender;
pub use pure_svd::PureSvdRecommender;
