//! PPR and DPPR baselines (§5.1.1, Eq. 15).
//!
//! Personalized PageRank seeds the teleport at the query user's rated items
//! and ranks by stationary mass — which blends similarity with popularity
//! and therefore favors the head. The paper's own baseline, *Discounted*
//! PPR, divides the PPR score by item popularity (Eq. 15) to force the tail:
//! it matches the graph methods on Popularity@N but loses on Recall@N and
//! Similarity, the contrast the evaluation leans on.

use crate::context::ScoringContext;
use crate::walk_common::rated_item_nodes_into;
use crate::{RecommendOptions, Recommender, ScoredItem};
use longtail_data::Dataset;
use longtail_graph::{Adjacency, BipartiteGraph, TransitionMatrix};
use longtail_markov::{personalized_pagerank_into, PageRankConfig};

/// Whether the PageRank score is discounted by popularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PageRankFlavor {
    /// Plain personalized PageRank.
    Plain,
    /// Discounted PPR: `DPPR(i|S) = PPR(i|S) / Popularity(i)` (Eq. 15).
    Discounted,
}

/// The (D)PPR recommender.
#[derive(Debug, Clone)]
pub struct PageRankRecommender {
    graph: BipartiteGraph,
    /// Global transition kernel, normalized once at construction — the
    /// full-graph power iteration re-walks it every query.
    kernel: TransitionMatrix,
    popularity: Vec<u32>,
    flavor: PageRankFlavor,
    config: PageRankConfig,
}

impl PageRankRecommender {
    /// Plain PPR with the paper's damping (λ = 0.5).
    pub fn plain(train: &Dataset) -> Self {
        Self::new(train, PageRankFlavor::Plain, PageRankConfig::default())
    }

    /// Discounted PPR (Eq. 15) with the paper's damping.
    pub fn discounted(train: &Dataset) -> Self {
        Self::new(train, PageRankFlavor::Discounted, PageRankConfig::default())
    }

    /// Full-control constructor.
    pub fn new(train: &Dataset, flavor: PageRankFlavor, config: PageRankConfig) -> Self {
        let graph = train.to_graph();
        let kernel = TransitionMatrix::from_adjacency(&Adjacency::from_bipartite(&graph));
        Self {
            graph,
            kernel,
            popularity: train.item_popularity(),
            flavor,
            config,
        }
    }

    /// Training configuration (the snapshot save path persists it).
    pub(crate) fn config(&self) -> PageRankConfig {
        self.config
    }

    /// Training matrix (the snapshot save path persists it).
    pub(crate) fn user_items(&self) -> &longtail_graph::CsrMatrix {
        self.graph.user_items()
    }

    /// The flavor in use.
    pub fn flavor(&self) -> PageRankFlavor {
        self.flavor
    }
}

impl Recommender for PageRankRecommender {
    fn name(&self) -> &'static str {
        match self.flavor {
            PageRankFlavor::Plain => "PPR",
            PageRankFlavor::Discounted => "DPPR",
        }
    }

    fn score_into(&self, user: u32, ctx: &mut ScoringContext, out: &mut Vec<f64>) {
        out.clear();
        rated_item_nodes_into(&self.graph, user, &mut ctx.seeds);
        if ctx.seeds.is_empty() {
            out.resize(self.graph.n_items(), f64::NEG_INFINITY);
            return;
        }
        let rank =
            personalized_pagerank_into(&self.kernel, &ctx.seeds, &self.config, &mut ctx.pagerank);
        let n_users = self.graph.n_users();
        out.extend((0..self.graph.n_items()).map(|i| {
            let mass = rank[n_users + i];
            match self.flavor {
                PageRankFlavor::Plain => mass,
                PageRankFlavor::Discounted => {
                    let pop = self.popularity[i];
                    if pop == 0 {
                        // Unrated items carry no walk mass either; score
                        // them unreachable rather than 0/0.
                        f64::NEG_INFINITY
                    } else {
                        mass / pop as f64
                    }
                }
            }
        }));
    }

    fn recommend_into(
        &self,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        // Fused: rank once, then stream the item-node masses through the
        // bounded heap — no global score vector, no full sort. DPPR prunes
        // zero-popularity items up front (they carry no walk mass either).
        ctx.topk.reset(opts.fetch(k));
        rated_item_nodes_into(&self.graph, user, &mut ctx.seeds);
        if !ctx.seeds.is_empty() {
            let rank = personalized_pagerank_into(
                &self.kernel,
                &ctx.seeds,
                &self.config,
                &mut ctx.pagerank,
            );
            let n_users = self.graph.n_users();
            let rated = self.rated_items(user);
            for i in 0..self.graph.n_items() {
                let item = i as u32;
                if rated.binary_search(&item).is_ok() || opts.is_excluded(item) {
                    continue;
                }
                let mass = rank[n_users + i];
                let score = match self.flavor {
                    PageRankFlavor::Plain => mass,
                    PageRankFlavor::Discounted => {
                        let pop = self.popularity[i];
                        if pop == 0 {
                            continue;
                        }
                        mass / pop as f64
                    }
                };
                ctx.topk.push(item, score);
            }
        }
        ctx.topk.drain_sorted_into(out);
        opts.finalize_topk(k, ctx, out);
    }

    fn rated_items(&self, user: u32) -> &[u32] {
        self.graph.user_items().row(user as usize).0
    }

    fn n_items(&self) -> usize {
        self.graph.n_items()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_data::Rating;

    fn figure2() -> Dataset {
        let ratings = [
            (0, 0, 5.0),
            (0, 1, 3.0),
            (0, 4, 3.0),
            (0, 5, 5.0),
            (1, 0, 5.0),
            (1, 1, 4.0),
            (1, 2, 5.0),
            (1, 4, 4.0),
            (1, 5, 5.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
            (2, 2, 4.0),
            (3, 2, 5.0),
            (3, 3, 5.0),
            (4, 1, 4.0),
            (4, 2, 5.0),
        ]
        .map(|(user, item, value)| Rating { user, item, value });
        Dataset::from_ratings(5, 6, &ratings)
    }

    #[test]
    fn plain_ppr_prefers_the_popular_cluster() {
        let rec = PageRankRecommender::plain(&figure2());
        assert_eq!(rec.name(), "PPR");
        let top = rec.recommend(4, 1);
        // U5's unrated candidates: M1 (popular, tightly connected) vs M4
        // (niche). Plain PPR picks the popular one.
        assert_eq!(top[0].item, 0, "got {top:?}");
    }

    #[test]
    fn discounting_flips_the_choice_to_the_tail() {
        let rec = PageRankRecommender::discounted(&figure2());
        assert_eq!(rec.name(), "DPPR");
        let scores = rec.score_items(4);
        // M4 (popularity 1) must outscore M1 (popularity 3) once discounted.
        assert!(
            scores[3] > scores[0],
            "M4 {} should beat M1 {}",
            scores[3],
            scores[0]
        );
    }

    #[test]
    fn zero_popularity_items_are_unreachable_for_dppr() {
        let mut ratings = figure2().to_ratings();
        ratings.retain(|r| r.item != 3);
        let d = Dataset::from_ratings(5, 6, &ratings);
        let rec = PageRankRecommender::discounted(&d);
        let scores = rec.score_items(4);
        assert_eq!(scores[3], f64::NEG_INFINITY);
    }

    #[test]
    fn rated_items_excluded() {
        let rec = PageRankRecommender::plain(&figure2());
        let top = rec.recommend(4, 6);
        assert!(top.iter().all(|s| s.item != 1 && s.item != 2));
    }

    #[test]
    fn unrated_user_gets_nothing() {
        let d = Dataset::from_ratings(
            2,
            2,
            &[Rating {
                user: 0,
                item: 0,
                value: 5.0,
            }],
        );
        let rec = PageRankRecommender::discounted(&d);
        assert!(rec.recommend(1, 3).is_empty());
    }
}
