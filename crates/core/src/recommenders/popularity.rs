//! Global-popularity baseline — the head-serving strawman.
//!
//! Ranks every user's recommendations by raw training popularity (rating
//! count), ignoring the user entirely. This is the baseline the paper's
//! long-tail argument is built *against* (§1: "the head of the
//! distribution is what everyone already serves"), which is exactly what
//! makes it useful operationally: it needs no per-user graph work, cannot
//! panic on a malformed walk, and is always available. The serving engine
//! registers it as the **degraded-mode fallback** — when a long-tail
//! model's circuit breaker is open or its retries are exhausted, serving
//! the popularity head (flagged degraded) is the availability floor.

use crate::{RecommendOptions, Recommender, ScoredItem, ScoringContext};
use longtail_data::Dataset;
use longtail_graph::CsrMatrix;

/// Most-popular-first recommendation: item score = training rating count.
///
/// Items nobody rated score `-∞` (the head strawman never surfaces them);
/// ties resolve by ascending item id, consistently with every other
/// recommender.
#[derive(Debug, Clone)]
pub struct PopularityRecommender {
    user_items: CsrMatrix,
    /// Per-item training rating counts.
    counts: Vec<u32>,
    /// Rated items sorted by (count desc, id asc) — the fused path walks
    /// this precomputed order and stops as soon as the collector is full.
    by_popularity: Vec<u32>,
}

impl PopularityRecommender {
    /// Count item popularity over the training data.
    pub fn train(train: &Dataset) -> Self {
        let counts = train.item_popularity();
        let mut by_popularity: Vec<u32> = (0..counts.len() as u32)
            .filter(|&i| counts[i as usize] > 0)
            .collect();
        by_popularity.sort_by(|&a, &b| counts[b as usize].cmp(&counts[a as usize]).then(a.cmp(&b)));
        Self {
            user_items: train.user_items().clone(),
            counts,
            by_popularity,
        }
    }

    /// Training matrix (the snapshot save path persists it).
    pub(crate) fn user_items(&self) -> &CsrMatrix {
        &self.user_items
    }

    /// The training rating count of `item`.
    pub fn popularity_of(&self, item: u32) -> u32 {
        self.counts[item as usize]
    }
}

impl Recommender for PopularityRecommender {
    fn name(&self) -> &'static str {
        "POP"
    }

    fn score_into(&self, _user: u32, _ctx: &mut ScoringContext, out: &mut Vec<f64>) {
        // User-independent: the same popularity vector answers everyone.
        out.clear();
        out.extend(
            self.counts
                .iter()
                .map(|&c| if c > 0 { c as f64 } else { f64::NEG_INFINITY }),
        );
    }

    fn recommend_into(
        &self,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        // Fused: walk the precomputed (count desc, id asc) order and stop at
        // the first candidate the collector would reject — everything after
        // it is weaker under the same order, so the early exit is exact.
        ctx.topk.reset(opts.fetch(k));
        let rated = self.rated_items(user);
        for &i in &self.by_popularity {
            let score = self.counts[i as usize] as f64;
            if !ctx.topk.would_accept(i, score) {
                break;
            }
            if rated.binary_search(&i).is_err() && !opts.is_excluded(i) {
                ctx.topk.push(i, score);
            }
        }
        ctx.topk.drain_sorted_into(out);
        opts.finalize_topk(k, ctx, out);
    }

    fn rated_items(&self, user: u32) -> &[u32] {
        self.user_items.row(user as usize).0
    }

    fn n_items(&self) -> usize {
        self.counts.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::top_k;
    use longtail_data::Rating;

    fn corpus() -> Dataset {
        // Item 0 rated 3x, item 1 rated 2x, item 2 rated 1x, item 3 never.
        let ratings = [
            (0, 0, 5.0),
            (1, 0, 4.0),
            (2, 0, 3.0),
            (0, 1, 5.0),
            (1, 1, 4.0),
            (2, 2, 2.0),
        ]
        .map(|(user, item, value)| Rating { user, item, value });
        Dataset::from_ratings(3, 4, &ratings)
    }

    #[test]
    fn ranks_by_global_popularity() {
        let rec = PopularityRecommender::train(&corpus());
        assert_eq!(rec.popularity_of(0), 3);
        assert_eq!(rec.popularity_of(3), 0);
        // User 2 rated items 0 and 2: the head of what remains is item 1.
        let top = rec.recommend(2, 4);
        assert_eq!(top.iter().map(|s| s.item).collect::<Vec<_>>(), vec![1]);
    }

    #[test]
    fn unrated_items_are_never_recommended() {
        let rec = PopularityRecommender::train(&corpus());
        let top = rec.recommend(0, 10);
        assert!(top.iter().all(|s| s.item != 3), "item 3 has no ratings");
    }

    #[test]
    fn fused_matches_score_then_sort() {
        let rec = PopularityRecommender::train(&corpus());
        let mut ctx = ScoringContext::new();
        let mut scores = Vec::new();
        let exclude = crate::ExclusionSet::new(vec![0]);
        let opts = RecommendOptions::excluding(&exclude);
        for user in 0..3u32 {
            for k in 0..5usize {
                let mut fused = Vec::new();
                rec.recommend_into(user, k, &opts, &mut ctx, &mut fused);
                rec.score_into(user, &mut ctx, &mut scores);
                let rated = rec.rated_items(user);
                let direct = top_k(&scores, k, |i| {
                    rated.binary_search(&i).is_ok() || opts.is_excluded(i)
                });
                assert_eq!(fused, direct, "user {user} k {k}");
            }
        }
    }
}
