//! PureSVD baseline (Cremonesi, Koren & Turrin 2010; §5.1.1).
//!
//! The strongest matrix-factorization competitor in the paper's study: take
//! the rating matrix with missing entries as literal zeros, compute a rank-f
//! truncated SVD `R ≈ U Σ Qᵀ`, and score user `u`'s items by the projection
//! `r̂_u = r_u Q Qᵀ` — i.e. reconstruct the user's row from the dominant
//! item factors. Zero-filling bakes popularity into the factors, which is
//! exactly why its recommendations concentrate on the short head (Figure 6).

use crate::{RecommendOptions, Recommender, ScoredItem, ScoringContext};
use longtail_data::Dataset;
use longtail_graph::CsrMatrix;
use longtail_linalg::ops::LinearOp;
use longtail_linalg::svd::{randomized_svd, SvdConfig, TruncatedSvd};

/// Adapter exposing a sparse rating matrix as a [`LinearOp`] for the
/// randomized SVD (matvec = `R x`, matvec_t = `Rᵀ x`).
struct CsrOp<'a>(&'a CsrMatrix);

impl LinearOp for CsrOp<'_> {
    fn rows(&self) -> usize {
        self.0.rows()
    }

    fn cols(&self) -> usize {
        self.0.cols()
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        self.0.matvec(x, y);
    }

    fn matvec_t(&self, x: &[f64], y: &mut [f64]) {
        self.0.matvec_t(x, y);
    }
}

/// The PureSVD recommender.
#[derive(Debug, Clone)]
pub struct PureSvdRecommender {
    /// Item factor matrix Q (`n_items x f`), stored row-major per item.
    item_factors: Vec<f64>,
    rank: usize,
    user_items: CsrMatrix,
}

impl PureSvdRecommender {
    /// Factorize the training matrix at the given rank with default SVD
    /// parameters.
    pub fn train(train: &Dataset, rank: usize) -> Self {
        Self::train_with(train, &SvdConfig::with_rank(rank))
    }

    /// Factorize with an explicit SVD configuration.
    pub fn train_with(train: &Dataset, config: &SvdConfig) -> Self {
        let matrix = train.user_items();
        let svd: TruncatedSvd = randomized_svd(&CsrOp(matrix), config);
        let rank = svd.rank();
        let n_items = matrix.cols();
        let mut item_factors = vec![0.0f64; n_items * rank];
        for i in 0..n_items {
            for f in 0..rank {
                item_factors[i * rank + f] = svd.v[(i, f)];
            }
        }
        Self {
            item_factors,
            rank,
            user_items: matrix.clone(),
        }
    }

    /// Reassemble from persisted state — the snapshot load path. The
    /// factor matrix is restored bit-exactly; re-running the randomized
    /// SVD would yield a different (sign/rotation-equivalent) basis.
    pub(crate) fn from_parts(user_items: CsrMatrix, item_factors: Vec<f64>, rank: usize) -> Self {
        Self {
            item_factors,
            rank,
            user_items,
        }
    }

    /// Effective factor rank (can be lower than requested for low-rank
    /// training data).
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Training matrix (the snapshot save path persists it).
    pub(crate) fn user_items(&self) -> &CsrMatrix {
        &self.user_items
    }

    /// The flat row-major item factor matrix (the snapshot save path
    /// persists it bit-exactly).
    pub(crate) fn item_factors_flat(&self) -> &[f64] {
        &self.item_factors
    }

    /// Item factor row of item `i`.
    fn factors_of(&self, i: usize) -> &[f64] {
        &self.item_factors[i * self.rank..(i + 1) * self.rank]
    }

    /// Project `user`'s sparse rating row onto the factor space (the
    /// length-f vector `r_u Q`), writing into `projection`.
    fn project_user(&self, user: u32, projection: &mut Vec<f64>) {
        projection.clear();
        projection.resize(self.rank, 0.0);
        for (i, v) in self.user_items.iter_row(user as usize) {
            let factors = self.factors_of(i as usize);
            for (p, &q) in projection.iter_mut().zip(factors.iter()) {
                *p += v * q;
            }
        }
    }
}

impl Recommender for PureSvdRecommender {
    fn name(&self) -> &'static str {
        "PureSVD"
    }

    fn score_into(&self, user: u32, ctx: &mut crate::ScoringContext, out: &mut Vec<f64>) {
        // r̂_u = r_u Q Qᵀ: project the sparse rating row onto the factor
        // space (length-f vector), then expand back over the catalog.
        self.project_user(user, &mut ctx.scratch);
        let projection = &ctx.scratch;
        let n_items = self.user_items.cols();
        out.clear();
        out.extend((0..n_items).map(|i| {
            self.factors_of(i)
                .iter()
                .zip(projection.iter())
                .map(|(&q, &p)| q * p)
                .sum::<f64>()
        }));
    }

    fn recommend_into(
        &self,
        user: u32,
        k: usize,
        opts: &RecommendOptions<'_>,
        ctx: &mut ScoringContext,
        out: &mut Vec<ScoredItem>,
    ) {
        // Fused: project once, then stream each unrated item's factor dot
        // product straight into the bounded heap — the catalog expansion
        // vector is never materialized. The dot is the same expression as
        // `score_into`, so scores are bit-identical.
        ctx.topk.reset(opts.fetch(k));
        self.project_user(user, &mut ctx.scratch);
        let projection = &ctx.scratch;
        let rated = self.rated_items(user);
        for i in 0..self.user_items.cols() {
            if rated.binary_search(&(i as u32)).is_ok() || opts.is_excluded(i as u32) {
                continue;
            }
            let score = self
                .factors_of(i)
                .iter()
                .zip(projection.iter())
                .map(|(&q, &p)| q * p)
                .sum::<f64>();
            ctx.topk.push(i as u32, score);
        }
        ctx.topk.drain_sorted_into(out);
        opts.finalize_topk(k, ctx, out);
    }

    fn rated_items(&self, user: u32) -> &[u32] {
        self.user_items.row(user as usize).0
    }

    fn n_items(&self) -> usize {
        self.user_items.cols()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_data::Rating;

    /// Block-structured ratings: two communities with one missing entry
    /// each. PureSVD at rank 2 should reconstruct the blocks.
    fn block_data() -> Dataset {
        let mut ratings = Vec::new();
        for u in 0..3u32 {
            for i in 0..3u32 {
                if !(u == 2 && i == 2) {
                    ratings.push(Rating {
                        user: u,
                        item: i,
                        value: 5.0,
                    });
                }
            }
        }
        for u in 3..6u32 {
            for i in 3..6u32 {
                if !(u == 5 && i == 5) {
                    ratings.push(Rating {
                        user: u,
                        item: i,
                        value: 4.0,
                    });
                }
            }
        }
        Dataset::from_ratings(6, 6, &ratings)
    }

    #[test]
    fn reconstructs_missing_block_entries() {
        let rec = PureSvdRecommender::train(&block_data(), 2);
        let top = rec.recommend(2, 1);
        assert_eq!(top[0].item, 2, "user 2 should be offered item 2: {top:?}");
        let top = rec.recommend(5, 1);
        assert_eq!(top[0].item, 5, "user 5 should be offered item 5: {top:?}");
    }

    #[test]
    fn cross_block_scores_are_near_zero() {
        let rec = PureSvdRecommender::train(&block_data(), 2);
        let scores = rec.score_items(0);
        for (i, &s) in scores.iter().enumerate().skip(3).take(3) {
            assert!(s.abs() < 0.5, "cross-block score {i}: {s}");
        }
    }

    #[test]
    fn rank_caps_at_matrix_rank() {
        let rec = PureSvdRecommender::train(&block_data(), 100);
        assert!(rec.rank() <= 6);
    }

    #[test]
    fn rated_items_excluded_from_recommendations() {
        let rec = PureSvdRecommender::train(&block_data(), 2);
        let top = rec.recommend(0, 6);
        assert!(top
            .iter()
            .all(|s| s.item != 0 && s.item != 1 && s.item != 2));
    }

    #[test]
    fn unrated_user_scores_zero_everywhere() {
        let mut ratings = block_data().to_ratings();
        ratings.retain(|r| r.user != 0);
        let d = Dataset::from_ratings(6, 6, &ratings);
        let rec = PureSvdRecommender::train(&d, 2);
        let scores = rec.score_items(0);
        assert!(scores.iter().all(|&s| s.abs() < 1e-12));
    }
}
