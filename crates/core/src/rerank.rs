//! Post-scoring long-tail quality re-ranking.
//!
//! The walk scorers rank purely by proximity, which concentrates exposure
//! on the short head — the exact failure mode the paper measures against
//! (§5's coverage and diversity tables). This module re-ranks a top-M
//! candidate pool *after* scoring, so it composes with every fused serving
//! path (adaptive stopping, overlays, recency decay) without touching the
//! walk itself:
//!
//! - **MMR redundancy suppression** — greedy maximal-marginal-relevance
//!   selection where item–item similarity is shared-neighbor overlap on
//!   the bipartite graph (cosine over rater sets), so near-duplicate
//!   candidates don't crowd the list.
//! - **Popularity penalty** — a linear penalty on the item's popularity
//!   percentile (fraction of the catalog with strictly fewer ratings),
//!   trading head exposure for tail exposure continuously.
//! - **Hard tail quota** — at least `tail_quota` of the final `k` must be
//!   tail items (popularity percentile below `tail_cutoff`) whenever the
//!   pool can satisfy it; unsatisfiable quotas degrade gracefully to
//!   best-available rather than emitting short lists.
//!
//! A default [`RerankPolicy`] is **disabled**: the fused path then
//! over-fetches nothing and emits bit-identical lists to the plain top-k
//! path (a proptest gate in `tests/rerank_policy.rs`).

use crate::topk::ScoredItem;
use longtail_data::Dataset;

/// Declarative re-ranking knobs, threaded from [`crate::RecommendOptions`]
/// (and, in `longtail-serve`, from per-request / per-QoS-class engine
/// defaults).
///
/// `#[non_exhaustive]` + builder methods: future knobs are non-breaking.
/// The default policy is disabled — see [`RerankPolicy::is_enabled`].
#[non_exhaustive]
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RerankPolicy {
    /// MMR trade-off λ ∈ [0, 1]: `0` ranks purely by (normalized)
    /// relevance, `1` purely by dissimilarity to already-selected items.
    pub mmr_lambda: f64,
    /// Weight of the linear popularity-percentile penalty (≥ 0).
    pub popularity_penalty: f64,
    /// Minimum tail items among the final `k` (clamped to `k`; best-effort
    /// when the candidate pool holds fewer tail items).
    pub tail_quota: usize,
    /// Candidate-pool size M the fused path over-fetches before
    /// re-ranking. `0` means the default `4 * k`; always clamped to ≥ `k`.
    pub pool_size: usize,
    /// Popularity-percentile boundary below which an item counts as tail.
    /// The default `0.8` reproduces the paper's 80/20 head/tail split.
    pub tail_cutoff: f64,
}

impl Default for RerankPolicy {
    fn default() -> Self {
        Self {
            mmr_lambda: 0.0,
            popularity_penalty: 0.0,
            tail_quota: 0,
            pool_size: 0,
            tail_cutoff: 0.8,
        }
    }
}

impl RerankPolicy {
    /// A disabled policy — identical to [`Default`].
    pub fn new() -> Self {
        Self::default()
    }

    /// Set the MMR λ (clamped to `[0, 1]`).
    pub fn mmr(mut self, lambda: f64) -> Self {
        self.mmr_lambda = lambda.clamp(0.0, 1.0);
        self
    }

    /// Set the popularity-percentile penalty weight (clamped to `≥ 0`).
    pub fn popularity_penalty(mut self, weight: f64) -> Self {
        self.popularity_penalty = weight.max(0.0);
        self
    }

    /// Require at least `n` tail items in the final list (best-effort).
    pub fn tail_quota(mut self, n: usize) -> Self {
        self.tail_quota = n;
        self
    }

    /// Set the over-fetched candidate-pool size M (`0` = default `4k`).
    pub fn pool(mut self, m: usize) -> Self {
        self.pool_size = m;
        self
    }

    /// Set the head/tail popularity-percentile boundary (clamped to
    /// `[0, 1]`).
    pub fn tail_cutoff(mut self, cutoff: f64) -> Self {
        self.tail_cutoff = cutoff.clamp(0.0, 1.0);
        self
    }

    /// Whether any knob is active. A disabled policy is a guaranteed
    /// no-op on the serving path (no over-fetch, no re-order).
    pub fn is_enabled(&self) -> bool {
        self.mmr_lambda > 0.0 || self.popularity_penalty > 0.0 || self.tail_quota > 0
    }

    /// The candidate-pool size the fused path should collect for a final
    /// top-`k`: `k` itself when disabled (bit-identity), otherwise
    /// `pool_size` (default `4k`) clamped to at least `k`.
    pub fn effective_pool(&self, k: usize) -> usize {
        if !self.is_enabled() || k == 0 {
            return k;
        }
        let m = if self.pool_size > 0 {
            self.pool_size
        } else {
            4 * k
        };
        m.max(k)
    }
}

/// Precomputed per-catalog popularity and co-rating structure the
/// re-ranker consults: item degrees, popularity percentiles, and the
/// item → raters transpose (for shared-neighbor similarity).
///
/// Built once per model from training data ([`RerankIndex::from_dataset`])
/// and shared across requests; in `longtail-serve` the [`crate::Recommender`]'s
/// engine registration attaches one per model.
#[derive(Debug, Clone)]
pub struct RerankIndex {
    n_users: usize,
    degrees: Vec<u32>,
    percentiles: Vec<f64>,
    /// CSR transpose of the ratings matrix: `user_ids[user_offsets[i]..
    /// user_offsets[i + 1]]` are the (ascending) raters of item `i`.
    user_offsets: Vec<usize>,
    user_ids: Vec<u32>,
}

impl RerankIndex {
    /// Build the index from training data.
    pub fn from_dataset(train: &Dataset) -> Self {
        let degrees = train.item_popularity();
        let n_items = degrees.len();

        // Percentile of item i = fraction of the catalog with *strictly*
        // lower degree, via one sort of the degree multiset.
        let mut sorted = degrees.clone();
        sorted.sort_unstable();
        let percentiles: Vec<f64> = degrees
            .iter()
            .map(|&d| {
                if n_items == 0 {
                    0.0
                } else {
                    sorted.partition_point(|&x| x < d) as f64 / n_items as f64
                }
            })
            .collect();

        // Counting-sort transpose of user → items; users iterate in
        // ascending order, so each item's rater list lands sorted.
        let mut user_offsets = vec![0usize; n_items + 1];
        let mut acc = 0usize;
        for (i, &d) in degrees.iter().enumerate() {
            user_offsets[i] = acc;
            acc += d as usize;
        }
        user_offsets[n_items] = acc;
        let mut cursor = user_offsets.clone();
        let mut user_ids = vec![0u32; acc];
        let ratings = train.user_items();
        for u in 0..train.n_users() {
            let (items, _) = ratings.row(u);
            for &i in items {
                user_ids[cursor[i as usize]] = u as u32;
                cursor[i as usize] += 1;
            }
        }

        Self {
            n_users: train.n_users(),
            degrees,
            percentiles,
            user_offsets,
            user_ids,
        }
    }

    /// Catalog size the index was built over.
    pub fn n_items(&self) -> usize {
        self.degrees.len()
    }

    /// Number of users in the training data.
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Rating count of `item` in the training data.
    pub fn degree(&self, item: u32) -> u32 {
        self.degrees[item as usize]
    }

    /// Popularity percentile of `item`: the fraction of catalog items
    /// with strictly fewer ratings (`0` = least popular).
    pub fn percentile(&self, item: u32) -> f64 {
        self.percentiles[item as usize]
    }

    /// Whether `item` is a tail item under `cutoff` (percentile strictly
    /// below it).
    pub fn tail(&self, item: u32, cutoff: f64) -> bool {
        self.percentile(item) < cutoff
    }

    /// The (ascending) users who rated `item`.
    pub fn users_of(&self, item: u32) -> &[u32] {
        let i = item as usize;
        &self.user_ids[self.user_offsets[i]..self.user_offsets[i + 1]]
    }

    /// Shared-neighbor cosine similarity on the bipartite graph:
    /// `|U(a) ∩ U(b)| / √(|U(a)| · |U(b)|)`, `0` when either is unrated.
    pub fn similarity(&self, a: u32, b: u32) -> f64 {
        let (ua, ub) = (self.users_of(a), self.users_of(b));
        if ua.is_empty() || ub.is_empty() {
            return 0.0;
        }
        let mut shared = 0usize;
        let (mut i, mut j) = (0usize, 0usize);
        while i < ua.len() && j < ub.len() {
            match ua[i].cmp(&ub[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    shared += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        shared as f64 / ((ua.len() * ub.len()) as f64).sqrt()
    }
}

/// A policy bound to the index it re-ranks against — the form
/// [`crate::RecommendOptions::rerank`] carries.
#[derive(Debug, Clone, Copy)]
pub struct Reranker<'a> {
    /// The catalog structure (degrees, percentiles, rater sets).
    pub index: &'a RerankIndex,
    /// The knobs.
    pub policy: RerankPolicy,
}

impl<'a> Reranker<'a> {
    /// Bind `policy` to `index`.
    pub fn new(index: &'a RerankIndex, policy: RerankPolicy) -> Self {
        Self { index, policy }
    }
}

/// Per-item re-rank provenance, surfaced through
/// `RecommendResponse::provenance` in `longtail-serve`: why this item sits
/// where it does.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ItemProvenance {
    /// Popularity percentile of the item (`0` = least popular).
    pub popularity_percentile: f64,
    /// Whether the item counted as tail under the policy's cutoff.
    pub tail: bool,
    /// `pool rank − final rank`: positive means the re-ranker promoted
    /// the item past better-scored candidates.
    pub displacement: i64,
}

/// Reusable per-context buffers for the re-rank pass, plus the provenance
/// trace of the *last* re-ranked query. Lives in [`crate::ScoringContext`].
#[derive(Debug, Clone, Default)]
pub struct RerankScratch {
    pool: Vec<ScoredItem>,
    rel: Vec<f64>,
    max_sim: Vec<f64>,
    tail: Vec<bool>,
    picked: Vec<bool>,
    selected: Vec<usize>,
    trace: Vec<ItemProvenance>,
}

impl RerankScratch {
    /// Provenance of the last re-ranked query (empty when the last query
    /// ran without an enabled policy).
    pub fn trace(&self) -> &[ItemProvenance] {
        &self.trace
    }

    /// Drop the trace — a query without a re-ranker must never surface
    /// the previous query's provenance.
    pub(crate) fn clear_trace(&mut self) {
        self.trace.clear();
    }
}

/// Re-rank the over-fetched pool in `out` down to the final top-`k`.
///
/// Greedy MMR: each step picks the unselected candidate maximizing
/// `(1 − λ)·rel − λ·max_sim(selected) − penalty·percentile`, where `rel`
/// is the walk score min-max-normalized over the pool. When the remaining
/// slots are exactly what the tail quota still needs, selection restricts
/// to tail candidates (while any remain — an unsatisfiable quota falls
/// back to best-available). Ties break toward the better-scored pool rank,
/// keeping the no-op knobs (λ=0, penalty=0) order-preserving.
///
/// `out` keeps the original walk scores, re-ordered; the provenance trace
/// lands in `scratch` for the serving layer to surface.
pub(crate) fn apply(
    reranker: &Reranker<'_>,
    k: usize,
    scratch: &mut RerankScratch,
    out: &mut Vec<ScoredItem>,
) {
    scratch.trace.clear();
    let policy = &reranker.policy;
    let index = reranker.index;
    if !policy.is_enabled() || out.is_empty() || k == 0 {
        out.truncate(k);
        return;
    }

    std::mem::swap(&mut scratch.pool, out);
    out.clear();
    let pool = &scratch.pool;
    let n = pool.len();
    let target = k.min(n);

    // Min-max normalize relevance over the pool so λ trades against a
    // similarity term of the same scale; a constant pool normalizes to 1.
    let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
    for s in pool {
        lo = lo.min(s.score);
        hi = hi.max(s.score);
    }
    let span = hi - lo;
    scratch.rel.clear();
    scratch.rel.extend(pool.iter().map(|s| {
        if span > 0.0 {
            (s.score - lo) / span
        } else {
            1.0
        }
    }));

    scratch.tail.clear();
    scratch
        .tail
        .extend(pool.iter().map(|s| index.tail(s.item, policy.tail_cutoff)));
    let mut tail_remaining = scratch.tail.iter().filter(|&&t| t).count();

    scratch.max_sim.clear();
    scratch.max_sim.resize(n, 0.0);
    scratch.picked.clear();
    scratch.picked.resize(n, false);
    scratch.selected.clear();

    let quota = policy.tail_quota.min(target);
    let mut tail_selected = 0usize;
    let lambda = policy.mmr_lambda;
    let penalty = policy.popularity_penalty;

    while scratch.selected.len() < target {
        let slots_left = target - scratch.selected.len();
        let need = quota.saturating_sub(tail_selected);
        // Force tail picks once every remaining slot is owed to the
        // quota; if the pool has no tail candidates left the quota is
        // unsatisfiable and selection stays unrestricted.
        let restrict_to_tail = need >= slots_left && need > 0 && tail_remaining > 0;

        let mut best: Option<(usize, f64)> = None;
        for (i, cand) in pool.iter().enumerate() {
            if scratch.picked[i] || (restrict_to_tail && !scratch.tail[i]) {
                continue;
            }
            let score = (1.0 - lambda) * scratch.rel[i]
                - lambda * scratch.max_sim[i]
                - penalty * index.percentile(cand.item);
            // Strict `>` breaks ties toward the lower pool index, i.e.
            // the better-scored candidate.
            if best.is_none_or(|(_, b)| score > b) {
                best = Some((i, score));
            }
        }
        let Some((pick, _)) = best else { break };
        scratch.picked[pick] = true;
        scratch.selected.push(pick);
        if scratch.tail[pick] {
            tail_selected += 1;
            tail_remaining -= 1;
        }
        if lambda > 0.0 && scratch.selected.len() < target {
            for i in 0..n {
                if !scratch.picked[i] {
                    let sim = index.similarity(pool[pick].item, pool[i].item);
                    if sim > scratch.max_sim[i] {
                        scratch.max_sim[i] = sim;
                    }
                }
            }
        }
    }

    for (final_rank, &pi) in scratch.selected.iter().enumerate() {
        let s = scratch.pool[pi];
        out.push(s);
        scratch.trace.push(ItemProvenance {
            popularity_percentile: index.percentile(s.item),
            tail: scratch.tail[pi],
            displacement: pi as i64 - final_rank as i64,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_data::Rating;

    /// 6 items with degrees 3, 3, 2, 1, 1, 0 over 4 users.
    fn corpus() -> Dataset {
        let ratings = [
            (0, 0, 5.0),
            (1, 0, 4.0),
            (2, 0, 3.0),
            (0, 1, 5.0),
            (1, 1, 4.0),
            (3, 1, 3.0),
            (0, 2, 5.0),
            (1, 2, 4.0),
            (2, 3, 5.0),
            (3, 4, 5.0),
        ]
        .map(|(user, item, value)| Rating { user, item, value });
        Dataset::from_ratings(4, 6, &ratings)
    }

    fn pool(items: &[(u32, f64)]) -> Vec<ScoredItem> {
        items
            .iter()
            .map(|&(item, score)| ScoredItem { item, score })
            .collect()
    }

    #[test]
    fn index_percentiles_and_tail_follow_degrees() {
        let index = RerankIndex::from_dataset(&corpus());
        assert_eq!(index.n_items(), 6);
        assert_eq!(index.degree(0), 3);
        assert_eq!(index.degree(5), 0);
        // Items 0 and 1 (degree 3) outrank 4 of 6 items.
        assert!((index.percentile(0) - 4.0 / 6.0).abs() < 1e-12);
        assert_eq!(index.percentile(5), 0.0);
        // 80/20 split: only nothing reaches percentile ≥ 0.8 here, so the
        // head is empty and everything is tail at the default cutoff…
        assert!(index.tail(0, 0.8));
        // …while a cutoff of 0.5 splits the catalog by the degree-2 line.
        assert!(!index.tail(0, 0.5));
        assert!(index.tail(3, 0.5));
    }

    #[test]
    fn index_transpose_is_sorted_and_exact() {
        let index = RerankIndex::from_dataset(&corpus());
        assert_eq!(index.users_of(0), &[0, 1, 2]);
        assert_eq!(index.users_of(4), &[3]);
        assert_eq!(index.users_of(5), &[] as &[u32]);
    }

    #[test]
    fn similarity_is_shared_neighbor_cosine() {
        let index = RerankIndex::from_dataset(&corpus());
        // U(0) = {0,1,2}, U(2) = {0,1}: 2 shared / √6.
        assert!((index.similarity(0, 2) - 2.0 / 6.0f64.sqrt()).abs() < 1e-12);
        assert_eq!(index.similarity(0, 4), 0.0);
        assert_eq!(index.similarity(0, 5), 0.0);
    }

    #[test]
    fn disabled_policy_is_identity() {
        let index = RerankIndex::from_dataset(&corpus());
        let reranker = Reranker::new(&index, RerankPolicy::default());
        assert!(!reranker.policy.is_enabled());
        assert_eq!(reranker.policy.effective_pool(10), 10);
        let mut scratch = RerankScratch::default();
        let mut out = pool(&[(0, 3.0), (2, 2.0), (3, 1.0)]);
        let want = out.clone();
        apply(&reranker, 3, &mut scratch, &mut out);
        assert_eq!(out, want);
        assert!(scratch.trace().is_empty());
    }

    #[test]
    fn effective_pool_defaults_to_4k_and_clamps_below_k() {
        let enabled = RerankPolicy::new().tail_quota(1);
        assert_eq!(enabled.effective_pool(10), 40);
        // Over-fetch M < k: clamped back up to k, never a short list.
        assert_eq!(enabled.pool(3).effective_pool(10), 10);
        assert_eq!(enabled.pool(25).effective_pool(10), 25);
        assert_eq!(enabled.effective_pool(0), 0);
    }

    #[test]
    fn popularity_penalty_reorders_toward_tail() {
        let index = RerankIndex::from_dataset(&corpus());
        // Item 0 (head, percentile 4/6) barely outscores item 3 (tail,
        // percentile 1/6) relative to the pool's score span: a mild
        // penalty flips them. Item 5 anchors the span so normalization
        // keeps the 0-vs-3 relevance gap small.
        let reranker = Reranker::new(&index, RerankPolicy::new().popularity_penalty(0.5));
        let mut scratch = RerankScratch::default();
        let mut out = pool(&[(0, 1.0), (3, 0.99), (5, 0.0)]);
        apply(&reranker, 2, &mut scratch, &mut out);
        assert_eq!(out[0].item, 3);
        assert_eq!(out[1].item, 0);
        // Scores are the original walk scores, re-ordered.
        assert_eq!(out[0].score, 0.99);
        let trace = scratch.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[0].displacement, 1);
        assert_eq!(trace[1].displacement, -1);
    }

    #[test]
    fn mmr_suppresses_near_duplicates() {
        let index = RerankIndex::from_dataset(&corpus());
        // Items 0/1/2 share raters (similar); 4 is independent. With a
        // strong λ the second pick must jump to the dissimilar item.
        let reranker = Reranker::new(&index, RerankPolicy::new().mmr(0.9));
        let mut scratch = RerankScratch::default();
        let mut out = pool(&[(0, 1.0), (2, 0.99), (1, 0.98), (4, 0.9)]);
        apply(&reranker, 2, &mut scratch, &mut out);
        assert_eq!(out[0].item, 0, "first pick is still the top score");
        assert_eq!(out[1].item, 4, "second pick avoids the shared-rater clones");
    }

    #[test]
    fn tail_quota_forces_tail_items_in() {
        let index = RerankIndex::from_dataset(&corpus());
        let reranker = Reranker::new(&index, RerankPolicy::new().tail_quota(2).tail_cutoff(0.5));
        let mut scratch = RerankScratch::default();
        // Head items 0, 1 dominate by score; tail items 3, 4 trail.
        let mut out = pool(&[(0, 1.0), (1, 0.9), (3, 0.2), (4, 0.1)]);
        apply(&reranker, 3, &mut scratch, &mut out);
        let tails = out.iter().filter(|s| index.tail(s.item, 0.5)).count();
        assert_eq!(tails, 2, "quota must be met: {out:?}");
        assert_eq!(out[0].item, 0, "best head item still leads");
    }

    #[test]
    fn tail_quota_larger_than_k_clamps() {
        let index = RerankIndex::from_dataset(&corpus());
        let reranker = Reranker::new(&index, RerankPolicy::new().tail_quota(10).tail_cutoff(0.5));
        let mut scratch = RerankScratch::default();
        let mut out = pool(&[(0, 1.0), (3, 0.2), (4, 0.1)]);
        apply(&reranker, 2, &mut scratch, &mut out);
        assert_eq!(out.len(), 2);
        // Quota clamps to k = 2, so both slots go to tail items.
        assert!(out.iter().all(|s| index.tail(s.item, 0.5)), "{out:?}");
    }

    #[test]
    fn unsatisfiable_quota_fills_with_best_available() {
        let index = RerankIndex::from_dataset(&corpus());
        let reranker = Reranker::new(&index, RerankPolicy::new().tail_quota(3).tail_cutoff(0.5));
        let mut scratch = RerankScratch::default();
        // Only one tail candidate in the pool: quota of 3 cannot be met,
        // but the list must still fill all 3 slots.
        let mut out = pool(&[(0, 1.0), (1, 0.9), (2, 0.8), (4, 0.1)]);
        apply(&reranker, 3, &mut scratch, &mut out);
        assert_eq!(out.len(), 3);
        assert!(
            out.iter().any(|s| s.item == 4),
            "the tail item is in: {out:?}"
        );
    }

    #[test]
    fn all_head_catalog_degrades_to_relevance_order() {
        let index = RerankIndex::from_dataset(&corpus());
        // Cutoff 0: no item is tail, the quota is unsatisfiable from the
        // start, and the penalty-free policy keeps relevance order.
        let reranker = Reranker::new(&index, RerankPolicy::new().tail_quota(2).tail_cutoff(0.0));
        let mut scratch = RerankScratch::default();
        let mut out = pool(&[(0, 1.0), (3, 0.9), (4, 0.8)]);
        apply(&reranker, 3, &mut scratch, &mut out);
        let items: Vec<u32> = out.iter().map(|s| s.item).collect();
        assert_eq!(items, vec![0, 3, 4]);
        assert!(scratch.trace().iter().all(|p| !p.tail));
    }

    #[test]
    fn pool_smaller_than_k_serves_what_exists() {
        let index = RerankIndex::from_dataset(&corpus());
        let reranker = Reranker::new(&index, RerankPolicy::new().popularity_penalty(0.1));
        let mut scratch = RerankScratch::default();
        let mut out = pool(&[(2, 1.0), (3, 0.5)]);
        apply(&reranker, 10, &mut scratch, &mut out);
        assert_eq!(out.len(), 2);
        assert_eq!(scratch.trace().len(), 2);
    }
}
