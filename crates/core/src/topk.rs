//! Top-k selection over item score vectors.

/// An item with its recommendation score (higher is better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredItem {
    /// Item index.
    pub item: u32,
    /// Model score; semantics differ per recommender (negated absorbing
    /// time, PageRank mass, predicted rating, ...), but ordering is always
    /// "higher = more recommended".
    pub score: f64,
}

/// Select the `k` highest-scoring items, skipping those for which `exclude`
/// returns true and those scored `-∞` or NaN.
///
/// Ties are broken by ascending item id, making results deterministic.
/// Runs in `O(n log k)` via a bounded min-heap.
pub fn top_k(scores: &[f64], k: usize, mut exclude: impl FnMut(u32) -> bool) -> Vec<ScoredItem> {
    use std::cmp::Reverse;
    use std::collections::BinaryHeap;

    /// Orderable wrapper: by score, then by *descending* id so that the heap
    /// evicts higher ids first and ties resolve to ascending id in the
    /// output.
    #[derive(PartialEq)]
    struct Entry(f64, Reverse<u32>);
    impl Eq for Entry {}
    impl PartialOrd for Entry {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }
    impl Ord for Entry {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
        }
    }

    if k == 0 {
        return Vec::new();
    }
    let mut heap: BinaryHeap<Reverse<Entry>> = BinaryHeap::with_capacity(k + 1);
    for (i, &s) in scores.iter().enumerate() {
        if s.is_nan() || s == f64::NEG_INFINITY || exclude(i as u32) {
            continue;
        }
        heap.push(Reverse(Entry(s, Reverse(i as u32))));
        if heap.len() > k {
            heap.pop();
        }
    }
    let mut out: Vec<ScoredItem> = heap
        .into_iter()
        .map(|Reverse(Entry(score, Reverse(item)))| ScoredItem { item, score })
        .collect();
    out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.item.cmp(&b.item)));
    out
}

/// Rank of `target` within `candidates` when ordered by descending score
/// (0-based; ties resolved by ascending item id, consistently with
/// [`top_k`]). Returns `None` if `target` is not among the candidates.
///
/// This is the primitive behind Recall@N: the held-out favourite's rank
/// among the 1000 sampled distractors.
pub fn rank_of(scores: &[f64], candidates: &[u32], target: u32) -> Option<usize> {
    let target_score = scores[target as usize];
    let mut found = false;
    let mut rank = 0usize;
    for &c in candidates {
        if c == target {
            found = true;
            continue;
        }
        let s = scores[c as usize];
        match s.total_cmp(&target_score) {
            std::cmp::Ordering::Greater => rank += 1,
            std::cmp::Ordering::Equal if c < target => rank += 1,
            _ => {}
        }
    }
    found.then_some(rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_highest_scores() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        let top = top_k(&scores, 2, |_| false);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].item, 1);
        assert_eq!(top[1].item, 3);
    }

    #[test]
    fn excludes_filtered_items() {
        let scores = [0.1, 0.9, 0.5];
        let top = top_k(&scores, 2, |i| i == 1);
        assert_eq!(top[0].item, 2);
        assert_eq!(top[1].item, 0);
    }

    #[test]
    fn skips_neg_infinity_and_nan() {
        let scores = [f64::NEG_INFINITY, f64::NAN, 0.3];
        let top = top_k(&scores, 3, |_| false);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].item, 2);
    }

    #[test]
    fn ties_resolve_to_ascending_ids() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let top = top_k(&scores, 2, |_| false);
        assert_eq!(top[0].item, 0);
        assert_eq!(top[1].item, 1);
    }

    #[test]
    fn k_larger_than_catalog() {
        let scores = [0.2, 0.4];
        let top = top_k(&scores, 10, |_| false);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k(&[1.0], 0, |_| false).is_empty());
    }

    #[test]
    fn rank_of_counts_strictly_better_candidates() {
        let scores = [0.9, 0.1, 0.5, 0.7];
        // target = 1 (0.1); candidates all.
        assert_eq!(rank_of(&scores, &[0, 1, 2, 3], 1), Some(3));
        assert_eq!(rank_of(&scores, &[0, 1], 0), Some(0));
    }

    #[test]
    fn rank_of_breaks_ties_by_id() {
        let scores = [0.5, 0.5, 0.5];
        // Equal scores: lower ids rank ahead.
        assert_eq!(rank_of(&scores, &[0, 1, 2], 1), Some(1));
        assert_eq!(rank_of(&scores, &[0, 1, 2], 0), Some(0));
        assert_eq!(rank_of(&scores, &[0, 1, 2], 2), Some(2));
    }

    #[test]
    fn rank_of_missing_target() {
        assert_eq!(rank_of(&[0.1, 0.2], &[0], 1), None);
    }

    #[test]
    fn rank_consistent_with_top_k() {
        let scores = [0.3, 0.8, 0.8, 0.1, 0.9];
        let candidates = [0u32, 1, 2, 3, 4];
        let top = top_k(&scores, 5, |_| false);
        for (pos, si) in top.iter().enumerate() {
            assert_eq!(rank_of(&scores, &candidates, si.item), Some(pos));
        }
    }
}
