//! Top-k selection over item score vectors.
//!
//! Two forms of the same selection: [`top_k`] scans a fully materialized
//! score vector, while [`TopKCollector`] is the *fused* primitive the
//! recommenders push candidates into during scoring, so a top-k query never
//! has to build (or sort) an `O(n_items)` vector at all. Both produce
//! identical lists: the `k` highest finite scores, ties broken by ascending
//! item id.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// An item with its recommendation score (higher is better).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScoredItem {
    /// Item index.
    pub item: u32,
    /// Model score; semantics differ per recommender (negated absorbing
    /// time, PageRank mass, predicted rating, ...), but ordering is always
    /// "higher = more recommended".
    pub score: f64,
}

/// Orderable heap entry: by score, then by *descending* id so that the heap
/// evicts higher ids first and ties resolve to ascending id in the output.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Entry(f64, Reverse<u32>);
impl Eq for Entry {}
impl PartialOrd for Entry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Entry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// True when candidate `(score_a, item_a)` strictly outranks
/// `(score_b, item_b)` under the collector order: higher score wins, equal
/// scores resolve to the lower item id.
///
/// This is the *one* comparison every fused pruning decision must use.
/// Comparing raw scores against [`TopKCollector::threshold`] drops the id
/// half of the order and silently rejects candidates that tie the k-th best
/// score with a lower id.
#[inline]
pub(crate) fn outranks(score_a: f64, item_a: u32, score_b: f64, item_b: u32) -> bool {
    Entry(score_a, Reverse(item_a)) > Entry(score_b, Reverse(item_b))
}

/// A bounded min-heap accumulating the `k` best `(item, score)` pairs.
///
/// The fused serving primitive: recommenders push every candidate they can
/// score and the collector keeps only the top `k`, so a query's memory and
/// sorting cost is `O(k)` no matter how many candidates flow through.
/// Pushes of NaN or `-∞` scores are ignored (such items are never
/// recommended), ties are broken by ascending item id, and the final
/// ordering is independent of push order.
///
/// The collector is reusable: [`TopKCollector::reset`] rearms it for a new
/// query retaining the heap allocation, which is how the one inside
/// [`crate::ScoringContext`] serves an entire batch without allocating.
#[derive(Debug, Clone, Default)]
pub struct TopKCollector {
    k: usize,
    heap: BinaryHeap<Reverse<Entry>>,
}

impl TopKCollector {
    /// A collector retaining the best `k` items.
    pub fn new(k: usize) -> Self {
        Self {
            k,
            heap: BinaryHeap::with_capacity(k.saturating_add(1)),
        }
    }

    /// Discard any collected items and rearm for a new query retaining the
    /// best `k`, keeping the heap allocation.
    pub fn reset(&mut self, k: usize) {
        self.k = k;
        self.heap.clear();
    }

    /// The `k` this collector was last armed with.
    #[inline]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of items currently held (at most `k`).
    #[inline]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no item has been collected.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The current k-th best *score*, once `k` items are held.
    ///
    /// This is a telemetry/diagnostic view only: because admission also
    /// tie-breaks on ascending item id, a pruning rule of the form
    /// `score <= threshold → skip` silently drops a candidate that ties the
    /// k-th best score with a *lower* id. Every actual pruning decision
    /// must go through [`TopKCollector::would_accept`], which performs the
    /// full `(score desc, id asc)` comparison.
    #[inline]
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|Reverse(Entry(s, _))| *s)
        } else {
            None
        }
    }

    /// Whether [`TopKCollector::push`] of `(item, score)` would admit the
    /// candidate right now, without pushing it: true while the collector is
    /// not yet full, and thereafter iff the candidate beats the current
    /// k-th best under the full `(score desc, item id asc)` order — the
    /// same tie semantics as admission itself, unlike a raw comparison
    /// against [`TopKCollector::threshold`].
    ///
    /// This is the sound pruning primitive for fused scoring loops (the
    /// walk family's rank-stability probe uses it to decide whether an
    /// outside candidate can still enter a decayed top-k).
    #[inline]
    pub fn would_accept(&self, item: u32, score: f64) -> bool {
        if self.k == 0 || score.is_nan() || score == f64::NEG_INFINITY {
            return false;
        }
        if self.heap.len() < self.k {
            return true;
        }
        match self.heap.peek() {
            Some(&Reverse(min)) => Entry(score, Reverse(item)) > min,
            None => true,
        }
    }

    /// Offer a candidate. NaN and `-∞` scores are ignored; otherwise the
    /// candidate enters iff it beats the current k-th best under the
    /// (score desc, item id asc) order.
    #[inline]
    pub fn push(&mut self, item: u32, score: f64) {
        if self.k == 0 || score.is_nan() || score == f64::NEG_INFINITY {
            return;
        }
        let entry = Entry(score, Reverse(item));
        if self.heap.len() == self.k {
            // Full: only displace the current minimum if strictly better.
            match self.heap.peek() {
                Some(&Reverse(min)) if entry > min => {
                    self.heap.pop();
                    self.heap.push(Reverse(entry));
                }
                _ => {}
            }
        } else {
            self.heap.push(Reverse(entry));
        }
    }

    /// Drain the collected items into `out` (cleared first), sorted by
    /// descending score then ascending item id, leaving the collector empty
    /// but its allocation intact for the next [`TopKCollector::reset`].
    pub fn drain_sorted_into(&mut self, out: &mut Vec<ScoredItem>) {
        out.clear();
        out.extend(
            self.heap
                .drain()
                .map(|Reverse(Entry(score, Reverse(item)))| ScoredItem { item, score }),
        );
        out.sort_by(|a, b| b.score.total_cmp(&a.score).then(a.item.cmp(&b.item)));
    }

    /// Consume the collector into a sorted list (see
    /// [`TopKCollector::drain_sorted_into`]).
    pub fn into_sorted(mut self) -> Vec<ScoredItem> {
        let mut out = Vec::with_capacity(self.heap.len());
        self.drain_sorted_into(&mut out);
        out
    }
}

/// Select the `k` highest-scoring items, skipping those for which `exclude`
/// returns true and those scored `-∞` or NaN.
///
/// Ties are broken by ascending item id, making results deterministic.
/// Runs in `O(n log k)` via a [`TopKCollector`]; fused recommenders feed the
/// same collector directly and must match this function item for item.
pub fn top_k(scores: &[f64], k: usize, mut exclude: impl FnMut(u32) -> bool) -> Vec<ScoredItem> {
    let mut collector = TopKCollector::new(k);
    for (i, &s) in scores.iter().enumerate() {
        let i = i as u32;
        if !exclude(i) {
            collector.push(i, s);
        }
    }
    collector.into_sorted()
}

/// Rank of `target` within `candidates` when ordered by descending score
/// (0-based; ties resolved by ascending item id, consistently with
/// [`top_k`]). Returns `None` if `target` is not among the candidates, and
/// also when `target`'s own score is NaN or `-∞` — an unscorable item can
/// never appear in a top-k list, so it has no rank (previously such targets
/// were ranked by id against equally unscorable candidates, which let a
/// recommender earn recall credit for items it cannot reach at all).
///
/// This is the primitive behind Recall@N: the held-out favourite's rank
/// among the 1000 sampled distractors.
pub fn rank_of(scores: &[f64], candidates: &[u32], target: u32) -> Option<usize> {
    let target_score = scores[target as usize];
    if target_score.is_nan() || target_score == f64::NEG_INFINITY {
        return None;
    }
    let mut found = false;
    let mut rank = 0usize;
    for &c in candidates {
        if c == target {
            found = true;
            continue;
        }
        let s = scores[c as usize];
        match s.total_cmp(&target_score) {
            std::cmp::Ordering::Greater => rank += 1,
            std::cmp::Ordering::Equal if c < target => rank += 1,
            _ => {}
        }
    }
    found.then_some(rank)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selects_highest_scores() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        let top = top_k(&scores, 2, |_| false);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].item, 1);
        assert_eq!(top[1].item, 3);
    }

    #[test]
    fn excludes_filtered_items() {
        let scores = [0.1, 0.9, 0.5];
        let top = top_k(&scores, 2, |i| i == 1);
        assert_eq!(top[0].item, 2);
        assert_eq!(top[1].item, 0);
    }

    #[test]
    fn skips_neg_infinity_and_nan() {
        let scores = [f64::NEG_INFINITY, f64::NAN, 0.3];
        let top = top_k(&scores, 3, |_| false);
        assert_eq!(top.len(), 1);
        assert_eq!(top[0].item, 2);
    }

    #[test]
    fn ties_resolve_to_ascending_ids() {
        let scores = [0.5, 0.5, 0.5, 0.5];
        let top = top_k(&scores, 2, |_| false);
        assert_eq!(top[0].item, 0);
        assert_eq!(top[1].item, 1);
    }

    #[test]
    fn k_larger_than_catalog() {
        let scores = [0.2, 0.4];
        let top = top_k(&scores, 10, |_| false);
        assert_eq!(top.len(), 2);
    }

    #[test]
    fn k_zero_is_empty() {
        assert!(top_k(&[1.0], 0, |_| false).is_empty());
    }

    #[test]
    fn all_items_excluded_is_empty() {
        let scores = [0.2, 0.4, 0.9];
        assert!(top_k(&scores, 3, |_| true).is_empty());
    }

    #[test]
    fn collector_k_zero_ignores_pushes() {
        let mut c = TopKCollector::new(0);
        c.push(0, 1.0);
        c.push(1, 2.0);
        assert!(c.is_empty());
        assert!(c.into_sorted().is_empty());
    }

    #[test]
    fn collector_k_beyond_candidates_keeps_all() {
        let mut c = TopKCollector::new(10);
        c.push(2, 0.5);
        c.push(0, 0.1);
        let out = c.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].item, 2);
        assert_eq!(out[1].item, 0);
    }

    #[test]
    fn collector_ignores_nan_and_neg_infinity() {
        let mut c = TopKCollector::new(4);
        c.push(0, f64::NAN);
        c.push(1, f64::NEG_INFINITY);
        c.push(2, f64::INFINITY);
        c.push(3, -1.0);
        let out = c.into_sorted();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].item, 2); // +∞ is a (degenerate) valid score
        assert_eq!(out[1].item, 3);
    }

    #[test]
    fn collector_all_ties_keep_lowest_ids_regardless_of_push_order() {
        for order in [[3u32, 1, 0, 2], [0, 1, 2, 3], [2, 0, 3, 1]] {
            let mut c = TopKCollector::new(2);
            for item in order {
                c.push(item, 0.5);
            }
            let out = c.into_sorted();
            assert_eq!(out.len(), 2);
            assert_eq!((out[0].item, out[1].item), (0, 1), "order {order:?}");
        }
    }

    #[test]
    fn collector_threshold_tracks_kth_best() {
        let mut c = TopKCollector::new(2);
        assert_eq!(c.threshold(), None);
        c.push(0, 1.0);
        assert_eq!(c.threshold(), None); // not yet full
        c.push(1, 3.0);
        assert_eq!(c.threshold(), Some(1.0));
        c.push(2, 2.0); // displaces item 0
        assert_eq!(c.threshold(), Some(2.0));
        c.push(3, 0.5); // below threshold: rejected
        let out = c.into_sorted();
        assert_eq!(out[0].item, 1);
        assert_eq!(out[1].item, 2);
    }

    #[test]
    fn would_accept_admits_threshold_tie_with_lower_id() {
        // Regression: `threshold()` alone is tie-blind. A candidate that
        // ties the k-th best score with a LOWER id is admitted by `push`,
        // so `would_accept` must say so — while the naive
        // `score > threshold` prune would wrongly skip it.
        let mut c = TopKCollector::new(2);
        c.push(3, 0.9);
        c.push(7, 0.5); // k-th best: (0.5, id 7)
        assert_eq!(c.threshold(), Some(0.5));

        // Tied score, lower id: naive threshold pruning drops it...
        let naive_prune_keeps = 0.5 > c.threshold().unwrap();
        assert!(!naive_prune_keeps, "the naive rule rejects the tie");
        // ...but admission accepts it, and would_accept agrees.
        assert!(c.would_accept(5, 0.5));
        c.push(5, 0.5);
        let out = c.clone().into_sorted();
        assert_eq!((out[0].item, out[1].item), (3, 5), "id 5 displaced id 7");

        // Tied score, higher id: correctly rejected by both.
        assert!(!c.would_accept(9, 0.5));
        // Strictly below: rejected.
        assert!(!c.would_accept(0, 0.4));
        // Strictly above: accepted.
        assert!(c.would_accept(9, 0.6));
    }

    #[test]
    fn would_accept_matches_push_on_edge_inputs() {
        let mut c = TopKCollector::new(1);
        assert!(!c.would_accept(0, f64::NAN));
        assert!(!c.would_accept(0, f64::NEG_INFINITY));
        assert!(c.would_accept(0, f64::INFINITY));
        assert!(c.would_accept(0, -1.0), "not yet full: anything finite");
        c.push(0, -1.0);
        assert!(c.would_accept(1, 0.0));
        assert!(!c.would_accept(1, -1.0), "tie with higher id loses");
        assert!(!TopKCollector::new(0).would_accept(0, 1.0));
    }

    #[test]
    fn outranks_is_the_collector_order() {
        assert!(outranks(1.0, 5, 0.5, 2));
        assert!(!outranks(0.5, 2, 1.0, 5));
        // Ties: lower id outranks.
        assert!(outranks(0.5, 2, 0.5, 5));
        assert!(!outranks(0.5, 5, 0.5, 2));
        assert!(!outranks(0.5, 2, 0.5, 2));
    }

    #[test]
    fn collector_reset_clears_previous_query() {
        let mut c = TopKCollector::new(3);
        c.push(0, 9.0);
        c.push(1, 8.0);
        c.reset(1);
        assert!(c.is_empty());
        assert_eq!(c.k(), 1);
        c.push(5, 0.25);
        let mut out = vec![ScoredItem {
            item: 99,
            score: 0.0,
        }];
        c.drain_sorted_into(&mut out);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].item, 5);
        assert_eq!(out[0].score, 0.25);
    }

    #[test]
    fn collector_matches_top_k_on_mixed_input() {
        let scores = [0.3, f64::NAN, 0.8, f64::NEG_INFINITY, 0.8, 0.1, 0.9];
        for k in 0..=8 {
            let via_scan = top_k(&scores, k, |i| i == 5);
            let mut c = TopKCollector::new(k);
            // Push in a scrambled order to exercise order independence.
            for &i in &[6u32, 0, 2, 1, 4, 3] {
                c.push(i, scores[i as usize]);
            }
            assert_eq!(c.into_sorted(), via_scan, "k={k}");
        }
    }

    #[test]
    fn rank_of_counts_strictly_better_candidates() {
        let scores = [0.9, 0.1, 0.5, 0.7];
        // target = 1 (0.1); candidates all.
        assert_eq!(rank_of(&scores, &[0, 1, 2, 3], 1), Some(3));
        assert_eq!(rank_of(&scores, &[0, 1], 0), Some(0));
    }

    #[test]
    fn rank_of_breaks_ties_by_id() {
        let scores = [0.5, 0.5, 0.5];
        // Equal scores: lower ids rank ahead.
        assert_eq!(rank_of(&scores, &[0, 1, 2], 1), Some(1));
        assert_eq!(rank_of(&scores, &[0, 1, 2], 0), Some(0));
        assert_eq!(rank_of(&scores, &[0, 1, 2], 2), Some(2));
    }

    #[test]
    fn rank_of_missing_target() {
        assert_eq!(rank_of(&[0.1, 0.2], &[0], 1), None);
    }

    #[test]
    fn rank_of_unscorable_target_has_no_rank() {
        // An item the model cannot reach is never in a top-k list, so it
        // must not earn a rank by id tie-breaking against other -∞ scores.
        let scores = [f64::NEG_INFINITY, f64::NEG_INFINITY, 0.5];
        assert_eq!(rank_of(&scores, &[0, 1, 2], 0), None);
        let nan_scores = [f64::NAN, 0.5];
        assert_eq!(rank_of(&nan_scores, &[0, 1], 0), None);
    }

    #[test]
    fn rank_consistent_with_top_k() {
        let scores = [0.3, 0.8, 0.8, 0.1, 0.9];
        let candidates = [0u32, 1, 2, 3, 4];
        let top = top_k(&scores, 5, |_| false);
        for (pos, si) in top.iter().enumerate() {
            assert_eq!(rank_of(&scores, &candidates, si.item), Some(pos));
        }
    }
}
