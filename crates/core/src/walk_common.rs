//! Shared plumbing for the subgraph-bounded random-walk recommenders.
//!
//! HT, AT and AC all follow Algorithm 1's skeleton: grow a BFS subgraph
//! around the query's seed nodes, run a truncated absorbing walk on it, and
//! map the per-node results back to a global item score vector (negated
//! walk value — smaller time/cost means more recommended). All helpers here
//! write through caller-owned buffers (the [`crate::ScoringContext`]), so a
//! steady-state scoring loop performs no `O(n_nodes)` allocations.

use crate::topk::TopKCollector;
use longtail_graph::{BipartiteGraph, SubgraphScratch};
use longtail_markov::DpBuffers;

/// Fill `seeds` with the query user's absorbing set `S_q`: the flat
/// item-node ids of everything the user rated. Empty if the user rated
/// nothing.
pub(crate) fn rated_item_nodes_into(graph: &BipartiteGraph, user: u32, seeds: &mut Vec<usize>) {
    seeds.clear();
    seeds.extend(
        graph
            .user_items()
            .row(user as usize)
            .0
            .iter()
            .map(|&i| graph.item_node(i)),
    );
}

/// Shared AT/AC query setup: seed the context with the user's rated item
/// nodes, grow the BFS subgraph around them, and flag them absorbing.
/// Returns `false` (leaving the context untouched beyond `seeds`) when the
/// user rated nothing and therefore has no absorbing set.
pub(crate) fn grow_absorbing_subgraph(
    graph: &BipartiteGraph,
    user: u32,
    max_items: usize,
    ctx: &mut crate::ScoringContext,
) -> bool {
    rated_item_nodes_into(graph, user, &mut ctx.seeds);
    if ctx.seeds.is_empty() {
        return false;
    }
    ctx.subgraph.grow(graph, &ctx.seeds, max_items);
    ctx.absorbing.clear();
    ctx.absorbing.resize(ctx.subgraph.n_nodes(), false);
    for &s in &ctx.seeds {
        // Seeds are always admitted by the BFS, budget notwithstanding.
        let local = ctx.subgraph.local_id(s).expect("seed admitted");
        ctx.absorbing[local as usize] = true;
    }
    true
}

/// Reset `out` to an all-unreachable score vector for `graph`'s catalog.
pub(crate) fn reset_scores(graph: &BipartiteGraph, out: &mut Vec<f64>) {
    out.clear();
    out.resize(graph.n_items(), f64::NEG_INFINITY);
}

/// Convert local walk values into the global item score vector prepared by
/// [`reset_scores`].
///
/// Items inside the subgraph score `-value` (so *small* absorbing times
/// rank first); items never reached keep `-∞`, ranking strictly last and
/// never entering a top-k. Non-finite local values (unreachable pockets
/// inside the subgraph) also stay `-∞`.
pub(crate) fn write_scores_from_scratch(
    graph: &BipartiteGraph,
    scratch: &SubgraphScratch,
    values: &[f64],
    out: &mut [f64],
) {
    let n_users = graph.n_users();
    for (local, &global) in scratch.global_ids().iter().enumerate() {
        if global >= n_users {
            let v = values[local];
            if v.is_finite() {
                out[global - n_users] = -v;
            }
        }
    }
}

/// Fused top-k extraction for the walk family: push every *subgraph-local*
/// item's negated walk value straight from the DP state into `collector`,
/// skipping the user's `rated` items and unreachable pockets.
///
/// This is the step that lets HT/AT/AC serve a top-k query without touching
/// the global catalog at all — only nodes the BFS actually visited are
/// walked, and the scores pushed are bit-identical to what
/// [`write_scores_from_scratch`] would have written (`-value` for finite
/// values, nothing otherwise).
pub(crate) fn collect_walk_topk(
    graph: &BipartiteGraph,
    scratch: &SubgraphScratch,
    walk: &DpBuffers,
    rated: &[u32],
    collector: &mut TopKCollector,
) {
    let n_users = graph.n_users();
    for (local, &global) in scratch.global_ids().iter().enumerate() {
        if global >= n_users {
            let item = (global - n_users) as u32;
            if rated.binary_search(&item).is_ok() {
                continue;
            }
            if let Some(v) = walk.finite_cost(local as u32) {
                collector.push(item, -v);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScoringContext;

    fn graph() -> BipartiteGraph {
        BipartiteGraph::from_ratings(2, 3, &[(0, 0, 5.0), (0, 1, 4.0), (1, 1, 3.0), (1, 2, 5.0)])
    }

    #[test]
    fn rated_item_nodes_maps_to_flat_ids() {
        let g = graph();
        let mut seeds = vec![99]; // stale content must be cleared
        rated_item_nodes_into(&g, 0, &mut seeds);
        assert_eq!(seeds, vec![g.item_node(0), g.item_node(1)]);
        rated_item_nodes_into(&g, 1, &mut seeds);
        assert_eq!(seeds, vec![g.item_node(1), g.item_node(2)]);
    }

    #[test]
    fn scores_negate_values_and_default_to_neg_inf() {
        let g = graph();
        let mut ctx = ScoringContext::new();
        ctx.subgraph.grow(&g, &[g.user_node(0)], 1);
        // Only items 0 and 1 are reachable within the budget.
        let values = vec![1.5; ctx.subgraph.n_nodes()];
        let mut scores = Vec::new();
        reset_scores(&g, &mut scores);
        write_scores_from_scratch(&g, &ctx.subgraph, &values, &mut scores);
        assert_eq!(scores[0], -1.5);
        assert_eq!(scores[1], -1.5);
        assert_eq!(scores[2], f64::NEG_INFINITY);
    }

    #[test]
    fn infinite_local_values_become_neg_inf() {
        let g = graph();
        let mut ctx = ScoringContext::new();
        ctx.subgraph
            .grow(&g, &[g.user_node(0), g.user_node(1)], usize::MAX);
        let mut values = vec![0.5; ctx.subgraph.n_nodes()];
        values[ctx.subgraph.local_id(g.item_node(2)).unwrap() as usize] = f64::INFINITY;
        let mut scores = Vec::new();
        reset_scores(&g, &mut scores);
        write_scores_from_scratch(&g, &ctx.subgraph, &values, &mut scores);
        assert_eq!(scores[2], f64::NEG_INFINITY);
    }

    #[test]
    fn grow_absorbing_flags_exactly_the_rated_set() {
        let g = graph();
        let mut ctx = ScoringContext::new();
        assert!(grow_absorbing_subgraph(&g, 0, usize::MAX, &mut ctx));
        for node in 0..ctx.subgraph.n_nodes() {
            let global = ctx.subgraph.global_ids()[node];
            let expected = global == g.item_node(0) || global == g.item_node(1);
            assert_eq!(ctx.absorbing[node], expected, "local node {node}");
        }
    }

    #[test]
    fn grow_absorbing_rejects_unrated_users() {
        let g = BipartiteGraph::from_ratings(2, 2, &[(0, 0, 5.0)]);
        let mut ctx = ScoringContext::new();
        assert!(!grow_absorbing_subgraph(&g, 1, usize::MAX, &mut ctx));
    }
}
