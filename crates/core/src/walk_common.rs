//! Shared plumbing for the subgraph-bounded random-walk recommenders.
//!
//! HT, AT and AC all follow Algorithm 1's skeleton: grow a BFS subgraph
//! around the query's seed nodes, run a truncated absorbing walk on it, and
//! map the per-node results back to a global item score vector (negated
//! walk value — smaller time/cost means more recommended).

use longtail_graph::{BipartiteGraph, Subgraph};

/// Build the seed node list for a query user's absorbing set `S_q`: the flat
/// item-node ids of everything the user rated. Empty if the user rated
/// nothing.
pub(crate) fn rated_item_nodes(graph: &BipartiteGraph, user: u32) -> Vec<usize> {
    graph
        .user_items()
        .row(user as usize)
        .0
        .iter()
        .map(|&i| graph.item_node(i))
        .collect()
}

/// Convert local walk values into a global item score vector.
///
/// Items inside the subgraph score `-value` (so *small* absorbing times
/// rank first); items never reached score `-∞`, ranking strictly last and
/// never entering a top-k. Non-finite local values (unreachable pockets
/// inside the subgraph) also map to `-∞`.
pub(crate) fn scores_from_local_values(
    graph: &BipartiteGraph,
    subgraph: &Subgraph,
    values: &[f64],
) -> Vec<f64> {
    let mut scores = vec![f64::NEG_INFINITY; graph.n_items()];
    for (local, &global) in subgraph.global_ids().iter().enumerate() {
        if let longtail_graph::Node::Item(i) = graph.node(global) {
            let v = values[local];
            if v.is_finite() {
                scores[i as usize] = -v;
            }
        }
    }
    scores
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_graph::Subgraph;

    fn graph() -> BipartiteGraph {
        BipartiteGraph::from_ratings(
            2,
            3,
            &[(0, 0, 5.0), (0, 1, 4.0), (1, 1, 3.0), (1, 2, 5.0)],
        )
    }

    #[test]
    fn rated_item_nodes_maps_to_flat_ids() {
        let g = graph();
        assert_eq!(rated_item_nodes(&g, 0), vec![g.item_node(0), g.item_node(1)]);
        assert_eq!(rated_item_nodes(&g, 1), vec![g.item_node(1), g.item_node(2)]);
    }

    #[test]
    fn scores_negate_values_and_default_to_neg_inf() {
        let g = graph();
        let s = Subgraph::bfs_from(&g, &[g.user_node(0)], 1);
        // Only items 0 and 1 are reachable within the budget.
        let values = vec![1.5; s.n_nodes()];
        let scores = scores_from_local_values(&g, &s, &values);
        assert_eq!(scores[0], -1.5);
        assert_eq!(scores[1], -1.5);
        assert_eq!(scores[2], f64::NEG_INFINITY);
    }

    #[test]
    fn infinite_local_values_become_neg_inf() {
        let g = graph();
        let s = Subgraph::full(&g);
        let mut values = vec![0.5; s.n_nodes()];
        values[s.local_id(g.item_node(2)).unwrap() as usize] = f64::INFINITY;
        let scores = scores_from_local_values(&g, &s, &values);
        assert_eq!(scores[2], f64::NEG_INFINITY);
    }
}
