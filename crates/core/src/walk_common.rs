//! Shared plumbing for the subgraph-bounded random-walk recommenders.
//!
//! HT, AT and AC all follow Algorithm 1's skeleton: grow a BFS subgraph
//! around the query's seed nodes, run a truncated absorbing walk on it, and
//! map the per-node results back to a global item score vector (negated
//! walk value — smaller time/cost means more recommended). All helpers here
//! write through caller-owned buffers (the [`crate::ScoringContext`]), so a
//! steady-state scoring loop performs no `O(n_nodes)` allocations.
//!
//! [`run_truncated_walk`] is the one place the DP is launched. In
//! [`WalkMode::Reference`] (the `score_into` contract) it always runs the
//! full fixed-τ program, keeping scored values bit-for-bit reproducible. In
//! [`WalkMode::Serving`] (the fused top-k path) the request's
//! [`DpStopping`] policy (from [`crate::RecommendOptions`]) applies: the DP
//! may stop once the value vector has converged or once [`rank_frozen`]
//! proves the query's top-k list can no longer change — the rankings served
//! are identical to fixed-τ either way. The serving mode also carries the
//! request's extra exclusion set, so the probe certifies exactly the list
//! the collector will serve.

use crate::config::DpStopping;
use crate::topk::{outranks, ScoredItem, TopKCollector};
use longtail_graph::{GraphView, SubgraphScratch};
use longtail_markov::{
    truncated_costs_converge_into, truncated_costs_into, CostModel, DpBuffers, DpProbe, DpRun,
    SliceCost, UnitCost,
};

/// Smallest τ budget for which the rank-stability probe is armed. Below
/// this the handful of iterations a freeze could save is on the order of
/// the probe's own cost, so only the (nearly free) convergence rule runs.
const PROBE_MIN_BUDGET: usize = 32;

/// Which entry-cost model [`run_truncated_walk`] feeds the DP.
pub(crate) enum WalkCostModel {
    /// Every hop costs one step (HT, AT).
    Unit,
    /// Per-local-node costs from [`crate::ScoringContext::entry_costs`]
    /// (the AC variants; fill the buffer before calling).
    EntryCosts,
}

/// What the walk's output is for, which decides whether early termination
/// is admissible.
pub(crate) enum WalkMode<'a> {
    /// Reference scoring (`score_into`): the full fixed-τ DP always runs,
    /// so scores are exactly reproducible regardless of context policy.
    Reference,
    /// Fused serving (`recommend_into`): the request's [`DpStopping`]
    /// applies, with the rank-stability probe targeting the top-`k` list
    /// over non-excluded items.
    Serving {
        /// List length being served.
        k: usize,
        /// The query user's rated items (sorted), excluded from the list.
        rated: &'a [u32],
        /// Request-scoped extra exclusions (sorted), from
        /// [`crate::RecommendOptions::exclude`].
        extra: &'a [u32],
        /// Whether the rated items are exactly the walk's absorbing item
        /// nodes (true for AT/AC, false for HT) — lets the probe exclude
        /// them with an `O(1)` absorbing-flag lookup instead of a binary
        /// search per candidate.
        rated_absorbing: bool,
    },
}

/// Everything the rank-stability probe needs to know about the query,
/// fixed for the whole DP run.
pub(crate) struct ProbeTarget<'a, G: GraphView> {
    pub graph: &'a G,
    pub scratch: &'a SubgraphScratch,
    pub rated: &'a [u32],
    pub extra: &'a [u32],
    pub absorbing: &'a [bool],
    pub rated_absorbing: bool,
    pub k: usize,
    /// Use the tight per-node remaining-change bound (sound for
    /// superharmonic entry costs only — see [`DpProbe::node_bound`]).
    pub per_node: bool,
}

/// Outcome of one [`rank_frozen`] evaluation.
pub(crate) enum ProbeVerdict {
    /// The served top-k list provably cannot change any more.
    Frozen,
    /// A pair still blocks the freeze: its (undecayed) score gap and the
    /// remaining-change bound that failed to clear it — the extrapolation
    /// data the probe driver uses to skip hopeless rescans.
    Blocked {
        /// Score gap of the blocking pair (0 for an exact tie).
        gap: f64,
        /// Remaining-change bound that failed to clear the gap.
        bound: f64,
    },
}

/// Skip margin of the probe driver's extrapolation: a full rescan is only
/// worth it once the blocking bound, scaled by the observed δ decay, is
/// within this factor of the blocking gap. Per-node bounds near the
/// absorbing set decay *faster* than the global δ used for extrapolation,
/// so the margin leans generous.
const PROBE_EXTRAPOLATION_MARGIN: f64 = 4.0;

/// The rank-stability callback handed to the DP, in option form.
type RankProbe<'a> = Option<&'a mut dyn FnMut(&DpProbe<'_>) -> bool>;

/// Fill `seeds` with the query user's absorbing set `S_q`: the flat
/// item-node ids of everything the user rated. Empty if the user rated
/// nothing.
pub(crate) fn rated_item_nodes_into<G: GraphView>(graph: &G, user: u32, seeds: &mut Vec<usize>) {
    seeds.clear();
    let n_users = graph.n_users();
    graph.for_each_rated(user, |i, _| seeds.push(n_users + i as usize));
}

/// Shared AT/AC query setup: seed the context with the user's rated item
/// nodes, grow the BFS subgraph around them, and flag them absorbing.
/// Returns `false` (leaving the context untouched beyond `seeds`) when the
/// user rated nothing and therefore has no absorbing set.
pub(crate) fn grow_absorbing_subgraph<G: GraphView>(
    graph: &G,
    user: u32,
    max_items: usize,
    ctx: &mut crate::ScoringContext,
) -> bool {
    rated_item_nodes_into(graph, user, &mut ctx.seeds);
    if ctx.seeds.is_empty() {
        return false;
    }
    ctx.subgraph.grow(graph, &ctx.seeds, max_items);
    ctx.absorbing.clear();
    ctx.absorbing.resize(ctx.subgraph.n_nodes(), false);
    for &s in &ctx.seeds {
        // Seeds are always admitted by the BFS, budget notwithstanding.
        let local = ctx.subgraph.local_id(s).expect("seed admitted");
        ctx.absorbing[local as usize] = true;
    }
    true
}

/// Launch the truncated DP over the context's prepared subgraph, absorbing
/// flags and (for [`WalkCostModel::EntryCosts`]) entry-cost buffer, leaving
/// the values in the context's [`DpBuffers`] and folding the run into the
/// context's [`crate::DpTelemetry`]. `stopping` and `deadline` are the
/// request's serving policy; they only apply in [`WalkMode::Serving`]
/// ([`WalkMode::Reference`] always runs the exact fixed-τ program).
///
/// A `deadline` arms cooperative cancellation: the DP consults the clock on
/// its measured iterations (the stride-scheduled δ pass — the hot sweep
/// stays branch-free) and aborts once the instant has passed, recording a
/// `deadline_expired` run in the context's telemetry. The values left in
/// the buffers then rank nothing; callers must check the telemetry before
/// serving (see [`crate::RecommendOptions::deadline`]).
pub(crate) fn run_truncated_walk<G: GraphView>(
    graph: &G,
    cost_model: WalkCostModel,
    iterations: usize,
    mode: WalkMode<'_>,
    stopping: DpStopping,
    deadline: Option<std::time::Instant>,
    ctx: &mut crate::ScoringContext,
) -> DpRun {
    let crate::ScoringContext {
        subgraph,
        walk,
        absorbing,
        entry_costs,
        probe_topk,
        probe_items,
        dp_telemetry,
        ..
    } = ctx;
    // Unit entry costs are superharmonic, which is what makes the probe's
    // tight per-node bound sound (see `DpProbe`); the AC entropy costs are
    // not, so those queries fall back to the global bound.
    let per_node = matches!(cost_model, WalkCostModel::Unit);
    let slice_cost = SliceCost(entry_costs);
    let cost: &dyn CostModel = match cost_model {
        WalkCostModel::Unit => &UnitCost,
        WalkCostModel::EntryCosts => &slice_cost,
    };
    // The deadline check the DP consults on measured iterations. Reference
    // scoring never cancels (its contract is the exact fixed-τ program).
    let expired = || deadline.is_some_and(|d| std::time::Instant::now() >= d);
    let cancel: Option<&dyn Fn() -> bool> = if matches!(mode, WalkMode::Serving { .. }) {
        deadline.is_some().then_some(&expired as &dyn Fn() -> bool)
    } else {
        None
    };
    let run = match (mode, stopping) {
        (WalkMode::Reference, _) => {
            truncated_costs_into(subgraph.kernel(), absorbing, cost, iterations, walk);
            DpRun::fixed(iterations)
        }
        (WalkMode::Serving { .. }, DpStopping::Fixed) => {
            if cancel.is_none() {
                truncated_costs_into(subgraph.kernel(), absorbing, cost, iterations, walk);
                DpRun::fixed(iterations)
            } else {
                // A deadline-carrying Fixed request runs the adaptive form
                // with the convergence rule restricted to exact fixed
                // points (ε < 0) and no probe: the sweeps — and hence the
                // values — are identical to the fixed program, the only
                // extra exits being the bit-identical δ = 0 stop and the
                // deadline itself.
                truncated_costs_converge_into(
                    subgraph.kernel(),
                    absorbing,
                    cost,
                    iterations,
                    -1.0,
                    None,
                    cancel,
                    walk,
                )
            }
        }
        (
            WalkMode::Serving {
                k,
                rated,
                extra,
                rated_absorbing,
            },
            DpStopping::Adaptive { epsilon },
        ) => {
            let target = ProbeTarget {
                graph,
                scratch: &*subgraph,
                rated,
                extra,
                absorbing: absorbing.as_slice(),
                rated_absorbing,
                k,
                per_node,
            };
            // Extrapolation state: the last full scan's blocking pair and
            // the δ/remaining it was observed under. A rescan only runs
            // once the bound, scaled by the δ decay since then, comes
            // within PROBE_EXTRAPOLATION_MARGIN of the gap — skipping is
            // always sound (it can only delay a stop, never corrupt one).
            let mut blocked: Option<(f64, f64, f64, usize)> = None;
            let mut probe = |p: &DpProbe<'_>| {
                if let Some((gap, bound, delta_then, remaining_then)) = blocked {
                    // A rescan is only worth its cost once the state has
                    // actually moved: δ must have decayed meaningfully
                    // since the last full scan, and for a gap-blocked pair
                    // the extrapolated bound must have come within the
                    // margin of the gap. (Skipping can only delay a stop,
                    // never corrupt one.)
                    if p.delta > delta_then * 0.7 {
                        return false;
                    }
                    if gap > 0.0 && remaining_then > 0 {
                        let shrink =
                            (p.delta / delta_then) * (p.remaining as f64 / remaining_then as f64);
                        if bound * shrink > gap * PROBE_EXTRAPOLATION_MARGIN {
                            return false;
                        }
                    }
                }
                match rank_frozen(&target, p, probe_topk, probe_items) {
                    ProbeVerdict::Frozen => true,
                    ProbeVerdict::Blocked { gap, bound } => {
                        blocked = Some((gap, bound, p.delta, p.remaining));
                        false
                    }
                }
            };
            // Below the probe budget there is no rank confirmation for an
            // ε-convergence stop, so restrict the rule to exact fixed
            // points (δ = 0) — those are rank-safe unconditionally.
            let (epsilon, probe_dyn): (f64, RankProbe<'_>) = if iterations >= PROBE_MIN_BUDGET {
                (epsilon, Some(&mut probe))
            } else {
                (-1.0, None)
            };
            truncated_costs_converge_into(
                target.scratch.kernel(),
                target.absorbing,
                cost,
                iterations,
                epsilon,
                probe_dyn,
                cancel,
                walk,
            )
        }
    };
    dp_telemetry.record(&run);
    run
}

/// Reset `out` to an all-unreachable score vector for `graph`'s catalog.
pub(crate) fn reset_scores<G: GraphView>(graph: &G, out: &mut Vec<f64>) {
    out.clear();
    out.resize(graph.n_items(), f64::NEG_INFINITY);
}

/// Convert local walk values into the global item score vector prepared by
/// [`reset_scores`].
///
/// Items inside the subgraph score `-value` (so *small* absorbing times
/// rank first); items never reached keep `-∞`, ranking strictly last and
/// never entering a top-k. Non-finite local values (unreachable pockets
/// inside the subgraph) also stay `-∞`.
pub(crate) fn write_scores_from_scratch<G: GraphView>(
    graph: &G,
    scratch: &SubgraphScratch,
    values: &[f64],
    out: &mut [f64],
) {
    let n_users = graph.n_users();
    for (local, &global) in scratch.global_ids().iter().enumerate() {
        if global >= n_users {
            let v = values[local];
            if v.is_finite() {
                out[global - n_users] = -v;
            }
        }
    }
}

/// Fused top-k extraction for the walk family: push every *subgraph-local*
/// item's negated walk value straight from the DP state into `collector`,
/// skipping the user's `rated` items, the request's `extra` exclusions and
/// unreachable pockets.
///
/// This is the step that lets HT/AT/AC serve a top-k query without touching
/// the global catalog at all — only nodes the BFS actually visited are
/// walked, and the scores pushed are bit-identical to what
/// [`write_scores_from_scratch`] would have written (`-value` for finite
/// values, nothing otherwise).
pub(crate) fn collect_walk_topk<G: GraphView>(
    graph: &G,
    scratch: &SubgraphScratch,
    walk: &DpBuffers,
    rated: &[u32],
    extra: &[u32],
    collector: &mut TopKCollector,
) {
    let n_users = graph.n_users();
    for (local, &global) in scratch.global_ids().iter().enumerate() {
        if global >= n_users {
            let item = (global - n_users) as u32;
            if rated.binary_search(&item).is_ok() {
                continue;
            }
            if !extra.is_empty() && extra.binary_search(&item).is_ok() {
                continue;
            }
            if let Some(v) = walk.finite_cost(local as u32) {
                collector.push(item, -v);
            }
        }
    }
}

/// The rank-stability probe: is the query's top-`k` list provably identical
/// to what the remaining DP iterations would serve?
///
/// By monotonicity each item's score (`-value`) can only *decrease* before
/// the fixed-τ horizon, by at most its remaining-change bound — the probe's
/// per-node bound when `per_node` (sound for the unit-cost walks, see
/// [`DpProbe::node_bound`]), the global `δ_t · (τ − t)` otherwise. The list
/// is frozen when
///
/// 1. every adjacent pair of the current list keeps its order even if the
///    upper item decays by its full bound — or the pair is an exact tie of
///    *structural twins* (identical kernel rows, hence provably identical
///    values at every iteration, so their id order is final at any
///    horizon); and
/// 2. the best candidate outside the list would still be rejected by a
///    collector holding the list's decayed lower bounds — decided by
///    [`TopKCollector::would_accept`], i.e. the full `(score desc, id asc)`
///    admission order, so an outside candidate that ties a decayed member
///    score with a lower id correctly blocks the freeze. The twin
///    exception deliberately does **not** apply at this list boundary:
///    candidates below the collected k+1 could share the boundary score
///    without being twins, so a tied boundary is never declared frozen.
///
/// The candidate set itself is stable by the time the probe is consulted:
/// the DP only probes once `δ_t` is finite, after the `∞` front has closed
/// (see `longtail_markov::dp`), so no item can later appear in or vanish
/// from the subgraph's finite set.
pub(crate) fn rank_frozen<G: GraphView>(
    target: &ProbeTarget<'_, G>,
    probe: &DpProbe<'_>,
    collector: &mut TopKCollector,
    items: &mut Vec<ScoredItem>,
) -> ProbeVerdict {
    let ProbeTarget {
        graph,
        scratch,
        rated,
        extra,
        absorbing,
        rated_absorbing,
        k,
        per_node,
    } = *target;
    if k == 0 {
        return ProbeVerdict::Frozen;
    }
    let global_bound = probe.global_bound();
    if !global_bound.is_finite() {
        return ProbeVerdict::Blocked {
            gap: 0.0,
            bound: f64::INFINITY,
        };
    }
    // Provisional top-(k+1): the served list plus the best outside
    // candidate, under the scores the walk would serve if stopped now.
    collector.reset(k + 1);
    let n_users = graph.n_users();
    for (local, &global) in scratch.global_ids().iter().enumerate() {
        if global >= n_users {
            let item = (global - n_users) as u32;
            let excluded = if rated_absorbing {
                absorbing[local]
            } else {
                rated.binary_search(&item).is_ok()
            } || (!extra.is_empty() && extra.binary_search(&item).is_ok());
            if excluded {
                continue;
            }
            let v = probe.values[local];
            if v.is_finite() {
                collector.push(item, -v);
            }
        }
    }
    collector.drain_sorted_into(items);

    let local_of = |item: u32| -> usize {
        scratch
            .local_id(graph.item_node(item))
            .expect("collected item is in the subgraph") as usize
    };
    let bound_of = |item: u32| -> f64 {
        if per_node {
            probe.node_bound(local_of(item))
        } else {
            global_bound
        }
    };
    let twins = |a: u32, b: u32| -> bool {
        let kernel = scratch.kernel();
        let (cols_a, probs_a) = kernel.row(local_of(a));
        let (cols_b, probs_b) = kernel.row(local_of(b));
        // Rows keep the shared global neighbor order, so identical
        // neighborhoods compare equal elementwise.
        cols_a == cols_b && probs_a == probs_b
    };

    // (1) Within-list order: each adjacent pair must stay ordered when the
    // upper item takes its full remaining decay and the lower one none —
    // except exact twin ties, whose id order is final at every horizon.
    let in_list = items.len().min(k);
    for w in items[..in_list].windows(2) {
        let bound = bound_of(w[0].item);
        if !outranks(w[0].score - bound, w[0].item, w[1].score, w[1].item) {
            let twin_tie = w[0].score == w[1].score && twins(w[0].item, w[1].item);
            if !twin_tie {
                return ProbeVerdict::Blocked {
                    gap: w[0].score - w[1].score,
                    bound,
                };
            }
        }
    }
    // (2) Set membership: rearm the collector with the list's decayed lower
    // bounds and ask whether the best outside candidate would be admitted.
    if items.len() > k {
        let outside = items[k];
        collector.reset(k);
        for si in &items[..k] {
            collector.push(si.item, si.score - bound_of(si.item));
        }
        if collector.would_accept(outside.item, outside.score) {
            let kth = items[k - 1];
            return ProbeVerdict::Blocked {
                gap: kth.score - outside.score,
                bound: bound_of(kth.item),
            };
        }
    }
    ProbeVerdict::Frozen
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ScoringContext;
    use longtail_graph::BipartiteGraph;

    fn graph() -> BipartiteGraph {
        BipartiteGraph::from_ratings(2, 3, &[(0, 0, 5.0), (0, 1, 4.0), (1, 1, 3.0), (1, 2, 5.0)])
    }

    #[test]
    fn rated_item_nodes_maps_to_flat_ids() {
        let g = graph();
        let mut seeds = vec![99]; // stale content must be cleared
        rated_item_nodes_into(&g, 0, &mut seeds);
        assert_eq!(seeds, vec![g.item_node(0), g.item_node(1)]);
        rated_item_nodes_into(&g, 1, &mut seeds);
        assert_eq!(seeds, vec![g.item_node(1), g.item_node(2)]);
    }

    #[test]
    fn scores_negate_values_and_default_to_neg_inf() {
        let g = graph();
        let mut ctx = ScoringContext::new();
        ctx.subgraph.grow(&g, &[g.user_node(0)], 1);
        // Only items 0 and 1 are reachable within the budget.
        let values = vec![1.5; ctx.subgraph.n_nodes()];
        let mut scores = Vec::new();
        reset_scores(&g, &mut scores);
        write_scores_from_scratch(&g, &ctx.subgraph, &values, &mut scores);
        assert_eq!(scores[0], -1.5);
        assert_eq!(scores[1], -1.5);
        assert_eq!(scores[2], f64::NEG_INFINITY);
    }

    #[test]
    fn infinite_local_values_become_neg_inf() {
        let g = graph();
        let mut ctx = ScoringContext::new();
        ctx.subgraph
            .grow(&g, &[g.user_node(0), g.user_node(1)], usize::MAX);
        let mut values = vec![0.5; ctx.subgraph.n_nodes()];
        values[ctx.subgraph.local_id(g.item_node(2)).unwrap() as usize] = f64::INFINITY;
        let mut scores = Vec::new();
        reset_scores(&g, &mut scores);
        write_scores_from_scratch(&g, &ctx.subgraph, &values, &mut scores);
        assert_eq!(scores[2], f64::NEG_INFINITY);
    }

    #[test]
    fn grow_absorbing_flags_exactly_the_rated_set() {
        let g = graph();
        let mut ctx = ScoringContext::new();
        assert!(grow_absorbing_subgraph(&g, 0, usize::MAX, &mut ctx));
        for node in 0..ctx.subgraph.n_nodes() {
            let global = ctx.subgraph.global_ids()[node];
            let expected = global == g.item_node(0) || global == g.item_node(1);
            assert_eq!(ctx.absorbing[node], expected, "local node {node}");
        }
    }

    #[test]
    fn grow_absorbing_rejects_unrated_users() {
        let g = BipartiteGraph::from_ratings(2, 2, &[(0, 0, 5.0)]);
        let mut ctx = ScoringContext::new();
        assert!(!grow_absorbing_subgraph(&g, 1, usize::MAX, &mut ctx));
    }

    /// A graph with 4 items all reachable from user 0's neighborhood, and a
    /// value fixture addressed by *item id* for probe tests.
    fn probe_fixture() -> (BipartiteGraph, ScoringContext) {
        let g = BipartiteGraph::from_ratings(
            2,
            4,
            &[
                (0, 0, 5.0),
                (0, 1, 4.0),
                (0, 2, 3.0),
                (0, 3, 5.0),
                (1, 0, 2.0),
            ],
        );
        let mut ctx = ScoringContext::new();
        ctx.subgraph.grow(&g, &[g.user_node(0)], usize::MAX);
        (g, ctx)
    }

    /// Build a local value vector assigning walk value `vals[i]` to item
    /// `i`; users get an arbitrary value (ignored by the probe).
    fn values_by_item(g: &BipartiteGraph, ctx: &ScoringContext, vals: &[f64]) -> Vec<f64> {
        let mut values = vec![9.0; ctx.subgraph.n_nodes()];
        for (i, &v) in vals.iter().enumerate() {
            let local = ctx.subgraph.local_id(g.item_node(i as u32)).unwrap();
            values[local as usize] = v;
        }
        values
    }

    /// Probe a fixture context with a *global* remaining-change bound.
    fn frozen_global(
        g: &BipartiteGraph,
        ctx: &mut ScoringContext,
        values: &[f64],
        rated: &[u32],
        k: usize,
        bound: f64,
    ) -> bool {
        let no_absorbing = vec![false; ctx.subgraph.n_nodes()];
        let ScoringContext {
            subgraph,
            probe_topk,
            probe_items,
            ..
        } = ctx;
        let target = ProbeTarget {
            graph: g,
            scratch: subgraph,
            rated,
            extra: &[],
            absorbing: &no_absorbing,
            rated_absorbing: false,
            k,
            per_node: false,
        };
        let probe = DpProbe {
            values,
            previous: values,
            delta: bound,
            remaining: 1,
        };
        matches!(
            rank_frozen(&target, &probe, probe_topk, probe_items),
            ProbeVerdict::Frozen
        )
    }

    #[test]
    fn probe_freezes_when_gaps_exceed_bound() {
        let (g, mut ctx) = probe_fixture();
        // Scores (= -value): item0 -1, item1 -2, item2 -3, item3 -4.
        let values = values_by_item(&g, &ctx, &[1.0, 2.0, 3.0, 4.0]);
        // Adjacent gaps are all 1.0: frozen under bound 0.5, not under 1.5.
        assert!(frozen_global(&g, &mut ctx, &values, &[], 2, 0.5));
        assert!(!frozen_global(&g, &mut ctx, &values, &[], 2, 1.5));
        // Infinite bound (∞ front still moving) can never freeze.
        assert!(!frozen_global(&g, &mut ctx, &values, &[], 2, f64::INFINITY));
        // k = 0 serves the empty list: trivially frozen.
        assert!(frozen_global(&g, &mut ctx, &values, &[], 0, 123.0));
    }

    #[test]
    fn probe_respects_tie_semantics_of_would_accept() {
        let (g, mut ctx) = probe_fixture();
        // k = 2. Items 0,1 in the list (values 1.0, 2.0); outside items 2,3
        // at value 2.5. With bound 0.5 the decayed k-th lower bound is
        // score -2.5 (item 1), exactly tying the outside candidates.
        let values = values_by_item(&g, &ctx, &[1.0, 2.0, 2.5, 2.5]);
        // Outside item 2 ties the decayed (score, id) = (-2.5, 1) with a
        // HIGHER id, so it loses the tie and the list is frozen...
        assert!(frozen_global(&g, &mut ctx, &values, &[], 2, 0.5));
        // ...but excluding item 1 (rated) promotes item 2 into the list,
        // leaving its exact tie item 3 outside: the twin exception never
        // applies at the list boundary, so the freeze is refused.
        assert!(!frozen_global(&g, &mut ctx, &values, &[1], 2, 0.5));
    }

    #[test]
    fn probe_extra_exclusions_shape_the_target_list() {
        // The request-scoped exclusion set must shift the probe's target
        // list exactly like a rated exclusion: hiding item 1 via `extra`
        // promotes item 2 into the k = 2 list, leaving its exact tie item 3
        // at the boundary — so the freeze must be refused, while the same
        // state with no exclusions freezes (item 2 loses the boundary tie
        // by id).
        let (g, mut ctx) = probe_fixture();
        let values = values_by_item(&g, &ctx, &[1.0, 2.0, 2.5, 2.5]);
        let no_absorbing = vec![false; ctx.subgraph.n_nodes()];
        let ScoringContext {
            subgraph,
            probe_topk,
            probe_items,
            ..
        } = &mut ctx;
        let probe = DpProbe {
            values: &values,
            previous: &values,
            delta: 0.5,
            remaining: 1,
        };
        let mut target = ProbeTarget {
            graph: &g,
            scratch: subgraph,
            rated: &[],
            extra: &[],
            absorbing: &no_absorbing,
            rated_absorbing: false,
            k: 2,
            per_node: false,
        };
        assert!(matches!(
            rank_frozen(&target, &probe, probe_topk, probe_items),
            ProbeVerdict::Frozen
        ));
        target.extra = &[1];
        assert!(matches!(
            rank_frozen(&target, &probe, probe_topk, probe_items),
            ProbeVerdict::Blocked { .. }
        ));
    }

    #[test]
    fn probe_tied_lower_id_outside_blocks_freeze() {
        // The satellite regression, aimed at the direction threshold-style
        // pruning gets wrong: the outside candidate ties the decayed k-th
        // bound with a LOWER id. List = items 2, 3 (values 1.0, 2.0, k = 2,
        // item 1 rated); outside item 0 at value 2.5. Bound 0.5 decays the
        // k-th (item 3) to score -2.5, exactly tying outside item 0 — which
        // has the lower id and would be admitted, so the freeze must be
        // refused. A naive `score <= decayed threshold → safe` rule would
        // wrongly freeze here.
        let (g, mut ctx) = probe_fixture();
        let values = values_by_item(&g, &ctx, &[2.5, 9.0, 1.0, 2.0]);
        assert!(!frozen_global(&g, &mut ctx, &values, &[1], 2, 0.5));
    }

    #[test]
    fn probe_outside_candidate_within_bound_blocks_freeze() {
        let (g, mut ctx) = probe_fixture();
        // k = 2: list is items 0 (-1.0) and 1 (-2.0); best outside is item
        // 2 at -2.3. Bound 0.5 lets item 1 decay to -2.5, past item 2.
        let values = values_by_item(&g, &ctx, &[1.0, 2.0, 2.3, 4.0]);
        assert!(!frozen_global(&g, &mut ctx, &values, &[], 2, 0.5));
        // A tighter bound freezes it (gap to outside is 0.3; in-list gap 1.0).
        assert!(frozen_global(&g, &mut ctx, &values, &[], 2, 0.2));
    }

    #[test]
    fn probe_exact_in_list_tie_of_non_twins_is_not_frozen() {
        let (g, mut ctx) = probe_fixture();
        // Items 0 and 1 exactly tied but NOT structural twins (item 0 has
        // two raters, item 1 one): their fixed-τ order is undecided, so a
        // positive bound must not freeze... while bound = 0 is an exact
        // fixed point, where ties persist and id order IS final.
        let values = values_by_item(&g, &ctx, &[2.0, 2.0, 3.0, 4.0]);
        assert!(!frozen_global(&g, &mut ctx, &values, &[], 2, 0.1));
        // At an exact fixed point (bound 0) the tie resolves by id forever.
        assert!(frozen_global(&g, &mut ctx, &values, &[], 2, 0.0));
    }

    #[test]
    fn probe_twin_tie_within_list_freezes() {
        let (g, mut ctx) = probe_fixture();
        // Items 1 and 2 are structural twins (sole rater user 0, and row
        // renormalization erases the differing edge weights), so their tie
        // is provably permanent: a k = 3 list with the tie *inside* freezes
        // under a positive bound...
        let values = values_by_item(&g, &ctx, &[1.0, 2.0, 2.0, 4.0]);
        assert!(frozen_global(&g, &mut ctx, &values, &[], 3, 0.3));
        // ...but the same tie straddling the k = 2 boundary does not (the
        // twin exception is boundary-strict).
        assert!(!frozen_global(&g, &mut ctx, &values, &[], 2, 0.3));
    }

    #[test]
    fn probe_short_list_checks_order_only() {
        let (g, mut ctx) = probe_fixture();
        // k = 10 > 4 candidates: everything is in the list; only the
        // internal order matters.
        let values = values_by_item(&g, &ctx, &[1.0, 2.0, 3.0, 4.0]);
        assert!(frozen_global(&g, &mut ctx, &values, &[], 10, 0.5));
        assert!(!frozen_global(&g, &mut ctx, &values, &[], 10, 1.5));
    }

    #[test]
    fn probe_per_node_bound_freezes_where_global_cannot() {
        let (g, mut ctx) = probe_fixture();
        // Top item 0 has a tiny increment (its own remaining change is
        // small) while far item 3 is still moving fast. The global bound
        // (δ = 1.0 over 2 remaining iterations) cannot freeze k = 1; the
        // per-node bound can.
        let values = values_by_item(&g, &ctx, &[1.0, 2.0, 3.0, 4.0]);
        let mut previous = values.clone();
        let it0 = ctx.subgraph.local_id(g.item_node(0)).unwrap() as usize;
        let it3 = ctx.subgraph.local_id(g.item_node(3)).unwrap() as usize;
        previous[it0] = values[it0] - 0.01;
        previous[it3] = values[it3] - 1.0;
        let no_absorbing = vec![false; ctx.subgraph.n_nodes()];
        let ScoringContext {
            subgraph,
            probe_topk,
            probe_items,
            ..
        } = &mut ctx;
        let probe = DpProbe {
            values: &values,
            previous: &previous,
            delta: 1.0,
            remaining: 2,
        };
        let mut target = ProbeTarget {
            graph: &g,
            scratch: subgraph,
            rated: &[],
            extra: &[],
            absorbing: &no_absorbing,
            rated_absorbing: false,
            k: 1,
            per_node: false,
        };
        assert!(
            matches!(
                rank_frozen(&target, &probe, probe_topk, probe_items),
                ProbeVerdict::Blocked { .. }
            ),
            "global bound 2.0 must not freeze a gap of 1.0"
        );
        target.per_node = true;
        assert!(
            matches!(
                rank_frozen(&target, &probe, probe_topk, probe_items),
                ProbeVerdict::Frozen
            ),
            "per-node bound 0.02 freezes the same list"
        );
    }
}
