//! Batch scoring and context-reuse equivalence.
//!
//! `score_batch` shards users over worker threads that each own one
//! [`ScoringContext`]; a context is pure scratch, so its history must never
//! leak into results. These tests pin the two contracts the batch API
//! advertises:
//!
//! * `score_batch(users, t)` is **bit-identical** to sequential
//!   `score_items` for every thread count `t`;
//! * one long-lived context threaded across many users (and across
//!   different recommenders) produces exactly what fresh contexts produce.

use longtail_core::{
    AbsorbingCostConfig, AbsorbingCostRecommender, AbsorbingTimeRecommender, GraphRecConfig,
    HittingTimeRecommender, KnnRecommender, PageRankRecommender, Recommender, ScoringContext,
    UserSimilarity,
};
use longtail_data::{Dataset, Rating, SyntheticConfig, SyntheticData};

fn synthetic() -> Dataset {
    let config = SyntheticConfig {
        n_users: 60,
        n_items: 50,
        ..SyntheticConfig::movielens_like()
    };
    SyntheticData::generate(&config).dataset
}

fn roster(train: &Dataset) -> Vec<Box<dyn Recommender>> {
    let graph = GraphRecConfig {
        max_items: 30,
        iterations: 15,
    };
    vec![
        Box::new(HittingTimeRecommender::new(train, graph)),
        Box::new(AbsorbingTimeRecommender::new(train, graph)),
        Box::new(AbsorbingCostRecommender::item_entropy(
            train,
            AbsorbingCostConfig {
                graph,
                item_entry_cost: 1.0,
            },
        )),
        Box::new(PageRankRecommender::plain(train)),
        Box::new(PageRankRecommender::discounted(train)),
        Box::new(KnnRecommender::train(train, 5, UserSimilarity::Cosine)),
    ]
}

#[test]
fn score_batch_bit_identical_to_sequential_for_any_thread_count() {
    let train = synthetic();
    let users: Vec<u32> = (0..train.n_users() as u32).collect();
    for rec in roster(&train) {
        let sequential: Vec<Vec<f64>> = users.iter().map(|&u| rec.score_items(u)).collect();
        for n_threads in [1usize, 2, 3, 4, 7] {
            let batch = rec.score_batch(&users, n_threads);
            assert_eq!(
                batch,
                sequential,
                "{} diverged at {} threads",
                rec.name(),
                n_threads
            );
        }
    }
}

#[test]
fn context_reuse_across_users_and_recommenders_is_pure() {
    let train = synthetic();
    let users: Vec<u32> = (0..train.n_users() as u32).collect();
    let recs = roster(&train);

    // One context threaded through every (recommender, user) pair, in an
    // interleaving that maximizes cross-contamination opportunities...
    let mut shared_ctx = ScoringContext::new();
    let mut reused: Vec<Vec<Vec<f64>>> = vec![Vec::new(); recs.len()];
    for &u in &users {
        for (r, rec) in recs.iter().enumerate() {
            let mut out = Vec::new();
            rec.score_into(u, &mut shared_ctx, &mut out);
            reused[r].push(out);
        }
    }

    // ...must equal fresh-context scoring exactly.
    for (r, rec) in recs.iter().enumerate() {
        for (j, &u) in users.iter().enumerate() {
            let fresh = rec.score_items(u);
            assert_eq!(reused[r][j], fresh, "{} user {}", rec.name(), u);
        }
    }
}

#[test]
fn recommend_with_matches_recommend() {
    let train = synthetic();
    let mut ctx = ScoringContext::new();
    for rec in roster(&train) {
        for u in 0..train.n_users() as u32 {
            assert_eq!(
                rec.recommend_with(u, 10, &longtail_core::RecommendOptions::default(), &mut ctx),
                rec.recommend(u, 10),
                "{} user {}",
                rec.name(),
                u
            );
        }
    }
}

#[test]
fn score_batch_handles_degenerate_batches() {
    let ratings = [Rating {
        user: 0,
        item: 0,
        value: 5.0,
    }];
    let train = Dataset::from_ratings(3, 2, &ratings);
    let rec = AbsorbingTimeRecommender::new(&train, GraphRecConfig::default());

    // Empty batch.
    assert!(rec.score_batch(&[], 4).is_empty());
    // More threads than users; unrated users mixed in.
    let batch = rec.score_batch(&[0, 1, 2], 16);
    assert_eq!(batch.len(), 3);
    assert_eq!(batch[0], rec.score_items(0));
    assert!(batch[1].iter().all(|&s| s == f64::NEG_INFINITY));
    // Repeated users score identically.
    let twice = rec.score_batch(&[0, 0], 2);
    assert_eq!(twice[0], twice[1]);
}
