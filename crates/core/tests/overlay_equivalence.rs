//! The streaming-overlay contract, property-tested: for every walk family,
//! serving over base + [`EdgeDelta`] overlay ranks **identically** to a
//! model rebuilt from scratch on the union of the ratings.
//!
//! With integer star values the overlay's merged rows carry exactly the
//! sums CSR construction produces for the union (f64 integer sums are
//! exact in any association order), so the per-query kernels are
//! bit-identical and the comparison below can demand equal scores, not
//! just equal ranks.

use longtail_core::{
    AbsorbingCostConfig, AbsorbingCostRecommender, AbsorbingTimeRecommender, DpStopping, EdgeDelta,
    GraphRecConfig, HittingTimeRecommender, RecommendOptions, Recommender, ScoringContext,
};
use longtail_data::{Dataset, Rating};
use longtail_topics::{LdaConfig, LdaModel};
use proptest::prelude::*;

const N_USERS: usize = 6;
const N_ITEMS: usize = 8;

/// Integer star values keep f64 sums exact — the bit-equality premise.
fn base_ratings() -> impl Strategy<Value = Vec<Rating>> {
    prop::collection::vec(
        (0..N_USERS as u32, 0..N_ITEMS as u32, 1..6i32).prop_map(|(user, item, v)| Rating {
            user,
            item,
            value: v as f64,
        }),
        1..40,
    )
}

/// Delta appends confined to the base dimensions (dimension growth has its
/// own deterministic tests below).
fn delta_ratings() -> impl Strategy<Value = Vec<Rating>> {
    prop::collection::vec(
        (0..N_USERS as u32, 0..N_ITEMS as u32, 1..6i32).prop_map(|(user, item, v)| Rating {
            user,
            item,
            value: v as f64,
        }),
        0..15,
    )
}

fn build_delta(appends: &[Rating], n_users: usize, n_items: usize) -> EdgeDelta {
    let mut delta = EdgeDelta::new(n_users, n_items);
    for r in appends {
        delta.insert(r.user, r.item, r.value, 0.0);
    }
    delta
}

fn union(base: &[Rating], appends: &[Rating], n_users: usize, n_items: usize) -> Dataset {
    let mut all = base.to_vec();
    all.extend_from_slice(appends);
    Dataset::from_ratings(n_users, n_items, &all)
}

/// Overlay serving vs. the rebuilt model: same items, same ranks, same
/// scores, for every user, under both stopping policies.
fn check_overlay_matches_rebuild(
    overlay_rec: &dyn Recommender,
    delta: &EdgeDelta,
    rebuilt: &dyn Recommender,
    n_users: usize,
) -> Result<(), TestCaseError> {
    let mut ctx_a = ScoringContext::new();
    let mut ctx_b = ScoringContext::new();
    let mut got = Vec::new();
    let mut want = Vec::new();
    for stopping in [DpStopping::Fixed, DpStopping::default()] {
        let opts = RecommendOptions::with_stopping(stopping);
        for u in 0..n_users as u32 {
            overlay_rec.recommend_delta_into(delta, u, 5, &opts, &mut ctx_a, &mut got);
            rebuilt.recommend_into(u, 5, &opts, &mut ctx_b, &mut want);
            let got_items: Vec<u32> = got.iter().map(|s| s.item).collect();
            let want_items: Vec<u32> = want.iter().map(|s| s.item).collect();
            prop_assert_eq!(
                &got_items,
                &want_items,
                "{} user {} ({:?}): overlay {:?} vs rebuild {:?}",
                rebuilt.name(),
                u,
                stopping,
                got_items,
                want_items
            );
            for (a, b) in got.iter().zip(want.iter()) {
                prop_assert_eq!(
                    a.score,
                    b.score,
                    "{} user {} item {}: overlay score {} != rebuild {}",
                    rebuilt.name(),
                    u,
                    a.item,
                    a.score,
                    b.score
                );
            }
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hitting_time_overlay_equals_rebuild(base in base_ratings(), appends in delta_ratings()) {
        let base_data = Dataset::from_ratings(N_USERS, N_ITEMS, &base);
        let union_data = union(&base, &appends, N_USERS, N_ITEMS);
        let delta = build_delta(&appends, N_USERS, N_ITEMS);
        let cfg = GraphRecConfig::default();
        let overlay_rec = HittingTimeRecommender::new(&base_data, cfg);
        let rebuilt = HittingTimeRecommender::new(&union_data, cfg);
        check_overlay_matches_rebuild(&overlay_rec, &delta, &rebuilt, N_USERS)?;
    }

    #[test]
    fn absorbing_time_overlay_equals_rebuild(base in base_ratings(), appends in delta_ratings()) {
        let base_data = Dataset::from_ratings(N_USERS, N_ITEMS, &base);
        let union_data = union(&base, &appends, N_USERS, N_ITEMS);
        let delta = build_delta(&appends, N_USERS, N_ITEMS);
        let cfg = GraphRecConfig::default();
        let overlay_rec = AbsorbingTimeRecommender::new(&base_data, cfg);
        let rebuilt = AbsorbingTimeRecommender::new(&union_data, cfg);
        check_overlay_matches_rebuild(&overlay_rec, &delta, &rebuilt, N_USERS)?;
    }

    #[test]
    fn absorbing_cost_item_overlay_equals_rebuild(
        base in base_ratings(),
        appends in delta_ratings(),
    ) {
        // AC1 recomputes delta-touched users' Eq. 10 entropies from the
        // merged rows — the rebuild computes them from the union matrix, so
        // they must agree term for term.
        let base_data = Dataset::from_ratings(N_USERS, N_ITEMS, &base);
        let union_data = union(&base, &appends, N_USERS, N_ITEMS);
        let delta = build_delta(&appends, N_USERS, N_ITEMS);
        let cfg = AbsorbingCostConfig::default();
        let overlay_rec = AbsorbingCostRecommender::item_entropy(&base_data, cfg);
        let rebuilt = AbsorbingCostRecommender::item_entropy(&union_data, cfg);
        check_overlay_matches_rebuild(&overlay_rec, &delta, &rebuilt, N_USERS)?;
    }

    #[test]
    fn absorbing_cost_topic_overlay_equals_rebuild(
        base in base_ratings(),
        appends in delta_ratings(),
    ) {
        // AC2's topic entropies come from the LDA model, which streaming
        // appends do not retrain: the honest rebuild comparison shares the
        // base model (entropies are a function of the model alone).
        let base_data = Dataset::from_ratings(N_USERS, N_ITEMS, &base);
        let union_data = union(&base, &appends, N_USERS, N_ITEMS);
        let delta = build_delta(&appends, N_USERS, N_ITEMS);
        let cfg = AbsorbingCostConfig::default();
        let model = LdaModel::train(base_data.user_items(), &LdaConfig::with_topics(2));
        let overlay_rec = AbsorbingCostRecommender::topic_entropy(&base_data, &model, cfg);
        let rebuilt = AbsorbingCostRecommender::topic_entropy(&union_data, &model, cfg);
        check_overlay_matches_rebuild(&overlay_rec, &delta, &rebuilt, N_USERS)?;
    }
}

/// Dimension growth: a delta user and item beyond the base dims are
/// first-class in the overlay — same ranking as the grown rebuild.
#[test]
fn overlay_serves_new_users_and_items() {
    let base = [
        Rating {
            user: 0,
            item: 0,
            value: 5.0,
        },
        Rating {
            user: 0,
            item: 1,
            value: 3.0,
        },
        Rating {
            user: 1,
            item: 0,
            value: 4.0,
        },
        Rating {
            user: 1,
            item: 2,
            value: 5.0,
        },
    ];
    // User 2 and item 3 exist only in the delta.
    let appends = [
        Rating {
            user: 2,
            item: 0,
            value: 5.0,
        },
        Rating {
            user: 2,
            item: 3,
            value: 4.0,
        },
        Rating {
            user: 1,
            item: 3,
            value: 5.0,
        },
    ];
    let base_data = Dataset::from_ratings(2, 3, &base);
    let union_data = union(&base, &appends, 3, 4);
    let delta = build_delta(&appends, 2, 3);
    assert_eq!(delta.n_users(), 3, "delta grew the user dim");
    assert_eq!(delta.n_items(), 4, "delta grew the item dim");

    let cfg = GraphRecConfig::default();
    let opts = RecommendOptions::with_stopping(DpStopping::Fixed);
    let mut ctx_a = ScoringContext::new();
    let mut ctx_b = ScoringContext::new();
    let mut got = Vec::new();
    let mut want = Vec::new();
    for u in 0..3u32 {
        let overlay_ht = HittingTimeRecommender::new(&base_data, cfg);
        let rebuilt_ht = HittingTimeRecommender::new(&union_data, cfg);
        overlay_ht.recommend_delta_into(&delta, u, 4, &opts, &mut ctx_a, &mut got);
        rebuilt_ht.recommend_into(u, 4, &opts, &mut ctx_b, &mut want);
        assert_eq!(got, want, "HT user {u}");

        let overlay_at = AbsorbingTimeRecommender::new(&base_data, cfg);
        let rebuilt_at = AbsorbingTimeRecommender::new(&union_data, cfg);
        overlay_at.recommend_delta_into(&delta, u, 4, &opts, &mut ctx_a, &mut got);
        rebuilt_at.recommend_into(u, 4, &opts, &mut ctx_b, &mut want);
        assert_eq!(got, want, "AT user {u}");

        let acfg = AbsorbingCostConfig::default();
        let overlay_ac = AbsorbingCostRecommender::item_entropy(&base_data, acfg);
        let rebuilt_ac = AbsorbingCostRecommender::item_entropy(&union_data, acfg);
        overlay_ac.recommend_delta_into(&delta, u, 4, &opts, &mut ctx_a, &mut got);
        rebuilt_ac.recommend_into(u, 4, &opts, &mut ctx_b, &mut want);
        assert_eq!(got, want, "AC1 user {u}");
    }
}

/// The delta must never surface the user's own merged rated set: items
/// rated only via the delta are excluded like training items.
#[test]
fn overlay_excludes_delta_rated_items() {
    let base = [
        Rating {
            user: 0,
            item: 0,
            value: 5.0,
        },
        Rating {
            user: 1,
            item: 0,
            value: 4.0,
        },
        Rating {
            user: 1,
            item: 1,
            value: 5.0,
        },
        Rating {
            user: 1,
            item: 2,
            value: 3.0,
        },
    ];
    let base_data = Dataset::from_ratings(2, 3, &base);
    let mut delta = EdgeDelta::new(2, 3);
    // User 0 rates item 1 through the stream: it must vanish from their
    // recommendations even though the base graph says unrated.
    delta.insert(0, 1, 5.0, 0.0);

    let opts = RecommendOptions::default();
    let mut ctx = ScoringContext::new();
    let mut out = Vec::new();
    let rec = AbsorbingTimeRecommender::new(&base_data, GraphRecConfig::default());
    rec.recommend_into(0, 3, &opts, &mut ctx, &mut out);
    assert!(
        out.iter().any(|s| s.item == 1),
        "without the delta, item 1 is a candidate: {out:?}"
    );
    rec.recommend_delta_into(&delta, 0, 3, &opts, &mut ctx, &mut out);
    assert!(
        out.iter().all(|s| s.item != 1),
        "delta-rated item 1 must be excluded: {out:?}"
    );
}
