//! Property tests: snapshot persistence is a bit-identity for every
//! [`Persistable`] family on arbitrary corpora.
//!
//! The unit tests in `persist.rs` pin the round trip on one fixture; this
//! suite drives it over random datasets — save to snapshot bytes, load
//! back, and require every user's ranking *and every score's bit pattern*
//! to survive unchanged. Case counts honour `PROPTEST_CASES` (see
//! `vendor/proptest`), which CI pins so the suite stays bounded.

use longtail_core::{
    AbsorbingCostConfig, AbsorbingCostRecommender, AbsorbingTimeRecommender,
    AssociationRuleRecommender, GraphRecConfig, HittingTimeRecommender, KnnRecommender,
    LdaRecommender, PageRankRecommender, Persistable, PopularityRecommender, PureSvdRecommender,
    RuleConfig, UserSimilarity,
};
use longtail_data::{Dataset, Rating};
use longtail_topics::LdaConfig;
use proptest::prelude::*;

const N_USERS: usize = 8;
const N_ITEMS: usize = 10;

fn ratings() -> impl Strategy<Value = Vec<Rating>> {
    prop::collection::vec(
        (0..N_USERS as u32, 0..N_ITEMS as u32, 1.0f64..5.0).prop_map(|(user, item, value)| {
            Rating {
                user,
                item,
                value: value.round().max(1.0),
            }
        }),
        1..60,
    )
}

/// Round-trip `rec` through snapshot bytes and require served output to be
/// bit-identical: same items, same ranks, same `f64` bit patterns.
fn check_round_trip<R: Persistable>(rec: &R, d: &Dataset) -> Result<(), TestCaseError> {
    let bytes = rec.to_snapshot_bytes();
    let loaded = R::load_from_bytes(bytes).expect("round trip must load");
    prop_assert_eq!(loaded.name(), rec.name());
    prop_assert_eq!(loaded.n_items(), rec.n_items());
    for u in 0..d.n_users() as u32 {
        prop_assert_eq!(rec.rated_items(u), loaded.rated_items(u), "user {}", u);
        let a = rec.recommend(u, 5);
        let b = loaded.recommend(u, 5);
        prop_assert_eq!(a.len(), b.len(), "{} user {}", rec.name(), u);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.item, y.item, "{} user {}", rec.name(), u);
            prop_assert_eq!(
                x.score.to_bits(),
                y.score.to_bits(),
                "{} user {}: score drifted through the snapshot",
                rec.name(),
                u
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn walk_family_round_trips(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let graph = GraphRecConfig::default();
        check_round_trip(&HittingTimeRecommender::new(&d, graph), &d)?;
        check_round_trip(&AbsorbingTimeRecommender::new(&d, graph), &d)?;
        let ac = AbsorbingCostConfig::default();
        check_round_trip(&AbsorbingCostRecommender::item_entropy(&d, ac), &d)?;
        check_round_trip(
            &AbsorbingCostRecommender::topic_entropy_auto(&d, 2, ac),
            &d,
        )?;
    }

    #[test]
    fn baseline_family_round_trips(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        check_round_trip(&PopularityRecommender::train(&d), &d)?;
        check_round_trip(&KnnRecommender::train(&d, 3, UserSimilarity::Cosine), &d)?;
        check_round_trip(
            &AssociationRuleRecommender::train(
                &d,
                &RuleConfig { min_support: 1, min_confidence: 0.0 },
            ),
            &d,
        )?;
        check_round_trip(&PureSvdRecommender::train(&d, 4), &d)?;
        check_round_trip(&PageRankRecommender::plain(&d), &d)?;
        check_round_trip(&PageRankRecommender::discounted(&d), &d)?;
        check_round_trip(
            &LdaRecommender::train_with(
                &d,
                &LdaConfig { iterations: 15, ..LdaConfig::with_topics(2) },
            ),
            &d,
        )?;
    }
}
