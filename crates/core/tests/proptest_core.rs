//! Property tests: recommender-level invariants on arbitrary datasets.

use longtail_core::{
    top_k, AbsorbingCostConfig, AbsorbingCostRecommender, AbsorbingTimeRecommender, GraphRecConfig,
    HittingTimeRecommender, PageRankRecommender, Recommender,
};
use longtail_data::{Dataset, Rating};
use proptest::prelude::*;

fn ratings() -> impl Strategy<Value = Vec<Rating>> {
    prop::collection::vec(
        (0..8u32, 0..10u32, 1.0f64..5.0).prop_map(|(user, item, value)| Rating {
            user,
            item,
            value: value.round().max(1.0),
        }),
        1..60,
    )
}

/// Shared invariant check for any recommender.
fn check_recommender(rec: &dyn Recommender, d: &Dataset) -> Result<(), TestCaseError> {
    for u in 0..d.n_users() as u32 {
        let top = rec.recommend(u, 5);
        prop_assert!(top.len() <= 5);
        // Never recommend training items.
        for s in &top {
            prop_assert!(
                !d.has_rated(u, s.item),
                "{} recommended rated item {} to {u}",
                rec.name(),
                s.item
            );
        }
        // Scores are sorted descending.
        for w in top.windows(2) {
            prop_assert!(w[0].score >= w[1].score);
        }
        // recommend() is consistent with score_items(): under the default
        // adaptive serving policy the walk family may report each score
        // from an earlier (rank-frozen) DP iteration, so served scores sit
        // at or above the reference — never below, never reordered. The
        // exact item/rank equivalence is pinned in recommend_topk.rs.
        let scores = rec.score_items(u);
        for s in &top {
            prop_assert!(
                s.score >= scores[s.item as usize] - 1e-12,
                "{} item {}: served {} below reference {}",
                rec.name(),
                s.item,
                s.score,
                scores[s.item as usize]
            );
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hitting_time_invariants(rs in ratings()) {
        let d = Dataset::from_ratings(8, 10, &rs);
        let rec = HittingTimeRecommender::new(&d, GraphRecConfig::default());
        check_recommender(&rec, &d)?;
    }

    #[test]
    fn absorbing_time_invariants(rs in ratings()) {
        let d = Dataset::from_ratings(8, 10, &rs);
        let rec = AbsorbingTimeRecommender::new(&d, GraphRecConfig::default());
        check_recommender(&rec, &d)?;
    }

    #[test]
    fn absorbing_cost_invariants(rs in ratings()) {
        let d = Dataset::from_ratings(8, 10, &rs);
        let rec = AbsorbingCostRecommender::item_entropy(&d, AbsorbingCostConfig::default());
        check_recommender(&rec, &d)?;
    }

    #[test]
    fn pagerank_invariants(rs in ratings()) {
        let d = Dataset::from_ratings(8, 10, &rs);
        check_recommender(&PageRankRecommender::plain(&d), &d)?;
        check_recommender(&PageRankRecommender::discounted(&d), &d)?;
    }

    #[test]
    fn top_k_matches_full_sort(scores in prop::collection::vec(-10.0f64..10.0, 1..40), k in 0..12usize) {
        let top = top_k(&scores, k, |_| false);
        // Reference: full sort by (score desc, id asc).
        let mut reference: Vec<(u32, f64)> = scores
            .iter()
            .enumerate()
            .map(|(i, &s)| (i as u32, s))
            .collect();
        reference.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        reference.truncate(k);
        let got: Vec<(u32, f64)> = top.iter().map(|s| (s.item, s.score)).collect();
        prop_assert_eq!(got, reference);
    }

    #[test]
    fn absorbing_time_exposed_times_match_scores(rs in ratings()) {
        let d = Dataset::from_ratings(8, 10, &rs);
        let rec = AbsorbingTimeRecommender::new(&d, GraphRecConfig::default());
        for u in 0..4u32 {
            let scores = rec.score_items(u);
            let times = rec.absorbing_times(u);
            for i in 0..d.n_items() {
                if scores[i].is_finite() {
                    prop_assert!((times[i] + scores[i]).abs() < 1e-12);
                } else {
                    prop_assert!(times[i].is_infinite());
                }
            }
        }
    }
}
