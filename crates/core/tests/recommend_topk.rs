//! Fused top-k equivalence: property tests over random bipartite graphs.
//!
//! Every recommender overrides [`Recommender::recommend_into`] with a fused
//! path (subgraph-only collection, candidate-set accumulation, streamed
//! dots). These properties pin the fused contract for all 8 recommender
//! families:
//!
//! * under [`DpStopping::Fixed`], `recommend_into(user, k)` is
//!   **item-for-item and score-for-score identical** to
//!   `top_k(score_into(user), k, rated)`, including tie-breaking by
//!   ascending item id, for every user and several `k` (0, mid, beyond the
//!   catalog);
//! * under the **default adaptive policy** (early termination on), the
//!   walk family's fused lists are **item- and score-rank identical** to
//!   the full-τ reference — same items, same order — with each served
//!   score at or above its fixed-τ counterpart (the monotone DP stopped
//!   early, never reordered);
//! * `recommend_batch(users, k, t)` is **bit-identical** to the sequential
//!   `recommend_into` loop for every thread count `t`.
//!
//! Case counts honour `PROPTEST_CASES` (see `vendor/proptest`), which CI
//! pins so the suite stays bounded.

use longtail_core::{
    top_k, AbsorbingCostConfig, AbsorbingCostRecommender, AbsorbingTimeRecommender,
    AssociationRuleRecommender, DpStopping, ExclusionSet, GraphRecConfig, HittingTimeRecommender,
    KnnRecommender, LdaRecommender, PageRankRecommender, PureSvdRecommender, RecommendOptions,
    Recommender, RuleConfig, ScoredItem, ScoringContext, UserSimilarity,
};
use longtail_data::{Dataset, Rating};
use longtail_topics::LdaConfig;
use proptest::prelude::*;

const N_USERS: usize = 8;
const N_ITEMS: usize = 10;

fn ratings() -> impl Strategy<Value = Vec<Rating>> {
    prop::collection::vec(
        (0..N_USERS as u32, 0..N_ITEMS as u32, 1.0f64..5.0).prop_map(|(user, item, value)| {
            Rating {
                user,
                item,
                value: value.round().max(1.0),
            }
        }),
        1..60,
    )
}

/// The fused contract: for every user and a spread of `k`, the fused list
/// equals the score-then-sort reference exactly (items, scores, order).
/// Runs under [`DpStopping::Fixed`] so the walk family's DP spends its full
/// τ — the policy under which score-for-score identity is the contract.
fn check_fused_equivalence(rec: &dyn Recommender, d: &Dataset) -> Result<(), TestCaseError> {
    let mut ctx = ScoringContext::new();
    let opts = RecommendOptions::with_stopping(DpStopping::Fixed);
    let mut fused: Vec<ScoredItem> = Vec::new();
    for u in 0..d.n_users() as u32 {
        let scores = rec.score_items(u);
        let rated = rec.rated_items(u);
        for k in [0usize, 1, 3, N_ITEMS + 3] {
            let reference = top_k(&scores, k, |i| rated.binary_search(&i).is_ok());
            rec.recommend_into(u, k, &opts, &mut ctx, &mut fused);
            prop_assert_eq!(
                &fused,
                &reference,
                "{} user {} k {}: fused diverged from score-then-sort",
                rec.name(),
                u,
                k
            );
        }
    }
    Ok(())
}

/// The request-scoped exclusion contract: for every user, excluding a set
/// through [`RecommendOptions::exclude`] equals score-then-sort with the
/// union of rated items and that set — across every family, under both
/// stopping policies.
fn check_exclusion_equivalence(rec: &dyn Recommender, d: &Dataset) -> Result<(), TestCaseError> {
    let mut ctx = ScoringContext::new();
    let mut fused: Vec<ScoredItem> = Vec::new();
    // A deterministic spread: every third item, plus the catalog boundary.
    let exclude = ExclusionSet::new((0..N_ITEMS as u32).step_by(3).collect());
    for stopping in [DpStopping::Fixed, DpStopping::adaptive()] {
        let opts = RecommendOptions::new().stopping(stopping).exclude(&exclude);
        for u in 0..d.n_users() as u32 {
            let scores = rec.score_items(u);
            let rated = rec.rated_items(u);
            for k in [1usize, 4, N_ITEMS + 3] {
                let reference = top_k(&scores, k, |i| {
                    rated.binary_search(&i).is_ok() || exclude.contains(i)
                });
                rec.recommend_into(u, k, &opts, &mut ctx, &mut fused);
                let fused_items: Vec<u32> = fused.iter().map(|s| s.item).collect();
                let reference_items: Vec<u32> = reference.iter().map(|s| s.item).collect();
                prop_assert_eq!(
                    &fused_items,
                    &reference_items,
                    "{} user {} k {} ({:?}): exclusion set diverged",
                    rec.name(),
                    u,
                    k,
                    stopping
                );
                prop_assert!(fused.iter().all(|s| !exclude.contains(s.item)));
                if stopping == DpStopping::Fixed {
                    prop_assert_eq!(&fused, &reference);
                }
            }
        }
    }
    Ok(())
}

/// The early-termination contract: under the default adaptive policy, the
/// fused list is item- and score-rank identical to the full-τ
/// `top_k(score_into)` reference — same items in the same positions — and
/// every served score sits at or above its fixed-τ counterpart (the
/// monotone DP was stopped early, so costs can only be underestimates).
fn check_adaptive_rank_equivalence(
    rec: &dyn Recommender,
    d: &Dataset,
) -> Result<(), TestCaseError> {
    let mut ctx = ScoringContext::new();
    let opts = RecommendOptions::default();
    prop_assert_eq!(opts.stopping, DpStopping::adaptive());
    let mut fused: Vec<ScoredItem> = Vec::new();
    for u in 0..d.n_users() as u32 {
        let scores = rec.score_items(u);
        let rated = rec.rated_items(u);
        for k in [0usize, 1, 3, N_ITEMS + 3] {
            let reference = top_k(&scores, k, |i| rated.binary_search(&i).is_ok());
            rec.recommend_into(u, k, &opts, &mut ctx, &mut fused);
            let fused_items: Vec<u32> = fused.iter().map(|s| s.item).collect();
            let reference_items: Vec<u32> = reference.iter().map(|s| s.item).collect();
            prop_assert_eq!(
                &fused_items,
                &reference_items,
                "{} user {} k {}: early-terminated ranking diverged from full-τ",
                rec.name(),
                u,
                k
            );
            for (f, r) in fused.iter().zip(&reference) {
                prop_assert!(
                    f.score >= r.score - 1e-12,
                    "{} user {} k {} item {}: served {} below fixed-τ {}",
                    rec.name(),
                    u,
                    k,
                    f.item,
                    f.score,
                    r.score
                );
            }
        }
    }
    // A context that served adaptively must never spend more than budget.
    let t = ctx.dp_telemetry();
    prop_assert!(t.iterations_run <= t.iterations_budget, "{:?}", t);
    Ok(())
}

/// The batch contract: `recommend_batch` is bit-identical to the sequential
/// `recommend_into` loop at every thread count.
fn check_batch_equivalence(rec: &dyn Recommender, d: &Dataset) -> Result<(), TestCaseError> {
    let users: Vec<u32> = (0..d.n_users() as u32).collect();
    let mut ctx = ScoringContext::new();
    let opts = RecommendOptions::default();
    let sequential: Vec<Vec<ScoredItem>> = users
        .iter()
        .map(|&u| {
            let mut out = Vec::new();
            rec.recommend_into(u, 5, &opts, &mut ctx, &mut out);
            out
        })
        .collect();
    let sequential_dp = ctx.dp_telemetry();
    for n_threads in [1usize, 2, 4] {
        let (batch, dp) = rec.recommend_batch_telemetry(&users, 5, &opts, n_threads);
        prop_assert_eq!(
            &batch,
            &sequential,
            "{} diverged at {} threads",
            rec.name(),
            n_threads
        );
        // Worker telemetry is merged, not dropped: the batch accounts for
        // exactly the queries and budgets of the sequential loop.
        prop_assert_eq!(dp.queries, sequential_dp.queries);
        prop_assert_eq!(dp.iterations_budget, sequential_dp.iterations_budget);
    }
    Ok(())
}

fn check_both(rec: &dyn Recommender, d: &Dataset) -> Result<(), TestCaseError> {
    check_fused_equivalence(rec, d)?;
    check_exclusion_equivalence(rec, d)?;
    check_batch_equivalence(rec, d)
}

proptest! {
    #[test]
    fn hitting_time_fused_matches_score_then_sort(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let rec = HittingTimeRecommender::new(&d, GraphRecConfig::default());
        check_both(&rec, &d)?;
        check_adaptive_rank_equivalence(&rec, &d)?;
        // Also under a tight subgraph budget, where most items are outside
        // the visited neighborhood (and the induced kernel has dangling
        // boundary nodes, exercising the ∞-front path of the adaptive DP).
        let tight = HittingTimeRecommender::new(
            &d,
            GraphRecConfig { max_items: 2, iterations: 10 },
        );
        check_both(&tight, &d)?;
        check_adaptive_rank_equivalence(&tight, &d)?;
    }

    #[test]
    fn absorbing_time_fused_matches_score_then_sort(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let rec = AbsorbingTimeRecommender::new(&d, GraphRecConfig::default());
        check_both(&rec, &d)?;
        check_adaptive_rank_equivalence(&rec, &d)?;
        // A long budget gives the adaptive rules room to actually fire.
        let long = AbsorbingTimeRecommender::new(
            &d,
            GraphRecConfig { max_items: 6000, iterations: 150 },
        );
        check_adaptive_rank_equivalence(&long, &d)?;
    }

    #[test]
    fn absorbing_cost_fused_matches_score_then_sort(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let ac1 = AbsorbingCostRecommender::item_entropy(&d, AbsorbingCostConfig::default());
        check_both(&ac1, &d)?;
        check_adaptive_rank_equivalence(&ac1, &d)?;
    }

    #[test]
    fn topic_absorbing_cost_fused_matches_score_then_sort(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let ac2 = AbsorbingCostRecommender::topic_entropy_auto(
            &d,
            2,
            AbsorbingCostConfig::default(),
        );
        check_both(&ac2, &d)?;
        check_adaptive_rank_equivalence(&ac2, &d)?;
    }

    #[test]
    fn pagerank_fused_matches_score_then_sort(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        check_both(&PageRankRecommender::plain(&d), &d)?;
        check_both(&PageRankRecommender::discounted(&d), &d)?;
    }

    #[test]
    fn knn_fused_matches_score_then_sort(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        for similarity in [UserSimilarity::Cosine, UserSimilarity::Pearson] {
            let rec = KnnRecommender::train(&d, 3, similarity);
            check_both(&rec, &d)?;
        }
    }

    #[test]
    fn assoc_rules_fused_matches_score_then_sort(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        // Loose thresholds so rules actually fire on tiny corpora.
        let rec = AssociationRuleRecommender::train(
            &d,
            &RuleConfig { min_support: 1, min_confidence: 0.0 },
        );
        check_both(&rec, &d)?;
    }

    #[test]
    fn pure_svd_fused_matches_score_then_sort(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let rec = PureSvdRecommender::train(&d, 4);
        check_both(&rec, &d)?;
    }

    #[test]
    fn lda_fused_matches_score_then_sort(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        // Few sweeps: training accuracy is irrelevant to the equivalence.
        let rec = LdaRecommender::train_with(
            &d,
            &LdaConfig { iterations: 15, ..LdaConfig::with_topics(2) },
        );
        check_both(&rec, &d)?;
    }

    #[test]
    fn shared_context_across_fused_recommenders_is_pure(rs in ratings()) {
        // One context threaded through interleaved fused queries of models
        // with different candidate-set disciplines must never leak state
        // (the accum/touched invariant, the collector reset).
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let knn = KnnRecommender::train(&d, 3, UserSimilarity::Cosine);
        let rules = AssociationRuleRecommender::train(
            &d,
            &RuleConfig { min_support: 1, min_confidence: 0.0 },
        );
        let at = AbsorbingTimeRecommender::new(&d, GraphRecConfig::default());
        let recs: [&dyn Recommender; 3] = [&knn, &rules, &at];
        let mut ctx = ScoringContext::new();
        let opts = RecommendOptions::default();
        let mut out = Vec::new();
        for u in 0..d.n_users() as u32 {
            for rec in recs {
                rec.recommend_into(u, 4, &opts, &mut ctx, &mut out);
                let fresh = rec.recommend(u, 4);
                prop_assert_eq!(&out, &fresh, "{} user {}", rec.name(), u);
            }
        }
    }
}
