//! Re-rank policy contracts: property tests over random bipartite graphs.
//!
//! The long-tail re-rank stage composes with the fused serving path by
//! over-fetching a top-M pool and finalizing it to k. Two pinned contracts
//! across all 9 recommender families:
//!
//! * **a disabled policy is bit-identical to no policy** — attaching a
//!   [`Reranker`] whose [`RerankPolicy`] is all-zeros (the `Default`)
//!   serves exactly the list the plain options serve: same items, same
//!   scores, same order, under both stopping policies. The rerank stage is
//!   a *strict* no-op unless a knob is turned;
//! * **an enabled policy serves a permutation of the over-fetched pool** —
//!   k items (or all that exist), drawn from the top-M candidates, with
//!   their original walk scores and a provenance trace aligned with the
//!   output.
//!
//! Case counts honour `PROPTEST_CASES` (see `vendor/proptest`), which CI
//! pins so the suite stays bounded.

use longtail_core::{
    AbsorbingCostConfig, AbsorbingCostRecommender, AbsorbingTimeRecommender,
    AssociationRuleRecommender, DpStopping, GraphRecConfig, HittingTimeRecommender, KnnRecommender,
    LdaRecommender, PageRankRecommender, PureSvdRecommender, RecommendOptions, Recommender,
    RerankIndex, RerankPolicy, Reranker, RuleConfig, ScoredItem, ScoringContext, UserSimilarity,
};
use longtail_data::{Dataset, Rating};
use longtail_topics::LdaConfig;
use proptest::prelude::*;

const N_USERS: usize = 8;
const N_ITEMS: usize = 10;

fn ratings() -> impl Strategy<Value = Vec<Rating>> {
    prop::collection::vec(
        (0..N_USERS as u32, 0..N_ITEMS as u32, 1.0f64..5.0).prop_map(|(user, item, value)| {
            Rating {
                user,
                item,
                value: value.round().max(1.0),
            }
        }),
        1..60,
    )
}

/// Every family over the same training data, boxed for uniform iteration.
fn roster(d: &Dataset) -> Vec<Box<dyn Recommender>> {
    vec![
        Box::new(HittingTimeRecommender::new(d, GraphRecConfig::default())),
        Box::new(AbsorbingTimeRecommender::new(d, GraphRecConfig::default())),
        Box::new(AbsorbingCostRecommender::item_entropy(
            d,
            AbsorbingCostConfig::default(),
        )),
        Box::new(AbsorbingCostRecommender::topic_entropy_auto(
            d,
            2,
            AbsorbingCostConfig::default(),
        )),
        Box::new(PageRankRecommender::plain(d)),
        Box::new(PageRankRecommender::discounted(d)),
        Box::new(KnnRecommender::train(d, 3, UserSimilarity::Cosine)),
        Box::new(AssociationRuleRecommender::train(
            d,
            &RuleConfig {
                min_support: 1,
                min_confidence: 0.0,
            },
        )),
        Box::new(PureSvdRecommender::train(d, 4)),
        Box::new(LdaRecommender::train_with(
            d,
            &LdaConfig {
                iterations: 15,
                ..LdaConfig::with_topics(2)
            },
        )),
    ]
}

proptest! {
    /// A `Default` (disabled) policy attached through the full rerank
    /// plumbing — index, reranker, over-fetch arithmetic, finalize — must
    /// serve bit-identical lists to plain options, for every family, user,
    /// k and stopping policy.
    #[test]
    fn disabled_policy_is_bit_identical_to_no_policy(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let index = RerankIndex::from_dataset(&d);
        let disabled = RerankPolicy::default();
        prop_assert!(!disabled.is_enabled());
        let mut ctx = ScoringContext::new();
        let mut plain_list: Vec<ScoredItem> = Vec::new();
        let mut reranked: Vec<ScoredItem> = Vec::new();
        for rec in &roster(&d) {
            for stopping in [DpStopping::Fixed, DpStopping::adaptive()] {
                let plain = RecommendOptions::with_stopping(stopping);
                let off = RecommendOptions::with_stopping(stopping)
                    .rerank(Reranker::new(&index, disabled));
                prop_assert_eq!(off.fetch(5), 5, "disabled policy must not over-fetch");
                for u in 0..d.n_users() as u32 {
                    for k in [0usize, 1, 3, N_ITEMS + 3] {
                        rec.recommend_into(u, k, &plain, &mut ctx, &mut plain_list);
                        rec.recommend_into(u, k, &off, &mut ctx, &mut reranked);
                        prop_assert_eq!(
                            &reranked,
                            &plain_list,
                            "{} user {} k {} ({:?}): disabled policy changed the list",
                            rec.name(),
                            u,
                            k,
                            stopping
                        );
                        prop_assert!(
                            ctx.rerank_trace().is_empty(),
                            "disabled policy must leave no provenance"
                        );
                    }
                }
            }
        }
    }

    /// An enabled policy serves a permutation of the over-fetched pool:
    /// exactly `min(k, pool)` items, each present in the plain top-M at
    /// its original walk score, with an aligned provenance trace.
    #[test]
    fn enabled_policy_serves_a_pool_permutation(rs in ratings()) {
        let d = Dataset::from_ratings(N_USERS, N_ITEMS, &rs);
        let index = RerankIndex::from_dataset(&d);
        let policy = RerankPolicy::new().mmr(0.4).popularity_penalty(0.3).tail_quota(1);
        let mut ctx = ScoringContext::new();
        let mut pool: Vec<ScoredItem> = Vec::new();
        let mut reranked: Vec<ScoredItem> = Vec::new();
        let k = 3usize;
        let fetch = policy.effective_pool(k);
        for rec in &roster(&d) {
            let plain = RecommendOptions::with_stopping(DpStopping::Fixed);
            let on = RecommendOptions::with_stopping(DpStopping::Fixed)
                .rerank(Reranker::new(&index, policy));
            for u in 0..d.n_users() as u32 {
                rec.recommend_into(u, fetch, &plain, &mut ctx, &mut pool);
                rec.recommend_into(u, k, &on, &mut ctx, &mut reranked);
                prop_assert_eq!(
                    reranked.len(),
                    pool.len().min(k),
                    "{} user {}: wrong list length",
                    rec.name(),
                    u
                );
                for s in &reranked {
                    prop_assert!(
                        pool.iter().any(|p| p.item == s.item && p.score == s.score),
                        "{} user {}: served item {} not in the top-{} pool at its score",
                        rec.name(),
                        u,
                        s.item,
                        fetch
                    );
                }
                let trace = ctx.rerank_trace();
                prop_assert_eq!(trace.len(), reranked.len());
                for (s, p) in reranked.iter().zip(trace) {
                    prop_assert_eq!(p.popularity_percentile, index.percentile(s.item));
                }
            }
        }
    }
}

#[test]
fn rerank_composes_with_adaptive_stopping() {
    // The over-fetched pool is collected under the *adaptive* DP too: the
    // rank-stability probe certifies top-M (not top-k), so the reranked
    // list over adaptive scoring picks from the same item pool as fixed-τ.
    let mut rs = Vec::new();
    for u in 0..8u32 {
        for i in 0..10u32 {
            if u <= 9 - i {
                rs.push(Rating {
                    user: u,
                    item: i,
                    value: 4.0,
                });
            }
        }
    }
    let d = Dataset::from_ratings(8, 10, &rs);
    let index = RerankIndex::from_dataset(&d);
    let policy = RerankPolicy::new().mmr(0.3).popularity_penalty(0.25);
    let rec = HittingTimeRecommender::new(&d, GraphRecConfig::default());
    let mut ctx = ScoringContext::new();
    let mut adaptive: Vec<ScoredItem> = Vec::new();
    let mut fixed: Vec<ScoredItem> = Vec::new();
    for u in 0..8u32 {
        let on_adaptive = RecommendOptions::new().rerank(Reranker::new(&index, policy));
        let on_fixed = RecommendOptions::with_stopping(DpStopping::Fixed)
            .rerank(Reranker::new(&index, policy));
        rec.recommend_into(u, 4, &on_adaptive, &mut ctx, &mut adaptive);
        rec.recommend_into(u, 4, &on_fixed, &mut ctx, &mut fixed);
        let a: Vec<u32> = adaptive.iter().map(|s| s.item).collect();
        let f: Vec<u32> = fixed.iter().map(|s| s.item).collect();
        assert_eq!(a, f, "user {u}: adaptive rerank diverged from fixed-τ");
    }
}
