//! Rating dataset container.
//!
//! A thin, validated wrapper around the sparse user→item rating matrix with
//! the derived views every algorithm needs: the bipartite graph, item
//! popularities, and per-user rated sets.

use longtail_graph::{BipartiteGraph, CsrMatrix};
use serde::{Deserialize, Serialize};

/// A single `(user, item, value)` rating.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Rating {
    /// User index, `0..n_users`.
    pub user: u32,
    /// Item index, `0..n_items`.
    pub item: u32,
    /// Rating value (1–5 stars in both of the paper's datasets).
    pub value: f64,
}

/// A rating carrying its event timestamp — the streaming-ingest and
/// temporal-split unit. `timestamp` is in whatever unit the source data uses
/// (seconds for the MovieLens epochs); `0.0` conventionally means "no
/// timestamp recorded".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedRating {
    /// User index, `0..n_users`.
    pub user: u32,
    /// Item index, `0..n_items`.
    pub item: u32,
    /// Rating value.
    pub value: f64,
    /// Event time (0 when the source carries none).
    pub timestamp: f64,
}

/// An immutable ratings dataset.
///
/// Stores the user→item matrix in CSR (duplicate ratings are summed at
/// construction, matching the multigraph-collapsing of §3.1) and exposes the
/// derived structures used throughout the workspace. Datasets built from
/// [`TimedRating`]s additionally carry a same-structure timestamp matrix
/// (duplicates keep the latest stamp) that flows into the bipartite graph
/// for recency-decay serving and the time-based evaluation split.
#[derive(Debug, Clone)]
pub struct Dataset {
    user_items: CsrMatrix,
    times: Option<CsrMatrix>,
}

impl Dataset {
    /// Build from a rating list.
    ///
    /// # Panics
    ///
    /// Panics if any rating is out of bounds or non-positive: a zero or
    /// negative "rating" has no interpretation as an edge weight.
    pub fn from_ratings(n_users: usize, n_items: usize, ratings: &[Rating]) -> Self {
        let triplets: Vec<(u32, u32, f64)> = ratings
            .iter()
            .map(|r| {
                assert!(
                    r.value > 0.0,
                    "rating values must be positive, got {}",
                    r.value
                );
                (r.user, r.item, r.value)
            })
            .collect();
        Self {
            user_items: CsrMatrix::from_triplets(n_users, n_items, &triplets),
            times: None,
        }
    }

    /// Build from a timestamped rating list. Duplicate `(user, item)` pairs
    /// sum their values (like [`Dataset::from_ratings`]) and keep the
    /// **latest** timestamp.
    ///
    /// # Panics
    ///
    /// Panics if any rating is out of bounds or non-positive.
    pub fn from_timed_ratings(n_users: usize, n_items: usize, ratings: &[TimedRating]) -> Self {
        let mut triplets = Vec::with_capacity(ratings.len());
        let mut stamps = Vec::with_capacity(ratings.len());
        for r in ratings {
            assert!(
                r.value > 0.0,
                "rating values must be positive, got {}",
                r.value
            );
            triplets.push((r.user, r.item, r.value));
            stamps.push((r.user, r.item, r.timestamp));
        }
        Self {
            user_items: CsrMatrix::from_triplets(n_users, n_items, &triplets),
            times: Some(CsrMatrix::from_triplets_with(
                n_users,
                n_items,
                &stamps,
                f64::max,
            )),
        }
    }

    /// Wrap an existing user→item matrix.
    pub fn from_matrix(user_items: CsrMatrix) -> Self {
        Self {
            user_items,
            times: None,
        }
    }

    /// Wrap a user→item matrix plus a timestamp matrix with the same
    /// sparsity structure.
    ///
    /// # Panics
    ///
    /// Panics if the two matrices store different `(user, item)` pairs.
    pub fn from_matrix_with_times(user_items: CsrMatrix, times: CsrMatrix) -> Self {
        assert!(
            times.same_structure(&user_items),
            "timestamp matrix structure differs from the rating matrix"
        );
        Self {
            user_items,
            times: Some(times),
        }
    }

    /// Number of users.
    #[inline]
    pub fn n_users(&self) -> usize {
        self.user_items.rows()
    }

    /// Number of items.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.user_items.cols()
    }

    /// Number of ratings.
    #[inline]
    pub fn n_ratings(&self) -> usize {
        self.user_items.nnz()
    }

    /// Fraction of the rating matrix that is filled.
    pub fn density(&self) -> f64 {
        let cells = self.n_users() * self.n_items();
        if cells == 0 {
            0.0
        } else {
            self.n_ratings() as f64 / cells as f64
        }
    }

    /// The user→item rating matrix.
    #[inline]
    pub fn user_items(&self) -> &CsrMatrix {
        &self.user_items
    }

    /// Per-rating timestamps aligned entry-for-entry with
    /// [`Dataset::user_items`], when the source data carried them.
    #[inline]
    pub fn times(&self) -> Option<&CsrMatrix> {
        self.times.as_ref()
    }

    /// Items rated by `u` with values.
    #[inline]
    pub fn ratings_of(&self, u: u32) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.user_items.iter_row(u as usize)
    }

    /// Item ids rated by `u`.
    pub fn rated_items(&self, u: u32) -> &[u32] {
        self.user_items.row(u as usize).0
    }

    /// Whether `u` has rated `i`.
    pub fn has_rated(&self, u: u32, i: u32) -> bool {
        self.user_items.get(u as usize, i).is_some()
    }

    /// Number of ratings per item (the paper's popularity measure).
    pub fn item_popularity(&self) -> Vec<u32> {
        let mut pops = vec![0u32; self.n_items()];
        for u in 0..self.n_users() {
            for (i, _) in self.user_items.iter_row(u) {
                pops[i as usize] += 1;
            }
        }
        pops
    }

    /// Number of ratings per user.
    pub fn user_activity(&self) -> Vec<u32> {
        (0..self.n_users())
            .map(|u| self.user_items.row_nnz(u) as u32)
            .collect()
    }

    /// All ratings as a flat list (row-major order).
    pub fn to_ratings(&self) -> Vec<Rating> {
        let mut out = Vec::with_capacity(self.n_ratings());
        for u in 0..self.n_users() {
            for (i, v) in self.user_items.iter_row(u) {
                out.push(Rating {
                    user: u as u32,
                    item: i,
                    value: v,
                });
            }
        }
        out
    }

    /// All ratings with their timestamps (0 where none were recorded), in
    /// row-major order.
    pub fn to_timed_ratings(&self) -> Vec<TimedRating> {
        let mut out = Vec::with_capacity(self.n_ratings());
        for u in 0..self.n_users() {
            let (items, values) = self.user_items.row(u);
            let times = self.times.as_ref().map(|t| t.row(u).1);
            for (k, (&i, &v)) in items.iter().zip(values).enumerate() {
                out.push(TimedRating {
                    user: u as u32,
                    item: i,
                    value: v,
                    timestamp: times.map_or(0.0, |t| t[k]),
                });
            }
        }
        out
    }

    /// The weighted bipartite graph of §3.1, carrying the dataset's
    /// timestamps when present (so serving can apply recency decay).
    pub fn to_graph(&self) -> BipartiteGraph {
        BipartiteGraph::from_user_item_matrix_with_times(
            self.user_items.clone(),
            self.times.clone(),
        )
    }

    /// Partition the corpus into `n_shards` user-disjoint views, each a
    /// full-size dataset (same `n_users` × `n_items` dimensions) whose
    /// rating rows are kept only for the users `route` assigns to that
    /// shard. `route(user, n_shards)` is the same signature a serving
    /// `ShardRouter` exposes, so training shards line up with the shards a
    /// sharded engine routes requests to — shard `s` trains on exactly the
    /// users whose queries shard `s` will serve.
    ///
    /// Global dimensions are preserved on purpose: every shard's model
    /// scores the same item catalog and indexes the same user ids, so
    /// per-shard models are drop-in deployable behind one router with no
    /// id remapping. Users routed elsewhere simply have empty rows (a
    /// shard's model treats them as unrated).
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is 0, or if `route` sends any user to a shard
    /// index `>= n_shards`.
    pub fn shard_by_user(&self, n_shards: usize, route: impl Fn(u32, usize) -> usize) -> Vec<Self> {
        assert!(n_shards > 0, "cannot shard into 0 shards");
        let mut per_shard: Vec<Vec<(u32, u32, f64)>> = vec![Vec::new(); n_shards];
        let mut stamps_per_shard: Vec<Vec<(u32, u32, f64)>> = vec![Vec::new(); n_shards];
        for u in 0..self.n_users() {
            let shard = route(u as u32, n_shards);
            assert!(
                shard < n_shards,
                "route sent user {u} to shard {shard} of {n_shards}"
            );
            for (i, v) in self.user_items.iter_row(u) {
                per_shard[shard].push((u as u32, i, v));
            }
            if let Some(times) = &self.times {
                for (i, t) in times.iter_row(u) {
                    stamps_per_shard[shard].push((u as u32, i, t));
                }
            }
        }
        per_shard
            .into_iter()
            .zip(stamps_per_shard)
            .map(|(triplets, stamps)| Self {
                user_items: CsrMatrix::from_triplets(self.n_users(), self.n_items(), &triplets),
                times: self.times.as_ref().map(|_| {
                    CsrMatrix::from_triplets_with(self.n_users(), self.n_items(), &stamps, f64::max)
                }),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Dataset {
        Dataset::from_ratings(
            3,
            4,
            &[
                Rating {
                    user: 0,
                    item: 0,
                    value: 5.0,
                },
                Rating {
                    user: 0,
                    item: 2,
                    value: 3.0,
                },
                Rating {
                    user: 1,
                    item: 0,
                    value: 4.0,
                },
                Rating {
                    user: 2,
                    item: 3,
                    value: 2.0,
                },
            ],
        )
    }

    #[test]
    fn counts_and_density() {
        let d = sample();
        assert_eq!(d.n_users(), 3);
        assert_eq!(d.n_items(), 4);
        assert_eq!(d.n_ratings(), 4);
        assert!((d.density() - 4.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn popularity_and_activity() {
        let d = sample();
        assert_eq!(d.item_popularity(), vec![2, 0, 1, 1]);
        assert_eq!(d.user_activity(), vec![2, 1, 1]);
    }

    #[test]
    fn rated_items_lookup() {
        let d = sample();
        assert_eq!(d.rated_items(0), &[0, 2]);
        assert!(d.has_rated(0, 2));
        assert!(!d.has_rated(0, 1));
    }

    #[test]
    fn round_trip_through_ratings() {
        let d = sample();
        let d2 = Dataset::from_ratings(3, 4, &d.to_ratings());
        assert_eq!(d.user_items(), d2.user_items());
    }

    #[test]
    fn graph_conversion_preserves_weights() {
        let d = sample();
        let g = d.to_graph();
        assert_eq!(g.rating(0, 0), Some(5.0));
        assert_eq!(g.n_edges(), 4);
    }

    #[test]
    fn shard_by_user_partitions_rows_and_keeps_dims() {
        let d = sample();
        let shards = d.shard_by_user(2, |u, n| u as usize % n);
        assert_eq!(shards.len(), 2);
        for s in &shards {
            assert_eq!(s.n_users(), d.n_users());
            assert_eq!(s.n_items(), d.n_items());
        }
        // Users 0 and 2 land on shard 0, user 1 on shard 1 — rows are
        // disjoint and together reproduce the corpus.
        assert_eq!(shards[0].rated_items(0), d.rated_items(0));
        assert_eq!(shards[0].rated_items(2), d.rated_items(2));
        assert!(shards[0].rated_items(1).is_empty());
        assert_eq!(shards[1].rated_items(1), d.rated_items(1));
        assert!(shards[1].rated_items(0).is_empty());
        assert_eq!(shards[0].n_ratings() + shards[1].n_ratings(), d.n_ratings());
    }

    #[test]
    #[should_panic(expected = "shard")]
    fn shard_by_user_rejects_out_of_range_route() {
        sample().shard_by_user(2, |_, n| n);
    }

    fn timed_sample() -> Dataset {
        Dataset::from_timed_ratings(
            2,
            3,
            &[
                TimedRating {
                    user: 0,
                    item: 0,
                    value: 5.0,
                    timestamp: 100.0,
                },
                TimedRating {
                    user: 0,
                    item: 2,
                    value: 3.0,
                    timestamp: 50.0,
                },
                TimedRating {
                    user: 1,
                    item: 1,
                    value: 4.0,
                    timestamp: 200.0,
                },
            ],
        )
    }

    #[test]
    fn timed_ratings_round_trip() {
        let d = timed_sample();
        let times = d.times().expect("timed dataset keeps stamps");
        assert!(times.same_structure(d.user_items()));
        assert_eq!(times.get(0, 0), Some(100.0));
        let back = d.to_timed_ratings();
        let d2 = Dataset::from_timed_ratings(2, 3, &back);
        assert_eq!(d.user_items(), d2.user_items());
        assert_eq!(d.times(), d2.times());
        // The untimed path reads every stamp as 0.
        assert!(sample()
            .to_timed_ratings()
            .iter()
            .all(|r| r.timestamp == 0.0));
    }

    #[test]
    fn duplicate_timed_ratings_sum_values_and_keep_latest_stamp() {
        let d = Dataset::from_timed_ratings(
            1,
            1,
            &[
                TimedRating {
                    user: 0,
                    item: 0,
                    value: 2.0,
                    timestamp: 10.0,
                },
                TimedRating {
                    user: 0,
                    item: 0,
                    value: 3.0,
                    timestamp: 7.0,
                },
            ],
        );
        assert_eq!(d.user_items().get(0, 0), Some(5.0));
        assert_eq!(d.times().unwrap().get(0, 0), Some(10.0));
    }

    #[test]
    fn timed_graph_carries_timestamps_both_ways() {
        let g = timed_sample().to_graph();
        let ut = g.user_item_times().expect("graph keeps stamps");
        assert_eq!(ut.get(0, 0), Some(100.0));
        let it = g.item_user_times().expect("transposed stamps");
        assert_eq!(it.get(1, 1), Some(200.0));
        assert!(sample().to_graph().user_item_times().is_none());
    }

    #[test]
    fn shard_by_user_carries_timestamps() {
        let d = timed_sample();
        let shards = d.shard_by_user(2, |u, n| u as usize % n);
        assert_eq!(shards[0].times().unwrap().get(0, 0), Some(100.0));
        assert_eq!(shards[0].times().unwrap().get(1, 1), None);
        assert_eq!(shards[1].times().unwrap().get(1, 1), Some(200.0));
        // Untimed datasets shard without inventing stamps.
        assert!(sample().shard_by_user(2, |u, n| u as usize % n)[0]
            .times()
            .is_none());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rating_rejected() {
        Dataset::from_ratings(
            1,
            1,
            &[Rating {
                user: 0,
                item: 0,
                value: 0.0,
            }],
        );
    }
}
