//! Datasets for long-tail recommendation experiments.
//!
//! Provides everything §5.1 of *Challenging the Long Tail Recommendation*
//! needs on the data side:
//!
//! * [`Dataset`] — validated sparse rating container with graph conversion;
//! * [`synthetic`] — seeded generators reproducing the structural facts of
//!   the paper's MovieLens and Douban corpora (power-law popularity,
//!   genre-coherent tastes, 1–5 star values) with ground truth attached;
//! * [`loader`] — parsers for the public MovieLens file formats;
//! * [`longtail`] — the r%-of-ratings tail/head split of §5.1.2;
//! * [`split`] — the held-out-favourites protocol split behind Recall@N;
//! * [`ontology`] — the Dangdang-style category tree and Eq. 18 similarity;
//! * [`sampling`] — the sampling primitives (Dirichlet, Zipf, power-law)
//!   the generator is built from.

#![warn(missing_docs)]

pub mod dataset;
pub mod loader;
pub mod longtail;
pub mod ontology;
pub mod sampling;
pub mod split;
pub mod synthetic;

pub use dataset::{Dataset, Rating, TimedRating};
pub use loader::{load_movielens_100k, load_movielens_1m, DataError, LoadedDataset};
pub use longtail::LongTailSplit;
pub use ontology::Ontology;
pub use split::{
    holdout_latest_favorites, holdout_longtail_favorites, ProtocolSplit, SplitConfig, TestCase,
};
pub use synthetic::{SyntheticConfig, SyntheticData};
