//! Parsers for the public MovieLens rating formats.
//!
//! The paper's MovieLens-1M dump is not bundled, but users who have it (or
//! the 100k variant) can load the real data:
//!
//! * `ratings.dat` (MovieLens-1M): `user::item::rating::timestamp`;
//! * `u.data` (MovieLens-100k): tab-separated `user item rating timestamp`.
//!
//! Raw ids are arbitrary (1-based with holes), so both loaders compact them
//! to dense `0..n` indices and return the mapping.

use crate::dataset::{Dataset, TimedRating};
use std::collections::HashMap;
use std::fmt;
use std::io::BufRead;
use std::path::Path;

/// Errors raised while loading rating files.
#[derive(Debug)]
pub enum DataError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed line, with its 1-based line number.
    Parse {
        /// 1-based line number of the offending record.
        line: usize,
        /// What went wrong.
        reason: String,
    },
    /// The file contained no ratings.
    Empty,
}

impl fmt::Display for DataError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DataError::Io(e) => write!(f, "I/O error: {e}"),
            DataError::Parse { line, reason } => write!(f, "parse error on line {line}: {reason}"),
            DataError::Empty => write!(f, "no ratings found"),
        }
    }
}

impl std::error::Error for DataError {}

impl From<std::io::Error> for DataError {
    fn from(e: std::io::Error) -> Self {
        DataError::Io(e)
    }
}

/// A loaded dataset with the original-id ↔ dense-index mappings.
#[derive(Debug, Clone)]
pub struct LoadedDataset {
    /// The compacted dataset.
    pub dataset: Dataset,
    /// Original user id of each dense user index.
    pub user_ids: Vec<u64>,
    /// Original item id of each dense item index.
    pub item_ids: Vec<u64>,
}

/// Load MovieLens-1M `ratings.dat` (`user::item::rating::timestamp`).
///
/// # Errors
///
/// I/O failures, malformed lines, or an empty file.
pub fn load_movielens_1m(path: &Path) -> Result<LoadedDataset, DataError> {
    let file = std::fs::File::open(path)?;
    parse_ratings(std::io::BufReader::new(file), "::")
}

/// Load MovieLens-100k `u.data` (tab-separated `user item rating timestamp`).
///
/// # Errors
///
/// I/O failures, malformed lines, or an empty file.
pub fn load_movielens_100k(path: &Path) -> Result<LoadedDataset, DataError> {
    let file = std::fs::File::open(path)?;
    parse_ratings(std::io::BufReader::new(file), "\t")
}

/// Parse `user<sep>item<sep>rating[<sep>timestamp]` records from a reader.
///
/// Blank lines are skipped. The timestamp column is optional per line: when
/// at least one record carries a parseable timestamp the loaded dataset is
/// timestamped ([`Dataset::times`] is `Some`), with records missing the
/// field stamped 0; when no record carries one the dataset is untimed.
///
/// # Errors
///
/// Malformed lines (wrong field count, non-numeric fields, ratings outside
/// `(0, 10]`, unparseable timestamps) or an empty stream.
pub fn parse_ratings<R: BufRead>(reader: R, separator: &str) -> Result<LoadedDataset, DataError> {
    let mut user_index: HashMap<u64, u32> = HashMap::new();
    let mut item_index: HashMap<u64, u32> = HashMap::new();
    let mut user_ids: Vec<u64> = Vec::new();
    let mut item_ids: Vec<u64> = Vec::new();
    let mut ratings: Vec<TimedRating> = Vec::new();
    let mut any_timestamp = false;

    for (lineno, line) in reader.lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(separator).collect();
        if fields.len() < 3 {
            return Err(DataError::Parse {
                line: lineno + 1,
                reason: format!("expected at least 3 fields, found {}", fields.len()),
            });
        }
        let raw_user: u64 = fields[0].parse().map_err(|_| DataError::Parse {
            line: lineno + 1,
            reason: format!("bad user id {:?}", fields[0]),
        })?;
        let raw_item: u64 = fields[1].parse().map_err(|_| DataError::Parse {
            line: lineno + 1,
            reason: format!("bad item id {:?}", fields[1]),
        })?;
        let value: f64 = fields[2].parse().map_err(|_| DataError::Parse {
            line: lineno + 1,
            reason: format!("bad rating {:?}", fields[2]),
        })?;
        if !(value > 0.0 && value <= 10.0) {
            return Err(DataError::Parse {
                line: lineno + 1,
                reason: format!("rating {value} outside (0, 10]"),
            });
        }

        let timestamp = if fields.len() >= 4 {
            let t: f64 = fields[3].parse().map_err(|_| DataError::Parse {
                line: lineno + 1,
                reason: format!("bad timestamp {:?}", fields[3]),
            })?;
            any_timestamp = true;
            t
        } else {
            0.0
        };

        let user = *user_index.entry(raw_user).or_insert_with(|| {
            user_ids.push(raw_user);
            (user_ids.len() - 1) as u32
        });
        let item = *item_index.entry(raw_item).or_insert_with(|| {
            item_ids.push(raw_item);
            (item_ids.len() - 1) as u32
        });
        ratings.push(TimedRating {
            user,
            item,
            value,
            timestamp,
        });
    }

    if ratings.is_empty() {
        return Err(DataError::Empty);
    }
    let dataset = if any_timestamp {
        Dataset::from_timed_ratings(user_ids.len(), item_ids.len(), &ratings)
    } else {
        let plain: Vec<crate::dataset::Rating> = ratings
            .iter()
            .map(|r| crate::dataset::Rating {
                user: r.user,
                item: r.item,
                value: r.value,
            })
            .collect();
        Dataset::from_ratings(user_ids.len(), item_ids.len(), &plain)
    };
    Ok(LoadedDataset {
        dataset,
        user_ids,
        item_ids,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn parses_movielens_1m_format() {
        let input = "1::1193::5::978300760\n1::661::3::978302109\n2::1193::4::978298413\n";
        let loaded = parse_ratings(Cursor::new(input), "::").unwrap();
        assert_eq!(loaded.dataset.n_users(), 2);
        assert_eq!(loaded.dataset.n_items(), 2);
        assert_eq!(loaded.dataset.n_ratings(), 3);
        assert_eq!(loaded.user_ids, vec![1, 2]);
        assert_eq!(loaded.item_ids, vec![1193, 661]);
        // User 0 (raw 1) rated item 0 (raw 1193) with 5 stars.
        assert_eq!(
            loaded
                .dataset
                .ratings_of(0)
                .find(|&(i, _)| i == 0)
                .unwrap()
                .1,
            5.0
        );
    }

    #[test]
    fn parses_tab_separated_100k_format() {
        let input = "196\t242\t3\t881250949\n186\t302\t3\t891717742\n";
        let loaded = parse_ratings(Cursor::new(input), "\t").unwrap();
        assert_eq!(loaded.dataset.n_ratings(), 2);
        assert_eq!(loaded.user_ids, vec![196, 186]);
    }

    #[test]
    fn skips_blank_lines() {
        let input = "1::2::3::0\n\n\n2::2::4::0\n";
        let loaded = parse_ratings(Cursor::new(input), "::").unwrap();
        assert_eq!(loaded.dataset.n_ratings(), 2);
    }

    #[test]
    fn timestamp_optional() {
        let input = "1::2::3\n";
        let loaded = parse_ratings(Cursor::new(input), "::").unwrap();
        assert_eq!(loaded.dataset.n_ratings(), 1);
        assert!(loaded.dataset.times().is_none(), "no stamps, no matrix");
    }

    #[test]
    fn timestamp_column_loads_into_dataset() {
        let input = "1::2::3::978300760\n1::7::4::978300999\n2::2::5\n";
        let loaded = parse_ratings(Cursor::new(input), "::").unwrap();
        let times = loaded.dataset.times().expect("timestamped input");
        assert_eq!(times.get(0, 0), Some(978300760.0));
        assert_eq!(times.get(0, 1), Some(978300999.0));
        // The line with no timestamp field defaults to 0.
        assert_eq!(times.get(1, 0), Some(0.0));
    }

    #[test]
    fn garbage_timestamp_is_a_parse_error() {
        let input = "1::2::3::not-a-time\n";
        match parse_ratings(Cursor::new(input), "::") {
            Err(DataError::Parse { line, reason }) => {
                assert_eq!(line, 1);
                assert!(reason.contains("timestamp"), "{reason}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn reports_line_numbers_on_garbage() {
        let input = "1::2::3::0\nnot-a-record\n";
        match parse_ratings(Cursor::new(input), "::") {
            Err(DataError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn rejects_out_of_range_rating() {
        let input = "1::2::99::0\n";
        assert!(matches!(
            parse_ratings(Cursor::new(input), "::"),
            Err(DataError::Parse { .. })
        ));
    }

    #[test]
    fn rejects_empty_input() {
        assert!(matches!(
            parse_ratings(Cursor::new(""), "::"),
            Err(DataError::Empty)
        ));
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = load_movielens_1m(Path::new("/nonexistent/ratings.dat")).unwrap_err();
        assert!(matches!(err, DataError::Io(_)));
    }
}
