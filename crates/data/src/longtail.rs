//! Long-tail / short-head catalog split (§5.1.2).
//!
//! The paper defines long-tail products as "those enjoying the lowest
//! ratings while in the aggregate generating r% of the total ratings", with
//! `r = 20` following the 80/20 rule. Under that cut, about 66 % of
//! MovieLens movies and 73 % of Douban books land in the tail — the shape
//! facts behind Figure 1 that the synthetic generators reproduce.

/// Partition of a catalog into tail and head items.
#[derive(Debug, Clone)]
pub struct LongTailSplit {
    is_tail: Vec<bool>,
    n_tail: usize,
    tail_rating_share: f64,
}

impl LongTailSplit {
    /// Split by rating share: items are sorted by ascending popularity and
    /// admitted to the tail until the tail's cumulative rating count would
    /// exceed `share` of the total (`share = 0.2` reproduces the paper).
    ///
    /// Zero-popularity items are always tail. Ties in popularity are broken
    /// by item id for determinism.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < share < 1`.
    pub fn by_rating_share(popularity: &[u32], share: f64) -> Self {
        assert!(share > 0.0 && share < 1.0, "share must be in (0, 1)");
        let total: u64 = popularity.iter().map(|&p| p as u64).sum();
        let mut order: Vec<u32> = (0..popularity.len() as u32).collect();
        order.sort_unstable_by_key(|&i| (popularity[i as usize], i));

        let budget = share * total as f64;
        let mut is_tail = vec![false; popularity.len()];
        let mut n_tail = 0usize;
        let mut acc = 0u64;
        for &i in &order {
            let p = popularity[i as usize] as u64;
            if total == 0 || (acc + p) as f64 <= budget {
                is_tail[i as usize] = true;
                n_tail += 1;
                acc += p;
            } else {
                break;
            }
        }
        let tail_rating_share = if total == 0 {
            0.0
        } else {
            acc as f64 / total as f64
        };
        Self {
            is_tail,
            n_tail,
            tail_rating_share,
        }
    }

    /// Whether item `i` is in the long tail.
    #[inline]
    pub fn is_tail(&self, i: u32) -> bool {
        self.is_tail[i as usize]
    }

    /// Number of tail items.
    #[inline]
    pub fn n_tail(&self) -> usize {
        self.n_tail
    }

    /// Number of head items.
    #[inline]
    pub fn n_head(&self) -> usize {
        self.is_tail.len() - self.n_tail
    }

    /// Fraction of the catalog that is tail (the paper's "66 %" / "73 %").
    pub fn tail_item_fraction(&self) -> f64 {
        if self.is_tail.is_empty() {
            0.0
        } else {
            self.n_tail as f64 / self.is_tail.len() as f64
        }
    }

    /// Achieved share of ratings carried by the tail (≤ the requested
    /// share, as the split never overshoots the budget).
    #[inline]
    pub fn tail_rating_share(&self) -> f64 {
        self.tail_rating_share
    }

    /// Tail item ids in ascending order.
    pub fn tail_items(&self) -> Vec<u32> {
        (0..self.is_tail.len() as u32)
            .filter(|&i| self.is_tail[i as usize])
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pareto_like_distribution_splits_sensibly() {
        // One blockbuster with 80 ratings, 8 niche items with 2-3 each.
        let pops = vec![80, 3, 3, 3, 2, 2, 2, 2, 3];
        let split = LongTailSplit::by_rating_share(&pops, 0.2);
        // Tail = the 8 niche items (20 ratings = exactly 20 % of 100).
        assert!(!split.is_tail(0));
        for i in 1..9 {
            assert!(split.is_tail(i), "item {i} should be tail");
        }
        assert_eq!(split.n_tail(), 8);
        assert!((split.tail_rating_share() - 0.2).abs() < 1e-12);
        assert!((split.tail_item_fraction() - 8.0 / 9.0).abs() < 1e-12);
    }

    #[test]
    fn budget_never_exceeded() {
        let pops = vec![10, 9, 8, 7, 1];
        let split = LongTailSplit::by_rating_share(&pops, 0.3);
        assert!(split.tail_rating_share() <= 0.3 + 1e-12);
    }

    #[test]
    fn zero_popularity_items_are_tail() {
        let pops = vec![0, 5, 0, 10];
        let split = LongTailSplit::by_rating_share(&pops, 0.2);
        assert!(split.is_tail(0));
        assert!(split.is_tail(2));
    }

    #[test]
    fn tail_items_listing() {
        let pops = vec![100, 1, 1];
        let split = LongTailSplit::by_rating_share(&pops, 0.05);
        assert_eq!(split.tail_items(), vec![1, 2]);
        assert_eq!(split.n_head(), 1);
    }

    #[test]
    fn deterministic_tie_break() {
        let pops = vec![2, 2, 2, 2];
        let a = LongTailSplit::by_rating_share(&pops, 0.5);
        let b = LongTailSplit::by_rating_share(&pops, 0.5);
        assert_eq!(a.tail_items(), b.tail_items());
        // Ties resolved by ascending id: items 0 and 1 enter first.
        assert!(a.is_tail(0) && a.is_tail(1));
        assert!(!a.is_tail(2) && !a.is_tail(3));
    }

    #[test]
    #[should_panic(expected = "share")]
    fn out_of_range_share_rejected() {
        LongTailSplit::by_rating_share(&[1, 2], 1.5);
    }

    #[test]
    fn empty_catalog() {
        let split = LongTailSplit::by_rating_share(&[], 0.2);
        assert_eq!(split.n_tail(), 0);
        assert_eq!(split.tail_item_fraction(), 0.0);
    }
}
