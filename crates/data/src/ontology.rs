//! Hierarchical category ontology for the similarity metric (§5.2.4).
//!
//! The paper grounds its Similarity measurement in the Dangdang book
//! ontology: each item carries a category path like `Book : Computer &
//! Internet : Database : Data Mining`, and two items are similar in
//! proportion to their longest common path prefix (Eq. 18):
//!
//! `Sim(C_i, C_j) = |P(C_i, C_j)| / max(|C_i|, |C_j|)`.
//!
//! That ontology is proprietary, so [`Ontology::from_genres`] builds the
//! synthetic equivalent: a depth-4 tree (root → genre → sub-genre → leaf)
//! aligned with the generator's genres. The prefix-overlap signal the metric
//! needs — "items of the same genre share most of their path" — is preserved
//! by construction.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// A category forest assigning each item a root-first path of category ids.
#[derive(Debug, Clone)]
pub struct Ontology {
    paths: Vec<Vec<u32>>,
}

impl Ontology {
    /// Build from explicit per-item category paths (root first). Paths may
    /// have different lengths, as in real catalog data.
    ///
    /// # Panics
    ///
    /// Panics if any path is empty.
    pub fn from_paths(paths: Vec<Vec<u32>>) -> Self {
        assert!(
            paths.iter().all(|p| !p.is_empty()),
            "every item needs a non-empty category path"
        );
        Self { paths }
    }

    /// Build a depth-4 tree over the generator's genres: every item's path
    /// is `[root, genre, sub-genre, leaf]`, where the sub-genre is drawn
    /// uniformly (seeded) among `subgenres_per_genre` children of its genre
    /// and the leaf is unique per item.
    ///
    /// Category ids are disjoint across levels, so prefixes only match at
    /// genuinely shared categories.
    ///
    /// # Panics
    ///
    /// Panics if `subgenres_per_genre == 0`.
    pub fn from_genres(item_genres: &[u32], subgenres_per_genre: usize, seed: u64) -> Self {
        assert!(subgenres_per_genre > 0, "need at least one sub-genre");
        let mut rng = StdRng::seed_from_u64(seed);
        let n_genres = item_genres
            .iter()
            .copied()
            .max()
            .map_or(0, |g| g as usize + 1);
        // Id layout: 0 = root; 1..=G genres; then sub-genres; then leaves.
        let genre_base = 1u32;
        let sub_base = genre_base + n_genres as u32;
        let leaf_base = sub_base + (n_genres * subgenres_per_genre) as u32;
        let paths = item_genres
            .iter()
            .enumerate()
            .map(|(i, &g)| {
                let sub = rng.random_range(0..subgenres_per_genre) as u32;
                vec![
                    0,
                    genre_base + g,
                    sub_base + g * subgenres_per_genre as u32 + sub,
                    leaf_base + i as u32,
                ]
            })
            .collect();
        Self { paths }
    }

    /// Number of items covered.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.paths.len()
    }

    /// The category path of item `i` (root first).
    #[inline]
    pub fn path(&self, i: u32) -> &[u32] {
        &self.paths[i as usize]
    }

    /// Eq. 18: longest-common-prefix length over the longer path length,
    /// both measured in *edges* as in the paper's worked example (the two
    /// database books share `Book : C&I : Database` — a 2-edge prefix — out
    /// of a longest 4-edge path, giving 2/4).
    pub fn item_similarity(&self, i: u32, j: u32) -> f64 {
        let a = self.path(i);
        let b = self.path(j);
        let prefix_nodes = a.iter().zip(b.iter()).take_while(|(x, y)| x == y).count();
        let max_edges = a.len().max(b.len()) - 1;
        if max_edges == 0 {
            // Single-node paths: identical category or nothing in common.
            return if prefix_nodes > 0 { 1.0 } else { 0.0 };
        }
        prefix_nodes.saturating_sub(1) as f64 / max_edges as f64
    }

    /// Eq. 19: relevance of item `i` to a user's preferred set — the best
    /// similarity to any item the user already rated. Returns 0 for an
    /// empty preferred set.
    pub fn user_similarity(&self, preferred: &[u32], i: u32) -> f64 {
        preferred
            .iter()
            .map(|&j| self.item_similarity(i, j))
            .fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The worked example from §5.2.4: "Introduction to Data Mining" and
    /// "Information Storage and Management" share the path
    /// `Book : Computer & Internet : Database` (2 edges) and the longest
    /// path is 4 edges, so their similarity is 2/4.
    #[test]
    fn paper_example_similarity_is_one_half() {
        // ids: 0=Book, 1=Computer&Internet, 2=Database, 3=DM&DW,
        // 4=DataManagement, 5/6 = the two leaf books.
        let ontology = Ontology::from_paths(vec![
            vec![0, 1, 2, 3, 5], // Book:C&I:Database:DM&DW:IntroToDataMining
            vec![0, 1, 2, 4, 6], // Book:C&I:Database:DataMgmt:InfoStorage
        ]);
        let sim = ontology.item_similarity(0, 1);
        assert!((sim - 0.5).abs() < 1e-12, "sim = {sim}");
    }

    #[test]
    fn identical_items_have_similarity_one() {
        let o = Ontology::from_genres(&[0, 0, 1], 2, 7);
        assert_eq!(o.item_similarity(0, 0), 1.0);
    }

    #[test]
    fn same_genre_beats_cross_genre() {
        let o = Ontology::from_genres(&[0, 0, 1, 1], 1, 7);
        // Same genre + same (single) sub-genre: 2 shared edges of 3.
        assert!((o.item_similarity(0, 1) - 2.0 / 3.0).abs() < 1e-12);
        // Different genre: only the root node matches — zero shared edges.
        assert_eq!(o.item_similarity(0, 2), 0.0);
    }

    #[test]
    fn similarity_is_symmetric() {
        let o = Ontology::from_genres(&[0, 1, 2, 0, 1], 3, 11);
        for i in 0..5u32 {
            for j in 0..5u32 {
                assert_eq!(o.item_similarity(i, j), o.item_similarity(j, i));
            }
        }
    }

    #[test]
    fn user_similarity_takes_the_best_match() {
        let o = Ontology::from_genres(&[0, 0, 1], 1, 3);
        // Preferred = {0 (genre 0), 2 (genre 1)}; item 1 is genre 0.
        let s = o.user_similarity(&[0, 2], 1);
        assert_eq!(s, o.item_similarity(0, 1));
        assert!(s >= o.item_similarity(2, 1));
    }

    #[test]
    fn empty_preferred_set_scores_zero() {
        let o = Ontology::from_genres(&[0], 1, 3);
        assert_eq!(o.user_similarity(&[], 0), 0.0);
    }

    #[test]
    fn generated_tree_is_deterministic() {
        let a = Ontology::from_genres(&[0, 1, 2, 1], 3, 42);
        let b = Ontology::from_genres(&[0, 1, 2, 1], 3, 42);
        for i in 0..4u32 {
            assert_eq!(a.path(i), b.path(i));
        }
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_path_rejected() {
        Ontology::from_paths(vec![vec![]]);
    }
}
