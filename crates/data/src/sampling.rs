//! Sampling primitives the synthetic generator needs.
//!
//! The offline `rand` crate ships only uniform sampling, so the classic
//! transforms are implemented here: Box-Muller normals, Marsaglia-Tsang
//! gammas (hence Dirichlet), bounded power-law integers (user activity), and
//! Zipf-weighted categorical draws (item popularity).

use rand::rngs::StdRng;
use rand::RngExt;

/// Standard normal via Box-Muller.
pub fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0f64 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

/// Gamma(shape, 1) via Marsaglia & Tsang (2000); the `shape < 1` case uses
/// the standard boost `Gamma(α) = Gamma(α+1) · U^{1/α}`.
///
/// # Panics
///
/// Panics if `shape <= 0`.
pub fn gamma(rng: &mut StdRng, shape: f64) -> f64 {
    assert!(shape > 0.0, "gamma shape must be positive");
    if shape < 1.0 {
        let boost: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE).powf(1.0 / shape);
        return gamma(rng, shape + 1.0) * boost;
    }
    let d = shape - 1.0 / 3.0;
    let c = 1.0 / (9.0 * d).sqrt();
    loop {
        let x = gaussian(rng);
        let v = (1.0 + c * x).powi(3);
        if v <= 0.0 {
            continue;
        }
        let u: f64 = rng.random();
        if u < 1.0 - 0.0331 * x.powi(4) || u.ln() < 0.5 * x * x + d * (1.0 - v + v.ln()) {
            return d * v;
        }
    }
}

/// Symmetric Dirichlet(α) sample of dimension `k`.
///
/// # Panics
///
/// Panics if `k == 0` or `alpha <= 0`.
pub fn dirichlet(rng: &mut StdRng, alpha: f64, k: usize) -> Vec<f64> {
    assert!(k > 0, "dimension must be positive");
    let mut draws: Vec<f64> = (0..k).map(|_| gamma(rng, alpha)).collect();
    let total: f64 = draws.iter().sum();
    if total <= 0.0 {
        // All-underflow corner: fall back to uniform.
        return vec![1.0 / k as f64; k];
    }
    for d in draws.iter_mut() {
        *d /= total;
    }
    draws
}

/// Integer from a bounded power law `p(x) ∝ x^{-exponent}` on
/// `[min, max]` by inverse-CDF of the continuous relaxation.
///
/// # Panics
///
/// Panics if `min == 0`, `min > max`, or `exponent <= 0`.
pub fn power_law_integer(rng: &mut StdRng, min: usize, max: usize, exponent: f64) -> usize {
    assert!(min > 0, "min must be positive");
    assert!(min <= max, "min must not exceed max");
    assert!(exponent > 0.0, "exponent must be positive");
    if min == max {
        return min;
    }
    let u: f64 = rng.random();
    let (lo, hi) = (min as f64, (max + 1) as f64);
    let x = if (exponent - 1.0).abs() < 1e-9 {
        // Exponent 1: p(x) ∝ 1/x integrates to a log.
        lo * (hi / lo).powf(u)
    } else {
        let a = 1.0 - exponent;
        (lo.powf(a) + u * (hi.powf(a) - lo.powf(a))).powf(1.0 / a)
    };
    (x.floor() as usize).clamp(min, max)
}

/// Cumulative-weight categorical sampler (weights need not be normalized).
#[derive(Debug, Clone)]
pub struct Categorical {
    cumulative: Vec<f64>,
}

impl Categorical {
    /// Build from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative value, or sums
    /// to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cumulative = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "weights must be non-negative");
            acc += w;
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "weights must not all be zero");
        Self { cumulative }
    }

    /// Draw an index with probability proportional to its weight.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let total = *self.cumulative.last().unwrap();
        let draw: f64 = rng.random_range(0.0..total);
        match self
            .cumulative
            .binary_search_by(|c| c.partial_cmp(&draw).unwrap())
        {
            Ok(idx) => (idx + 1).min(self.cumulative.len() - 1),
            Err(idx) => idx,
        }
    }
}

/// Zipf weights `1/(rank+1)^exponent` for `n` ranks (rank 0 is the most
/// popular).
pub fn zipf_weights(n: usize, exponent: f64) -> Vec<f64> {
    (0..n)
        .map(|r| 1.0 / ((r + 1) as f64).powf(exponent))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn gaussian_moments() {
        let mut r = rng();
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| gaussian(&mut r)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.05, "mean = {mean}");
        assert!((var - 1.0).abs() < 0.1, "var = {var}");
    }

    #[test]
    fn gamma_mean_matches_shape() {
        let mut r = rng();
        for shape in [0.5, 1.0, 3.0, 10.0] {
            let n = 20_000;
            let mean = (0..n).map(|_| gamma(&mut r, shape)).sum::<f64>() / n as f64;
            assert!(
                (mean - shape).abs() < 0.15 * shape.max(1.0),
                "shape {shape}: mean {mean}"
            );
        }
    }

    #[test]
    fn dirichlet_sums_to_one() {
        let mut r = rng();
        for alpha in [0.1, 1.0, 10.0] {
            let d = dirichlet(&mut r, alpha, 6);
            let sum: f64 = d.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12);
            assert!(d.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn low_alpha_dirichlet_is_concentrated() {
        let mut r = rng();
        let trials = 300;
        let peaked = |alpha: f64, r: &mut StdRng| {
            (0..trials)
                .map(|_| dirichlet(r, alpha, 8).into_iter().fold(0.0f64, f64::max))
                .sum::<f64>()
                / trials as f64
        };
        let sharp = peaked(0.1, &mut r);
        let flat = peaked(10.0, &mut r);
        assert!(sharp > flat + 0.2, "sharp {sharp} vs flat {flat}");
    }

    #[test]
    fn power_law_respects_bounds() {
        let mut r = rng();
        for _ in 0..2_000 {
            let x = power_law_integer(&mut r, 5, 50, 1.4);
            assert!((5..=50).contains(&x));
        }
    }

    #[test]
    fn power_law_prefers_small_values() {
        let mut r = rng();
        let n = 10_000;
        let small = (0..n)
            .filter(|_| power_law_integer(&mut r, 1, 100, 2.0) <= 10)
            .count();
        assert!(small as f64 / n as f64 > 0.7, "small fraction {small}/{n}");
    }

    #[test]
    fn power_law_degenerate_range() {
        let mut r = rng();
        assert_eq!(power_law_integer(&mut r, 7, 7, 1.5), 7);
    }

    #[test]
    fn categorical_frequencies_track_weights() {
        let mut r = rng();
        let cat = Categorical::new(&[1.0, 3.0, 6.0]);
        let n = 30_000;
        let mut counts = [0usize; 3];
        for _ in 0..n {
            counts[cat.sample(&mut r)] += 1;
        }
        assert!((counts[2] as f64 / n as f64 - 0.6).abs() < 0.03);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.03);
    }

    #[test]
    fn zipf_weights_decay() {
        let w = zipf_weights(4, 1.0);
        assert_eq!(w[0], 1.0);
        assert!((w[1] - 0.5).abs() < 1e-12);
        assert!(w.windows(2).all(|p| p[0] > p[1]));
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_categorical_rejected() {
        Categorical::new(&[]);
    }
}
