//! Train/test split for the Recall@N protocol (§5.2.1).
//!
//! The paper's accuracy methodology: hold out a set of *long-tail, 5-star*
//! ratings as test cases (4000 of them on the full datasets); train on the
//! rest; then for each held-out `(user, favourite-tail-item)` pair, rank the
//! favourite among 1000 randomly sampled unrated items and record whether it
//! lands in the top N.

use crate::dataset::{Dataset, Rating, TimedRating};
use crate::longtail::LongTailSplit;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A held-out test case: `user` rated `item` (a tail item) with the maximum
/// star value in the original data.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TestCase {
    /// The query user.
    pub user: u32,
    /// The held-out favourite tail item.
    pub item: u32,
}

/// A protocol split: the training dataset plus the held-out test cases.
#[derive(Debug, Clone)]
pub struct ProtocolSplit {
    /// Training data (held-out ratings removed).
    pub train: Dataset,
    /// Held-out long-tail favourite ratings.
    pub test_cases: Vec<TestCase>,
}

/// Configuration of the hold-out.
#[derive(Debug, Clone, Copy)]
pub struct SplitConfig {
    /// Maximum number of test cases to hold out.
    ///
    /// [`Default`] deliberately scales this down to 400 so the protocol
    /// runs in seconds on the synthetic corpora used by tests and examples;
    /// the paper's full-dataset protocol holds out 4000 — use
    /// [`SplitConfig::paper`] to reproduce it.
    pub n_test: usize,
    /// Minimum star value of a held-out rating (the paper holds out
    /// 5-star ratings).
    pub min_value: f64,
    /// Minimum number of ratings a user must *retain* in training for one of
    /// their ratings to be eligible — graph methods need a non-empty seed
    /// set `S_q`.
    pub min_remaining_activity: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for SplitConfig {
    /// The scaled-down protocol (400 held-out cases) sized for synthetic
    /// corpora; see [`SplitConfig::paper`] for the paper's 4000.
    fn default() -> Self {
        Self {
            n_test: 400,
            min_value: 5.0,
            min_remaining_activity: 3,
            seed: 0x5911,
        }
    }
}

impl SplitConfig {
    /// The paper's full-scale protocol (§5.2.1): hold out up to 4000
    /// long-tail 5-star ratings. Every other knob matches [`Default`].
    pub fn paper() -> Self {
        Self {
            n_test: 4000,
            ..Self::default()
        }
    }
}

/// Hold out up to `config.n_test` long-tail high-star ratings as test cases.
///
/// Eligible ratings are those on tail items (per `tail`) with value at least
/// `config.min_value`, whose user retains `min_remaining_activity` other
/// ratings. Eligible ratings are shuffled (seeded) and at most one test case
/// per user is taken until the budget is filled, then removed from the
/// training data.
pub fn holdout_longtail_favorites(
    dataset: &Dataset,
    tail: &LongTailSplit,
    config: &SplitConfig,
) -> ProtocolSplit {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let activity = dataset.user_activity();

    let mut eligible: Vec<TestCase> = Vec::new();
    for u in 0..dataset.n_users() as u32 {
        if (activity[u as usize] as usize) < config.min_remaining_activity + 1 {
            continue;
        }
        for (i, v) in dataset.ratings_of(u) {
            if v >= config.min_value && tail.is_tail(i) {
                eligible.push(TestCase { user: u, item: i });
            }
        }
    }
    eligible.shuffle(&mut rng);

    let mut taken: Vec<TestCase> = Vec::new();
    let mut user_taken = vec![false; dataset.n_users()];
    for case in eligible {
        if taken.len() >= config.n_test {
            break;
        }
        // One case per user keeps the test set diverse and guarantees the
        // remaining-activity invariant with a single check.
        if user_taken[case.user as usize] {
            continue;
        }
        user_taken[case.user as usize] = true;
        taken.push(case);
    }

    let held: std::collections::HashSet<(u32, u32)> =
        taken.iter().map(|c| (c.user, c.item)).collect();
    let train_ratings: Vec<Rating> = dataset
        .to_ratings()
        .into_iter()
        .filter(|r| !held.contains(&(r.user, r.item)))
        .collect();

    ProtocolSplit {
        train: Dataset::from_ratings(dataset.n_users(), dataset.n_items(), &train_ratings),
        test_cases: taken,
    }
}

/// Hold out each eligible user's *most recent* long-tail favourite, newest
/// first — the temporal variant of [`holdout_longtail_favorites`] for the
/// streaming workload, where the natural question is "would we have
/// recommended the tail item the user was about to discover?".
///
/// Per eligible user the candidate is their latest-stamped tail rating with
/// value at least `config.min_value` (ties broken by smaller item id, so the
/// split is deterministic even on untimed data where every stamp is 0).
/// Candidates are ordered newest-first across users (ties: user id) and at
/// most `config.n_test` are taken. `config.seed` is unused — recency, not a
/// shuffle, picks the cases. Training data keeps its timestamps.
pub fn holdout_latest_favorites(
    dataset: &Dataset,
    tail: &LongTailSplit,
    config: &SplitConfig,
) -> ProtocolSplit {
    let activity = dataset.user_activity();
    let times = dataset.times();

    // (timestamp, user, item): each eligible user's freshest tail favourite.
    let mut candidates: Vec<(f64, u32, u32)> = Vec::new();
    for u in 0..dataset.n_users() as u32 {
        if (activity[u as usize] as usize) < config.min_remaining_activity + 1 {
            continue;
        }
        let mut best: Option<(f64, u32)> = None;
        for (k, (i, v)) in dataset.ratings_of(u).enumerate() {
            if v < config.min_value || !tail.is_tail(i) {
                continue;
            }
            let t = times.map_or(0.0, |m| m.row(u as usize).1[k]);
            let fresher = match best {
                None => true,
                Some((bt, bi)) => t > bt || (t == bt && i < bi),
            };
            if fresher {
                best = Some((t, i));
            }
        }
        if let Some((t, i)) = best {
            candidates.push((t, u, i));
        }
    }
    // Newest first; user id breaks timestamp ties deterministically.
    candidates.sort_by(|a, b| b.0.partial_cmp(&a.0).unwrap().then(a.1.cmp(&b.1)));
    candidates.truncate(config.n_test);

    let taken: Vec<TestCase> = candidates
        .iter()
        .map(|&(_, user, item)| TestCase { user, item })
        .collect();
    let held: std::collections::HashSet<(u32, u32)> =
        taken.iter().map(|c| (c.user, c.item)).collect();
    let train_ratings: Vec<TimedRating> = dataset
        .to_timed_ratings()
        .into_iter()
        .filter(|r| !held.contains(&(r.user, r.item)))
        .collect();
    let train = if times.is_some() {
        Dataset::from_timed_ratings(dataset.n_users(), dataset.n_items(), &train_ratings)
    } else {
        let plain: Vec<Rating> = train_ratings
            .iter()
            .map(|r| Rating {
                user: r.user,
                item: r.item,
                value: r.value,
            })
            .collect();
        Dataset::from_ratings(dataset.n_users(), dataset.n_items(), &plain)
    };

    ProtocolSplit {
        train,
        test_cases: taken,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synthetic::{SyntheticConfig, SyntheticData};

    fn setup() -> (Dataset, LongTailSplit) {
        let data = SyntheticData::generate(&SyntheticConfig {
            n_users: 200,
            n_items: 150,
            ..SyntheticConfig::movielens_like()
        });
        let pops = data.dataset.item_popularity();
        let tail = LongTailSplit::by_rating_share(&pops, 0.2);
        (data.dataset, tail)
    }

    #[test]
    fn held_out_cases_are_tail_favorites() {
        let (dataset, tail) = setup();
        let split = holdout_longtail_favorites(&dataset, &tail, &SplitConfig::default());
        assert!(!split.test_cases.is_empty());
        for case in &split.test_cases {
            assert!(tail.is_tail(case.item), "item {} not tail", case.item);
            // The original rating was >= 5 stars.
            let v = dataset
                .ratings_of(case.user)
                .find(|&(i, _)| i == case.item)
                .unwrap()
                .1;
            assert!(v >= 5.0);
        }
    }

    #[test]
    fn held_out_ratings_removed_from_training() {
        let (dataset, tail) = setup();
        let split = holdout_longtail_favorites(&dataset, &tail, &SplitConfig::default());
        for case in &split.test_cases {
            assert!(!split.train.has_rated(case.user, case.item));
        }
        assert_eq!(
            split.train.n_ratings(),
            dataset.n_ratings() - split.test_cases.len()
        );
    }

    #[test]
    fn users_retain_minimum_activity() {
        let (dataset, tail) = setup();
        let config = SplitConfig {
            min_remaining_activity: 5,
            ..SplitConfig::default()
        };
        let split = holdout_longtail_favorites(&dataset, &tail, &config);
        for case in &split.test_cases {
            assert!(split.train.rated_items(case.user).len() >= 5);
        }
    }

    #[test]
    fn at_most_one_case_per_user() {
        let (dataset, tail) = setup();
        let split = holdout_longtail_favorites(&dataset, &tail, &SplitConfig::default());
        let mut users: Vec<u32> = split.test_cases.iter().map(|c| c.user).collect();
        let before = users.len();
        users.sort_unstable();
        users.dedup();
        assert_eq!(users.len(), before);
    }

    #[test]
    fn budget_respected() {
        let (dataset, tail) = setup();
        let config = SplitConfig {
            n_test: 7,
            ..SplitConfig::default()
        };
        let split = holdout_longtail_favorites(&dataset, &tail, &config);
        assert!(split.test_cases.len() <= 7);
    }

    #[test]
    fn paper_preset_scales_up_the_default() {
        let paper = SplitConfig::paper();
        let default = SplitConfig::default();
        assert_eq!(paper.n_test, 4000);
        assert_eq!(default.n_test, 400);
        assert_eq!(paper.min_value, default.min_value);
        assert_eq!(paper.min_remaining_activity, default.min_remaining_activity);
        assert_eq!(paper.seed, default.seed);
    }

    #[test]
    fn deterministic_given_seed() {
        let (dataset, tail) = setup();
        let a = holdout_longtail_favorites(&dataset, &tail, &SplitConfig::default());
        let b = holdout_longtail_favorites(&dataset, &tail, &SplitConfig::default());
        assert_eq!(a.test_cases, b.test_cases);
    }

    #[test]
    fn latest_split_holds_out_each_users_freshest_tail_favorite() {
        let (dataset, tail) = setup();
        let times = dataset.times().expect("synthetic data is timed");
        let split = holdout_latest_favorites(&dataset, &tail, &SplitConfig::default());
        assert!(!split.test_cases.is_empty());
        for case in &split.test_cases {
            assert!(tail.is_tail(case.item));
            assert!(!split.train.has_rated(case.user, case.item));
            // No other eligible rating of this user is strictly fresher.
            let row = times.row(case.user as usize);
            let held_t = times.get(case.user as usize, case.item).unwrap();
            for (k, (i, v)) in dataset.ratings_of(case.user).enumerate() {
                if v >= 5.0 && tail.is_tail(i) {
                    assert!(
                        row.1[k] <= held_t,
                        "user {} item {i} is fresher than held-out {}",
                        case.user,
                        case.item
                    );
                }
            }
        }
    }

    #[test]
    fn latest_split_orders_cases_newest_first_and_keeps_times() {
        let (dataset, tail) = setup();
        let times = dataset.times().unwrap();
        let config = SplitConfig {
            n_test: 10,
            ..SplitConfig::default()
        };
        let split = holdout_latest_favorites(&dataset, &tail, &config);
        assert!(split.test_cases.len() <= 10);
        let stamps: Vec<f64> = split
            .test_cases
            .iter()
            .map(|c| times.get(c.user as usize, c.item).unwrap())
            .collect();
        assert!(
            stamps.windows(2).all(|w| w[0] >= w[1]),
            "cases not newest-first: {stamps:?}"
        );
        // Train keeps the temporal column for downstream recency decay.
        assert!(split.train.times().is_some());
    }

    #[test]
    fn latest_split_is_deterministic_without_a_shuffle() {
        let (dataset, tail) = setup();
        let a = holdout_latest_favorites(&dataset, &tail, &SplitConfig::default());
        let b = holdout_latest_favorites(
            &dataset,
            &tail,
            &SplitConfig {
                seed: 999,
                ..SplitConfig::default()
            },
        );
        // Recency, not the seed, picks the cases.
        assert_eq!(a.test_cases, b.test_cases);
    }
}
