//! Synthetic rating datasets with a controlled long tail.
//!
//! The paper evaluates on MovieLens-1M and a private Douban crawl; neither
//! ships with this repository, so this module generates datasets that
//! reproduce the structural properties the algorithms are sensitive to
//! (documented as a substitution in `DESIGN.md`):
//!
//! * **power-law item popularity** — a Zipf profile per genre, so that the
//!   lowest-popularity ~2/3 of the catalog carries ~20 % of ratings, the
//!   tail shape of §5.1.2;
//! * **genre-structured co-rating** — users draw items through latent genre
//!   tastes (Dirichlet mixtures), so LDA recovers genre topics (Table 1) and
//!   entropy distinguishes specialists from omnivores (§4.2);
//! * **taste-correlated rating values** — 1–5 stars increasing in the
//!   user's affinity for the item's genre, so 5-star long-tail test ratings
//!   exist (the Recall@N protocol of §5.2.1);
//! * **ground truth** — each user's taste vector and each item's genre are
//!   returned, which is what the simulated user study (Table 6) judges
//!   against.

use crate::dataset::{Dataset, TimedRating};
use crate::sampling::{dirichlet, gaussian, power_law_integer, zipf_weights, Categorical};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Configuration of the synthetic generator.
#[derive(Debug, Clone)]
pub struct SyntheticConfig {
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of latent genres.
    pub n_genres: usize,
    /// Zipf exponent of within-genre item popularity (≈1 gives the classic
    /// long tail).
    pub zipf_exponent: f64,
    /// Dirichlet concentration of specialist users' tastes (small ⇒ sharp).
    pub taste_concentration: f64,
    /// Fraction of users with broad (omnivorous) tastes.
    pub generalist_fraction: f64,
    /// Minimum ratings per user.
    pub min_activity: usize,
    /// Maximum ratings per user.
    pub max_activity: usize,
    /// Power-law exponent of the user-activity distribution.
    pub activity_exponent: f64,
    /// Standard deviation of the rating-value noise (stars).
    pub rating_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl SyntheticConfig {
    /// A MovieLens-1M-like profile, scaled to laptop size: ~4 % dense,
    /// moderate tail (the paper reports 66 % of movies ⇒ 20 % of ratings).
    pub fn movielens_like() -> Self {
        Self {
            n_users: 900,
            n_items: 620,
            n_genres: 8,
            zipf_exponent: 1.7,
            taste_concentration: 0.25,
            generalist_fraction: 0.25,
            min_activity: 18,
            max_activity: 160,
            activity_exponent: 1.6,
            rating_noise: 0.7,
            seed: 0x11_1001,
        }
    }

    /// A Douban-books-like profile: larger catalog, much sparser matrix,
    /// heavier tail (73 % of books ⇒ 20 % of ratings in the paper).
    pub fn douban_like() -> Self {
        Self {
            n_users: 2200,
            n_items: 1800,
            n_genres: 12,
            zipf_exponent: 1.15,
            taste_concentration: 0.2,
            generalist_fraction: 0.2,
            min_activity: 4,
            max_activity: 90,
            activity_exponent: 1.9,
            rating_noise: 0.7,
            seed: 0xd0_baa2,
        }
    }

    /// Scale user and item counts by `factor` (activity bounds unchanged).
    ///
    /// # Panics
    ///
    /// Panics if the scaled dataset would be empty.
    pub fn scaled(mut self, factor: f64) -> Self {
        self.n_users = ((self.n_users as f64 * factor).round() as usize).max(1);
        self.n_items = ((self.n_items as f64 * factor).round() as usize).max(1);
        assert!(
            self.n_users > 0 && self.n_items > 0,
            "scaled dataset is empty"
        );
        self
    }
}

/// A generated dataset together with its generating ground truth.
#[derive(Debug, Clone)]
pub struct SyntheticData {
    /// The rating dataset.
    pub dataset: Dataset,
    /// Genre of each item.
    pub item_genres: Vec<u32>,
    /// Each user's latent taste distribution over genres (rows sum to 1).
    pub user_tastes: Vec<Vec<f64>>,
}

impl SyntheticData {
    /// Generate a dataset from `config`. Deterministic given the seed.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configs (zero users/items/genres, bad activity
    /// bounds).
    pub fn generate(config: &SyntheticConfig) -> Self {
        assert!(config.n_users > 0, "need at least one user");
        assert!(config.n_items > 0, "need at least one item");
        assert!(config.n_genres > 0, "need at least one genre");
        assert!(
            config.min_activity > 0 && config.min_activity <= config.max_activity,
            "invalid activity bounds"
        );
        let mut rng = StdRng::seed_from_u64(config.seed);

        // Items round-robin over genres; the rank of an item inside its
        // genre sets its Zipf popularity weight.
        let n_genres = config.n_genres.min(config.n_items);
        let item_genres: Vec<u32> = (0..config.n_items).map(|i| (i % n_genres) as u32).collect();
        let mut genre_items: Vec<Vec<u32>> = vec![Vec::new(); n_genres];
        for (i, &g) in item_genres.iter().enumerate() {
            genre_items[g as usize].push(i as u32);
        }
        let genre_samplers: Vec<Categorical> = genre_items
            .iter()
            .map(|items| Categorical::new(&zipf_weights(items.len(), config.zipf_exponent)))
            .collect();

        // User tastes: a specialist majority plus an omnivorous minority —
        // this spread is exactly what user entropy (Eq. 10-11) measures.
        let user_tastes: Vec<Vec<f64>> = (0..config.n_users)
            .map(|_| {
                let broad: f64 = rng.random();
                let alpha = if broad < config.generalist_fraction {
                    config.taste_concentration * 20.0
                } else {
                    config.taste_concentration
                };
                dirichlet(&mut rng, alpha, n_genres)
            })
            .collect();

        // Each rating is stamped with its generation-order index, giving the
        // temporal split and recency-decay paths a deterministic synthetic
        // timeline (later draws = fresher ratings).
        let mut ratings: Vec<TimedRating> = Vec::new();
        let mut rated = std::collections::HashSet::new();
        for (u, taste) in user_tastes.iter().enumerate() {
            let activity = power_law_integer(
                &mut rng,
                config.min_activity,
                config.max_activity.min(config.n_items),
                config.activity_exponent,
            );
            let taste_sampler = Categorical::new(taste);
            let taste_max = taste.iter().copied().fold(f64::MIN, f64::max);
            let mut placed = 0usize;
            let mut attempts = 0usize;
            while placed < activity && attempts < activity * 30 {
                attempts += 1;
                let g = taste_sampler.sample(&mut rng);
                let items = &genre_items[g];
                if items.is_empty() {
                    continue;
                }
                let item = items[genre_samplers[g].sample(&mut rng)];
                if !rated.insert((u as u32, item)) {
                    continue;
                }
                // Star value rises with the user's affinity for the genre:
                // favorite-genre items land at 4-5 stars, foreign ones 1-3.
                let affinity = taste[g] / taste_max;
                let raw = 2.6 + 2.2 * affinity + config.rating_noise * gaussian(&mut rng);
                let value = raw.round().clamp(1.0, 5.0);
                ratings.push(TimedRating {
                    user: u as u32,
                    item,
                    value,
                    timestamp: ratings.len() as f64,
                });
                placed += 1;
            }
        }

        Self {
            dataset: Dataset::from_timed_ratings(config.n_users, config.n_items, &ratings),
            item_genres,
            user_tastes,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::longtail::LongTailSplit;

    fn small_config() -> SyntheticConfig {
        SyntheticConfig {
            n_users: 150,
            n_items: 120,
            ..SyntheticConfig::movielens_like()
        }
    }

    #[test]
    fn shapes_match_config() {
        let data = SyntheticData::generate(&small_config());
        assert_eq!(data.dataset.n_users(), 150);
        assert_eq!(data.dataset.n_items(), 120);
        assert_eq!(data.item_genres.len(), 120);
        assert_eq!(data.user_tastes.len(), 150);
    }

    #[test]
    fn deterministic_given_seed() {
        let a = SyntheticData::generate(&small_config());
        let b = SyntheticData::generate(&small_config());
        assert_eq!(a.dataset.user_items(), b.dataset.user_items());
        assert_eq!(a.item_genres, b.item_genres);
    }

    #[test]
    fn different_seeds_differ() {
        let mut config = small_config();
        let a = SyntheticData::generate(&config);
        config.seed += 1;
        let b = SyntheticData::generate(&config);
        assert_ne!(a.dataset.user_items(), b.dataset.user_items());
    }

    #[test]
    fn ratings_are_one_to_five_stars() {
        let data = SyntheticData::generate(&small_config());
        for r in data.dataset.to_ratings() {
            assert!((1.0..=5.0).contains(&r.value));
            assert_eq!(r.value, r.value.round());
        }
    }

    #[test]
    fn popularity_is_long_tailed() {
        let data = SyntheticData::generate(&SyntheticConfig::movielens_like());
        let pops = data.dataset.item_popularity();
        let split = LongTailSplit::by_rating_share(&pops, 0.2);
        // The paper observes 66 % (MovieLens) and 73 % (Douban) of items in
        // the 20 %-of-ratings tail; the generator must land in that regime.
        let frac = split.tail_item_fraction();
        assert!(
            (0.5..=0.85).contains(&frac),
            "tail item fraction {frac} outside the long-tail regime"
        );
    }

    #[test]
    fn douban_profile_is_sparser_than_movielens() {
        let ml = SyntheticData::generate(&SyntheticConfig::movielens_like());
        let db = SyntheticData::generate(&SyntheticConfig::douban_like());
        assert!(db.dataset.density() < ml.dataset.density() / 2.0);
    }

    #[test]
    fn users_prefer_their_top_genre() {
        let data = SyntheticData::generate(&small_config());
        // Aggregate over users: ratings on the user's favourite genre must
        // average higher stars than ratings elsewhere.
        let mut fav_sum = 0.0;
        let mut fav_n = 0usize;
        let mut other_sum = 0.0;
        let mut other_n = 0usize;
        for u in 0..data.dataset.n_users() as u32 {
            let taste = &data.user_tastes[u as usize];
            let fav = taste
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0 as u32;
            for (i, v) in data.dataset.ratings_of(u) {
                if data.item_genres[i as usize] == fav {
                    fav_sum += v;
                    fav_n += 1;
                } else {
                    other_sum += v;
                    other_n += 1;
                }
            }
        }
        let fav_mean = fav_sum / fav_n.max(1) as f64;
        let other_mean = other_sum / other_n.max(1) as f64;
        assert!(
            fav_mean > other_mean + 0.3,
            "favourite-genre mean {fav_mean} vs other {other_mean}"
        );
    }

    #[test]
    fn five_star_tail_ratings_exist() {
        // The Recall@N protocol needs held-out 5-star ratings on tail items.
        let data = SyntheticData::generate(&SyntheticConfig::movielens_like());
        let pops = data.dataset.item_popularity();
        let split = LongTailSplit::by_rating_share(&pops, 0.2);
        let count = data
            .dataset
            .to_ratings()
            .iter()
            .filter(|r| r.value >= 5.0 && split.is_tail(r.item))
            .count();
        assert!(count > 100, "only {count} five-star tail ratings");
    }

    #[test]
    fn scaled_shrinks_both_dimensions() {
        let config = SyntheticConfig::movielens_like().scaled(0.1);
        assert_eq!(config.n_users, 90);
        assert_eq!(config.n_items, 62);
    }

    #[test]
    fn generated_datasets_carry_a_synthetic_timeline() {
        let data = SyntheticData::generate(&small_config());
        let times = data.dataset.times().expect("synthetic data is timed");
        // Stamps are the generation-order indices: distinct, non-negative,
        // bounded by the rating count.
        let n = data.dataset.n_ratings() as f64;
        let mut seen = Vec::new();
        for r in 0..times.rows() {
            let (_, vals) = times.row(r);
            for &t in vals {
                assert!(t >= 0.0 && t < n, "stamp {t} outside [0, {n})");
                seen.push(t);
            }
        }
        seen.sort_by(|a, b| a.partial_cmp(b).unwrap());
        seen.dedup();
        assert_eq!(seen.len(), data.dataset.n_ratings(), "stamps not distinct");
    }

    #[test]
    fn activity_respects_bounds() {
        let data = SyntheticData::generate(&small_config());
        let config = small_config();
        for a in data.dataset.user_activity() {
            assert!(a as usize <= config.max_activity);
        }
    }
}
