//! Property tests: dataset, tail-split and ontology invariants.

use longtail_data::{Dataset, LongTailSplit, Ontology, Rating};
use proptest::prelude::*;

fn ratings() -> impl Strategy<Value = Vec<Rating>> {
    prop::collection::vec(
        (0..10u32, 0..12u32, 1.0f64..5.0).prop_map(|(user, item, value)| Rating {
            user,
            item,
            value: value.round().max(1.0),
        }),
        0..80,
    )
}

proptest! {
    #[test]
    fn popularity_sums_to_rating_count(rs in ratings()) {
        let d = Dataset::from_ratings(10, 12, &rs);
        let total: u32 = d.item_popularity().iter().sum();
        prop_assert_eq!(total as usize, d.n_ratings());
        let total_act: u32 = d.user_activity().iter().sum();
        prop_assert_eq!(total_act as usize, d.n_ratings());
    }

    #[test]
    fn ratings_round_trip(rs in ratings()) {
        let d = Dataset::from_ratings(10, 12, &rs);
        let d2 = Dataset::from_ratings(10, 12, &d.to_ratings());
        prop_assert_eq!(d.user_items(), d2.user_items());
    }

    #[test]
    fn tail_split_partitions_catalog(pops in prop::collection::vec(0u32..50, 1..30), share in 0.05f64..0.95) {
        let split = LongTailSplit::by_rating_share(&pops, share);
        prop_assert_eq!(split.n_tail() + split.n_head(), pops.len());
        // Achieved share never exceeds the budget.
        prop_assert!(split.tail_rating_share() <= share + 1e-12);
        // Every tail item is at most as popular as every head item.
        let max_tail = split.tail_items().iter().map(|&i| pops[i as usize]).max().unwrap_or(0);
        let min_head = (0..pops.len() as u32)
            .filter(|&i| !split.is_tail(i))
            .map(|i| pops[i as usize])
            .min()
            .unwrap_or(u32::MAX);
        prop_assert!(max_tail <= min_head);
    }

    #[test]
    fn larger_share_grows_the_tail(pops in prop::collection::vec(1u32..50, 2..25)) {
        let small = LongTailSplit::by_rating_share(&pops, 0.2);
        let large = LongTailSplit::by_rating_share(&pops, 0.6);
        prop_assert!(large.n_tail() >= small.n_tail());
    }

    #[test]
    fn ontology_similarity_is_a_bounded_symmetric_reflexive(genres in prop::collection::vec(0u32..5, 2..20)) {
        let o = Ontology::from_genres(&genres, 3, 77);
        let n = genres.len() as u32;
        for i in 0..n {
            prop_assert!((o.item_similarity(i, i) - 1.0).abs() < 1e-12);
            for j in 0..n {
                let s = o.item_similarity(i, j);
                prop_assert!((0.0..=1.0).contains(&s));
                prop_assert_eq!(s, o.item_similarity(j, i));
            }
        }
    }

    #[test]
    fn same_genre_never_less_similar_than_cross_genre(genres in prop::collection::vec(0u32..4, 4..16)) {
        let o = Ontology::from_genres(&genres, 2, 13);
        let n = genres.len();
        let mut min_same = f64::INFINITY;
        let mut max_cross = f64::NEG_INFINITY;
        for i in 0..n {
            for j in 0..n {
                if i == j {
                    continue;
                }
                let s = o.item_similarity(i as u32, j as u32);
                if genres[i] == genres[j] {
                    min_same = min_same.min(s);
                } else {
                    max_cross = max_cross.max(s);
                }
            }
        }
        if min_same.is_finite() && max_cross.is_finite() {
            prop_assert!(min_same >= max_cross);
        }
    }
}
