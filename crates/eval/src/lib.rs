//! Evaluation harness for long-tail recommendation.
//!
//! Implements every measurement of §5 of *Challenging the Long Tail
//! Recommendation*:
//!
//! * [`recall`] — the held-out-favourite Recall@N protocol (Eq. 16,
//!   Figure 5);
//! * [`lists`] — batch top-k lists for a sampled test population;
//! * [`metrics`] — Popularity@N (Figure 6), Diversity (Eq. 17, Table 2) and
//!   ontology Similarity (Eq. 18–19, Table 3) over those lists;
//! * [`quality`] — the long-tail quality suite over *served* lists: catalog
//!   coverage, Gini exposure concentration, novelty, and list-based recall
//!   split by head/tail ground truth (the lens for re-rank policies);
//! * [`timing`] — online per-query latency (Table 5);
//! * [`user_study`] — the simulated 50-judge study (Table 6; substitution
//!   documented in `DESIGN.md`);
//! * [`report`] — result containers and Markdown rendering shared by the
//!   experiment binaries.

#![warn(missing_docs)]

pub mod lists;
pub mod metrics;
pub mod quality;
pub mod recall;
pub mod report;
pub mod timing;
pub mod user_study;

pub use lists::{sample_test_users, RecommendationLists};
pub use metrics::{diversity, mean_popularity, mean_similarity, popularity_at_n};
pub use quality::{
    catalog_coverage, exposure_counts, gini_concentration, list_recall, novelty, tail_recall_split,
    TailRecallSplit,
};
pub use recall::{recall_at_n, RecallConfig, RecallCurve};
pub use report::{format_num, series_to_markdown, Series, Table};
pub use timing::{
    time_batch_recommendations, time_batch_scoring, time_open_loop_submission,
    time_recommendations, time_recommendations_with_stopping, TimingStats,
};
pub use user_study::{simulate_study, StudyConfig, StudyResult};
