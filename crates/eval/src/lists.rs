//! Batch top-k recommendation lists for the list-based metrics.
//!
//! §5.2.2–5.2.4 all evaluate the same artifact — each testing user's top-10
//! list — under different lenses (popularity, diversity, similarity). This
//! module computes the lists once so the metrics can share them.

use longtail_core::{RecommendOptions, Recommender, ScoredItem};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Top-k lists for a set of users: `lists[j]` belongs to `users[j]`.
#[derive(Debug, Clone)]
pub struct RecommendationLists {
    /// The evaluated users.
    pub users: Vec<u32>,
    /// Top-k list per user (may be shorter than k for sparse users).
    pub lists: Vec<Vec<ScoredItem>>,
    /// The requested list length.
    pub k: usize,
}

impl RecommendationLists {
    /// Compute top-`k` lists for `users` through the fused
    /// [`Recommender::recommend_batch`] path: queries fan out over
    /// `n_threads` workers, each owning one reused scoring context, and no
    /// full score vector is materialized per query.
    pub fn compute(
        recommender: &dyn Recommender,
        users: &[u32],
        k: usize,
        n_threads: usize,
    ) -> Self {
        Self::compute_with(
            recommender,
            users,
            k,
            &RecommendOptions::default(),
            n_threads,
        )
    }

    /// [`RecommendationLists::compute`] under explicit serving options —
    /// the entry point for measuring a re-rank policy's effect on the
    /// list metrics (attach a
    /// [`Reranker`](longtail_core::Reranker) via
    /// [`RecommendOptions::rerank`]).
    pub fn compute_with(
        recommender: &dyn Recommender,
        users: &[u32],
        k: usize,
        opts: &RecommendOptions<'_>,
        n_threads: usize,
    ) -> Self {
        Self {
            users: users.to_vec(),
            lists: recommender.recommend_batch(users, k, opts, n_threads),
            k,
        }
    }

    /// Total number of recommendation slots filled.
    pub fn n_recommendations(&self) -> usize {
        self.lists.iter().map(|l| l.len()).sum()
    }
}

/// Sample `n` distinct testing users that have at least `min_activity`
/// training ratings (the paper samples 2000 such users).
pub fn sample_test_users(activity: &[u32], n: usize, min_activity: u32, seed: u64) -> Vec<u32> {
    let mut eligible: Vec<u32> = (0..activity.len() as u32)
        .filter(|&u| activity[u as usize] >= min_activity)
        .collect();
    let mut rng = StdRng::seed_from_u64(seed);
    eligible.shuffle(&mut rng);
    eligible.truncate(n);
    eligible.sort_unstable();
    eligible
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_core::GraphRecConfig;
    use longtail_core::HittingTimeRecommender;
    use longtail_data::{Dataset, Rating};

    fn dataset() -> Dataset {
        let ratings = [
            Rating {
                user: 0,
                item: 0,
                value: 5.0,
            },
            Rating {
                user: 0,
                item: 1,
                value: 4.0,
            },
            Rating {
                user: 1,
                item: 1,
                value: 5.0,
            },
            Rating {
                user: 1,
                item: 2,
                value: 5.0,
            },
            Rating {
                user: 2,
                item: 0,
                value: 3.0,
            },
        ];
        Dataset::from_ratings(3, 4, &ratings)
    }

    #[test]
    fn computes_one_list_per_user() {
        let rec = HittingTimeRecommender::new(&dataset(), GraphRecConfig::default());
        let lists = RecommendationLists::compute(&rec, &[0, 1, 2], 2, 2);
        assert_eq!(lists.users, vec![0, 1, 2]);
        assert_eq!(lists.lists.len(), 3);
        assert!(lists.lists.iter().all(|l| l.len() <= 2));
    }

    #[test]
    fn parallel_matches_sequential() {
        let rec = HittingTimeRecommender::new(&dataset(), GraphRecConfig::default());
        let a = RecommendationLists::compute(&rec, &[0, 1, 2], 3, 1);
        let b = RecommendationLists::compute(&rec, &[0, 1, 2], 3, 3);
        assert_eq!(a.lists, b.lists);
    }

    #[test]
    fn sample_respects_activity_floor() {
        let users = sample_test_users(&[5, 0, 3, 10], 10, 3, 7);
        assert_eq!(users, vec![0, 2, 3]);
    }

    #[test]
    fn sample_truncates_to_n() {
        let users = sample_test_users(&[5, 5, 5, 5, 5], 2, 1, 7);
        assert_eq!(users.len(), 2);
    }

    #[test]
    fn sample_is_deterministic() {
        let a = sample_test_users(&[5; 100], 10, 1, 42);
        let b = sample_test_users(&[5; 100], 10, 1, 42);
        assert_eq!(a, b);
    }
}
