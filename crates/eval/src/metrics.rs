//! List-based metrics: Popularity@N, Diversity, Similarity.
//!
//! §5.2.2 (Figure 6), §5.2.3 (Table 2) and §5.2.4 (Table 3) all evaluate
//! each testing user's top-10 list:
//!
//! * **Popularity@N** — mean rating-count of the item at each list position;
//!   low values mean the recommender reaches into the tail;
//! * **Diversity** — `|∪_u R_u| / |I|` (Eq. 17): how many *distinct* items
//!   the system pushes across the whole test population;
//! * **Similarity** — `avg_u avg_{i∈R_u} max_{j∈S_u} Sim(i, j)` (Eq. 18–19)
//!   over the category ontology: are the tail picks still on-taste?

use crate::lists::RecommendationLists;
use longtail_data::{Dataset, Ontology};

/// Mean popularity of the item at each list position `1..=k` (Figure 6).
///
/// Positions that some lists do not fill (sparse users) average over the
/// lists that do. Returns an empty vector if no list has any item.
pub fn popularity_at_n(lists: &RecommendationLists, popularity: &[u32]) -> Vec<f64> {
    let k = lists.k;
    let mut sums = vec![0.0f64; k];
    let mut counts = vec![0usize; k];
    for list in &lists.lists {
        for (pos, scored) in list.iter().enumerate() {
            sums[pos] += popularity[scored.item as usize] as f64;
            counts[pos] += 1;
        }
    }
    (0..k)
        .filter(|&pos| counts[pos] > 0)
        .map(|pos| sums[pos] / counts[pos] as f64)
        .collect()
}

/// Mean popularity over *all* recommended slots (scalar summary of Fig. 6).
pub fn mean_popularity(lists: &RecommendationLists, popularity: &[u32]) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for list in &lists.lists {
        for scored in list {
            sum += popularity[scored.item as usize] as f64;
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Diversity (Eq. 17): distinct recommended items over the maximum possible.
///
/// The denominator follows the paper's accounting: an ideal recommender
/// could surface `|users| * k` distinct items, but never more than the
/// catalog holds, so `|I| = min(|users| * k, n_items)`.
pub fn diversity(lists: &RecommendationLists, n_items: usize) -> f64 {
    let mut seen = vec![false; n_items];
    let mut unique = 0usize;
    for list in &lists.lists {
        for scored in list {
            if !seen[scored.item as usize] {
                seen[scored.item as usize] = true;
                unique += 1;
            }
        }
    }
    let capacity = (lists.users.len() * lists.k).min(n_items);
    if capacity == 0 {
        0.0
    } else {
        unique as f64 / capacity as f64
    }
}

/// Ontology similarity (Eq. 19 averaged): for every recommended item, its
/// best category similarity to anything the user already rated; averaged
/// over all slots of all users.
pub fn mean_similarity(lists: &RecommendationLists, train: &Dataset, ontology: &Ontology) -> f64 {
    let mut sum = 0.0;
    let mut n = 0usize;
    for (idx, list) in lists.lists.iter().enumerate() {
        let user = lists.users[idx];
        let preferred = train.rated_items(user);
        for scored in list {
            sum += ontology.user_similarity(preferred, scored.item);
            n += 1;
        }
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_core::ScoredItem;
    use longtail_data::Rating;

    fn lists(users: Vec<u32>, raw: Vec<Vec<u32>>, k: usize) -> RecommendationLists {
        RecommendationLists {
            users,
            lists: raw
                .into_iter()
                .map(|items| {
                    items
                        .into_iter()
                        .map(|item| ScoredItem { item, score: 0.0 })
                        .collect()
                })
                .collect(),
            k,
        }
    }

    #[test]
    fn popularity_at_n_per_position() {
        let pops = vec![10, 2, 30, 4];
        let l = lists(vec![0, 1], vec![vec![0, 1], vec![2, 3]], 2);
        let curve = popularity_at_n(&l, &pops);
        assert_eq!(curve, vec![20.0, 3.0]);
    }

    #[test]
    fn popularity_handles_ragged_lists() {
        let pops = vec![10, 2];
        let l = lists(vec![0, 1], vec![vec![0, 1], vec![0]], 2);
        let curve = popularity_at_n(&l, &pops);
        assert_eq!(curve, vec![10.0, 2.0]);
    }

    #[test]
    fn mean_popularity_over_all_slots() {
        let pops = vec![10, 2, 30];
        let l = lists(vec![0, 1], vec![vec![0], vec![1, 2]], 2);
        assert!((mean_popularity(&l, &pops) - 14.0).abs() < 1e-12);
    }

    #[test]
    fn diversity_counts_unique_items() {
        // 2 users x k=2 over a catalog of 10: capacity 4.
        let l = lists(vec![0, 1], vec![vec![0, 1], vec![1, 2]], 2);
        assert!((diversity(&l, 10) - 3.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn diversity_caps_at_catalog_size() {
        // 3 users x k=2 = 6 slots but only 3 items exist.
        let l = lists(vec![0, 1, 2], vec![vec![0, 1], vec![1, 2], vec![0, 2]], 2);
        assert!((diversity(&l, 3) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn identical_lists_have_low_diversity() {
        let l = lists(vec![0, 1, 2, 3], vec![vec![0]; 4], 1);
        assert!((diversity(&l, 100) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn similarity_uses_best_match_to_rated_set() {
        // Items 0,1 share a genre; item 2 is elsewhere.
        let ontology = Ontology::from_genres(&[0, 0, 1], 1, 5);
        let train = Dataset::from_ratings(
            1,
            3,
            &[Rating {
                user: 0,
                item: 0,
                value: 5.0,
            }],
        );
        let same = lists(vec![0], vec![vec![1]], 1);
        let cross = lists(vec![0], vec![vec![2]], 1);
        assert!(
            mean_similarity(&same, &train, &ontology) > mean_similarity(&cross, &train, &ontology)
        );
    }

    #[test]
    fn empty_lists_give_zero_metrics() {
        let l = lists(vec![0], vec![vec![]], 3);
        assert_eq!(mean_popularity(&l, &[1, 2, 3]), 0.0);
        let ontology = Ontology::from_genres(&[0, 0, 0], 1, 5);
        let train = Dataset::from_ratings(
            1,
            3,
            &[Rating {
                user: 0,
                item: 0,
                value: 5.0,
            }],
        );
        assert_eq!(mean_similarity(&l, &train, &ontology), 0.0);
    }
}
