//! Long-tail quality metrics over served recommendation lists.
//!
//! Where [`crate::recall`] measures *accuracy* by ranking a held-out
//! favourite among sampled distractors (a `score_into` protocol that a
//! post-scoring re-ranker cannot influence), this module measures what the
//! paper's long-tail argument is actually about — *which* items the served
//! lists surface:
//!
//! * [`catalog_coverage`] — the fraction of the catalog that appears in at
//!   least one served list;
//! * [`gini_concentration`] — the Gini coefficient of per-item exposure
//!   (0 = every item recommended equally often, →1 = all exposure on a few
//!   head items);
//! * [`novelty`] — mean self-information `−log2(popularity/n_users)` of
//!   the served items, higher = more obscure recommendations;
//! * [`list_recall`] / [`tail_recall_split`] — the fraction of held-out
//!   favourites that appear in their user's **served top-k list** (not a
//!   distractor ranking), overall and split by head/tail ground truth.
//!
//! All metrics read the same [`RecommendationLists`] artifact, so an
//! off-vs-on re-rank comparison holds everything else fixed.

use crate::lists::RecommendationLists;
use longtail_data::TestCase;

/// Per-item exposure: how many served lists each item appears in.
pub fn exposure_counts(lists: &RecommendationLists, n_items: usize) -> Vec<u32> {
    let mut counts = vec![0u32; n_items];
    for list in &lists.lists {
        for s in list {
            counts[s.item as usize] += 1;
        }
    }
    counts
}

/// Fraction of the catalog recommended to at least one user.
pub fn catalog_coverage(lists: &RecommendationLists, n_items: usize) -> f64 {
    if n_items == 0 {
        return 0.0;
    }
    let distinct = exposure_counts(lists, n_items)
        .iter()
        .filter(|&&c| c > 0)
        .count();
    distinct as f64 / n_items as f64
}

/// Gini coefficient of the exposure distribution `counts` (typically from
/// [`exposure_counts`], the whole catalog included — unexposed items count
/// as zeros). `0.0` means perfectly even exposure; values near `1.0` mean
/// a few head items absorb almost every recommendation slot. Zero total
/// exposure returns `0.0`.
pub fn gini_concentration(counts: &[u32]) -> f64 {
    let total: u64 = counts.iter().map(|&c| c as u64).sum();
    if counts.is_empty() || total == 0 {
        return 0.0;
    }
    let mut sorted: Vec<u32> = counts.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    // G = Σ_i (2(i+1) − n − 1) x_i / (n Σ x), over ascending x.
    let weighted: f64 = sorted
        .iter()
        .enumerate()
        .map(|(i, &x)| (2.0 * (i as f64 + 1.0) - n - 1.0) * x as f64)
        .sum();
    weighted / (n * total as f64)
}

/// Mean self-information of the served items:
/// `−log2(max(popularity, 1) / n_users)` averaged over every filled slot.
/// Recommending only items everyone already rated scores near 0; surfacing
/// items few users have seen scores high. Empty lists return `0.0`.
pub fn novelty(lists: &RecommendationLists, popularity: &[u32], n_users: usize) -> f64 {
    let n_users = n_users.max(1) as f64;
    let mut sum = 0.0;
    let mut slots = 0usize;
    for list in &lists.lists {
        for s in list {
            let pop = popularity[s.item as usize].max(1) as f64;
            sum -= (pop / n_users).log2();
            slots += 1;
        }
    }
    if slots == 0 {
        0.0
    } else {
        sum / slots as f64
    }
}

/// List-based Recall@k: the fraction of held-out `cases` whose favourite
/// item appears in that user's **served** top-k list. Cases whose user was
/// not evaluated in `lists` are skipped (they are no evidence either way).
/// Unlike [`crate::recall_at_n`], this protocol sees everything the
/// serving path does to the list — including re-ranking.
pub fn list_recall(lists: &RecommendationLists, cases: &[TestCase]) -> f64 {
    let (hits, evaluated) = hits_where(lists, cases, |_| true);
    if evaluated == 0 {
        0.0
    } else {
        hits as f64 / evaluated as f64
    }
}

/// [`list_recall`] split by ground-truth popularity class.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TailRecallSplit {
    /// Recall over cases whose held-out item is a tail item.
    pub tail: f64,
    /// Recall over the remaining (head) cases.
    pub head: f64,
    /// Number of evaluated tail cases.
    pub n_tail: usize,
    /// Number of evaluated head cases.
    pub n_head: usize,
}

/// Split [`list_recall`] by `is_tail` of the held-out item — e.g. the
/// re-rank index's percentile cutoff, or a
/// [`longtail_data::LongTailSplit`]. A class with no evaluated cases
/// reports recall `0.0` and count `0`.
pub fn tail_recall_split(
    lists: &RecommendationLists,
    cases: &[TestCase],
    is_tail: impl Fn(u32) -> bool,
) -> TailRecallSplit {
    let (tail_hits, n_tail) = hits_where(lists, cases, &is_tail);
    let (head_hits, n_head) = hits_where(lists, cases, |i| !is_tail(i));
    let rate = |hits: usize, n: usize| if n == 0 { 0.0 } else { hits as f64 / n as f64 };
    TailRecallSplit {
        tail: rate(tail_hits, n_tail),
        head: rate(head_hits, n_head),
        n_tail,
        n_head,
    }
}

/// (hits, evaluated) over the cases whose held-out item passes `filter`
/// and whose user has a list in `lists`.
fn hits_where(
    lists: &RecommendationLists,
    cases: &[TestCase],
    filter: impl Fn(u32) -> bool,
) -> (usize, usize) {
    let mut hits = 0usize;
    let mut evaluated = 0usize;
    for case in cases {
        if !filter(case.item) {
            continue;
        }
        // `users` is sorted (sample_test_users sorts; bench users come from
        // sorted test cases), but stay robust to arbitrary order.
        let Some(j) = lists.users.iter().position(|&u| u == case.user) else {
            continue;
        };
        evaluated += 1;
        if lists.lists[j].iter().any(|s| s.item == case.item) {
            hits += 1;
        }
    }
    (hits, evaluated)
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_core::ScoredItem;

    fn lists_of(users: &[u32], lists: &[&[u32]], k: usize) -> RecommendationLists {
        RecommendationLists {
            users: users.to_vec(),
            lists: lists
                .iter()
                .map(|l| {
                    l.iter()
                        .map(|&item| ScoredItem { item, score: 1.0 })
                        .collect()
                })
                .collect(),
            k,
        }
    }

    #[test]
    fn coverage_counts_distinct_items() {
        let lists = lists_of(&[0, 1], &[&[0, 1], &[1, 2]], 2);
        assert_eq!(catalog_coverage(&lists, 6), 3.0 / 6.0);
        assert_eq!(catalog_coverage(&lists, 0), 0.0);
    }

    #[test]
    fn exposure_counts_every_slot() {
        let lists = lists_of(&[0, 1], &[&[0, 1], &[1, 2]], 2);
        assert_eq!(exposure_counts(&lists, 4), vec![1, 2, 1, 0]);
    }

    #[test]
    fn gini_is_zero_for_even_exposure_and_high_for_concentration() {
        assert_eq!(gini_concentration(&[3, 3, 3, 3]), 0.0);
        let concentrated = gini_concentration(&[12, 0, 0, 0]);
        assert!(concentrated > 0.7, "got {concentrated}");
        // More even → strictly lower.
        assert!(gini_concentration(&[6, 6, 0, 0]) < concentrated);
        assert_eq!(gini_concentration(&[]), 0.0);
        assert_eq!(gini_concentration(&[0, 0]), 0.0);
    }

    #[test]
    fn novelty_rewards_obscure_items() {
        let pops = vec![8, 1];
        // Item 0: everyone rated it → 0 bits. Item 1: 1 of 8 → 3 bits.
        let head = lists_of(&[0], &[&[0]], 1);
        let tail = lists_of(&[0], &[&[1]], 1);
        assert_eq!(novelty(&head, &pops, 8), 0.0);
        assert_eq!(novelty(&tail, &pops, 8), 3.0);
        let empty = lists_of(&[0], &[&[]], 1);
        assert_eq!(novelty(&empty, &pops, 8), 0.0);
    }

    #[test]
    fn list_recall_counts_served_favorites() {
        let lists = lists_of(&[0, 1, 2], &[&[5, 3], &[4, 1], &[2, 0]], 2);
        let cases = [
            TestCase { user: 0, item: 3 }, // hit
            TestCase { user: 1, item: 9 }, // miss
            TestCase { user: 7, item: 5 }, // user not evaluated: skipped
        ];
        assert_eq!(list_recall(&lists, &cases), 0.5);
        assert_eq!(list_recall(&lists, &[]), 0.0);
    }

    #[test]
    fn tail_split_partitions_cases() {
        let lists = lists_of(&[0, 1, 2], &[&[5, 3], &[4, 1], &[2, 0]], 2);
        let cases = [
            TestCase { user: 0, item: 3 }, // tail, hit
            TestCase { user: 1, item: 9 }, // tail, miss
            TestCase { user: 2, item: 2 }, // head, hit
        ];
        let split = tail_recall_split(&lists, &cases, |i| i >= 3);
        assert_eq!(split.n_tail, 2);
        assert_eq!(split.n_head, 1);
        assert_eq!(split.tail, 0.5);
        assert_eq!(split.head, 1.0);
    }
}
