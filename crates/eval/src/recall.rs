//! The Recall@N protocol of §5.2.1 (Figure 5).
//!
//! For each held-out 5-star long-tail rating `(u, i)`: sample 1000 items the
//! user never rated, rank `i` among them with the recommender's scores, and
//! record a hit if `i` lands in the top N. `Recall@N = Σ hit@N / |L|`
//! (Eq. 16). The distractors are uniform over the catalog, so they are
//! mostly popular-ish items — a recommender that always boosts the head
//! buries the tail favourite, which is exactly what Figure 5 punishes.

use longtail_core::{parallel_map_indexed, rank_of, Recommender, ScoringContext};
use longtail_data::{Dataset, ProtocolSplit};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Configuration of the Recall@N evaluation.
#[derive(Debug, Clone, Copy)]
pub struct RecallConfig {
    /// Number of random unrated distractor items per test case (the paper
    /// uses 1000; capped at the number of available unrated items).
    pub n_distractors: usize,
    /// Largest N of the reported curve (the paper plots N ∈ [1, 50]).
    pub max_n: usize,
    /// Distractor-sampling seed.
    pub seed: u64,
    /// Number of worker threads (1 = sequential).
    pub n_threads: usize,
}

impl Default for RecallConfig {
    fn default() -> Self {
        Self {
            n_distractors: 1000,
            max_n: 50,
            seed: 0xeca1,
            n_threads: 4,
        }
    }
}

/// A Recall@N curve: `recall[n-1]` is Recall@n.
#[derive(Debug, Clone)]
pub struct RecallCurve {
    /// Recall at positions `1..=max_n`.
    pub recall: Vec<f64>,
    /// Number of test cases evaluated.
    pub n_cases: usize,
}

impl RecallCurve {
    /// Recall at position `n` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 or beyond the computed curve.
    pub fn at(&self, n: usize) -> f64 {
        assert!(
            n >= 1 && n <= self.recall.len(),
            "position {n} out of range"
        );
        self.recall[n - 1]
    }
}

/// Evaluate `recommender` under the Recall@N protocol.
///
/// `full_data` is the pre-split dataset — distractors must be unrated in the
/// *original* data so that none of them is a hidden positive of the test
/// user. Rank ties are broken by item id, consistently with
/// [`longtail_core::top_k`].
///
/// This metric genuinely needs the full score vector (the favourite is
/// ranked against up to 1000 sampled distractors, not a top-k list), so it
/// stays on [`Recommender::score_into`] rather than the fused top-k path —
/// but its hit criterion matches that path exactly: a test case whose
/// target scores NaN or `-∞` (e.g. a user whose every rating was held out,
/// leaving the model nothing to walk from) counts as a miss, since such an
/// item can never appear in a recommendation list. It is *not* ranked by id
/// against equally unscorable distractors.
///
/// Scoring fans out over `config.n_threads` workers, each owning one
/// [`ScoringContext`] and one reused score buffer, so the measurement loop
/// itself allocates nothing per query.
pub fn recall_at_n(
    recommender: &dyn Recommender,
    full_data: &Dataset,
    split: &ProtocolSplit,
    config: &RecallConfig,
) -> RecallCurve {
    let cases = &split.test_cases;
    let n_cases = cases.len();
    if n_cases == 0 {
        return RecallCurve {
            recall: vec![0.0; config.max_n],
            n_cases: 0,
        };
    }

    // Pre-draw candidate sets sequentially for determinism, then fan the
    // (expensive) scoring out over threads.
    let mut rng = StdRng::seed_from_u64(config.seed);
    let candidate_sets: Vec<Vec<u32>> = cases
        .iter()
        .map(|case| {
            let mut unrated: Vec<u32> = (0..full_data.n_items() as u32)
                .filter(|&i| i != case.item && !full_data.has_rated(case.user, i))
                .collect();
            unrated.shuffle(&mut rng);
            unrated.truncate(config.n_distractors);
            unrated.push(case.item);
            unrated
        })
        .collect();

    let ranks = parallel_map_indexed(
        n_cases,
        config.n_threads,
        || (ScoringContext::new(), Vec::new()),
        |(ctx, scores), idx| {
            let case = &cases[idx];
            recommender.score_into(case.user, ctx, scores);
            rank_of(scores, &candidate_sets[idx], case.item)
        },
    );

    let mut hits = vec![0usize; config.max_n];
    for rank in ranks.into_iter().flatten() {
        if rank < config.max_n {
            for h in hits.iter_mut().skip(rank) {
                *h += 1;
            }
        }
    }
    RecallCurve {
        recall: hits.iter().map(|&h| h as f64 / n_cases as f64).collect(),
        n_cases,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_core::ScoredItem;
    use longtail_data::TestCase;

    /// A recommender with a fixed preference list: scores = -item_id with a
    /// per-user boost for `(user, item)` pairs in `favorites`.
    struct Oracle {
        n_items: usize,
        favorites: Vec<(u32, u32)>,
        empty: Vec<u32>,
    }

    impl Recommender for Oracle {
        fn name(&self) -> &'static str {
            "oracle"
        }

        fn score_into(&self, user: u32, _ctx: &mut ScoringContext, out: &mut Vec<f64>) {
            out.clear();
            out.extend((0..self.n_items as u32).map(|i| {
                if self.favorites.contains(&(user, i)) {
                    1e6
                } else {
                    -(i as f64)
                }
            }));
        }

        fn rated_items(&self, _user: u32) -> &[u32] {
            &self.empty
        }

        fn n_items(&self) -> usize {
            self.n_items
        }

        fn recommend(&self, user: u32, k: usize) -> Vec<ScoredItem> {
            longtail_core::top_k(&self.score_items(user), k, |_| false)
        }
    }

    fn tiny_setup(favorites: Vec<(u32, u32)>) -> (Dataset, ProtocolSplit, Oracle) {
        // 3 users, 30 items; user 0 rated item 0 only.
        let ratings = [longtail_data::Rating {
            user: 0,
            item: 0,
            value: 5.0,
        }];
        let full = Dataset::from_ratings(3, 30, &ratings);
        let split = ProtocolSplit {
            train: full.clone(),
            test_cases: vec![TestCase { user: 0, item: 5 }, TestCase { user: 1, item: 7 }],
        };
        let oracle = Oracle {
            n_items: 30,
            favorites,
            empty: Vec::new(),
        };
        (full, split, oracle)
    }

    #[test]
    fn perfect_oracle_has_recall_one_at_one() {
        let (full, split, oracle) = tiny_setup(vec![(0, 5), (1, 7)]);
        let curve = recall_at_n(
            &oracle,
            &full,
            &split,
            &RecallConfig {
                max_n: 5,
                ..RecallConfig::default()
            },
        );
        assert_eq!(curve.n_cases, 2);
        assert_eq!(curve.at(1), 1.0);
        assert_eq!(curve.at(5), 1.0);
    }

    #[test]
    fn anti_oracle_misses_everywhere() {
        // Oracle favours nothing: item ids rank descending by -id, so test
        // items 5 and 7 rank around position 5-7 of ~29 candidates.
        let (full, split, oracle) = tiny_setup(vec![]);
        let curve = recall_at_n(
            &oracle,
            &full,
            &split,
            &RecallConfig {
                max_n: 4,
                ..RecallConfig::default()
            },
        );
        assert_eq!(curve.at(4), 0.0);
    }

    #[test]
    fn recall_is_monotone_in_n() {
        let (full, split, oracle) = tiny_setup(vec![(1, 7)]);
        let curve = recall_at_n(
            &oracle,
            &full,
            &split,
            &RecallConfig {
                max_n: 20,
                ..RecallConfig::default()
            },
        );
        for w in curve.recall.windows(2) {
            assert!(w[0] <= w[1] + 1e-12);
        }
    }

    #[test]
    fn deterministic_across_thread_counts() {
        let (full, split, oracle) = tiny_setup(vec![(0, 5)]);
        let base = RecallConfig {
            max_n: 10,
            ..RecallConfig::default()
        };
        let seq = recall_at_n(
            &oracle,
            &full,
            &split,
            &RecallConfig {
                n_threads: 1,
                ..base
            },
        );
        let par = recall_at_n(
            &oracle,
            &full,
            &split,
            &RecallConfig {
                n_threads: 4,
                ..base
            },
        );
        assert_eq!(seq.recall, par.recall);
    }

    #[test]
    fn empty_test_set_yields_zeros() {
        let (full, mut split, oracle) = tiny_setup(vec![]);
        split.test_cases.clear();
        let curve = recall_at_n(&oracle, &full, &split, &RecallConfig::default());
        assert_eq!(curve.n_cases, 0);
        assert!(curve.recall.iter().all(|&r| r == 0.0));
    }

    /// A recommender that cannot score anyone: every item is `-∞`.
    struct Unreachable {
        n_items: usize,
        empty: Vec<u32>,
    }

    impl Recommender for Unreachable {
        fn name(&self) -> &'static str {
            "unreachable"
        }

        fn score_into(&self, _user: u32, _ctx: &mut ScoringContext, out: &mut Vec<f64>) {
            out.clear();
            out.resize(self.n_items, f64::NEG_INFINITY);
        }

        fn rated_items(&self, _user: u32) -> &[u32] {
            &self.empty
        }

        fn n_items(&self) -> usize {
            self.n_items
        }
    }

    #[test]
    fn unscorable_targets_count_as_misses() {
        // Regression: with every score -∞ (a user the model knows nothing
        // about), the target used to earn a rank purely by id tie-breaking
        // against the equally unscorable distractors — low-id targets then
        // registered as hits. Such cases must be misses.
        let (full, split, _) = tiny_setup(vec![]);
        let rec = Unreachable {
            n_items: 30,
            empty: Vec::new(),
        };
        let curve = recall_at_n(&rec, &full, &split, &RecallConfig::default());
        assert_eq!(curve.n_cases, 2);
        assert!(
            curve.recall.iter().all(|&r| r == 0.0),
            "unscorable targets must never hit: {:?}",
            &curve.recall[..5]
        );
    }

    #[test]
    fn max_n_beyond_candidate_pool_saturates() {
        // N far larger than the candidate pool: the curve saturates at 1.0
        // once N covers the pool and stays there — no panic, no overshoot.
        let (full, split, oracle) = tiny_setup(vec![]);
        let curve = recall_at_n(
            &oracle,
            &full,
            &split,
            &RecallConfig {
                n_distractors: 2,
                max_n: 40,
                ..RecallConfig::default()
            },
        );
        assert_eq!(curve.at(3), 1.0);
        assert_eq!(curve.at(40), 1.0);
        for w in curve.recall.windows(2) {
            assert!(w[0] <= w[1]);
        }
    }

    #[test]
    fn max_n_zero_yields_empty_curve() {
        let (full, split, oracle) = tiny_setup(vec![(0, 5)]);
        let curve = recall_at_n(
            &oracle,
            &full,
            &split,
            &RecallConfig {
                max_n: 0,
                ..RecallConfig::default()
            },
        );
        assert_eq!(curve.n_cases, 2);
        assert!(curve.recall.is_empty());
    }

    #[test]
    fn distractor_budget_caps_candidates() {
        let (full, split, oracle) = tiny_setup(vec![]);
        // With only 2 distractors the test item competes against 2 items;
        // an id-descending oracle ranks item 5 by luck of the draw, but the
        // curve must reach 1.0 by position 3.
        let curve = recall_at_n(
            &oracle,
            &full,
            &split,
            &RecallConfig {
                n_distractors: 2,
                max_n: 3,
                ..RecallConfig::default()
            },
        );
        assert_eq!(curve.at(3), 1.0);
    }
}
