//! Experiment result containers and table rendering.
//!
//! The bench binaries print the same rows and series the paper reports;
//! these helpers keep that output consistent and serializable (JSON via
//! serde) so `EXPERIMENTS.md` can be regenerated mechanically.

use serde::{Deserialize, Serialize};

/// A named series of `(x, y)` points — one line of Figure 5 or Figure 6.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Series {
    /// Algorithm / configuration label.
    pub label: String,
    /// X positions (e.g. N).
    pub x: Vec<f64>,
    /// Y values (e.g. Recall@N).
    pub y: Vec<f64>,
}

/// A labelled table — one paper table (rows = algorithms).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Table {
    /// Table caption.
    pub title: String,
    /// Column headers (first column is the row label).
    pub headers: Vec<String>,
    /// Rows: label followed by numeric cells rendered upstream.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Create an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        Self {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Append a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width disagrees with the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Render as GitHub-flavoured Markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("### {}\n\n", self.title));
        out.push_str(&format!("| {} |\n", self.headers.join(" | ")));
        out.push_str(&format!(
            "|{}\n",
            self.headers.iter().map(|_| "---|").collect::<String>()
        ));
        for row in &self.rows {
            out.push_str(&format!("| {} |\n", row.join(" | ")));
        }
        out
    }
}

/// Render a set of series as a Markdown table with x as the first column —
/// the text form of a paper figure.
pub fn series_to_markdown(title: &str, x_label: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("### {title}\n\n"));
    out.push_str(&format!("| {x_label} |"));
    for s in series {
        out.push_str(&format!(" {} |", s.label));
    }
    out.push('\n');
    out.push_str("|---|");
    for _ in series {
        out.push_str("---|");
    }
    out.push('\n');
    let n = series.first().map_or(0, |s| s.x.len());
    for i in 0..n {
        out.push_str(&format!("| {} |", format_num(series[0].x[i])));
        for s in series {
            out.push_str(&format!(" {} |", format_num(s.y[i])));
        }
        out.push('\n');
    }
    out
}

/// Compact numeric formatting: integers plain, reals to 4 significant
/// decimals.
pub fn format_num(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e12 {
        format!("{}", v as i64)
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_markdown() {
        let mut t = Table::new("Diversity", vec!["Algo".into(), "Douban".into()]);
        t.push_row(vec!["AC2".into(), "0.58".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Diversity"));
        assert!(md.contains("| Algo | Douban |"));
        assert!(md.contains("| AC2 | 0.58 |"));
    }

    #[test]
    #[should_panic(expected = "width")]
    fn ragged_row_rejected() {
        let mut t = Table::new("x", vec!["a".into(), "b".into()]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn series_renders_rows_per_x() {
        let s = vec![
            Series {
                label: "HT".into(),
                x: vec![1.0, 2.0],
                y: vec![0.1, 0.2],
            },
            Series {
                label: "AT".into(),
                x: vec![1.0, 2.0],
                y: vec![0.15, 0.25],
            },
        ];
        let md = series_to_markdown("Recall", "N", &s);
        assert!(md.contains("| N | HT | AT |"));
        assert!(md.contains("| 1 | 0.1000 | 0.1500 |"));
        assert!(md.contains("| 2 | 0.2000 | 0.2500 |"));
    }

    #[test]
    fn numbers_format_compactly() {
        assert_eq!(format_num(3.0), "3");
        assert_eq!(format_num(0.12345), "0.1235");
    }

    #[test]
    fn report_types_are_serializable() {
        // Compile-time check that the serde derives are in place
        // (serde_json is not available offline, so no round-trip here).
        fn assert_serializable<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serializable::<Table>();
        assert_serializable::<Series>();
    }
}
