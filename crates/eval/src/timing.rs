//! Online recommendation latency (§5.2.6, Table 5).
//!
//! The paper times each algorithm producing a top-10 list per user
//! (excluding offline training), finding the subgraph-bounded AC2 comparable
//! to the model-based LDA/PureSVD and ~26x faster than full-graph DPPR.
//! This module reproduces that measurement with plain wall-clock timing;
//! the statistically careful version lives in the Criterion benches.

use longtail_core::{Recommender, ScoringContext};
use std::time::Instant;

/// Wall-clock statistics over a batch of per-user recommendation queries.
#[derive(Debug, Clone, Copy)]
pub struct TimingStats {
    /// Mean seconds per query.
    pub mean_seconds: f64,
    /// Total seconds over the batch.
    pub total_seconds: f64,
    /// Number of queries timed.
    pub n_queries: usize,
}

/// Time `recommender` producing top-`k` lists for each user in `users`,
/// sequentially, through one reused [`ScoringContext`] and one reused list
/// buffer on the fused [`Recommender::recommend_into`] path — the
/// steady-state per-query latency of a single serving worker.
pub fn time_recommendations(recommender: &dyn Recommender, users: &[u32], k: usize) -> TimingStats {
    let mut ctx = ScoringContext::new();
    let mut list = Vec::new();
    let start = Instant::now();
    for &u in users {
        // The list itself is the product being timed; discard it.
        recommender.recommend_into(u, k, &mut ctx, &mut list);
        std::hint::black_box(&list);
    }
    let total = start.elapsed().as_secs_f64();
    TimingStats {
        mean_seconds: if users.is_empty() {
            0.0
        } else {
            total / users.len() as f64
        },
        total_seconds: total,
        n_queries: users.len(),
    }
}

/// Time [`Recommender::recommend_batch`] over the whole `users` batch at a
/// given worker count — the serving-shaped counterpart of
/// [`time_batch_scoring`]: every query produces a top-`k` list on the fused
/// path instead of a full score vector.
pub fn time_batch_recommendations(
    recommender: &dyn Recommender,
    users: &[u32],
    k: usize,
    n_threads: usize,
) -> TimingStats {
    let start = Instant::now();
    let lists = recommender.recommend_batch(users, k, n_threads);
    let total = start.elapsed().as_secs_f64();
    // Consume the lists so the work cannot be optimized away.
    std::hint::black_box(&lists);
    TimingStats {
        mean_seconds: if users.is_empty() {
            0.0
        } else {
            total / users.len() as f64
        },
        total_seconds: total,
        n_queries: users.len(),
    }
}

/// Time [`Recommender::score_batch`] over the whole `users` batch at a given
/// worker count — the throughput-oriented counterpart of
/// [`time_recommendations`] (Table 5's per-query numbers, but amortized over
/// a sharded batch).
pub fn time_batch_scoring(
    recommender: &dyn Recommender,
    users: &[u32],
    n_threads: usize,
) -> TimingStats {
    let start = Instant::now();
    let results = recommender.score_batch(users, n_threads);
    let total = start.elapsed().as_secs_f64();
    // Consume the scores so the work cannot be optimized away.
    std::hint::black_box(&results);
    TimingStats {
        mean_seconds: if users.is_empty() {
            0.0
        } else {
            total / users.len() as f64
        },
        total_seconds: total,
        n_queries: users.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_core::{GraphRecConfig, HittingTimeRecommender};
    use longtail_data::{Dataset, Rating};

    #[test]
    fn counts_and_accumulates() {
        let d = Dataset::from_ratings(
            2,
            2,
            &[
                Rating {
                    user: 0,
                    item: 0,
                    value: 5.0,
                },
                Rating {
                    user: 1,
                    item: 1,
                    value: 4.0,
                },
            ],
        );
        let rec = HittingTimeRecommender::new(&d, GraphRecConfig::default());
        let stats = time_recommendations(&rec, &[0, 1, 0], 1);
        assert_eq!(stats.n_queries, 3);
        assert!(stats.total_seconds >= 0.0);
        assert!(stats.mean_seconds <= stats.total_seconds + 1e-12);
    }

    #[test]
    fn empty_batch_is_zero() {
        let d = Dataset::from_ratings(
            1,
            1,
            &[Rating {
                user: 0,
                item: 0,
                value: 5.0,
            }],
        );
        let rec = HittingTimeRecommender::new(&d, GraphRecConfig::default());
        let stats = time_recommendations(&rec, &[], 5);
        assert_eq!(stats.n_queries, 0);
        assert_eq!(stats.mean_seconds, 0.0);
    }
}
