//! Online recommendation latency (§5.2.6, Table 5).
//!
//! The paper times each algorithm producing a top-10 list per user
//! (excluding offline training), finding the subgraph-bounded AC2 comparable
//! to the model-based LDA/PureSVD and ~26x faster than full-graph DPPR.
//! This module reproduces that measurement with plain wall-clock timing;
//! the statistically careful version lives in the Criterion benches.

use longtail_core::{DpStopping, DpTelemetry, RecommendOptions, Recommender, ScoringContext};
use longtail_serve::{
    Engine, EngineStats, PendingResponse, RecommendRequest, RecommendResponse, ServeError,
};
use std::time::Instant;

/// Wall-clock statistics over a batch of per-user recommendation queries.
#[derive(Debug, Clone, Copy)]
pub struct TimingStats {
    /// Mean seconds per query.
    pub mean_seconds: f64,
    /// Total seconds over the batch.
    pub total_seconds: f64,
    /// Number of queries timed.
    pub n_queries: usize,
    /// Truncated-DP iteration counters accumulated over the timed queries —
    /// how much of the walk family's τ budget adaptive early termination
    /// actually spent. Sequential timers read them off the timing context;
    /// [`time_batch_recommendations`] merges them across the batch's worker
    /// contexts via [`DpTelemetry::merge`]. All-zero for non-walk
    /// recommenders and for [`time_batch_scoring`] (reference scoring runs
    /// no serving DP).
    pub dp: DpTelemetry,
    /// Engine-level saturation/shed/deadline counters — including the
    /// per-[`longtail_serve::Priority`]-class QoS ledgers and latency
    /// histograms — for the timed window, when the timer drove a
    /// `longtail-serve` [`Engine`] ([`time_open_loop_submission`]); `None`
    /// for the direct-recommender timers, which have no admission queue to
    /// account for.
    pub engine: Option<EngineStats>,
}

/// Time `recommender` producing top-`k` lists for each user in `users`,
/// sequentially, through one reused [`ScoringContext`] and one reused list
/// buffer on the fused [`Recommender::recommend_into`] path — the
/// steady-state per-query latency of a single serving worker, under the
/// default adaptive [`DpStopping`] policy.
pub fn time_recommendations(recommender: &dyn Recommender, users: &[u32], k: usize) -> TimingStats {
    time_recommendations_with_stopping(recommender, users, k, DpStopping::default())
}

/// [`time_recommendations`] under an explicit serving policy — the probe
/// benchmarks use this to compare [`DpStopping::Fixed`] against the
/// adaptive default on identical query streams.
pub fn time_recommendations_with_stopping(
    recommender: &dyn Recommender,
    users: &[u32],
    k: usize,
    stopping: DpStopping,
) -> TimingStats {
    let mut ctx = ScoringContext::new();
    let opts = RecommendOptions::with_stopping(stopping);
    let mut list = Vec::new();
    let start = Instant::now();
    for &u in users {
        // The list itself is the product being timed; discard it.
        recommender.recommend_into(u, k, &opts, &mut ctx, &mut list);
        std::hint::black_box(&list);
    }
    let total = start.elapsed().as_secs_f64();
    TimingStats {
        mean_seconds: if users.is_empty() {
            0.0
        } else {
            total / users.len() as f64
        },
        total_seconds: total,
        n_queries: users.len(),
        dp: ctx.dp_telemetry(),
        engine: None,
    }
}

/// Time [`Recommender::recommend_batch`] over the whole `users` batch at a
/// given worker count — the serving-shaped counterpart of
/// [`time_batch_scoring`]: every query produces a top-`k` list on the fused
/// path instead of a full score vector.
pub fn time_batch_recommendations(
    recommender: &dyn Recommender,
    users: &[u32],
    k: usize,
    n_threads: usize,
) -> TimingStats {
    let opts = RecommendOptions::default();
    let start = Instant::now();
    let (lists, dp) = recommender.recommend_batch_telemetry(users, k, &opts, n_threads);
    let total = start.elapsed().as_secs_f64();
    // Consume the lists so the work cannot be optimized away.
    std::hint::black_box(&lists);
    TimingStats {
        mean_seconds: if users.is_empty() {
            0.0
        } else {
            total / users.len() as f64
        },
        total_seconds: total,
        n_queries: users.len(),
        dp,
        engine: None,
    }
}

/// Time an open-loop traffic burst through a `longtail-serve` engine's
/// async front-end: every request is submitted via [`Engine::submit`]
/// *before* any response is claimed (the open-loop shape — arrivals don't
/// wait for completions), then the handles are drained in order.
///
/// Returns the wall-clock stats plus the per-request outcomes;
/// `results[j]` answers `requests[j]`, with backpressure and deadline
/// drops ([`ServeError::Overloaded`] / [`ServeError::DeadlineExceeded`])
/// in place. The stats carry the engine's [`DpTelemetry`] and
/// [`EngineStats`] diffs for exactly this burst, so callers can read shed
/// and deadline counts without owning the engine's whole history.
pub fn time_open_loop_submission(
    engine: &Engine,
    requests: Vec<RecommendRequest>,
) -> (TimingStats, Vec<Result<RecommendResponse, ServeError>>) {
    let n = requests.len();
    let dp_before = engine.telemetry();
    let stats_before = engine.stats();
    let start = Instant::now();
    let pending: Vec<Result<PendingResponse, ServeError>> =
        requests.into_iter().map(|r| engine.submit(r)).collect();
    let results: Vec<Result<RecommendResponse, ServeError>> = pending
        .into_iter()
        .map(|p| match p {
            Ok(handle) => handle.wait(),
            Err(refused) => Err(refused),
        })
        .collect();
    let total = start.elapsed().as_secs_f64();
    let stats = TimingStats {
        mean_seconds: if n == 0 { 0.0 } else { total / n as f64 },
        total_seconds: total,
        n_queries: n,
        dp: engine.telemetry().since(&dp_before),
        engine: Some(engine.stats().since(&stats_before)),
    };
    (stats, results)
}

/// Time [`Recommender::score_batch`] over the whole `users` batch at a given
/// worker count — the throughput-oriented counterpart of
/// [`time_recommendations`] (Table 5's per-query numbers, but amortized over
/// a sharded batch).
pub fn time_batch_scoring(
    recommender: &dyn Recommender,
    users: &[u32],
    n_threads: usize,
) -> TimingStats {
    let start = Instant::now();
    let results = recommender.score_batch(users, n_threads);
    let total = start.elapsed().as_secs_f64();
    // Consume the scores so the work cannot be optimized away.
    std::hint::black_box(&results);
    TimingStats {
        mean_seconds: if users.is_empty() {
            0.0
        } else {
            total / users.len() as f64
        },
        total_seconds: total,
        n_queries: users.len(),
        dp: DpTelemetry::default(),
        engine: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_core::{GraphRecConfig, HittingTimeRecommender};
    use longtail_data::{Dataset, Rating};

    #[test]
    fn counts_and_accumulates() {
        let d = Dataset::from_ratings(
            2,
            2,
            &[
                Rating {
                    user: 0,
                    item: 0,
                    value: 5.0,
                },
                Rating {
                    user: 1,
                    item: 1,
                    value: 4.0,
                },
            ],
        );
        let rec = HittingTimeRecommender::new(&d, GraphRecConfig::default());
        let stats = time_recommendations(&rec, &[0, 1, 0], 1);
        assert_eq!(stats.n_queries, 3);
        assert!(stats.total_seconds >= 0.0);
        assert!(stats.mean_seconds <= stats.total_seconds + 1e-12);
        // The walk family surfaces its DP telemetry through the stats.
        assert_eq!(stats.dp.queries, 3);
        assert!(stats.dp.iterations_run <= stats.dp.iterations_budget);
    }

    #[test]
    fn fixed_stopping_spends_the_full_budget() {
        let d = Dataset::from_ratings(
            2,
            2,
            &[
                Rating {
                    user: 0,
                    item: 0,
                    value: 5.0,
                },
                Rating {
                    user: 1,
                    item: 1,
                    value: 4.0,
                },
            ],
        );
        let config = GraphRecConfig::default();
        let rec = HittingTimeRecommender::new(&d, config);
        let stats =
            time_recommendations_with_stopping(&rec, &[0, 1], 1, longtail_core::DpStopping::Fixed);
        assert_eq!(stats.dp.iterations_run, stats.dp.iterations_budget);
        assert_eq!(stats.dp.iterations_saved_fraction(), 0.0);
    }

    #[test]
    fn batch_timer_surfaces_merged_worker_telemetry() {
        let d = Dataset::from_ratings(
            2,
            2,
            &[
                Rating {
                    user: 0,
                    item: 0,
                    value: 5.0,
                },
                Rating {
                    user: 1,
                    item: 1,
                    value: 4.0,
                },
            ],
        );
        let rec = HittingTimeRecommender::new(&d, GraphRecConfig::default());
        for n_threads in [1usize, 2] {
            let stats = time_batch_recommendations(&rec, &[0, 1, 0], 1, n_threads);
            // The workers' DP counters are merged into the stats instead of
            // dropping with the worker contexts.
            assert_eq!(stats.dp.queries, 3, "{n_threads} threads");
            assert!(stats.dp.iterations_budget > 0);
        }
    }

    #[test]
    fn open_loop_timer_surfaces_engine_stats() {
        use longtail_serve::Engine;
        use std::sync::Arc;
        let d = Dataset::from_ratings(
            2,
            2,
            &[
                Rating {
                    user: 0,
                    item: 0,
                    value: 5.0,
                },
                Rating {
                    user: 1,
                    item: 1,
                    value: 4.0,
                },
            ],
        );
        let engine = Engine::builder()
            .model(
                "HT",
                Arc::new(HittingTimeRecommender::new(&d, GraphRecConfig::default())),
            )
            .workers(1)
            .build();
        // A mixed burst: two live requests (one Batch-class) and one
        // already-expired Interactive request.
        let requests = vec![
            RecommendRequest::new("HT", 0, 1),
            RecommendRequest::new("HT", 1, 1).deadline_at(std::time::Instant::now()),
            RecommendRequest::new("HT", 1, 1).with_priority(longtail_serve::Priority::Batch),
        ];
        let (stats, results) = time_open_loop_submission(&engine, requests);
        assert_eq!(stats.n_queries, 3);
        assert!(results[0].is_ok() && results[2].is_ok());
        assert_eq!(
            results[1],
            Err(longtail_serve::ServeError::DeadlineExceeded)
        );
        let engine_stats = stats.engine.expect("engine timer carries EngineStats");
        assert_eq!(engine_stats.submitted, 3);
        assert_eq!(engine_stats.completed, 2);
        assert_eq!(engine_stats.expired_at_dequeue, 1);
        // The per-class QoS ledgers ride the same diff: each class balances
        // (`submitted = served + shed + expired + failed`) and the served
        // requests' latencies surface as percentiles.
        let interactive = engine_stats.per_class[longtail_serve::Priority::Interactive.index()];
        let batch = engine_stats.per_class[longtail_serve::Priority::Batch.index()];
        assert_eq!(interactive.submitted, 2);
        assert_eq!(interactive.served, 1);
        assert_eq!(interactive.expired, 1);
        assert_eq!(batch.submitted, 1);
        assert_eq!(batch.served, 1);
        assert!(interactive.latency_p50().is_some());
        assert!(batch.latency_p99().unwrap() >= batch.latency_p50().unwrap());
        // The DP telemetry diff covers only the completed walk queries.
        assert_eq!(stats.dp.queries, 2);

        // A second burst's diff starts from zero, not engine lifetime.
        let (stats, _) =
            time_open_loop_submission(&engine, vec![RecommendRequest::new("HT", 0, 1)]);
        assert_eq!(stats.engine.unwrap().submitted, 1);
    }

    #[test]
    fn empty_batch_is_zero() {
        let d = Dataset::from_ratings(
            1,
            1,
            &[Rating {
                user: 0,
                item: 0,
                value: 5.0,
            }],
        );
        let rec = HittingTimeRecommender::new(&d, GraphRecConfig::default());
        let stats = time_recommendations(&rec, &[], 5);
        assert_eq!(stats.n_queries, 0);
        assert_eq!(stats.mean_seconds, 0.0);
    }
}
