//! Simulated user study (§5.2.7, Table 6).
//!
//! The paper hires 50 movie-lovers who rate each recommendation on
//! Preference, Novelty, Serendipity and an overall Score. Human judges are
//! unavailable here, so the study is simulated against the synthetic
//! generator's ground truth — a substitution documented in `DESIGN.md`:
//!
//! * **Preference (1–5)** — how well the item's genre matches the judge's
//!   latent taste vector (the quantity human judges report when asked "does
//!   this match your taste?");
//! * **Novelty (0/1)** — whether the judge had *not* heard of the item;
//!   exposure probability grows with item popularity, mirroring "I saw it
//!   on IMDB's top list";
//! * **Serendipity (1–5)** — preference gated by surprise: high only when
//!   the item fits *and* the judge didn't know it;
//! * **Score (1–5)** — overall value, a preference-dominated blend.

use crate::lists::RecommendationLists;
use longtail_core::Recommender;
use longtail_data::SyntheticData;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Mean judgments of a simulated study, one row of Table 6.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StudyResult {
    /// Mean taste-match rating, 1–5.
    pub preference: f64,
    /// Fraction of recommendations the judges had never heard of, 0–1.
    pub novelty: f64,
    /// Mean surprise rating, 1–5.
    pub serendipity: f64,
    /// Mean overall rating, 1–5.
    pub score: f64,
    /// Number of judged recommendations.
    pub n_judged: usize,
}

/// Configuration of the simulated study.
#[derive(Debug, Clone, Copy)]
pub struct StudyConfig {
    /// Number of judges (the paper hires 50).
    pub n_judges: usize,
    /// Recommendations shown per judge (the paper shows 10).
    pub k: usize,
    /// Popularity at which a judge has ~63 % probability of already knowing
    /// an item (the exposure scale; exposure = 1 - exp(-pop/scale)).
    pub exposure_scale: f64,
    /// RNG seed for judge sampling and exposure draws.
    pub seed: u64,
}

impl Default for StudyConfig {
    fn default() -> Self {
        Self {
            n_judges: 50,
            k: 10,
            exposure_scale: 25.0,
            seed: 0x57d7,
        }
    }
}

/// Run the simulated study for one recommender.
///
/// Judges are drawn from the generator's users (most active first, like the
/// paper's movie-lovers); each receives `k` recommendations which are judged
/// against the generator's ground-truth tastes and popularity-driven
/// exposure.
pub fn simulate_study(
    recommender: &dyn Recommender,
    data: &SyntheticData,
    config: &StudyConfig,
) -> StudyResult {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let popularity = data.dataset.item_popularity();

    // Most-active users act as the movie-lover judges.
    let mut by_activity: Vec<u32> = (0..data.dataset.n_users() as u32).collect();
    let activity = data.dataset.user_activity();
    by_activity.sort_by_key(|&u| std::cmp::Reverse(activity[u as usize]));
    by_activity.truncate(config.n_judges);

    let lists = RecommendationLists::compute(recommender, &by_activity, config.k, 4);

    let mut pref_sum = 0.0;
    let mut novel_sum = 0.0;
    let mut seren_sum = 0.0;
    let mut score_sum = 0.0;
    let mut n = 0usize;
    for (idx, list) in lists.lists.iter().enumerate() {
        let judge = lists.users[idx];
        let taste = &data.user_tastes[judge as usize];
        let taste_max = taste.iter().copied().fold(f64::MIN, f64::max);
        for scored in list {
            let genre = data.item_genres[scored.item as usize] as usize;
            let affinity = taste[genre] / taste_max;
            let preference = 1.0 + 4.0 * affinity;

            let pop = popularity[scored.item as usize] as f64;
            let exposure = 1.0 - (-pop / config.exposure_scale).exp();
            let known = rng.random::<f64>() < exposure;
            let novelty = if known { 0.0 } else { 1.0 };

            // Surprise needs both fit and unfamiliarity.
            let serendipity = 1.0 + 4.0 * affinity * novelty;
            // Overall: users mostly want taste fit, with a serendipity bonus.
            let score = 0.75 * preference + 0.25 * serendipity;

            pref_sum += preference;
            novel_sum += novelty;
            seren_sum += serendipity;
            score_sum += score;
            n += 1;
        }
    }

    if n == 0 {
        return StudyResult {
            preference: 0.0,
            novelty: 0.0,
            serendipity: 0.0,
            score: 0.0,
            n_judged: 0,
        };
    }
    StudyResult {
        preference: pref_sum / n as f64,
        novelty: novel_sum / n as f64,
        serendipity: seren_sum / n as f64,
        score: score_sum / n as f64,
        n_judged: n,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_core::ScoredItem;
    use longtail_data::SyntheticConfig;

    /// Recommends a fixed item to everyone.
    struct Constant {
        item: u32,
        n_items: usize,
        empty: Vec<u32>,
    }

    impl Recommender for Constant {
        fn name(&self) -> &'static str {
            "const"
        }

        fn score_into(
            &self,
            _user: u32,
            _ctx: &mut longtail_core::ScoringContext,
            out: &mut Vec<f64>,
        ) {
            out.clear();
            out.extend((0..self.n_items as u32).map(|i| if i == self.item { 1.0 } else { 0.0 }));
        }

        fn rated_items(&self, _user: u32) -> &[u32] {
            &self.empty
        }

        fn n_items(&self) -> usize {
            self.n_items
        }

        fn recommend(&self, _user: u32, _k: usize) -> Vec<ScoredItem> {
            vec![ScoredItem {
                item: self.item,
                score: 1.0,
            }]
        }
    }

    fn data() -> SyntheticData {
        SyntheticData::generate(&SyntheticConfig {
            n_users: 120,
            n_items: 100,
            ..SyntheticConfig::movielens_like()
        })
    }

    #[test]
    fn popular_items_score_low_novelty() {
        let d = data();
        let pops = d.dataset.item_popularity();
        let most_popular = (0..pops.len()).max_by_key(|&i| pops[i]).unwrap() as u32;
        let least_popular = (0..pops.len())
            .filter(|&i| pops[i] > 0)
            .min_by_key(|&i| pops[i])
            .unwrap() as u32;
        let config = StudyConfig {
            n_judges: 30,
            ..StudyConfig::default()
        };
        let popular = simulate_study(
            &Constant {
                item: most_popular,
                n_items: 100,
                empty: vec![],
            },
            &d,
            &config,
        );
        let niche = simulate_study(
            &Constant {
                item: least_popular,
                n_items: 100,
                empty: vec![],
            },
            &d,
            &config,
        );
        assert!(
            niche.novelty > popular.novelty,
            "niche novelty {} should beat popular {}",
            niche.novelty,
            popular.novelty
        );
    }

    #[test]
    fn judgments_are_in_range() {
        let d = data();
        let r = simulate_study(
            &Constant {
                item: 0,
                n_items: 100,
                empty: vec![],
            },
            &d,
            &StudyConfig::default(),
        );
        assert!((1.0..=5.0).contains(&r.preference));
        assert!((0.0..=1.0).contains(&r.novelty));
        assert!((1.0..=5.0).contains(&r.serendipity));
        assert!((1.0..=5.0).contains(&r.score));
        assert!(r.n_judged > 0);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = data();
        let rec = Constant {
            item: 3,
            n_items: 100,
            empty: vec![],
        };
        let a = simulate_study(&rec, &d, &StudyConfig::default());
        let b = simulate_study(&rec, &d, &StudyConfig::default());
        assert_eq!(a, b);
    }
}
