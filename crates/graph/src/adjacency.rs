//! Flat symmetric adjacency view used by the random-walk machinery.
//!
//! [`crate::bipartite::BipartiteGraph`] keeps the two CSR blocks separately;
//! the Markov-chain code (stationary distributions, absorbing walks,
//! PageRank) wants one homogeneous node space. `Adjacency` is that view: a
//! symmetric `n x n` CSR plus cached weighted degrees.

use crate::bipartite::BipartiteGraph;
use crate::csr::CsrMatrix;

/// Symmetric weighted adjacency over a flat node id space.
#[derive(Debug, Clone)]
pub struct Adjacency {
    csr: CsrMatrix,
    degree: Vec<f64>,
}

impl Adjacency {
    /// Build from a symmetric CSR matrix.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square. Symmetry is the caller's
    /// responsibility (checked in debug builds).
    pub fn from_symmetric_csr(csr: CsrMatrix) -> Self {
        assert_eq!(csr.rows(), csr.cols(), "adjacency must be square");
        // A CSR matrix with strictly increasing columns per row is in
        // canonical form, so it is symmetric iff it equals its transpose.
        // One O(m + n) counting-sort transpose replaces the previous
        // per-edge `csr.get` probes, keeping debug-build construction
        // linear on large graphs.
        debug_assert!(csr.transpose() == csr, "adjacency matrix is not symmetric");
        let degree = (0..csr.rows()).map(|r| csr.row_sum(r)).collect();
        Self { csr, degree }
    }

    /// Materialize the full `[[0, W], [Wᵀ, 0]]` adjacency of a bipartite
    /// graph: users first, items shifted by `n_users`.
    pub fn from_bipartite(g: &BipartiteGraph) -> Self {
        let n_users = g.n_users();
        let n = g.n_nodes();
        let nnz = 2 * g.n_edges();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_ptr.push(0);
        for u in 0..n_users {
            for (i, w) in g.user_items().iter_row(u) {
                col_idx.push((i as usize + n_users) as u32);
                values.push(w);
            }
            row_ptr.push(col_idx.len());
        }
        for i in 0..g.n_items() {
            for (u, w) in g.item_users().iter_row(i) {
                col_idx.push(u);
                values.push(w);
            }
            row_ptr.push(col_idx.len());
        }
        let csr = CsrMatrix::from_raw(n, n, row_ptr, col_idx, values);
        let degree = (0..n).map(|r| csr.row_sum(r)).collect();
        Self { csr, degree }
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.csr.rows()
    }

    /// Number of stored directed arcs (twice the undirected edge count).
    #[inline]
    pub fn n_arcs(&self) -> usize {
        self.csr.nnz()
    }

    /// Weighted degree of `node`.
    #[inline]
    pub fn degree(&self, node: usize) -> f64 {
        self.degree[node]
    }

    /// Weighted degrees of all nodes.
    #[inline]
    pub fn degrees(&self) -> &[f64] {
        &self.degree
    }

    /// Neighbors of `node` with edge weights.
    #[inline]
    pub fn neighbors(&self, node: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        self.csr.iter_row(node)
    }

    /// Number of neighbors of `node`.
    #[inline]
    pub fn n_neighbors(&self, node: usize) -> usize {
        self.csr.row_nnz(node)
    }

    /// The underlying symmetric CSR.
    #[inline]
    pub fn csr(&self) -> &CsrMatrix {
        &self.csr
    }

    /// Stationary probabilities `π_i = d_i / Σ d_j` (Eq. 2); all zeros for an
    /// empty graph.
    pub fn stationary_distribution(&self) -> Vec<f64> {
        let total: f64 = self.degree.iter().sum();
        if total == 0.0 {
            return vec![0.0; self.n_nodes()];
        }
        self.degree.iter().map(|&d| d / total).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_bipartite() -> BipartiteGraph {
        BipartiteGraph::from_ratings(2, 3, &[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0), (1, 2, 4.0)])
    }

    #[test]
    fn bipartite_flattening_is_symmetric() {
        let adj = Adjacency::from_bipartite(&tiny_bipartite());
        assert_eq!(adj.n_nodes(), 5);
        assert_eq!(adj.n_arcs(), 8);
        for n in 0..adj.n_nodes() {
            for (m, w) in adj.neighbors(n) {
                assert_eq!(adj.csr().get(m as usize, n as u32), Some(w));
            }
        }
    }

    #[test]
    fn degrees_match_bipartite() {
        let g = tiny_bipartite();
        let adj = Adjacency::from_bipartite(&g);
        for n in 0..g.n_nodes() {
            assert_eq!(adj.degree(n), g.degree(n));
        }
    }

    #[test]
    fn stationary_matches_bipartite() {
        let g = tiny_bipartite();
        let adj = Adjacency::from_bipartite(&g);
        assert_eq!(adj.stationary_distribution(), g.stationary_distribution());
    }

    #[test]
    #[should_panic(expected = "square")]
    fn non_square_rejected() {
        Adjacency::from_symmetric_csr(CsrMatrix::zeros(2, 3));
    }
}
