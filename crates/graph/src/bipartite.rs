//! The weighted undirected user-item bipartite graph of §3.1.
//!
//! Users and items are the two node classes; a `has rated` relation is an
//! undirected edge whose weight is the rating value. Nodes are addressed in a
//! single flat id space so that random-walk code can treat the graph
//! uniformly: users occupy ids `0..n_users`, items occupy
//! `n_users..n_users + n_items`.

use crate::csr::CsrMatrix;
use crate::view::GraphView;

/// A node of the bipartite graph, decoded from its flat id.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Node {
    /// A user node carrying the user index.
    User(u32),
    /// An item node carrying the item index.
    Item(u32),
}

/// Weighted undirected user-item graph (§3.1 of the paper).
///
/// Stores the user→item adjacency block and its transpose so both
/// neighborhood directions are O(degree). The full adjacency matrix is the
/// symmetric block matrix `[[0, W], [Wᵀ, 0]]` and is never materialized.
#[derive(Debug, Clone)]
pub struct BipartiteGraph {
    user_items: CsrMatrix,
    item_users: CsrMatrix,
    user_degree: Vec<f64>,
    item_degree: Vec<f64>,
    total_weight: f64,
    /// Per-edge timestamps mirroring `user_items` / `item_users` (same
    /// sparsity structure), when the source data carries them. Timestamps
    /// never influence walk *structure* — only the optional recency-decay
    /// weighting ([`crate::Decayed`]) and temporal splits read them.
    user_item_times: Option<CsrMatrix>,
    item_user_times: Option<CsrMatrix>,
}

impl BipartiteGraph {
    /// Build from the user→item weight block (`n_users x n_items`).
    pub fn from_user_item_matrix(user_items: CsrMatrix) -> Self {
        Self::from_user_item_matrix_with_times(user_items, None)
    }

    /// Build from the weight block plus an optional per-edge timestamp
    /// matrix with the **same sparsity structure** (same rated pairs).
    ///
    /// # Panics
    ///
    /// Panics if the timestamp matrix's structure differs from the weights'.
    pub fn from_user_item_matrix_with_times(
        user_items: CsrMatrix,
        times: Option<CsrMatrix>,
    ) -> Self {
        if let Some(t) = &times {
            assert!(
                t.same_structure(&user_items),
                "timestamp matrix structure differs from the rating matrix"
            );
        }
        let item_users = user_items.transpose();
        // Transposition order is structure-determined, so the transposed
        // timestamps stay aligned entry-for-entry with `item_users`.
        let item_user_times = times.as_ref().map(CsrMatrix::transpose);
        let user_degree: Vec<f64> = (0..user_items.rows())
            .map(|u| user_items.row_sum(u))
            .collect();
        let item_degree: Vec<f64> = (0..item_users.rows())
            .map(|i| item_users.row_sum(i))
            .collect();
        let total_weight = user_degree.iter().sum();
        Self {
            user_items,
            item_users,
            user_degree,
            item_degree,
            total_weight,
            user_item_times: times,
            item_user_times,
        }
    }

    /// Build from `(user, item, rating)` triplets.
    pub fn from_ratings(n_users: usize, n_items: usize, ratings: &[(u32, u32, f64)]) -> Self {
        Self::from_user_item_matrix(CsrMatrix::from_triplets(n_users, n_items, ratings))
    }

    /// Number of user nodes.
    #[inline]
    pub fn n_users(&self) -> usize {
        self.user_items.rows()
    }

    /// Number of item nodes.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.user_items.cols()
    }

    /// Total number of nodes (users + items).
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n_users() + self.n_items()
    }

    /// Number of undirected edges (rated pairs).
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.user_items.nnz()
    }

    /// Sum of all edge weights, each edge counted once.
    #[inline]
    pub fn total_weight(&self) -> f64 {
        self.total_weight
    }

    /// The user→item weight block.
    #[inline]
    pub fn user_items(&self) -> &CsrMatrix {
        &self.user_items
    }

    /// The item→user weight block.
    #[inline]
    pub fn item_users(&self) -> &CsrMatrix {
        &self.item_users
    }

    /// Per-edge timestamps aligned with [`BipartiteGraph::user_items`], if
    /// the source data carried them.
    #[inline]
    pub fn user_item_times(&self) -> Option<&CsrMatrix> {
        self.user_item_times.as_ref()
    }

    /// Per-edge timestamps aligned with [`BipartiteGraph::item_users`].
    #[inline]
    pub fn item_user_times(&self) -> Option<&CsrMatrix> {
        self.item_user_times.as_ref()
    }

    /// Flat node id of user `u`.
    #[inline]
    pub fn user_node(&self, u: u32) -> usize {
        debug_assert!((u as usize) < self.n_users());
        u as usize
    }

    /// Flat node id of item `i`.
    #[inline]
    pub fn item_node(&self, i: u32) -> usize {
        debug_assert!((i as usize) < self.n_items());
        self.n_users() + i as usize
    }

    /// Decode a flat node id.
    ///
    /// # Panics
    ///
    /// Panics if `node >= n_nodes()`.
    #[inline]
    pub fn node(&self, node: usize) -> Node {
        if node < self.n_users() {
            Node::User(node as u32)
        } else {
            assert!(node < self.n_nodes(), "node id {node} out of range");
            Node::Item((node - self.n_users()) as u32)
        }
    }

    /// Whether the flat id addresses an item node.
    #[inline]
    pub fn is_item_node(&self, node: usize) -> bool {
        node >= self.n_users() && node < self.n_nodes()
    }

    /// Weighted degree `d_i = Σ_j a(i, j)` of a flat node id (Eq. 1).
    #[inline]
    pub fn degree(&self, node: usize) -> f64 {
        match self.node(node) {
            Node::User(u) => self.user_degree[u as usize],
            Node::Item(i) => self.item_degree[i as usize],
        }
    }

    /// Weighted degrees of all nodes in flat order.
    pub fn degrees(&self) -> Vec<f64> {
        let mut d = Vec::with_capacity(self.n_nodes());
        d.extend_from_slice(&self.user_degree);
        d.extend_from_slice(&self.item_degree);
        d
    }

    /// Number of distinct raters of item `i` — the paper's *popularity*
    /// measure ("frequency of rating", §5.1.3).
    #[inline]
    pub fn item_popularity(&self, i: u32) -> usize {
        self.item_users.row_nnz(i as usize)
    }

    /// Number of items rated by user `u`.
    #[inline]
    pub fn user_activity(&self, u: u32) -> usize {
        self.user_items.row_nnz(u as usize)
    }

    /// Edge weight between user `u` and item `i`, if the edge exists.
    #[inline]
    pub fn rating(&self, u: u32, i: u32) -> Option<f64> {
        self.user_items.get(u as usize, i)
    }

    /// Neighbors of a flat node id with edge weights, as flat ids.
    pub fn neighbors(&self, node: usize) -> impl Iterator<Item = (usize, f64)> + '_ {
        let n_users = self.n_users();
        let (cols, vals): (&[u32], &[f64]) = match self.node(node) {
            Node::User(u) => self.user_items.row(u as usize),
            Node::Item(i) => self.item_users.row(i as usize),
        };
        let shift = if node < n_users { n_users } else { 0 };
        cols.iter()
            .zip(vals.iter())
            .map(move |(&c, &v)| (c as usize + shift, v))
    }

    /// Stationary probability of every node under the natural random walk:
    /// `π_i = d_i / Σ_j d_j` (Eq. 2). Zero-degree nodes get probability 0.
    pub fn stationary_distribution(&self) -> Vec<f64> {
        let total: f64 = 2.0 * self.total_weight;
        if total == 0.0 {
            return vec![0.0; self.n_nodes()];
        }
        self.degrees().iter().map(|&d| d / total).collect()
    }
}

impl GraphView for BipartiteGraph {
    #[inline]
    fn n_users(&self) -> usize {
        BipartiteGraph::n_users(self)
    }

    #[inline]
    fn n_items(&self) -> usize {
        BipartiteGraph::n_items(self)
    }

    #[inline]
    fn for_each_edge(&self, node: usize, mut f: impl FnMut(usize, f64)) {
        let n_users = BipartiteGraph::n_users(self);
        let ((cols, weights), shift) = if node < n_users {
            (self.user_items.row(node), n_users)
        } else {
            (self.item_users.row(node - n_users), 0)
        };
        for (&c, &w) in cols.iter().zip(weights) {
            f(c as usize + shift, w);
        }
    }

    fn for_each_edge_timed(&self, node: usize, mut f: impl FnMut(usize, f64, f64)) {
        let n_users = BipartiteGraph::n_users(self);
        let ((cols, weights), times, shift) = if node < n_users {
            (
                self.user_items.row(node),
                self.user_item_times.as_ref().map(|t| t.row(node).1),
                n_users,
            )
        } else {
            (
                self.item_users.row(node - n_users),
                self.item_user_times
                    .as_ref()
                    .map(|t| t.row(node - n_users).1),
                0,
            )
        };
        for (k, (&c, &w)) in cols.iter().zip(weights).enumerate() {
            f(c as usize + shift, w, times.map_or(0.0, |t| t[k]));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Figure 2 example graph from the paper: 5 users, 6 movies.
    pub(crate) fn figure2_graph() -> BipartiteGraph {
        let ratings = [
            (0, 0, 5.0),
            (0, 1, 3.0),
            (0, 4, 3.0),
            (0, 5, 5.0),
            (1, 0, 5.0),
            (1, 1, 4.0),
            (1, 2, 5.0),
            (1, 4, 4.0),
            (1, 5, 5.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
            (2, 2, 4.0),
            (3, 2, 5.0),
            (3, 3, 5.0),
            (4, 1, 4.0),
            (4, 2, 5.0),
        ];
        BipartiteGraph::from_ratings(5, 6, &ratings)
    }

    #[test]
    fn shape_and_counts() {
        let g = figure2_graph();
        assert_eq!(g.n_users(), 5);
        assert_eq!(g.n_items(), 6);
        assert_eq!(g.n_nodes(), 11);
        assert_eq!(g.n_edges(), 16);
    }

    #[test]
    fn node_id_round_trip() {
        let g = figure2_graph();
        assert_eq!(g.node(g.user_node(3)), Node::User(3));
        assert_eq!(g.node(g.item_node(5)), Node::Item(5));
        assert!(g.is_item_node(g.item_node(0)));
        assert!(!g.is_item_node(g.user_node(0)));
    }

    #[test]
    fn degrees_are_weighted() {
        let g = figure2_graph();
        // U1 rated M1=5, M2=3, M5=3, M6=5.
        assert_eq!(g.degree(g.user_node(0)), 16.0);
        // M4 rated only by U4 with 5 stars.
        assert_eq!(g.degree(g.item_node(3)), 5.0);
    }

    #[test]
    fn popularity_counts_raters() {
        let g = figure2_graph();
        assert_eq!(g.item_popularity(0), 3); // M1: U1, U2, U3
        assert_eq!(g.item_popularity(3), 1); // M4: U4 only
        assert_eq!(g.user_activity(1), 5); // U2 rated five movies
    }

    #[test]
    fn neighbors_cross_partition() {
        let g = figure2_graph();
        let nbrs: Vec<_> = g.neighbors(g.item_node(3)).collect();
        assert_eq!(nbrs, vec![(g.user_node(3), 5.0)]);
        let nbrs: Vec<_> = g.neighbors(g.user_node(4)).collect();
        assert_eq!(nbrs, vec![(g.item_node(1), 4.0), (g.item_node(2), 5.0)]);
    }

    #[test]
    fn stationary_distribution_sums_to_one_and_tracks_degree() {
        let g = figure2_graph();
        let pi = g.stationary_distribution();
        let sum: f64 = pi.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // π proportional to degree (Eq. 2).
        let d = g.degrees();
        for n in 0..g.n_nodes() {
            assert!((pi[n] - d[n] / (2.0 * g.total_weight())).abs() < 1e-12);
        }
    }

    #[test]
    fn rating_lookup() {
        let g = figure2_graph();
        assert_eq!(g.rating(0, 0), Some(5.0));
        assert_eq!(g.rating(0, 3), None);
    }

    #[test]
    fn empty_graph_stationary_is_zero() {
        let g = BipartiteGraph::from_ratings(2, 2, &[]);
        assert_eq!(g.stationary_distribution(), vec![0.0; 4]);
    }
}
