//! Compressed sparse row (CSR) matrix.
//!
//! The rating matrix of a recommendation dataset is extremely sparse
//! (MovieLens-1M is 4.26 % dense, the paper's Douban crawl 0.039 %), so every
//! structure in this workspace that touches ratings is built on this CSR
//! type: `row_ptr` delimits each row's slice inside the parallel `col_idx` /
//! `values` arrays, giving O(1) row access and cache-friendly row iteration.

/// A sparse `rows x cols` matrix of `f64` values in compressed sparse row
/// format.
///
/// Invariants (upheld by all constructors, checked by `debug_assert`s and the
/// property tests):
///
/// * `row_ptr.len() == rows + 1`, `row_ptr[0] == 0`,
///   `row_ptr[rows] == col_idx.len() == values.len()`;
/// * `row_ptr` is non-decreasing;
/// * within each row, column indices are strictly increasing (no duplicate
///   entries) and `< cols`.
#[derive(Debug, Clone, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<u32>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// An empty matrix with the given shape and no stored entries.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            row_ptr: vec![0; rows + 1],
            col_idx: Vec::new(),
            values: Vec::new(),
        }
    }

    /// Build from `(row, col, value)` triplets.
    ///
    /// Triplets may arrive in any order; duplicates are summed, which makes
    /// this constructor convenient for accumulating multi-edges. Entries with
    /// value exactly `0.0` after summing are kept (callers that want pruning
    /// can use [`CsrMatrix::prune_zeros`]).
    ///
    /// # Panics
    ///
    /// Panics if any triplet lies outside `rows x cols`.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(u32, u32, f64)]) -> Self {
        Self::from_triplets_with(rows, cols, triplets, |a, b| a + b)
    }

    /// Build from `(row, col, value)` triplets with a caller-chosen duplicate
    /// merge. [`CsrMatrix::from_triplets`] is this with `+`; timestamp
    /// matrices use `f64::max` so a re-rated pair keeps its latest stamp.
    ///
    /// # Panics
    ///
    /// Panics if any triplet lies outside `rows x cols`.
    pub fn from_triplets_with(
        rows: usize,
        cols: usize,
        triplets: &[(u32, u32, f64)],
        merge: impl Fn(f64, f64) -> f64,
    ) -> Self {
        for &(r, c, _) in triplets {
            assert!(
                (r as usize) < rows && (c as usize) < cols,
                "triplet ({r}, {c}) outside {rows}x{cols} matrix"
            );
        }
        // Counting sort by row, then sort each row slice by column and merge
        // duplicates. Two passes over the triplets keeps this O(nnz log nnz)
        // with the log only on per-row slices.
        let mut counts = vec![0usize; rows + 1];
        for &(r, _, _) in triplets {
            counts[r as usize + 1] += 1;
        }
        for i in 0..rows {
            counts[i + 1] += counts[i];
        }
        let mut entries: Vec<(u32, f64)> = vec![(0, 0.0); triplets.len()];
        let mut cursor = counts.clone();
        for &(r, c, v) in triplets {
            let slot = cursor[r as usize];
            entries[slot] = (c, v);
            cursor[r as usize] += 1;
        }

        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::with_capacity(triplets.len());
        let mut values = Vec::with_capacity(triplets.len());
        row_ptr.push(0);
        for r in 0..rows {
            let slice = &mut entries[counts[r]..counts[r + 1]];
            slice.sort_unstable_by_key(|&(c, _)| c);
            let mut iter = slice.iter().copied().peekable();
            while let Some((c, mut v)) = iter.next() {
                while let Some(&(c2, v2)) = iter.peek() {
                    if c2 == c {
                        v = merge(v, v2);
                        iter.next();
                    } else {
                        break;
                    }
                }
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Build directly from raw CSR arrays.
    ///
    /// # Panics
    ///
    /// Panics if the arrays violate the CSR invariants documented on the
    /// type.
    pub fn from_raw(
        rows: usize,
        cols: usize,
        row_ptr: Vec<usize>,
        col_idx: Vec<u32>,
        values: Vec<f64>,
    ) -> Self {
        assert_eq!(row_ptr.len(), rows + 1, "row_ptr length mismatch");
        assert_eq!(row_ptr[0], 0, "row_ptr must start at 0");
        assert_eq!(
            *row_ptr.last().unwrap(),
            col_idx.len(),
            "row_ptr end mismatch"
        );
        assert_eq!(col_idx.len(), values.len(), "col/value length mismatch");
        for r in 0..rows {
            assert!(
                row_ptr[r] <= row_ptr[r + 1],
                "row_ptr must be non-decreasing"
            );
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            for w in row.windows(2) {
                assert!(
                    w[0] < w[1],
                    "columns must be strictly increasing in row {r}"
                );
            }
            if let Some(&last) = row.last() {
                assert!(
                    (last as usize) < cols,
                    "column index out of bounds in row {r}"
                );
            }
        }
        Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Column indices and values of row `r` as parallel slices.
    #[inline]
    pub fn row(&self, r: usize) -> (&[u32], &[f64]) {
        let span = self.row_ptr[r]..self.row_ptr[r + 1];
        (&self.col_idx[span.clone()], &self.values[span])
    }

    /// Iterate over the `(col, value)` entries of row `r`.
    #[inline]
    pub fn iter_row(&self, r: usize) -> impl Iterator<Item = (u32, f64)> + '_ {
        let (cols, vals) = self.row(r);
        cols.iter().copied().zip(vals.iter().copied())
    }

    /// Number of stored entries in row `r`.
    #[inline]
    pub fn row_nnz(&self, r: usize) -> usize {
        self.row_ptr[r + 1] - self.row_ptr[r]
    }

    /// Value at `(r, c)` if stored (binary search within the row).
    pub fn get(&self, r: usize, c: u32) -> Option<f64> {
        let (cols, vals) = self.row(r);
        cols.binary_search(&c).ok().map(|i| vals[i])
    }

    /// Sum of the stored values in row `r` (the *weighted degree* when the
    /// matrix is an adjacency block).
    pub fn row_sum(&self, r: usize) -> f64 {
        let (_, vals) = self.row(r);
        vals.iter().sum()
    }

    /// Sum of every stored value.
    pub fn total_sum(&self) -> f64 {
        self.values.iter().sum()
    }

    /// Whether `other` stores exactly the same `(row, col)` pairs — same
    /// shape, same `row_ptr`, same `col_idx` — regardless of values. Two
    /// same-structure matrices index entry-for-entry into each other, which
    /// is the alignment contract between a rating matrix and its optional
    /// timestamp matrix.
    pub fn same_structure(&self, other: &CsrMatrix) -> bool {
        self.rows == other.rows
            && self.cols == other.cols
            && self.row_ptr == other.row_ptr
            && self.col_idx == other.col_idx
    }

    /// The transpose as a new CSR matrix. O(nnz + rows + cols).
    pub fn transpose(&self) -> CsrMatrix {
        let mut counts = vec![0usize; self.cols + 1];
        for &c in &self.col_idx {
            counts[c as usize + 1] += 1;
        }
        for i in 0..self.cols {
            counts[i + 1] += counts[i];
        }
        let row_ptr = counts.clone();
        let mut col_idx = vec![0u32; self.nnz()];
        let mut values = vec![0.0f64; self.nnz()];
        let mut cursor = counts;
        for r in 0..self.rows {
            for (c, v) in self.iter_row(r) {
                let slot = cursor[c as usize];
                col_idx[slot] = r as u32;
                values[slot] = v;
                cursor[c as usize] += 1;
            }
        }
        CsrMatrix {
            rows: self.cols,
            cols: self.rows,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Drop entries whose value is exactly zero.
    pub fn prune_zeros(&self) -> CsrMatrix {
        let mut row_ptr = Vec::with_capacity(self.rows + 1);
        let mut col_idx = Vec::with_capacity(self.nnz());
        let mut values = Vec::with_capacity(self.nnz());
        row_ptr.push(0);
        for r in 0..self.rows {
            for (c, v) in self.iter_row(r) {
                if v != 0.0 {
                    col_idx.push(c);
                    values.push(v);
                }
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows: self.rows,
            cols: self.cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Dense matrix-vector product `y = A x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec input length");
        assert_eq!(y.len(), self.rows, "matvec output length");
        for (r, out) in y.iter_mut().enumerate() {
            let mut acc = 0.0;
            for (c, v) in self.iter_row(r) {
                acc += v * x[c as usize];
            }
            *out = acc;
        }
    }

    /// Dense transposed matrix-vector product `y = Aᵀ x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != rows` or `y.len() != cols`.
    pub fn matvec_t(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.rows, "matvec_t input length");
        assert_eq!(y.len(), self.cols, "matvec_t output length");
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            for (c, v) in self.iter_row(r) {
                y[c as usize] += v * xr;
            }
        }
    }

    /// Materialize as a dense row-major buffer (tests / tiny matrices only).
    pub fn to_dense(&self) -> Vec<f64> {
        let mut out = vec![0.0; self.rows * self.cols];
        for r in 0..self.rows {
            for (c, v) in self.iter_row(r) {
                out[r * self.cols + c as usize] = v;
            }
        }
        out
    }

    /// Serialize this matrix into a snapshot under `prefix`: sections
    /// `{prefix}.dims` (`[rows, cols]` as `u64`), `{prefix}.row_ptr`
    /// (`u64`), `{prefix}.col_idx` (`u32`) and `{prefix}.values` (`f64`).
    pub fn save_into(&self, w: &mut crate::snapshot::SnapshotWriter, prefix: &str) {
        w.put_u64s(
            &format!("{prefix}.dims"),
            &[self.rows as u64, self.cols as u64],
        );
        let row_ptr: Vec<u64> = self.row_ptr.iter().map(|&p| p as u64).collect();
        w.put_u64s(&format!("{prefix}.row_ptr"), &row_ptr);
        w.put_u32s(&format!("{prefix}.col_idx"), &self.col_idx);
        w.put_f64s(&format!("{prefix}.values"), &self.values);
    }

    /// Deserialize a matrix written by [`CsrMatrix::save_into`] under the
    /// same `prefix`, validating every CSR invariant fallibly: a snapshot
    /// whose arrays are well-formed bytes but violate the structure (bad
    /// `row_ptr` monotonicity, out-of-range or unsorted columns, length
    /// mismatches) fails with
    /// [`SnapshotError::InvalidSection`](crate::snapshot::SnapshotError::InvalidSection)
    /// rather than panicking.
    pub fn load_from(
        snap: &crate::snapshot::Snapshot,
        prefix: &str,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let invalid =
            |section: String, reason: String| SnapshotError::InvalidSection { section, reason };
        let dims_name = format!("{prefix}.dims");
        let dims = snap.usizes(&dims_name)?;
        let [rows, cols] = dims[..] else {
            return Err(invalid(
                dims_name,
                format!("expected [rows, cols], found {} element(s)", dims.len()),
            ));
        };
        let ptr_name = format!("{prefix}.row_ptr");
        let row_ptr = snap.usizes(&ptr_name)?;
        let col_idx = snap.u32s(&format!("{prefix}.col_idx"))?;
        let values = snap.f64s(&format!("{prefix}.values"))?;

        if row_ptr.len() != rows + 1 {
            return Err(invalid(
                ptr_name,
                format!("length {} != rows + 1 = {}", row_ptr.len(), rows + 1),
            ));
        }
        if row_ptr[0] != 0 {
            return Err(invalid(ptr_name, "row_ptr must start at 0".to_string()));
        }
        if row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(invalid(
                ptr_name,
                "row_ptr must be non-decreasing".to_string(),
            ));
        }
        let nnz = *row_ptr.last().unwrap();
        if col_idx.len() != nnz || values.len() != nnz {
            return Err(invalid(
                format!("{prefix}.col_idx"),
                format!(
                    "row_ptr promises {nnz} entries, found {} columns / {} values",
                    col_idx.len(),
                    values.len()
                ),
            ));
        }
        for r in 0..rows {
            let row = &col_idx[row_ptr[r]..row_ptr[r + 1]];
            if row.windows(2).any(|w| w[0] >= w[1]) {
                return Err(invalid(
                    format!("{prefix}.col_idx"),
                    format!("columns must be strictly increasing in row {r}"),
                ));
            }
            if let Some(&last) = row.last() {
                if last as usize >= cols {
                    return Err(invalid(
                        format!("{prefix}.col_idx"),
                        format!("column {last} out of bounds in row {r} ({cols} columns)"),
                    ));
                }
            }
        }
        // Every invariant from_raw asserts was just checked fallibly, so
        // this construction cannot panic.
        Ok(Self {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CsrMatrix {
        CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 1, 2.0),
                (0, 3, 1.0),
                (1, 0, 5.0),
                (2, 2, 3.0),
                (2, 0, 4.0),
            ],
        )
    }

    #[test]
    fn from_triplets_sorts_rows_and_columns() {
        let m = sample();
        assert_eq!(m.rows(), 3);
        assert_eq!(m.cols(), 4);
        assert_eq!(m.nnz(), 5);
        assert_eq!(m.row(0), (&[1u32, 3][..], &[2.0, 1.0][..]));
        assert_eq!(m.row(2), (&[0u32, 2][..], &[4.0, 3.0][..]));
    }

    #[test]
    fn duplicate_triplets_are_summed() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 0, 2.5), (1, 1, 1.0)]);
        assert_eq!(m.get(0, 0), Some(3.5));
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn from_triplets_with_max_merge_keeps_latest() {
        let m = CsrMatrix::from_triplets_with(
            2,
            2,
            &[(0, 0, 3.0), (0, 0, 7.0), (0, 0, 5.0), (1, 1, 1.0)],
            f64::max,
        );
        assert_eq!(m.get(0, 0), Some(7.0));
        assert_eq!(m.nnz(), 2);
    }

    #[test]
    fn same_structure_ignores_values() {
        let a = CsrMatrix::from_triplets(2, 3, &[(0, 1, 2.0), (1, 0, 5.0)]);
        let b = CsrMatrix::from_triplets(2, 3, &[(0, 1, 9.0), (1, 0, -1.0)]);
        let c = CsrMatrix::from_triplets(2, 3, &[(0, 1, 2.0), (1, 2, 5.0)]);
        assert!(a.same_structure(&b));
        assert!(!a.same_structure(&c));
        assert!(!a.same_structure(&CsrMatrix::zeros(2, 3)));
    }

    #[test]
    fn get_returns_none_for_missing() {
        let m = sample();
        assert_eq!(m.get(0, 0), None);
        assert_eq!(m.get(1, 0), Some(5.0));
    }

    #[test]
    fn row_sums_and_total() {
        let m = sample();
        assert_eq!(m.row_sum(0), 3.0);
        assert_eq!(m.row_sum(1), 5.0);
        assert_eq!(m.total_sum(), 15.0);
    }

    #[test]
    fn transpose_round_trip() {
        let m = sample();
        let t = m.transpose();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.cols(), 3);
        assert_eq!(t.get(1, 0), Some(2.0));
        assert_eq!(t.get(0, 1), Some(5.0));
        assert_eq!(t.transpose(), m);
    }

    #[test]
    fn matvec_matches_dense() {
        let m = sample();
        let x = [1.0, 2.0, 3.0, 4.0];
        let mut y = [0.0; 3];
        m.matvec(&x, &mut y);
        assert_eq!(y, [2.0 * 2.0 + 4.0, 5.0, 4.0 + 9.0]);
    }

    #[test]
    fn matvec_t_matches_transpose_matvec() {
        let m = sample();
        let x = [1.0, 2.0, 3.0];
        let mut y1 = [0.0; 4];
        m.matvec_t(&x, &mut y1);
        let mut y2 = [0.0; 4];
        m.transpose().matvec(&x, &mut y2);
        assert_eq!(y1, y2);
    }

    #[test]
    fn empty_matrix_behaves() {
        let m = CsrMatrix::zeros(2, 3);
        assert_eq!(m.nnz(), 0);
        assert_eq!(m.row(1), (&[][..], &[][..]));
        let mut y = [1.0, 1.0];
        m.matvec(&[0.0; 3], &mut y);
        assert_eq!(y, [0.0, 0.0]);
    }

    #[test]
    fn prune_zeros_removes_entries() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0), (0, 1, -1.0), (0, 1, 1.0)]);
        assert_eq!(m.nnz(), 2);
        let p = m.prune_zeros();
        assert_eq!(p.nnz(), 1);
        assert_eq!(p.get(0, 1), None);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_bounds_triplet_panics() {
        CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn to_dense_layout() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 1, 7.0), (1, 0, 8.0)]);
        assert_eq!(m.to_dense(), vec![0.0, 7.0, 8.0, 0.0]);
    }

    #[test]
    fn snapshot_round_trip_is_exact() {
        use crate::snapshot::{Snapshot, SnapshotWriter};
        let m = sample();
        let mut w = SnapshotWriter::new("CSR", 1);
        m.save_into(&mut w, "m");
        let snap = Snapshot::from_bytes(w.to_bytes()).unwrap();
        let back = CsrMatrix::load_from(&snap, "m").unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn snapshot_load_rejects_invariant_violations_fallibly() {
        use crate::snapshot::{Snapshot, SnapshotError, SnapshotWriter};
        let m = sample();
        // Well-formed container, structurally invalid CSR: row_ptr that
        // does not end at nnz.
        let mut w = SnapshotWriter::new("CSR", 1);
        w.put_u64s("m.dims", &[m.rows() as u64, m.cols() as u64]);
        w.put_u64s("m.row_ptr", &[0, 2, 3, 99]);
        w.put_u32s("m.col_idx", &m.col_idx);
        w.put_f64s("m.values", &m.values);
        let snap = Snapshot::from_bytes(w.to_bytes()).unwrap();
        assert!(matches!(
            CsrMatrix::load_from(&snap, "m"),
            Err(SnapshotError::InvalidSection { .. })
        ));
        // Missing section is its own typed error.
        let mut w = SnapshotWriter::new("CSR", 1);
        w.put_u64s("m.dims", &[3, 4]);
        let snap = Snapshot::from_bytes(w.to_bytes()).unwrap();
        assert!(matches!(
            CsrMatrix::load_from(&snap, "m"),
            Err(SnapshotError::MissingSection(_))
        ));
        // Out-of-range column.
        let mut w = SnapshotWriter::new("CSR", 1);
        w.put_u64s("m.dims", &[1, 2]);
        w.put_u64s("m.row_ptr", &[0, 1]);
        w.put_u32s("m.col_idx", &[5]);
        w.put_f64s("m.values", &[1.0]);
        let snap = Snapshot::from_bytes(w.to_bytes()).unwrap();
        assert!(matches!(
            CsrMatrix::load_from(&snap, "m"),
            Err(SnapshotError::InvalidSection { .. })
        ));
    }
}
