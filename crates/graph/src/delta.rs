//! Streaming rating deltas and the base + delta overlay view.
//!
//! The base [`crate::BipartiteGraph`] is a frozen CSR — appending one edge
//! would mean rebuilding both adjacency blocks. [`EdgeDelta`] holds the
//! streamed `(user, item, weight, timestamp)` appends in a per-row sorted
//! side structure instead, and [`OverlayGraph`] presents base + delta as
//! one merged [`GraphView`]: each row is the sorted merge of the base CSR
//! row and the delta row, duplicate edges summed. Because the walk kernels
//! renormalize rows by their *induced* degree at query time
//! ([`crate::SubgraphScratch::grow`]), touched rows come out row-stochastic
//! automatically — no base state is ever mutated.
//!
//! The merged row visits targets in ascending id order with weights that
//! are exact sums of the contributing ratings — the same order and the same
//! sums [`crate::CsrMatrix::from_triplets`] produces for the union of the
//! ratings. With exactly representable rating values (integer stars),
//! overlay kernels are therefore bit-identical to kernels of a graph
//! rebuilt from scratch, which is what the overlay-equivalence property
//! suite pins.

use crate::bipartite::BipartiteGraph;
use crate::view::GraphView;
use std::collections::HashMap;

/// One delta edge: target id, accumulated weight, latest timestamp.
type DeltaEdge = (u32, f64, f64);

/// An append-only set of rating edges on top of a frozen base graph.
///
/// Rows are kept sorted by target id; re-rating an existing pair sums the
/// weights (the multigraph collapse of §3.1, same as CSR construction) and
/// keeps the latest timestamp. Dimensions grow to admit new users and new
/// items beyond the base graph's.
#[derive(Debug, Clone, Default)]
pub struct EdgeDelta {
    n_users: usize,
    n_items: usize,
    by_user: HashMap<u32, Vec<DeltaEdge>>,
    by_item: HashMap<u32, Vec<DeltaEdge>>,
    n_edges: usize,
}

impl EdgeDelta {
    /// An empty delta sized for a base of `n_users` × `n_items`.
    pub fn new(n_users: usize, n_items: usize) -> Self {
        Self {
            n_users,
            n_items,
            ..Self::default()
        }
    }

    /// User-dimension of the delta (≥ the base's once a new user appends).
    #[inline]
    pub fn n_users(&self) -> usize {
        self.n_users
    }

    /// Item-dimension of the delta.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_items
    }

    /// Number of distinct `(user, item)` delta edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.n_edges
    }

    /// Whether no edges have been appended.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.n_edges == 0
    }

    /// Append one rating edge.
    ///
    /// # Panics
    ///
    /// Panics on a non-positive weight (no interpretation as an edge).
    pub fn insert(&mut self, user: u32, item: u32, weight: f64, timestamp: f64) {
        assert!(weight > 0.0, "delta weights must be positive, got {weight}");
        self.n_users = self.n_users.max(user as usize + 1);
        self.n_items = self.n_items.max(item as usize + 1);
        let fresh = Self::upsert(
            self.by_user.entry(user).or_default(),
            item,
            weight,
            timestamp,
        );
        Self::upsert(
            self.by_item.entry(item).or_default(),
            user,
            weight,
            timestamp,
        );
        if fresh {
            self.n_edges += 1;
        }
    }

    /// Sum `weight` into the row entry for `target` (insert sorted if new);
    /// returns whether the entry is new.
    fn upsert(row: &mut Vec<DeltaEdge>, target: u32, weight: f64, timestamp: f64) -> bool {
        match row.binary_search_by_key(&target, |&(t, _, _)| t) {
            Ok(pos) => {
                row[pos].1 += weight;
                row[pos].2 = row[pos].2.max(timestamp);
                false
            }
            Err(pos) => {
                row.insert(pos, (target, weight, timestamp));
                true
            }
        }
    }

    /// The delta edges of user `u`, sorted by item id (empty if untouched).
    #[inline]
    pub fn user_row(&self, u: u32) -> &[DeltaEdge] {
        self.by_user.get(&u).map_or(&[], Vec::as_slice)
    }

    /// The delta edges of item `i`, sorted by user id (empty if untouched).
    #[inline]
    pub fn item_row(&self, i: u32) -> &[DeltaEdge] {
        self.by_item.get(&i).map_or(&[], Vec::as_slice)
    }

    /// Whether user `u` has any delta edges.
    #[inline]
    pub fn touches_user(&self, u: u32) -> bool {
        self.by_user.contains_key(&u)
    }

    /// Visit every delta edge as `(user, item, weight, timestamp)`, in
    /// ascending `(user, item)` order.
    pub fn for_each(&self, mut f: impl FnMut(u32, u32, f64, f64)) {
        let mut users: Vec<u32> = self.by_user.keys().copied().collect();
        users.sort_unstable();
        for u in users {
            for &(i, w, t) in &self.by_user[&u] {
                f(u, i, w, t);
            }
        }
    }
}

/// Merge a base CSR row (targets + weights + optional times) with a delta
/// row, both sorted ascending, visiting `(flat_id, weight, time)` with
/// duplicate targets summed (times maxed). `shift` lifts the stored target
/// ids into the flat node space.
fn merge_rows(
    base_cols: &[u32],
    base_w: &[f64],
    base_t: Option<&[f64]>,
    delta: &[DeltaEdge],
    shift: usize,
    f: &mut impl FnMut(usize, f64, f64),
) {
    let bt = |k: usize| base_t.map_or(0.0, |t| t[k]);
    let (mut i, mut j) = (0usize, 0usize);
    while i < base_cols.len() && j < delta.len() {
        let (dc, dw, dt) = delta[j];
        match base_cols[i].cmp(&dc) {
            std::cmp::Ordering::Less => {
                f(base_cols[i] as usize + shift, base_w[i], bt(i));
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                f(dc as usize + shift, dw, dt);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                f(dc as usize + shift, base_w[i] + dw, bt(i).max(dt));
                i += 1;
                j += 1;
            }
        }
    }
    for k in i..base_cols.len() {
        f(base_cols[k] as usize + shift, base_w[k], bt(k));
    }
    for &(dc, dw, dt) in &delta[j..] {
        f(dc as usize + shift, dw, dt);
    }
}

/// Base graph + delta edges presented as one merged [`GraphView`].
///
/// Dimensions are the delta's (which are at least the base's), so users and
/// items that only exist in the delta are full-fledged nodes. Walk queries
/// score over this view without any rebuild; compaction later folds the
/// delta into a fresh base.
#[derive(Debug, Clone, Copy)]
pub struct OverlayGraph<'a> {
    base: &'a BipartiteGraph,
    delta: &'a EdgeDelta,
}

impl<'a> OverlayGraph<'a> {
    /// View `base` with `delta` merged in.
    ///
    /// # Panics
    ///
    /// Panics if the delta's dimensions are smaller than the base's (a
    /// delta built for a different graph).
    pub fn new(base: &'a BipartiteGraph, delta: &'a EdgeDelta) -> Self {
        assert!(
            delta.n_users() >= base.n_users() && delta.n_items() >= base.n_items(),
            "delta dimensions {}x{} smaller than base {}x{}",
            delta.n_users(),
            delta.n_items(),
            base.n_users(),
            base.n_items()
        );
        Self { base, delta }
    }

    /// The frozen base graph.
    #[inline]
    pub fn base(&self) -> &'a BipartiteGraph {
        self.base
    }

    /// The delta being overlaid.
    #[inline]
    pub fn delta(&self) -> &'a EdgeDelta {
        self.delta
    }
}

impl GraphView for OverlayGraph<'_> {
    #[inline]
    fn n_users(&self) -> usize {
        self.delta.n_users()
    }

    #[inline]
    fn n_items(&self) -> usize {
        self.delta.n_items()
    }

    #[inline]
    fn for_each_edge(&self, node: usize, mut f: impl FnMut(usize, f64)) {
        self.for_each_edge_timed(node, |nbr, w, _| f(nbr, w));
    }

    fn for_each_edge_timed(&self, node: usize, mut f: impl FnMut(usize, f64, f64)) {
        let n_users = self.n_users();
        if node < n_users {
            let u = node as u32;
            let (cols, w, t) = if node < self.base.n_users() {
                let (cols, w) = self.base.user_items().row(node);
                (cols, w, self.base.user_item_times().map(|m| m.row(node).1))
            } else {
                (&[][..], &[][..], None)
            };
            merge_rows(cols, w, t, self.delta.user_row(u), n_users, &mut f);
        } else {
            let i = node - n_users;
            let (cols, w, t) = if i < self.base.n_items() {
                let (cols, w) = self.base.item_users().row(i);
                (cols, w, self.base.item_user_times().map(|m| m.row(i).1))
            } else {
                (&[][..], &[][..], None)
            };
            merge_rows(cols, w, t, self.delta.item_row(i as u32), 0, &mut f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csr::CsrMatrix;

    fn base() -> BipartiteGraph {
        BipartiteGraph::from_ratings(2, 3, &[(0, 0, 5.0), (0, 1, 3.0), (1, 1, 4.0), (1, 2, 2.0)])
    }

    fn row(view: &impl GraphView, node: usize) -> Vec<(usize, f64)> {
        let mut out = Vec::new();
        view.for_each_edge(node, |nbr, w| out.push((nbr, w)));
        out
    }

    #[test]
    fn delta_sums_duplicates_and_grows_dims() {
        let mut d = EdgeDelta::new(2, 3);
        d.insert(0, 2, 1.0, 10.0);
        d.insert(0, 2, 2.0, 20.0);
        d.insert(3, 4, 5.0, 30.0);
        assert_eq!(d.n_edges(), 2);
        assert_eq!(d.n_users(), 4);
        assert_eq!(d.n_items(), 5);
        assert_eq!(d.user_row(0), &[(2, 3.0, 20.0)]);
        assert_eq!(d.item_row(2), &[(0, 3.0, 20.0)]);
        assert!(d.touches_user(3) && !d.touches_user(1));
        let mut edges = Vec::new();
        d.for_each(|u, i, w, t| edges.push((u, i, w, t)));
        assert_eq!(edges, vec![(0, 2, 3.0, 20.0), (3, 4, 5.0, 30.0)]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn delta_rejects_zero_weight() {
        EdgeDelta::new(1, 1).insert(0, 0, 0.0, 0.0);
    }

    #[test]
    fn overlay_rows_equal_rebuilt_graph_rows() {
        let g = base();
        let mut d = EdgeDelta::new(2, 3);
        d.insert(0, 1, 2.0, 0.0); // re-rate an existing pair: weights sum
        d.insert(1, 0, 1.0, 0.0); // new edge on existing nodes
        d.insert(2, 3, 4.0, 0.0); // brand-new user and item
        let overlay = OverlayGraph::new(&g, &d);
        assert_eq!(overlay.n_users(), 3);
        assert_eq!(overlay.n_items(), 4);

        let rebuilt = BipartiteGraph::from_user_item_matrix(CsrMatrix::from_triplets(
            3,
            4,
            &[
                (0, 0, 5.0),
                (0, 1, 3.0),
                (1, 1, 4.0),
                (1, 2, 2.0),
                (0, 1, 2.0),
                (1, 0, 1.0),
                (2, 3, 4.0),
            ],
        ));
        for node in 0..overlay.n_nodes() {
            assert_eq!(row(&overlay, node), row(&rebuilt, node), "node {node}");
        }
    }

    #[test]
    fn empty_delta_overlay_is_the_base() {
        let g = base();
        let d = EdgeDelta::new(2, 3);
        let overlay = OverlayGraph::new(&g, &d);
        for node in 0..g.n_nodes() {
            assert_eq!(row(&overlay, node), row(&g, node), "node {node}");
        }
    }

    #[test]
    #[should_panic(expected = "smaller than base")]
    fn undersized_delta_rejected() {
        let g = base();
        OverlayGraph::new(&g, &EdgeDelta::new(1, 1));
    }
}
