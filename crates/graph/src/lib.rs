//! Graph substrate for long-tail recommendation.
//!
//! This crate provides the weighted undirected user-item bipartite graph of
//! §3.1 of *Challenging the Long Tail Recommendation* (Yin et al., VLDB
//! 2012) and the sparse-matrix plumbing everything else is built on:
//!
//! * [`CsrMatrix`] — compressed sparse row matrices (the rating matrix and
//!   both adjacency blocks);
//! * [`BipartiteGraph`] — users and items in one flat node id space, with
//!   weighted degrees, popularities and the stationary distribution of Eq. 2;
//! * [`Adjacency`] — a homogeneous symmetric view for random-walk code;
//! * [`TransitionMatrix`] — the row-stochastic kernel `p_ij = w_ij / d_i`,
//!   pre-divided once so walk iterations are multiply-accumulate only;
//! * [`Subgraph`] — BFS neighborhood extraction with an item budget µ
//!   (Algorithm 1, step 2);
//! * [`SubgraphScratch`] — reusable, epoch-stamped buffers that extract the
//!   same neighborhoods with zero `O(n_nodes)` allocations per query;
//! * [`GraphView`] — the traversal trait that lets the scratch extractor run
//!   over the frozen base graph, a streamed-delta overlay, or a
//!   recency-decayed wrapper, all monomorphized;
//! * [`EdgeDelta`] / [`OverlayGraph`] — appended ratings merged over the
//!   base CSR at query time without rebuilding ([`Decayed`] /
//!   [`RecencyDecay`] add the temporal weighting on top);
//! * [`stats`] — dataset-level descriptive statistics (Figure 1 shape);
//! * [`snapshot`] — the versioned, checksummed binary snapshot format that
//!   persists trained model state ([`SnapshotWriter`] / [`Snapshot`]).

#![warn(missing_docs)]

pub mod adjacency;
pub mod bipartite;
pub mod csr;
pub mod delta;
pub mod scratch;
pub mod snapshot;
pub mod stats;
pub mod subgraph;
pub mod transition;
pub mod view;

pub use adjacency::Adjacency;
pub use bipartite::{BipartiteGraph, Node};
pub use csr::CsrMatrix;
pub use delta::{EdgeDelta, OverlayGraph};
pub use scratch::SubgraphScratch;
pub use snapshot::{Snapshot, SnapshotError, SnapshotWriter};
pub use stats::GraphStats;
pub use subgraph::Subgraph;
pub use transition::TransitionMatrix;
pub use view::{Decayed, GraphView, RecencyDecay};
