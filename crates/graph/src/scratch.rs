//! Reusable subgraph-extraction scratch for the query hot path.
//!
//! [`crate::Subgraph::bfs_from`] allocates a fresh `vec![ABSENT; n_nodes]`
//! id map (plus queue, CSR buffers and an `Adjacency`) on every call — an
//! `O(n_nodes)` allocation bill per query that dominates once the walk
//! itself is cheap. [`SubgraphScratch`] amortizes all of it: the global→local
//! map is one epoch-stamped mark array allocated once per context and
//! *never cleared* (a node is a member iff its stamp equals the current
//! epoch), and every other buffer — BFS queue, local id list, induced
//! transition kernel — is rebuilt in place, retaining capacity across
//! queries.
//!
//! `grow` visits nodes in exactly the same order as `Subgraph::bfs_from`,
//! so membership, id assignment and the item budget behave identically.
//! Kernel rows keep the *global* neighbor order of the bipartite CSR
//! instead of re-sorting by local id (the dynamic programs are
//! order-independent; only the last-ulp floating-point rounding of row sums
//! can differ from the owned-`Subgraph` path).

use crate::transition::TransitionMatrix;
use crate::view::GraphView;
use std::collections::VecDeque;

/// Epoch stamp and local id of one global node, packed together so a
/// membership probe touches a single cache line.
#[derive(Debug, Clone, Copy, Default)]
struct Mark {
    stamp: u64,
    local: u32,
}

/// Reusable buffers for BFS subgraph extraction and induced-kernel
/// construction (Algorithm 1, step 2).
///
/// Create once per worker thread, call [`SubgraphScratch::grow`] per query,
/// then read the extracted neighborhood through the accessors. After `grow`
/// returns, no buffer holds stale data from previous queries.
#[derive(Debug, Clone)]
pub struct SubgraphScratch {
    /// Membership epoch: `marks[g].stamp == epoch` iff global node `g` is in
    /// the current subgraph.
    epoch: u64,
    marks: Vec<Mark>,
    global_of_local: Vec<usize>,
    n_local_items: usize,
    queue: VecDeque<usize>,
    kernel: TransitionMatrix,
}

impl SubgraphScratch {
    /// Empty scratch; buffers size themselves lazily on first use.
    pub fn new() -> Self {
        Self {
            epoch: 0,
            marks: Vec::new(),
            global_of_local: Vec::new(),
            n_local_items: 0,
            queue: VecDeque::new(),
            kernel: TransitionMatrix::empty(),
        }
    }

    /// Grow a BFS subgraph around `seeds` with item budget `max_items` and
    /// build its induced row-stochastic kernel, reusing every buffer.
    ///
    /// Node admission order and budget semantics match
    /// [`crate::Subgraph::bfs_from`] exactly (seeds always admitted; the
    /// frontier stops expanding once more than `max_items` item nodes are
    /// in; edges to non-members dropped; rows renormalized locally).
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range.
    pub fn grow<G: GraphView>(&mut self, graph: &G, seeds: &[usize], max_items: usize) {
        let n = graph.n_nodes();
        if self.marks.len() < n {
            self.marks.resize(n, Mark::default());
        }
        self.epoch += 1;
        self.global_of_local.clear();
        self.n_local_items = 0;
        self.queue.clear();

        let n_users = graph.n_users();
        for &seed in seeds {
            assert!(seed < n, "seed node {seed} out of range");
            if self.admit(n_users, seed) {
                self.queue.push_back(seed);
            }
        }

        while let Some(node) = self.queue.pop_front() {
            if self.n_local_items > max_items {
                // Budget exhausted: stop growing, keep what we have.
                break;
            }
            // BFS needs neighbor ids only; weights are read in build_kernel.
            graph.for_each_edge(node, |nbr, _| {
                if self.admit(n_users, nbr) {
                    self.queue.push_back(nbr);
                }
            });
        }

        self.build_kernel(graph);
    }

    /// Admit `node` if unseen this epoch; returns whether it was new.
    #[inline]
    fn admit(&mut self, n_users: usize, node: usize) -> bool {
        let mark = &mut self.marks[node];
        if mark.stamp == self.epoch {
            return false;
        }
        mark.stamp = self.epoch;
        mark.local = self.global_of_local.len() as u32;
        self.global_of_local.push(node);
        if node >= n_users {
            self.n_local_items += 1;
        }
        true
    }

    /// Build the induced kernel over the admitted nodes: keep edges whose
    /// endpoints are both members, renormalize each row by its induced
    /// degree in place.
    fn build_kernel<G: GraphView>(&mut self, graph: &G) {
        let epoch = self.epoch;
        self.kernel.reset(self.global_of_local.len());
        let kernel = &mut self.kernel;
        let marks = &self.marks;
        for &global in &self.global_of_local {
            let start = kernel.col_idx.len();
            let mut d = 0.0;
            graph.for_each_edge(global, |nbr, w| {
                let mark = marks[nbr];
                if mark.stamp == epoch {
                    kernel.col_idx.push(mark.local);
                    kernel.prob.push(w);
                    d += w;
                }
            });
            kernel.degree.push(d);
            if d > 0.0 {
                // Divide (not multiply by a precomputed reciprocal): `w / d`
                // must round exactly like the textbook formulation so kernel
                // walks stay bit-compatible with the unnormalized code.
                for p in &mut kernel.prob[start..] {
                    *p /= d;
                }
            }
            kernel.row_ptr.push(kernel.col_idx.len());
        }
    }

    /// The induced row-stochastic kernel of the last [`SubgraphScratch::grow`].
    #[inline]
    pub fn kernel(&self) -> &TransitionMatrix {
        &self.kernel
    }

    /// Number of nodes retained by the last `grow`.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.global_of_local.len()
    }

    /// Number of item nodes retained by the last `grow`.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_local_items
    }

    /// Local id of a global node, if retained by the last `grow`.
    #[inline]
    pub fn local_id(&self, global: usize) -> Option<u32> {
        match self.marks.get(global) {
            Some(mark) if mark.stamp == self.epoch => Some(mark.local),
            _ => None,
        }
    }

    /// Global ids in local order for the last `grow`.
    #[inline]
    pub fn global_ids(&self) -> &[usize] {
        &self.global_of_local
    }
}

impl Default for SubgraphScratch {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::BipartiteGraph;
    use crate::Subgraph;

    /// Same example graph as Figure 2 of the paper.
    fn figure2_graph() -> BipartiteGraph {
        let ratings = [
            (0, 0, 5.0),
            (0, 1, 3.0),
            (0, 4, 3.0),
            (0, 5, 5.0),
            (1, 0, 5.0),
            (1, 1, 4.0),
            (1, 2, 5.0),
            (1, 4, 4.0),
            (1, 5, 5.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
            (2, 2, 4.0),
            (3, 2, 5.0),
            (3, 3, 5.0),
            (4, 1, 4.0),
            (4, 2, 5.0),
        ];
        BipartiteGraph::from_ratings(5, 6, &ratings)
    }

    /// A kernel row as `(target, probability)` pairs sorted by target, for
    /// order-insensitive comparison.
    fn sorted_row(kernel: &TransitionMatrix, i: usize) -> Vec<(u32, f64)> {
        let (cols, probs) = kernel.row(i);
        let mut row: Vec<(u32, f64)> = cols.iter().copied().zip(probs.iter().copied()).collect();
        row.sort_unstable_by_key(|&(c, _)| c);
        row
    }

    /// The scratch must agree with the owned Subgraph on membership, id
    /// mapping and the induced kernel (up to within-row edge order and the
    /// consequent last-ulp rounding of the row normalizer), for a variety of
    /// seeds and budgets.
    fn assert_matches_subgraph(graph: &BipartiteGraph, seeds: &[usize], budget: usize) {
        let reference = Subgraph::bfs_from(graph, seeds, budget);
        let ref_kernel = TransitionMatrix::from_adjacency(reference.adjacency());
        let mut scratch = SubgraphScratch::new();
        scratch.grow(graph, seeds, budget);

        assert_eq!(scratch.n_nodes(), reference.n_nodes());
        assert_eq!(scratch.n_items(), reference.n_items());
        assert_eq!(scratch.global_ids(), reference.global_ids());
        for g in 0..graph.n_nodes() {
            assert_eq!(scratch.local_id(g), reference.local_id(g), "node {g}");
        }
        assert_eq!(scratch.kernel().n_nodes(), ref_kernel.n_nodes());
        for i in 0..ref_kernel.n_nodes() {
            let got = sorted_row(scratch.kernel(), i);
            let expected = sorted_row(&ref_kernel, i);
            assert_eq!(got.len(), expected.len(), "row {i}");
            for (&(gc, gp), &(ec, ep)) in got.iter().zip(expected.iter()) {
                assert_eq!(gc, ec, "row {i}");
                assert!(
                    (gp - ep).abs() <= 1e-15 * (1.0 + ep.abs()),
                    "row {i} target {gc}: {gp} vs {ep}"
                );
            }
        }
    }

    #[test]
    fn matches_subgraph_across_budgets() {
        let g = figure2_graph();
        for budget in [0, 1, 2, 6, usize::MAX] {
            assert_matches_subgraph(&g, &[g.user_node(4)], budget);
            assert_matches_subgraph(&g, &[g.item_node(1), g.item_node(2)], budget);
        }
    }

    #[test]
    fn rows_are_stochastic() {
        let g = figure2_graph();
        let mut scratch = SubgraphScratch::new();
        scratch.grow(&g, &[g.user_node(0)], 3);
        for i in 0..scratch.n_nodes() {
            let (_, probs) = scratch.kernel().row(i);
            if !probs.is_empty() {
                let sum: f64 = probs.iter().sum();
                assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
            }
        }
    }

    #[test]
    fn reuse_across_queries_leaves_no_stale_state() {
        let g = figure2_graph();
        let mut scratch = SubgraphScratch::new();
        // A big query first, then a tiny one: stale members of the first
        // must be invisible to the second.
        scratch.grow(&g, &[g.user_node(4)], usize::MAX);
        assert_eq!(scratch.n_nodes(), g.n_nodes());
        scratch.grow(&g, &[g.item_node(3)], 0);
        assert_eq!(scratch.n_nodes(), 1);
        assert_eq!(scratch.local_id(g.item_node(3)), Some(0));
        assert_eq!(scratch.local_id(g.user_node(0)), None);
        // And the result still matches a fresh Subgraph.
        assert_matches_subgraph(&g, &[g.item_node(3)], 0);
    }

    #[test]
    fn reuse_across_graphs_of_same_size() {
        let g1 = figure2_graph();
        let g2 = BipartiteGraph::from_ratings(5, 6, &[(0, 0, 1.0), (4, 5, 2.0)]);
        let mut scratch = SubgraphScratch::new();
        scratch.grow(&g1, &[g1.user_node(0)], usize::MAX);
        scratch.grow(&g2, &[g2.user_node(0)], usize::MAX);
        assert_eq!(scratch.n_nodes(), 2);
        assert_eq!(scratch.local_id(g2.item_node(0)), Some(1));
        assert_eq!(scratch.local_id(g2.item_node(5)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_seed_panics() {
        let g = figure2_graph();
        SubgraphScratch::new().grow(&g, &[g.n_nodes()], 10);
    }
}
