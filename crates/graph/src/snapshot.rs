//! Versioned, checksummed binary snapshot format for trained model state.
//!
//! A snapshot is a single flat buffer with a fixed header, a named section
//! table, and 8-byte-aligned little-endian payload sections — no serde, no
//! self-describing encoding, nothing between the reader and the raw arrays.
//! The layout is designed so a future reader can `mmap` the file and hand
//! out zero-copy slices: every section payload starts on an 8-byte boundary
//! relative to the start of the file, so `f64`/`u64` sections are properly
//! aligned in place. The current reader copies into owned `Vec`s (safe code
//! only); the alignment guarantee is what keeps the lazy-paging upgrade a
//! reader-side change.
//!
//! ## Layout
//!
//! | offset | size | field |
//! |--------|------|-------|
//! | 0      | 8    | magic `b"LTSNAP\r\n"` |
//! | 8      | 4    | format version (`u32` LE, currently 1) |
//! | 12     | 8    | FNV-1a-64 checksum (`u64` LE) of every byte from offset 20 to EOF |
//! | 20     | var  | kind string (`u32` LE length + UTF-8 bytes) |
//! | …      | 4    | state version (`u32` LE, per-model-family schema version) |
//! | …      | 4    | section count (`u32` LE) |
//! | …      | var  | section table: per section a name (`u32` LE length + UTF-8), dtype code (`u32` LE), payload offset (`u64` LE, from payload start), payload length in bytes (`u64` LE) |
//! | …      | 0–7  | zero padding to the next 8-byte boundary |
//! | …      | var  | payload sections, each starting on an 8-byte boundary |
//!
//! Corrupt or truncated input always surfaces as a typed [`SnapshotError`]
//! — mangling the magic, the version fields, the checksum, the section
//! table, or the payload each hits its own variant, never a panic.

use std::fmt;
use std::path::Path;

/// The 8-byte magic at offset 0 of every snapshot. The trailing `\r\n`
/// catches accidental newline translation by transfer tools.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"LTSNAP\r\n";

/// The container format version this build writes and reads.
pub const SNAPSHOT_FORMAT_VERSION: u32 = 1;

/// Byte offset where the checksummed region starts (magic, format version
/// and the checksum itself are excluded from the checksum).
const CHECKSUM_START: usize = 20;

/// Section element-type codes stored in the section table.
const DTYPE_U32: u32 = 1;
const DTYPE_U64: u32 = 2;
const DTYPE_F64: u32 = 3;
const DTYPE_BYTES: u32 = 4;

fn dtype_name(code: u32) -> &'static str {
    match code {
        DTYPE_U32 => "u32",
        DTYPE_U64 => "u64",
        DTYPE_F64 => "f64",
        DTYPE_BYTES => "bytes",
        _ => "unknown",
    }
}

/// FNV-1a-64 over `bytes` — small, dependency-free, and strong enough to
/// catch the bit flips and truncations a storage layer produces.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Typed failure loading (or decoding) a snapshot. Every way a corrupt,
/// truncated, or mismatched snapshot can fail maps to exactly one variant;
/// loading never panics.
#[derive(Debug)]
pub enum SnapshotError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The first 8 bytes are not [`SNAPSHOT_MAGIC`] — this is not a
    /// snapshot file at all.
    BadMagic,
    /// The container format version is one this build does not read.
    UnsupportedFormat {
        /// Format version found in the header.
        found: u32,
        /// Format version this build supports.
        supported: u32,
    },
    /// The stored checksum does not match the bytes — the snapshot was
    /// corrupted after it was written.
    ChecksumMismatch {
        /// Checksum recorded in the header.
        stored: u64,
        /// Checksum computed over the actual bytes.
        computed: u64,
    },
    /// The buffer ends before a field or section it promises — a short
    /// read or truncated file.
    Truncated {
        /// Bytes the next field needed.
        needed: usize,
        /// Bytes actually available.
        available: usize,
    },
    /// The snapshot holds a different model family than the caller asked
    /// to load.
    KindMismatch {
        /// Kind the caller expected.
        expected: &'static str,
        /// Kind recorded in the snapshot.
        found: String,
    },
    /// The snapshot's per-family state schema version is not the one this
    /// build reads.
    StateVersionMismatch {
        /// Model family kind.
        kind: String,
        /// State version found in the snapshot.
        found: u32,
        /// State version this build supports.
        supported: u32,
    },
    /// A section the loader requires is absent from the section table.
    MissingSection(String),
    /// A section is present but its contents are not usable (wrong dtype,
    /// bad length, or values that violate the model's invariants).
    InvalidSection {
        /// Name of the offending section.
        section: String,
        /// What was wrong with it.
        reason: String,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::Io(e) => write!(f, "snapshot i/o error: {e}"),
            SnapshotError::BadMagic => write!(f, "bad magic: not a snapshot file"),
            SnapshotError::UnsupportedFormat { found, supported } => write!(
                f,
                "unsupported snapshot format version {found} (this build reads {supported})"
            ),
            SnapshotError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checksum mismatch: header says {stored:#018x}, bytes hash to {computed:#018x}"
            ),
            SnapshotError::Truncated { needed, available } => write!(
                f,
                "truncated snapshot: needed {needed} more byte(s), only {available} available"
            ),
            SnapshotError::KindMismatch { expected, found } => {
                write!(f, "snapshot holds a {found:?} model, expected {expected:?}")
            }
            SnapshotError::StateVersionMismatch {
                kind,
                found,
                supported,
            } => write!(
                f,
                "snapshot {kind:?} state version {found} is not the supported version {supported}"
            ),
            SnapshotError::MissingSection(name) => {
                write!(f, "snapshot is missing required section {name:?}")
            }
            SnapshotError::InvalidSection { section, reason } => {
                write!(f, "snapshot section {section:?} is invalid: {reason}")
            }
        }
    }
}

impl std::error::Error for SnapshotError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SnapshotError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for SnapshotError {
    fn from(e: std::io::Error) -> Self {
        SnapshotError::Io(e)
    }
}

/// Builder that assembles a snapshot buffer: name each flat array, then
/// [`SnapshotWriter::to_bytes`] lays out header, section table, padding and
/// 8-byte-aligned payloads in one pass.
#[derive(Debug)]
pub struct SnapshotWriter {
    kind: String,
    state_version: u32,
    sections: Vec<(String, u32, Vec<u8>)>,
}

impl SnapshotWriter {
    /// Start a snapshot for model family `kind` with the family's state
    /// schema version.
    pub fn new(kind: &str, state_version: u32) -> Self {
        Self {
            kind: kind.to_string(),
            state_version,
            sections: Vec::new(),
        }
    }

    fn put_raw(&mut self, name: &str, dtype: u32, bytes: Vec<u8>) {
        debug_assert!(
            self.sections.iter().all(|(n, _, _)| n != name),
            "duplicate snapshot section {name:?}"
        );
        self.sections.push((name.to_string(), dtype, bytes));
    }

    /// Add a named `u32` array section (stored little-endian).
    pub fn put_u32s(&mut self, name: &str, data: &[u32]) {
        let mut bytes = Vec::with_capacity(data.len() * 4);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.put_raw(name, DTYPE_U32, bytes);
    }

    /// Add a named `u64` array section (stored little-endian).
    pub fn put_u64s(&mut self, name: &str, data: &[u64]) {
        let mut bytes = Vec::with_capacity(data.len() * 8);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.put_raw(name, DTYPE_U64, bytes);
    }

    /// Add a named `f64` array section (stored as little-endian IEEE 754
    /// bit patterns — round-trips NaN payloads and signed zeros exactly).
    pub fn put_f64s(&mut self, name: &str, data: &[f64]) {
        let mut bytes = Vec::with_capacity(data.len() * 8);
        for v in data {
            bytes.extend_from_slice(&v.to_le_bytes());
        }
        self.put_raw(name, DTYPE_F64, bytes);
    }

    /// Add a named opaque byte section.
    pub fn put_bytes(&mut self, name: &str, data: &[u8]) {
        self.put_raw(name, DTYPE_BYTES, data.to_vec());
    }

    /// Serialize the snapshot to its on-disk byte layout (see the module
    /// docs for the exact format).
    pub fn to_bytes(&self) -> Vec<u8> {
        // Header skeleton; checksum patched in at the end.
        let mut buf = Vec::new();
        buf.extend_from_slice(&SNAPSHOT_MAGIC);
        buf.extend_from_slice(&SNAPSHOT_FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u64.to_le_bytes()); // checksum placeholder

        // Body: kind, state version, section table.
        buf.extend_from_slice(&(self.kind.len() as u32).to_le_bytes());
        buf.extend_from_slice(self.kind.as_bytes());
        buf.extend_from_slice(&self.state_version.to_le_bytes());
        buf.extend_from_slice(&(self.sections.len() as u32).to_le_bytes());

        // Payload offsets: each section starts on an 8-byte boundary
        // relative to the payload start (which is itself 8-byte aligned
        // relative to the file start).
        let mut offsets = Vec::with_capacity(self.sections.len());
        let mut cursor = 0u64;
        for (_, _, bytes) in &self.sections {
            offsets.push(cursor);
            cursor += bytes.len() as u64;
            cursor = cursor.div_ceil(8) * 8;
        }
        for ((name, dtype, bytes), offset) in self.sections.iter().zip(&offsets) {
            buf.extend_from_slice(&(name.len() as u32).to_le_bytes());
            buf.extend_from_slice(name.as_bytes());
            buf.extend_from_slice(&dtype.to_le_bytes());
            buf.extend_from_slice(&offset.to_le_bytes());
            buf.extend_from_slice(&(bytes.len() as u64).to_le_bytes());
        }

        // Pad to the payload start, then emit sections with inter-section
        // padding matching the offsets computed above.
        while buf.len() % 8 != 0 {
            buf.push(0);
        }
        let payload_start = buf.len();
        for ((_, _, bytes), offset) in self.sections.iter().zip(&offsets) {
            debug_assert_eq!(buf.len() - payload_start, *offset as usize);
            buf.extend_from_slice(bytes);
            while (buf.len() - payload_start) % 8 != 0 {
                buf.push(0);
            }
        }

        // Patch the checksum over everything after the header.
        let checksum = fnv1a_64(&buf[CHECKSUM_START..]);
        buf[12..20].copy_from_slice(&checksum.to_le_bytes());
        buf
    }

    /// Serialize and write the snapshot to `path` (create or truncate).
    pub fn write_to_file(&self, path: impl AsRef<Path>) -> Result<(), SnapshotError> {
        std::fs::write(path, self.to_bytes())?;
        Ok(())
    }
}

/// One parsed section-table entry: where the payload lives in the buffer.
#[derive(Debug)]
struct SectionMeta {
    name: String,
    dtype: u32,
    start: usize,
    len: usize,
}

/// Forward-only reader over a snapshot buffer that turns every short read
/// into [`SnapshotError::Truncated`].
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let available = self.buf.len() - self.pos;
        if available < n {
            return Err(SnapshotError::Truncated {
                needed: n,
                available,
            });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn string(&mut self, what: &str) -> Result<String, SnapshotError> {
        let len = self.u32()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| SnapshotError::InvalidSection {
            section: what.to_string(),
            reason: "string is not valid UTF-8".to_string(),
        })
    }
}

/// A parsed, checksum-verified snapshot. Section contents are decoded on
/// demand through the typed accessors, each of which validates the
/// section's declared element type and length.
#[derive(Debug)]
pub struct Snapshot {
    bytes: Vec<u8>,
    kind: String,
    state_version: u32,
    sections: Vec<SectionMeta>,
}

impl Snapshot {
    /// Parse a snapshot from `bytes`, validating magic, format version,
    /// checksum, and the section table before returning.
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        if bytes.len() < CHECKSUM_START {
            return Err(SnapshotError::Truncated {
                needed: CHECKSUM_START,
                available: bytes.len(),
            });
        }
        if bytes[0..8] != SNAPSHOT_MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let format = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
        if format != SNAPSHOT_FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedFormat {
                found: format,
                supported: SNAPSHOT_FORMAT_VERSION,
            });
        }
        let stored = u64::from_le_bytes(bytes[12..20].try_into().unwrap());
        let computed = fnv1a_64(&bytes[CHECKSUM_START..]);
        if stored != computed {
            return Err(SnapshotError::ChecksumMismatch { stored, computed });
        }

        let mut cursor = Cursor {
            buf: &bytes,
            pos: CHECKSUM_START,
        };
        let kind = cursor.string("kind")?;
        let state_version = cursor.u32()?;
        let n_sections = cursor.u32()? as usize;
        let mut table = Vec::new();
        for _ in 0..n_sections {
            let name = cursor.string("section table")?;
            let dtype = cursor.u32()?;
            let offset = cursor.u64()?;
            let len = cursor.u64()?;
            table.push((name, dtype, offset, len));
        }
        let payload_start = cursor.pos.div_ceil(8) * 8;

        let mut sections = Vec::with_capacity(table.len());
        for (name, dtype, offset, len) in table {
            let start = payload_start
                .checked_add(usize::try_from(offset).ok().ok_or_else(|| {
                    SnapshotError::InvalidSection {
                        section: name.clone(),
                        reason: "section offset overflows usize".to_string(),
                    }
                })?)
                .ok_or_else(|| SnapshotError::InvalidSection {
                    section: name.clone(),
                    reason: "section offset overflows usize".to_string(),
                })?;
            let len = usize::try_from(len)
                .ok()
                .ok_or_else(|| SnapshotError::InvalidSection {
                    section: name.clone(),
                    reason: "section length overflows usize".to_string(),
                })?;
            let end = start
                .checked_add(len)
                .ok_or_else(|| SnapshotError::InvalidSection {
                    section: name.clone(),
                    reason: "section end overflows usize".to_string(),
                })?;
            if end > bytes.len() {
                return Err(SnapshotError::Truncated {
                    needed: end - bytes.len(),
                    available: 0,
                });
            }
            sections.push(SectionMeta {
                name,
                dtype,
                start,
                len,
            });
        }

        Ok(Self {
            bytes,
            kind,
            state_version,
            sections,
        })
    }

    /// Read and parse a snapshot file.
    pub fn read_from_file(path: impl AsRef<Path>) -> Result<Self, SnapshotError> {
        Self::from_bytes(std::fs::read(path)?)
    }

    /// Model family kind recorded in the header (e.g. `"HT"`, `"SVD"`).
    pub fn kind(&self) -> &str {
        &self.kind
    }

    /// Per-family state schema version recorded in the header.
    pub fn state_version(&self) -> u32 {
        self.state_version
    }

    /// Names of every section, in table order.
    pub fn section_names(&self) -> Vec<&str> {
        self.sections.iter().map(|s| s.name.as_str()).collect()
    }

    fn section(&self, name: &str, dtype: u32) -> Result<&[u8], SnapshotError> {
        let meta = self
            .sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| SnapshotError::MissingSection(name.to_string()))?;
        if meta.dtype != dtype {
            return Err(SnapshotError::InvalidSection {
                section: name.to_string(),
                reason: format!(
                    "expected a {} section, found {}",
                    dtype_name(dtype),
                    dtype_name(meta.dtype)
                ),
            });
        }
        Ok(&self.bytes[meta.start..meta.start + meta.len])
    }

    fn elems(&self, name: &str, dtype: u32, width: usize) -> Result<&[u8], SnapshotError> {
        let bytes = self.section(name, dtype)?;
        if bytes.len() % width != 0 {
            return Err(SnapshotError::InvalidSection {
                section: name.to_string(),
                reason: format!(
                    "length {} is not a multiple of the {}-byte element size",
                    bytes.len(),
                    width
                ),
            });
        }
        Ok(bytes)
    }

    /// Decode a `u32` array section.
    pub fn u32s(&self, name: &str) -> Result<Vec<u32>, SnapshotError> {
        Ok(self
            .elems(name, DTYPE_U32, 4)?
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Decode a `u64` array section.
    pub fn u64s(&self, name: &str) -> Result<Vec<u64>, SnapshotError> {
        Ok(self
            .elems(name, DTYPE_U64, 8)?
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Decode a `f64` array section (bit-exact round trip).
    pub fn f64s(&self, name: &str) -> Result<Vec<f64>, SnapshotError> {
        Ok(self
            .elems(name, DTYPE_F64, 8)?
            .chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    /// Decode a `u64` array section into `usize`s, failing with a typed
    /// error if any element overflows the platform's `usize`.
    pub fn usizes(&self, name: &str) -> Result<Vec<usize>, SnapshotError> {
        self.u64s(name)?
            .into_iter()
            .map(|v| {
                usize::try_from(v).map_err(|_| SnapshotError::InvalidSection {
                    section: name.to_string(),
                    reason: format!("value {v} overflows usize on this platform"),
                })
            })
            .collect()
    }

    /// Raw bytes of an opaque byte section.
    pub fn bytes(&self, name: &str) -> Result<&[u8], SnapshotError> {
        self.section(name, DTYPE_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new("TEST", 3);
        w.put_u32s("ids", &[1, 2, 3, u32::MAX]);
        w.put_u64s("ptr", &[0, 2, 4]);
        w.put_f64s("vals", &[1.5, -0.0, f64::MIN_POSITIVE]);
        w.put_bytes("blob", b"hello");
        w.to_bytes()
    }

    #[test]
    fn round_trips_every_section_type() {
        let snap = Snapshot::from_bytes(sample()).unwrap();
        assert_eq!(snap.kind(), "TEST");
        assert_eq!(snap.state_version(), 3);
        assert_eq!(snap.section_names(), vec!["ids", "ptr", "vals", "blob"]);
        assert_eq!(snap.u32s("ids").unwrap(), vec![1, 2, 3, u32::MAX]);
        assert_eq!(snap.u64s("ptr").unwrap(), vec![0, 2, 4]);
        assert_eq!(snap.usizes("ptr").unwrap(), vec![0, 2, 4]);
        let vals = snap.f64s("vals").unwrap();
        assert_eq!(vals, vec![1.5, -0.0, f64::MIN_POSITIVE]);
        assert!(vals[1].is_sign_negative(), "-0.0 must round-trip exactly");
        assert_eq!(snap.bytes("blob").unwrap(), b"hello");
    }

    #[test]
    fn payload_sections_are_eight_byte_aligned() {
        let bytes = sample();
        let snap = Snapshot::from_bytes(bytes).unwrap();
        for meta in &snap.sections {
            assert_eq!(meta.start % 8, 0, "section {:?} misaligned", meta.name);
        }
    }

    #[test]
    fn mangled_magic_is_bad_magic() {
        let mut bytes = sample();
        bytes[0] ^= 0xff;
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::BadMagic)
        ));
    }

    #[test]
    fn mangled_format_version_is_unsupported_format() {
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::UnsupportedFormat {
                found: 99,
                supported: SNAPSHOT_FORMAT_VERSION
            })
        ));
    }

    #[test]
    fn any_body_bit_flip_is_checksum_mismatch() {
        let reference = sample();
        // Flip one bit in several body positions: header fields, section
        // table, payload. Every one must be caught by the checksum.
        for pos in [20, 25, 40, reference.len() - 1] {
            let mut bytes = reference.clone();
            bytes[pos] ^= 0x01;
            assert!(
                matches!(
                    Snapshot::from_bytes(bytes),
                    Err(SnapshotError::ChecksumMismatch { .. })
                ),
                "bit flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn short_reads_are_truncated_never_panics() {
        let full = sample();
        // Every proper prefix must fail with a typed error (Truncated once
        // past the magic; shorter prefixes can't even hold the header).
        for cut in 0..full.len() {
            let err = Snapshot::from_bytes(full[..cut].to_vec()).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::ChecksumMismatch { .. }
                ),
                "prefix of {cut} bytes gave unexpected error: {err}"
            );
        }
    }

    #[test]
    fn section_overrunning_payload_is_truncated() {
        // Hand-repair the checksum after inflating a section length so the
        // failure is attributed to the table, not the checksum.
        let mut bytes = sample();
        // Section table entry for "ids": kind(4+4) + state(4) + count(4)
        // puts the first name length at offset 36.
        let name_len_at = 36;
        assert_eq!(
            u32::from_le_bytes(bytes[name_len_at..name_len_at + 4].try_into().unwrap()),
            3,
            "expected the \"ids\" name length here"
        );
        let len_at = name_len_at + 4 + 3 + 4 + 8; // name, dtype, offset
        bytes[len_at..len_at + 8].copy_from_slice(&(1u64 << 20).to_le_bytes());
        let checksum = fnv1a_64(&bytes[CHECKSUM_START..]);
        bytes[12..20].copy_from_slice(&checksum.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::Truncated { .. })
        ));
    }

    #[test]
    fn missing_and_mistyped_sections_are_typed_errors() {
        let snap = Snapshot::from_bytes(sample()).unwrap();
        assert!(matches!(
            snap.u32s("nope"),
            Err(SnapshotError::MissingSection(name)) if name == "nope"
        ));
        assert!(matches!(
            snap.f64s("ids"),
            Err(SnapshotError::InvalidSection { .. })
        ));
        assert!(matches!(
            snap.bytes("vals"),
            Err(SnapshotError::InvalidSection { .. })
        ));
    }

    #[test]
    fn file_round_trip_and_io_error() {
        let dir = std::env::temp_dir().join("longtail_snapshot_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.snap");
        let mut w = SnapshotWriter::new("FILE", 1);
        w.put_u64s("x", &[7]);
        w.write_to_file(&path).unwrap();
        let snap = Snapshot::read_from_file(&path).unwrap();
        assert_eq!(snap.kind(), "FILE");
        assert_eq!(snap.u64s("x").unwrap(), vec![7]);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            Snapshot::read_from_file(&path),
            Err(SnapshotError::Io(_))
        ));
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let w = SnapshotWriter::new("EMPTY", 0);
        let snap = Snapshot::from_bytes(w.to_bytes()).unwrap();
        assert_eq!(snap.kind(), "EMPTY");
        assert!(snap.section_names().is_empty());
    }
}
