//! Descriptive statistics of a bipartite rating graph.
//!
//! These back the dataset tables of §5.1.2 (user/item counts, density,
//! rating ranges) and the long-tail shape analysis behind Figure 1.

use crate::bipartite::BipartiteGraph;

/// Summary statistics of a rating graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of users.
    pub n_users: usize,
    /// Number of items.
    pub n_items: usize,
    /// Number of ratings (edges).
    pub n_ratings: usize,
    /// Fraction of the user-item matrix that is filled.
    pub density: f64,
    /// Minimum ratings per item (over items with at least one rating).
    pub min_item_popularity: usize,
    /// Maximum ratings per item.
    pub max_item_popularity: usize,
    /// Minimum ratings per user (over users with at least one rating).
    pub min_user_activity: usize,
    /// Maximum ratings per user.
    pub max_user_activity: usize,
    /// Mean rating value.
    pub mean_rating: f64,
}

impl GraphStats {
    /// Compute statistics for `graph`.
    pub fn compute(graph: &BipartiteGraph) -> Self {
        let n_users = graph.n_users();
        let n_items = graph.n_items();
        let n_ratings = graph.n_edges();
        let density = if n_users * n_items == 0 {
            0.0
        } else {
            n_ratings as f64 / (n_users as f64 * n_items as f64)
        };
        // Fold the min/max reductions in place — no O(n) side vectors for
        // what is a pair of scalars per axis.
        let minmax_nonzero = |counts: &mut dyn Iterator<Item = usize>| -> (usize, usize) {
            let (mut min, mut max) = (usize::MAX, 0usize);
            for c in counts.filter(|&c| c > 0) {
                min = min.min(c);
                max = max.max(c);
            }
            if max == 0 {
                (0, 0)
            } else {
                (min, max)
            }
        };
        let (min_item_popularity, max_item_popularity) =
            minmax_nonzero(&mut (0..n_items as u32).map(|i| graph.item_popularity(i)));
        let (min_user_activity, max_user_activity) =
            minmax_nonzero(&mut (0..n_users as u32).map(|u| graph.user_activity(u)));
        let mean_rating = if n_ratings == 0 {
            0.0
        } else {
            graph.total_weight() / n_ratings as f64
        };
        Self {
            n_users,
            n_items,
            n_ratings,
            density,
            min_item_popularity,
            max_item_popularity,
            min_user_activity,
            max_user_activity,
            mean_rating,
        }
    }
}

/// Item popularities (rating counts) sorted descending — the rank-frequency
/// curve of Figure 1.
pub fn popularity_curve(graph: &BipartiteGraph) -> Vec<usize> {
    let mut pops: Vec<usize> = (0..graph.n_items() as u32)
        .map(|i| graph.item_popularity(i))
        .collect();
    pops.sort_unstable_by(|a, b| b.cmp(a));
    pops
}

/// Gini coefficient of the item popularity distribution: 0 = perfectly even
/// consumption, →1 = all ratings on one item. A quantitative handle on "how
/// long is the tail".
pub fn popularity_gini(graph: &BipartiteGraph) -> f64 {
    let mut pops: Vec<f64> = (0..graph.n_items() as u32)
        .map(|i| graph.item_popularity(i) as f64)
        .collect();
    pops.sort_unstable_by(|a, b| a.partial_cmp(b).unwrap());
    let n = pops.len() as f64;
    let total: f64 = pops.iter().sum();
    if n == 0.0 || total == 0.0 {
        return 0.0;
    }
    let weighted: f64 = pops
        .iter()
        .enumerate()
        .map(|(i, &p)| (i as f64 + 1.0) * p)
        .sum();
    (2.0 * weighted) / (n * total) - (n + 1.0) / n
}

#[cfg(test)]
mod tests {
    use super::*;

    fn graph() -> BipartiteGraph {
        BipartiteGraph::from_ratings(
            3,
            4,
            &[
                (0, 0, 5.0),
                (0, 1, 4.0),
                (1, 0, 3.0),
                (2, 0, 4.0),
                (2, 2, 2.0),
            ],
        )
    }

    #[test]
    fn stats_fields() {
        let s = GraphStats::compute(&graph());
        assert_eq!(s.n_users, 3);
        assert_eq!(s.n_items, 4);
        assert_eq!(s.n_ratings, 5);
        assert!((s.density - 5.0 / 12.0).abs() < 1e-12);
        assert_eq!(s.max_item_popularity, 3);
        assert_eq!(s.min_item_popularity, 1);
        assert_eq!(s.max_user_activity, 2);
        assert_eq!(s.min_user_activity, 1);
        assert!((s.mean_rating - 18.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn popularity_curve_is_sorted_desc() {
        let curve = popularity_curve(&graph());
        assert_eq!(curve, vec![3, 1, 1, 0]);
    }

    #[test]
    fn gini_zero_for_uniform() {
        let g = BipartiteGraph::from_ratings(
            2,
            2,
            &[(0, 0, 1.0), (0, 1, 1.0), (1, 0, 1.0), (1, 1, 1.0)],
        );
        assert!(popularity_gini(&g).abs() < 1e-12);
    }

    #[test]
    fn gini_positive_for_skew() {
        assert!(popularity_gini(&graph()) > 0.3);
    }

    #[test]
    fn empty_graph_stats() {
        let g = BipartiteGraph::from_ratings(0, 0, &[]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.n_ratings, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.mean_rating, 0.0);
        assert_eq!(s.min_item_popularity, 0);
        assert_eq!(s.max_item_popularity, 0);
        assert_eq!(s.min_user_activity, 0);
        assert_eq!(s.max_user_activity, 0);
    }

    #[test]
    fn zero_count_rows_are_excluded_from_minmax() {
        // Items 0 and 2 and user 1 carry no ratings: the nonzero filter
        // must drop them, so the min comes from the single rated item/user
        // (1), not from the zero-count rows (0).
        let g = BipartiteGraph::from_ratings(2, 3, &[(0, 1, 4.0)]);
        let s = GraphStats::compute(&g);
        assert_eq!(s.min_item_popularity, 1);
        assert_eq!(s.max_item_popularity, 1);
        assert_eq!(s.min_user_activity, 1);
        assert_eq!(s.max_user_activity, 1);
    }
}
