//! BFS subgraph extraction (Algorithm 1, step 2).
//!
//! Computing absorbing times on the global graph is `O(τ·m)` per query and
//! the global graph can be huge, so the paper first grows a subgraph around
//! the query's absorbing set by breadth-first search, stopping once the
//! subgraph holds more than `µ` *item* nodes. All quality metrics in Table 4
//! stabilize for µ around 3k–6k while the cost keeps growing with µ, which is
//! the trade-off this module exposes.

use crate::bipartite::BipartiteGraph;
use crate::csr::CsrMatrix;
use crate::Adjacency;
use std::collections::VecDeque;

/// Sentinel for "global node not present in the subgraph".
const ABSENT: u32 = u32::MAX;

/// A node-induced subgraph of a [`BipartiteGraph`] with its own compact node
/// ids (`0..n_local`).
///
/// Edges between retained nodes keep their weights; transition probabilities
/// are renormalized over the local neighborhoods, exactly as Algorithm 1
/// applies the iterative update "to the local subgraph".
#[derive(Debug, Clone)]
pub struct Subgraph {
    adj: Adjacency,
    global_of_local: Vec<usize>,
    local_of_global: Vec<u32>,
    n_local_items: usize,
}

impl Subgraph {
    /// Grow a subgraph by BFS from `seeds` (flat node ids of `graph`).
    ///
    /// Nodes are visited in BFS order; once more than `max_items` item nodes
    /// have been admitted, no further nodes are enqueued (the frontier is
    /// drained, not expanded). Seeds are always included regardless of the
    /// budget.
    ///
    /// # Panics
    ///
    /// Panics if any seed id is out of range.
    pub fn bfs_from(graph: &BipartiteGraph, seeds: &[usize], max_items: usize) -> Self {
        let n = graph.n_nodes();
        let mut local_of_global = vec![ABSENT; n];
        let mut global_of_local = Vec::new();
        let mut n_local_items = 0usize;
        let mut queue = VecDeque::new();

        let admit = |node: usize,
                     local_of_global: &mut Vec<u32>,
                     global_of_local: &mut Vec<usize>,
                     n_local_items: &mut usize| {
            assert!(node < n, "seed node {node} out of range");
            if local_of_global[node] != ABSENT {
                return false;
            }
            local_of_global[node] = global_of_local.len() as u32;
            global_of_local.push(node);
            if graph.is_item_node(node) {
                *n_local_items += 1;
            }
            true
        };

        for &seed in seeds {
            if admit(
                seed,
                &mut local_of_global,
                &mut global_of_local,
                &mut n_local_items,
            ) {
                queue.push_back(seed);
            }
        }

        while let Some(node) = queue.pop_front() {
            if n_local_items > max_items {
                // Budget exhausted: stop growing, keep what we have.
                break;
            }
            for (nbr, _) in graph.neighbors(node) {
                if admit(
                    nbr,
                    &mut local_of_global,
                    &mut global_of_local,
                    &mut n_local_items,
                ) {
                    queue.push_back(nbr);
                }
            }
        }

        let adj = induced_adjacency(graph, &global_of_local, &local_of_global);
        Self {
            adj,
            global_of_local,
            local_of_global,
            n_local_items,
        }
    }

    /// The whole graph as a subgraph (identity mapping). Useful as the
    /// "µ = ∞" reference point of Table 4.
    pub fn full(graph: &BipartiteGraph) -> Self {
        let n = graph.n_nodes();
        let global_of_local: Vec<usize> = (0..n).collect();
        let local_of_global: Vec<u32> = (0..n as u32).collect();
        Self {
            adj: Adjacency::from_bipartite(graph),
            global_of_local,
            local_of_global,
            n_local_items: graph.n_items(),
        }
    }

    /// Local adjacency (renormalized walk runs on this).
    #[inline]
    pub fn adjacency(&self) -> &Adjacency {
        &self.adj
    }

    /// Number of nodes retained.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.global_of_local.len()
    }

    /// Number of item nodes retained.
    #[inline]
    pub fn n_items(&self) -> usize {
        self.n_local_items
    }

    /// Local id of a global node, if retained.
    #[inline]
    pub fn local_id(&self, global: usize) -> Option<u32> {
        match self.local_of_global.get(global) {
            Some(&l) if l != ABSENT => Some(l),
            _ => None,
        }
    }

    /// Global id of a local node.
    ///
    /// # Panics
    ///
    /// Panics if `local` is out of range.
    #[inline]
    pub fn global_id(&self, local: u32) -> usize {
        self.global_of_local[local as usize]
    }

    /// Global ids in local order.
    #[inline]
    pub fn global_ids(&self) -> &[usize] {
        &self.global_of_local
    }
}

fn induced_adjacency(
    graph: &BipartiteGraph,
    global_of_local: &[usize],
    local_of_global: &[u32],
) -> Adjacency {
    let n_local = global_of_local.len();
    let mut row_ptr = Vec::with_capacity(n_local + 1);
    let mut entries: Vec<(u32, f64)> = Vec::new();
    let mut col_idx = Vec::new();
    let mut values = Vec::new();
    row_ptr.push(0);
    for &global in global_of_local {
        entries.clear();
        for (nbr, w) in graph.neighbors(global) {
            let l = local_of_global[nbr];
            if l != ABSENT {
                entries.push((l, w));
            }
        }
        entries.sort_unstable_by_key(|&(c, _)| c);
        for &(c, w) in &entries {
            col_idx.push(c);
            values.push(w);
        }
        row_ptr.push(col_idx.len());
    }
    Adjacency::from_symmetric_csr(CsrMatrix::from_raw(
        n_local, n_local, row_ptr, col_idx, values,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Same example graph as Figure 2 of the paper.
    fn figure2_graph() -> BipartiteGraph {
        let ratings = [
            (0, 0, 5.0),
            (0, 1, 3.0),
            (0, 4, 3.0),
            (0, 5, 5.0),
            (1, 0, 5.0),
            (1, 1, 4.0),
            (1, 2, 5.0),
            (1, 4, 4.0),
            (1, 5, 5.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
            (2, 2, 4.0),
            (3, 2, 5.0),
            (3, 3, 5.0),
            (4, 1, 4.0),
            (4, 2, 5.0),
        ];
        BipartiteGraph::from_ratings(5, 6, &ratings)
    }

    #[test]
    fn full_subgraph_is_identity() {
        let g = figure2_graph();
        let s = Subgraph::full(&g);
        assert_eq!(s.n_nodes(), g.n_nodes());
        assert_eq!(s.n_items(), g.n_items());
        for n in 0..g.n_nodes() {
            assert_eq!(s.local_id(n), Some(n as u32));
            assert_eq!(s.global_id(n as u32), n);
        }
    }

    #[test]
    fn bfs_reaches_connected_component_with_large_budget() {
        let g = figure2_graph();
        let s = Subgraph::bfs_from(&g, &[g.user_node(4)], usize::MAX);
        // The Figure 2 graph is connected, so everything is reached.
        assert_eq!(s.n_nodes(), g.n_nodes());
        assert_eq!(s.n_items(), 6);
    }

    #[test]
    fn budget_limits_item_count() {
        let g = figure2_graph();
        // Seeding at U5 (rated M2, M3): the first BFS level admits 2 items,
        // which exceeds a budget of 1, so expansion stops there.
        let s = Subgraph::bfs_from(&g, &[g.user_node(4)], 1);
        assert_eq!(s.n_items(), 2);
        assert!(s.local_id(g.item_node(1)).is_some());
        assert!(s.local_id(g.item_node(2)).is_some());
        assert!(s.local_id(g.item_node(5)).is_none());
    }

    #[test]
    fn local_edges_preserve_weights() {
        let g = figure2_graph();
        let s = Subgraph::bfs_from(&g, &[g.user_node(4)], usize::MAX);
        let lu = s.local_id(g.user_node(4)).unwrap() as usize;
        let lm = s.local_id(g.item_node(2)).unwrap();
        assert_eq!(s.adjacency().csr().get(lu, lm), Some(5.0));
    }

    #[test]
    fn induced_subgraph_drops_edges_to_absent_nodes() {
        let g = figure2_graph();
        let s = Subgraph::bfs_from(&g, &[g.user_node(4)], 1);
        // M2 is kept; its global neighbors U1, U2, U3, U5 may not all be kept.
        let lm = s.local_id(g.item_node(1)).unwrap() as usize;
        let local_degree = s.adjacency().degree(lm);
        let global_degree = g.degree(g.item_node(1));
        assert!(local_degree <= global_degree);
    }

    #[test]
    fn disconnected_nodes_not_reached() {
        // Item 2 has no ratings: disconnected.
        let g = BipartiteGraph::from_ratings(2, 3, &[(0, 0, 1.0), (1, 1, 2.0)]);
        let s = Subgraph::bfs_from(&g, &[g.user_node(0)], usize::MAX);
        assert_eq!(s.local_id(g.item_node(2)), None);
        assert_eq!(s.local_id(g.user_node(1)), None);
        assert_eq!(s.n_nodes(), 2);
    }

    #[test]
    fn seeds_always_included() {
        let g = figure2_graph();
        let s = Subgraph::bfs_from(&g, &[g.item_node(3), g.item_node(5)], 0);
        assert_eq!(s.n_items(), 2);
        assert_eq!(s.n_nodes(), 2);
    }
}
