//! Pre-normalized random-walk transition kernel.
//!
//! Every walk in this workspace moves with probability `p_ij = w_ij / d_i`
//! (Eq. 3 of the paper). The naive implementation recomputes that division
//! for every edge on every iteration of the truncated dynamic program — τ·m
//! divisions per query for τ iterations over m edges. [`TransitionMatrix`]
//! performs the normalization once, storing the row-stochastic kernel in CSR
//! form so the iteration kernels reduce to multiply-accumulate loops over
//! contiguous slices.

use crate::adjacency::Adjacency;

/// A row-stochastic transition kernel in CSR form.
///
/// Row `i` holds the out-transition probabilities of node `i`; rows of
/// zero-degree (dangling) nodes are empty. Each probability is the exact
/// rounded quotient `w_ij / d_i` the unnormalized code recomputed per
/// iteration, so kernel walks evaluate the same recursion (up to summation
/// order within a row).
#[derive(Debug, Clone, PartialEq)]
pub struct TransitionMatrix {
    pub(crate) n: usize,
    pub(crate) row_ptr: Vec<usize>,
    pub(crate) col_idx: Vec<u32>,
    pub(crate) prob: Vec<f64>,
    pub(crate) degree: Vec<f64>,
}

impl TransitionMatrix {
    /// An empty kernel over zero nodes (useful as reusable scratch — see
    /// [`crate::SubgraphScratch`]).
    pub fn empty() -> Self {
        Self {
            n: 0,
            row_ptr: vec![0],
            col_idx: Vec::new(),
            prob: Vec::new(),
            degree: Vec::new(),
        }
    }

    /// Normalize an adjacency into its transition kernel. O(n + m).
    pub fn from_adjacency(adj: &Adjacency) -> Self {
        let n = adj.n_nodes();
        let mut row_ptr = Vec::with_capacity(n + 1);
        let mut col_idx = Vec::with_capacity(adj.n_arcs());
        let mut prob = Vec::with_capacity(adj.n_arcs());
        let mut degree = Vec::with_capacity(n);
        row_ptr.push(0);
        for i in 0..n {
            let d = adj.degree(i);
            degree.push(d);
            if d > 0.0 {
                for (j, w) in adj.neighbors(i) {
                    col_idx.push(j);
                    prob.push(w / d);
                }
            }
            row_ptr.push(col_idx.len());
        }
        Self {
            n,
            row_ptr,
            col_idx,
            prob,
            degree,
        }
    }

    /// Number of nodes.
    #[inline]
    pub fn n_nodes(&self) -> usize {
        self.n
    }

    /// Number of stored transitions.
    #[inline]
    pub fn nnz(&self) -> usize {
        self.col_idx.len()
    }

    /// Targets and probabilities of node `i`'s out-transitions, as parallel
    /// slices. Empty for dangling nodes.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f64]) {
        let span = self.row_ptr[i]..self.row_ptr[i + 1];
        (&self.col_idx[span.clone()], &self.prob[span])
    }

    /// Weighted degree the row was normalized by (0 for dangling nodes).
    #[inline]
    pub fn degree(&self, i: usize) -> f64 {
        self.degree[i]
    }

    /// Whether node `i` has no outgoing transitions.
    #[inline]
    pub fn is_dangling(&self, i: usize) -> bool {
        self.row_ptr[i] == self.row_ptr[i + 1]
    }

    /// Reset to an empty kernel over `n` nodes, retaining allocations.
    pub(crate) fn reset(&mut self, n: usize) {
        self.n = n;
        self.row_ptr.clear();
        self.row_ptr.push(0);
        self.col_idx.clear();
        self.prob.clear();
        self.degree.clear();
    }

    /// Serialize this kernel into a snapshot under `prefix`: sections
    /// `{prefix}.n` (`u64`), `{prefix}.row_ptr` (`u64`), `{prefix}.col_idx`
    /// (`u32`), `{prefix}.prob` (`f64`) and `{prefix}.degree` (`f64`).
    pub fn save_into(&self, w: &mut crate::snapshot::SnapshotWriter, prefix: &str) {
        w.put_u64s(&format!("{prefix}.n"), &[self.n as u64]);
        let row_ptr: Vec<u64> = self.row_ptr.iter().map(|&p| p as u64).collect();
        w.put_u64s(&format!("{prefix}.row_ptr"), &row_ptr);
        w.put_u32s(&format!("{prefix}.col_idx"), &self.col_idx);
        w.put_f64s(&format!("{prefix}.prob"), &self.prob);
        w.put_f64s(&format!("{prefix}.degree"), &self.degree);
    }

    /// Deserialize a kernel written by [`TransitionMatrix::save_into`]
    /// under the same `prefix`, validating structure fallibly (see
    /// [`crate::CsrMatrix::load_from`] for the validation philosophy).
    pub fn load_from(
        snap: &crate::snapshot::Snapshot,
        prefix: &str,
    ) -> Result<Self, crate::snapshot::SnapshotError> {
        use crate::snapshot::SnapshotError;
        let invalid =
            |section: String, reason: String| SnapshotError::InvalidSection { section, reason };
        let n_name = format!("{prefix}.n");
        let n_vals = snap.usizes(&n_name)?;
        let [n] = n_vals[..] else {
            return Err(invalid(
                n_name,
                format!("expected [n], found {} element(s)", n_vals.len()),
            ));
        };
        let ptr_name = format!("{prefix}.row_ptr");
        let row_ptr = snap.usizes(&ptr_name)?;
        let col_idx = snap.u32s(&format!("{prefix}.col_idx"))?;
        let prob = snap.f64s(&format!("{prefix}.prob"))?;
        let degree = snap.f64s(&format!("{prefix}.degree"))?;

        if row_ptr.len() != n + 1 {
            return Err(invalid(
                ptr_name,
                format!("length {} != n + 1 = {}", row_ptr.len(), n + 1),
            ));
        }
        if row_ptr[0] != 0 || row_ptr.windows(2).any(|w| w[0] > w[1]) {
            return Err(invalid(
                ptr_name,
                "row_ptr must start at 0 and be non-decreasing".to_string(),
            ));
        }
        let nnz = *row_ptr.last().unwrap();
        if col_idx.len() != nnz || prob.len() != nnz {
            return Err(invalid(
                format!("{prefix}.col_idx"),
                format!(
                    "row_ptr promises {nnz} transitions, found {} targets / {} probabilities",
                    col_idx.len(),
                    prob.len()
                ),
            ));
        }
        if degree.len() != n {
            return Err(invalid(
                format!("{prefix}.degree"),
                format!("length {} != n = {n}", degree.len()),
            ));
        }
        if let Some(&bad) = col_idx.iter().find(|&&c| c as usize >= n) {
            return Err(invalid(
                format!("{prefix}.col_idx"),
                format!("transition target {bad} out of bounds ({n} nodes)"),
            ));
        }
        Ok(Self {
            n,
            row_ptr,
            col_idx,
            prob,
            degree,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::BipartiteGraph;
    use crate::csr::CsrMatrix;

    fn tiny() -> Adjacency {
        let g = BipartiteGraph::from_ratings(
            2,
            3,
            &[(0, 0, 1.0), (0, 1, 2.0), (1, 1, 3.0), (1, 2, 4.0)],
        );
        Adjacency::from_bipartite(&g)
    }

    #[test]
    fn rows_are_stochastic() {
        let kernel = TransitionMatrix::from_adjacency(&tiny());
        for i in 0..kernel.n_nodes() {
            if kernel.is_dangling(i) {
                continue;
            }
            let (_, probs) = kernel.row(i);
            let sum: f64 = probs.iter().sum();
            assert!((sum - 1.0).abs() < 1e-12, "row {i} sums to {sum}");
        }
    }

    #[test]
    fn probabilities_match_weight_over_degree() {
        let adj = tiny();
        let kernel = TransitionMatrix::from_adjacency(&adj);
        for i in 0..adj.n_nodes() {
            let (cols, probs) = kernel.row(i);
            let expected: Vec<(u32, f64)> = adj
                .neighbors(i)
                .map(|(j, w)| (j, w / adj.degree(i)))
                .collect();
            assert_eq!(cols.len(), expected.len());
            for (k, &(j, p)) in expected.iter().enumerate() {
                assert_eq!(cols[k], j);
                assert_eq!(probs[k], p, "exact division expected at ({i}, {j})");
            }
        }
    }

    #[test]
    fn dangling_nodes_have_empty_rows() {
        let csr = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let adj = Adjacency::from_symmetric_csr(csr);
        let kernel = TransitionMatrix::from_adjacency(&adj);
        assert!(kernel.is_dangling(2));
        assert_eq!(kernel.row(2), (&[][..], &[][..]));
        assert_eq!(kernel.degree(2), 0.0);
        assert!(!kernel.is_dangling(0));
    }

    #[test]
    fn empty_kernel_reset_reuses_allocations() {
        let mut k = TransitionMatrix::empty();
        assert_eq!(k.n_nodes(), 0);
        k.reset(5);
        assert_eq!(k.n_nodes(), 5);
        assert_eq!(k.nnz(), 0);
    }

    #[test]
    fn snapshot_round_trip_is_exact() {
        use crate::snapshot::{Snapshot, SnapshotError, SnapshotWriter};
        let kernel = TransitionMatrix::from_adjacency(&tiny());
        let mut w = SnapshotWriter::new("KERNEL", 1);
        kernel.save_into(&mut w, "k");
        let snap = Snapshot::from_bytes(w.to_bytes()).unwrap();
        let back = TransitionMatrix::load_from(&snap, "k").unwrap();
        assert_eq!(back, kernel);
        // Structurally invalid kernel fails with a typed error.
        let mut w = SnapshotWriter::new("KERNEL", 1);
        w.put_u64s("k.n", &[2]);
        w.put_u64s("k.row_ptr", &[0, 1, 1]);
        w.put_u32s("k.col_idx", &[7]); // target out of bounds
        w.put_f64s("k.prob", &[1.0]);
        w.put_f64s("k.degree", &[1.0, 0.0]);
        let snap = Snapshot::from_bytes(w.to_bytes()).unwrap();
        assert!(matches!(
            TransitionMatrix::load_from(&snap, "k"),
            Err(SnapshotError::InvalidSection { .. })
        ));
    }
}
