//! A read-only view abstraction over the bipartite rating graph.
//!
//! The walk algorithms only ever *traverse*: given a flat node id, visit its
//! neighbors with weights. [`GraphView`] captures exactly that surface, so
//! the BFS subgraph growth and induced-kernel construction in
//! [`crate::SubgraphScratch`] can run unchanged over
//!
//! * the frozen base [`crate::BipartiteGraph`],
//! * a base + [`crate::EdgeDelta`] overlay ([`crate::OverlayGraph`]) that
//!   merges streamed rating appends in without rebuilding the CSR, and
//! * a [`Decayed`] wrapper that re-weights edges by recency on the fly.
//!
//! Implementations are monomorphized (the visitor methods take `impl
//! FnMut`), so the hot loops cost the same as the direct CSR iteration they
//! replaced. The one contract that matters for reproducibility: neighbors
//! are visited in **ascending flat-id order** with fully merged weights —
//! the same order a CSR row built from the union of the edges would store —
//! so kernels built through any view round identically to kernels built
//! from a rebuilt graph (weights being exact sums, e.g. integer star
//! ratings, makes them bit-identical).

/// A traversable weighted bipartite graph in the flat node id space
/// (`0..n_users` users, then `n_users..n_users+n_items` items).
pub trait GraphView {
    /// Number of user nodes.
    fn n_users(&self) -> usize;

    /// Number of item nodes.
    fn n_items(&self) -> usize;

    /// Total nodes.
    #[inline]
    fn n_nodes(&self) -> usize {
        self.n_users() + self.n_items()
    }

    /// Flat node id of user `u`.
    #[inline]
    fn user_node(&self, u: u32) -> usize {
        u as usize
    }

    /// Flat node id of item `i`.
    #[inline]
    fn item_node(&self, i: u32) -> usize {
        self.n_users() + i as usize
    }

    /// Whether a flat node id is an item node.
    #[inline]
    fn is_item_node(&self, node: usize) -> bool {
        node >= self.n_users()
    }

    /// Visit the neighbors of `node` in ascending flat-id order, with the
    /// merged edge weight.
    fn for_each_edge(&self, node: usize, f: impl FnMut(usize, f64));

    /// Visit the neighbors of `node` with weight *and* edge timestamp
    /// (seconds; `0.0` where the underlying data carries no timestamps).
    /// Same order as [`GraphView::for_each_edge`].
    fn for_each_edge_timed(&self, node: usize, mut f: impl FnMut(usize, f64, f64)) {
        self.for_each_edge(node, |nbr, w| f(nbr, w, 0.0));
    }

    /// Visit the item ids rated by `user`, ascending, with merged weights.
    fn for_each_rated(&self, user: u32, mut f: impl FnMut(u32, f64)) {
        let n_users = self.n_users();
        self.for_each_edge(self.user_node(user), |nbr, w| f((nbr - n_users) as u32, w));
    }
}

/// Exponential recency decay of edge weights:
/// `w' = w · 2^(−(now − t) / half_life)`.
///
/// The serving-time knob behind [`Decayed`]: a query scored under a decay
/// config de-emphasizes stale ratings without touching the stored graph.
/// Edges with no timestamp (t = 0) decay as "age `now`" — maximally stale —
/// so decay is only meaningful on timestamped data.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecencyDecay {
    /// Age at which an edge's weight halves, in the same unit as the edge
    /// timestamps (seconds for the MovieLens epochs).
    pub half_life: f64,
    /// The "current time" ages are measured against.
    pub now: f64,
}

impl RecencyDecay {
    /// A decay with the given half-life, measured against `now`.
    ///
    /// # Panics
    ///
    /// Panics unless `half_life` is positive and finite.
    pub fn new(half_life: f64, now: f64) -> Self {
        assert!(
            half_life > 0.0 && half_life.is_finite(),
            "half_life must be positive and finite, got {half_life}"
        );
        Self { half_life, now }
    }

    /// The multiplicative factor applied to an edge stamped `t`. Future
    /// timestamps (t > now) are clamped to factor 1 rather than amplified.
    #[inline]
    pub fn factor(&self, t: f64) -> f64 {
        let age = (self.now - t).max(0.0);
        (-std::f64::consts::LN_2 * age / self.half_life).exp()
    }
}

/// A [`GraphView`] whose edge weights are the inner view's weights scaled
/// by [`RecencyDecay::factor`] of each edge's timestamp.
///
/// Composes with any view — `Decayed<BipartiteGraph>` for a frozen
/// timestamped graph, `Decayed<OverlayGraph>` for decay over base + delta.
#[derive(Debug, Clone, Copy)]
pub struct Decayed<'a, G: GraphView> {
    inner: &'a G,
    decay: RecencyDecay,
}

impl<'a, G: GraphView> Decayed<'a, G> {
    /// Wrap `inner` under `decay`.
    pub fn new(inner: &'a G, decay: RecencyDecay) -> Self {
        Self { inner, decay }
    }
}

impl<G: GraphView> GraphView for Decayed<'_, G> {
    #[inline]
    fn n_users(&self) -> usize {
        self.inner.n_users()
    }

    #[inline]
    fn n_items(&self) -> usize {
        self.inner.n_items()
    }

    #[inline]
    fn for_each_edge(&self, node: usize, mut f: impl FnMut(usize, f64)) {
        let decay = self.decay;
        self.inner
            .for_each_edge_timed(node, |nbr, w, t| f(nbr, w * decay.factor(t)));
    }

    #[inline]
    fn for_each_edge_timed(&self, node: usize, mut f: impl FnMut(usize, f64, f64)) {
        let decay = self.decay;
        self.inner
            .for_each_edge_timed(node, |nbr, w, t| f(nbr, w * decay.factor(t), t));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bipartite::BipartiteGraph;

    #[test]
    fn bipartite_view_matches_csr_rows() {
        let g = BipartiteGraph::from_ratings(
            2,
            3,
            &[(0, 0, 1.0), (0, 2, 2.0), (1, 1, 3.0), (1, 2, 4.0)],
        );
        assert_eq!(GraphView::n_users(&g), 2);
        assert_eq!(GraphView::n_items(&g), 3);
        let mut seen = Vec::new();
        g.for_each_edge(0, |nbr, w| seen.push((nbr, w)));
        assert_eq!(seen, vec![(2, 1.0), (4, 2.0)]);
        seen.clear();
        // Item 2 (node 4) is rated by both users.
        g.for_each_edge(4, |nbr, w| seen.push((nbr, w)));
        assert_eq!(seen, vec![(0, 2.0), (1, 4.0)]);
        let mut rated = Vec::new();
        g.for_each_rated(1, |i, w| rated.push((i, w)));
        assert_eq!(rated, vec![(1, 3.0), (2, 4.0)]);
    }

    #[test]
    fn decay_factor_halves_per_half_life() {
        let d = RecencyDecay::new(10.0, 100.0);
        assert!((d.factor(100.0) - 1.0).abs() < 1e-15, "fresh edge");
        assert!((d.factor(90.0) - 0.5).abs() < 1e-12, "one half-life");
        assert!((d.factor(80.0) - 0.25).abs() < 1e-12, "two half-lives");
        assert_eq!(d.factor(200.0), 1.0, "future timestamps clamp");
    }

    #[test]
    #[should_panic(expected = "half_life")]
    fn zero_half_life_rejected() {
        RecencyDecay::new(0.0, 1.0);
    }

    #[test]
    fn decayed_view_scales_untimed_edges_by_now() {
        let g = BipartiteGraph::from_ratings(1, 1, &[(0, 0, 4.0)]);
        // No timestamps on the graph: every edge reads t = 0, age = now.
        let view = Decayed::new(&g, RecencyDecay::new(1.0, 2.0));
        let mut w_seen = 0.0;
        view.for_each_edge(0, |_, w| w_seen = w);
        assert!(
            (w_seen - 1.0).abs() < 1e-12,
            "4.0 · 2^-2 = 1.0, got {w_seen}"
        );
    }
}
