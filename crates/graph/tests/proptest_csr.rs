//! Property tests: CSR matrices agree with a naive map-based model.

use longtail_graph::{BipartiteGraph, CsrMatrix};
use proptest::prelude::*;
use std::collections::BTreeMap;

/// Strategy: a random triplet list on a bounded shape.
fn triplets(rows: u32, cols: u32) -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0..rows, 0..cols, 1.0f64..5.0), 0..60)
}

fn model(triplets: &[(u32, u32, f64)]) -> BTreeMap<(u32, u32), f64> {
    let mut m = BTreeMap::new();
    for &(r, c, v) in triplets {
        *m.entry((r, c)).or_insert(0.0) += v;
    }
    m
}

proptest! {
    #[test]
    fn from_triplets_matches_model(ts in triplets(8, 9)) {
        let m = CsrMatrix::from_triplets(8, 9, &ts);
        let reference = model(&ts);
        prop_assert_eq!(m.nnz(), reference.len());
        for (&(r, c), &v) in &reference {
            let got = m.get(r as usize, c).unwrap();
            prop_assert!((got - v).abs() < 1e-9);
        }
    }

    #[test]
    fn transpose_is_involutive(ts in triplets(7, 5)) {
        let m = CsrMatrix::from_triplets(7, 5, &ts);
        prop_assert_eq!(m.transpose().transpose(), m);
    }

    #[test]
    fn transpose_swaps_indices(ts in triplets(6, 6)) {
        let m = CsrMatrix::from_triplets(6, 6, &ts);
        let t = m.transpose();
        for r in 0..6usize {
            for (c, v) in m.iter_row(r) {
                prop_assert_eq!(t.get(c as usize, r as u32), Some(v));
            }
        }
    }

    #[test]
    fn row_sums_add_to_total(ts in triplets(10, 4)) {
        let m = CsrMatrix::from_triplets(10, 4, &ts);
        let total: f64 = (0..10).map(|r| m.row_sum(r)).sum();
        prop_assert!((total - m.total_sum()).abs() < 1e-9);
    }

    #[test]
    fn matvec_agrees_with_dense(ts in triplets(5, 5), x in prop::collection::vec(-3.0f64..3.0, 5)) {
        let m = CsrMatrix::from_triplets(5, 5, &ts);
        let dense = m.to_dense();
        let mut y = vec![0.0; 5];
        m.matvec(&x, &mut y);
        for r in 0..5 {
            let expected: f64 = (0..5).map(|c| dense[r * 5 + c] * x[c]).sum();
            prop_assert!((y[r] - expected).abs() < 1e-9);
        }
    }

    #[test]
    fn bipartite_degree_equals_row_sums(ts in triplets(6, 7)) {
        let g = BipartiteGraph::from_ratings(6, 7, &ts);
        // Total degree mass is conserved on both sides.
        let user_total: f64 = (0..6).map(|u| g.degree(u)).sum();
        let item_total: f64 = (0..7).map(|i| g.degree(6 + i)).sum();
        prop_assert!((user_total - item_total).abs() < 1e-9);
        prop_assert!((user_total - g.total_weight()).abs() < 1e-9);
    }

    #[test]
    fn stationary_distribution_is_probability(ts in triplets(5, 5)) {
        let g = BipartiteGraph::from_ratings(5, 5, &ts);
        let pi = g.stationary_distribution();
        prop_assert!(pi.iter().all(|&p| (0.0..=1.0).contains(&p)));
        let sum: f64 = pi.iter().sum();
        if g.n_edges() > 0 {
            prop_assert!((sum - 1.0).abs() < 1e-9);
        } else {
            prop_assert_eq!(sum, 0.0);
        }
    }

    #[test]
    fn neighbors_are_mutual(ts in triplets(5, 6)) {
        let g = BipartiteGraph::from_ratings(5, 6, &ts);
        for node in 0..g.n_nodes() {
            for (nbr, w) in g.neighbors(node) {
                let back: Vec<(usize, f64)> = g.neighbors(nbr).collect();
                prop_assert!(back.contains(&(node, w)), "edge {node}<->{nbr} not mutual");
            }
        }
    }
}
