//! Property tests: BFS subgraph extraction invariants.

use longtail_graph::{BipartiteGraph, Subgraph};
use proptest::prelude::*;

fn ratings() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0..8u32, 0..10u32, 1.0f64..5.0), 1..50)
}

proptest! {
    #[test]
    fn mapping_is_a_bijection(ts in ratings(), seed in 0..8u32, budget in 0..12usize) {
        let g = BipartiteGraph::from_ratings(8, 10, &ts);
        let s = Subgraph::bfs_from(&g, &[seed as usize], budget);
        // local -> global -> local round-trips.
        for local in 0..s.n_nodes() as u32 {
            let global = s.global_id(local);
            prop_assert_eq!(s.local_id(global), Some(local));
        }
        // Globals outside the subgraph have no local id.
        let retained: std::collections::HashSet<usize> = s.global_ids().iter().copied().collect();
        for global in 0..g.n_nodes() {
            if !retained.contains(&global) {
                prop_assert_eq!(s.local_id(global), None);
            }
        }
    }

    #[test]
    fn local_edges_exist_globally(ts in ratings(), seed in 0..8u32) {
        let g = BipartiteGraph::from_ratings(8, 10, &ts);
        let s = Subgraph::bfs_from(&g, &[seed as usize], usize::MAX);
        for local in 0..s.n_nodes() {
            let global = s.global_id(local as u32);
            for (lnbr, w) in s.adjacency().neighbors(local) {
                let gnbr = s.global_id(lnbr);
                let found = g.neighbors(global).any(|(n, gw)| n == gnbr && (gw - w).abs() < 1e-12);
                prop_assert!(found, "local edge {local}->{lnbr} missing globally");
            }
        }
    }

    #[test]
    fn unlimited_budget_covers_component(ts in ratings(), seed in 0..8u32) {
        let g = BipartiteGraph::from_ratings(8, 10, &ts);
        let s = Subgraph::bfs_from(&g, &[seed as usize], usize::MAX);
        // Every retained node (except possibly an isolated seed) connects to
        // another retained node, and degrees match the global graph.
        for local in 0..s.n_nodes() {
            let global = s.global_id(local as u32);
            let local_degree = s.adjacency().degree(local);
            prop_assert!((local_degree - g.degree(global)).abs() < 1e-9);
        }
    }

    #[test]
    fn item_count_respects_budget_plus_frontier(ts in ratings(), seed in 0..8u32, budget in 0..10usize) {
        let g = BipartiteGraph::from_ratings(8, 10, &ts);
        let s = Subgraph::bfs_from(&g, &[seed as usize], budget);
        // The budget can be overshot only by the frontier of a single node
        // expansion (a user's whole rating list), never by more.
        let max_activity = (0..8u32).map(|u| g.user_activity(u)).max().unwrap_or(0);
        prop_assert!(s.n_items() <= budget + max_activity + 1);
    }
}
