//! Row-major dense matrix.
//!
//! Only the dense kernels the recommenders actually need: the small
//! `(I - P_TT)` systems for exact absorbing times, the thin factors of the
//! randomized SVD behind PureSVD, and the LDA posterior summaries. Dimensions
//! stay in the low thousands, so a simple contiguous row-major buffer with
//! tight loops is the right tool — no blocking, no SIMD intrinsics.

use std::fmt;
use std::ops::{Index, IndexMut};

/// Dense row-major `rows x cols` matrix of `f64`.
#[derive(Clone, PartialEq)]
pub struct DenseMatrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DenseMatrix {
    /// Zero matrix of the given shape.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Build from a row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_row_major(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length mismatch");
        Self { rows, cols, data }
    }

    /// Build from a closure over `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Row `r` as a mutable slice.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Column `c` copied into a new vector.
    pub fn col(&self, c: usize) -> Vec<f64> {
        (0..self.rows).map(|r| self[(r, c)]).collect()
    }

    /// The underlying row-major buffer.
    #[inline]
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Matrix transpose.
    pub fn transpose(&self) -> DenseMatrix {
        let mut t = DenseMatrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                t[(c, r)] = self[(r, c)];
            }
        }
        t
    }

    /// Matrix product `self * other`.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &DenseMatrix) -> DenseMatrix {
        assert_eq!(self.cols, other.rows, "matmul dimension mismatch");
        let mut out = DenseMatrix::zeros(self.rows, other.cols);
        // i-k-j loop order: the inner loop walks contiguous rows of both
        // `other` and `out`, which is the cache-friendly order for row-major
        // storage.
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(i, k)];
                if a == 0.0 {
                    continue;
                }
                let orow = other.row(k);
                let out_row = out.row_mut(i);
                for (o, &b) in out_row.iter_mut().zip(orow.iter()) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// Matrix-vector product `y = self * x`.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn matvec(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "matvec input length");
        assert_eq!(y.len(), self.rows, "matvec output length");
        for (r, out) in y.iter_mut().enumerate() {
            *out = crate::vector::dot(self.row(r), x);
        }
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|v| v * v).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry-wise difference to `other`.
    ///
    /// # Panics
    ///
    /// Panics if shapes differ.
    pub fn max_abs_diff(&self, other: &DenseMatrix) -> f64 {
        assert_eq!(self.rows, other.rows, "shape mismatch");
        assert_eq!(self.cols, other.cols, "shape mismatch");
        self.data
            .iter()
            .zip(other.data.iter())
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl Index<(usize, usize)> for DenseMatrix {
    type Output = f64;

    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for DenseMatrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Debug for DenseMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "DenseMatrix {}x{} [", self.rows, self.cols)?;
        for r in 0..self.rows.min(8) {
            writeln!(f, "  {:?}", self.row(r))?;
        }
        if self.rows > 8 {
            writeln!(f, "  ... ({} more rows)", self.rows - 8)?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matmul_is_noop() {
        let a = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = DenseMatrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = DenseMatrix::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = DenseMatrix::from_row_major(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data(), &[58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn transpose_involution() {
        let a = DenseMatrix::from_fn(3, 4, |r, c| (r * 4 + c) as f64);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], a[(1, 2)]);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = DenseMatrix::from_row_major(2, 3, vec![1.0, 0.0, -1.0, 2.0, 1.0, 0.0]);
        let x = [3.0, 4.0, 5.0];
        let mut y = [0.0; 2];
        a.matvec(&x, &mut y);
        assert_eq!(y, [-2.0, 10.0]);
    }

    #[test]
    fn frobenius_norm_known() {
        let a = DenseMatrix::from_row_major(2, 2, vec![3.0, 0.0, 4.0, 0.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn col_extraction() {
        let a = DenseMatrix::from_row_major(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.col(1), vec![2.0, 4.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = DenseMatrix::zeros(2, 3);
        let b = DenseMatrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn max_abs_diff_zero_for_equal() {
        let a = DenseMatrix::from_fn(2, 2, |r, c| (r + c) as f64);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }
}
