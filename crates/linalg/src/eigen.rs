//! Symmetric eigendecomposition by the cyclic Jacobi method.
//!
//! The randomized SVD reduces the big sparse problem to the eigendecomposition
//! of a small `(f + oversample)²` Gram matrix; Jacobi rotation is the
//! textbook-robust choice at that size (quadratic convergence, no shifts to
//! tune, eigenvectors for free).

use crate::dense::DenseMatrix;

/// Eigendecomposition `A = V diag(λ) Vᵀ` of a symmetric matrix.
#[derive(Debug, Clone)]
pub struct SymmetricEigen {
    /// Eigenvalues sorted descending.
    pub values: Vec<f64>,
    /// Orthonormal eigenvectors as columns, in the same order as `values`.
    pub vectors: DenseMatrix,
}

/// Decompose a symmetric matrix with cyclic Jacobi sweeps.
///
/// `a` is assumed symmetric; only its upper triangle is trusted. Iteration
/// stops when the off-diagonal Frobenius mass drops below `tol` or after
/// `max_sweeps` full sweeps (30 sweeps is far more than Jacobi ever needs in
/// practice).
///
/// # Panics
///
/// Panics if `a` is not square.
pub fn jacobi_eigen(a: &DenseMatrix, max_sweeps: usize, tol: f64) -> SymmetricEigen {
    assert_eq!(
        a.rows(),
        a.cols(),
        "eigendecomposition requires a square matrix"
    );
    let n = a.rows();
    let mut m = a.clone();
    let mut v = DenseMatrix::identity(n);

    for _sweep in 0..max_sweeps {
        let off: f64 = {
            let mut s = 0.0;
            for i in 0..n {
                for j in i + 1..n {
                    s += m[(i, j)] * m[(i, j)];
                }
            }
            s.sqrt()
        };
        if off <= tol {
            break;
        }
        for p in 0..n {
            for q in p + 1..n {
                let apq = m[(p, q)];
                if apq.abs() <= f64::EPSILON * (m[(p, p)].abs() + m[(q, q)].abs()) {
                    continue;
                }
                // Classic Jacobi rotation annihilating m[p][q].
                let theta = (m[(q, q)] - m[(p, p)]) / (2.0 * apq);
                let t = theta.signum() / (theta.abs() + (theta * theta + 1.0).sqrt());
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;

                for k in 0..n {
                    let mkp = m[(k, p)];
                    let mkq = m[(k, q)];
                    m[(k, p)] = c * mkp - s * mkq;
                    m[(k, q)] = s * mkp + c * mkq;
                }
                for k in 0..n {
                    let mpk = m[(p, k)];
                    let mqk = m[(q, k)];
                    m[(p, k)] = c * mpk - s * mqk;
                    m[(q, k)] = s * mpk + c * mqk;
                }
                for k in 0..n {
                    let vkp = v[(k, p)];
                    let vkq = v[(k, q)];
                    v[(k, p)] = c * vkp - s * vkq;
                    v[(k, q)] = s * vkp + c * vkq;
                }
            }
        }
    }

    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[(j, j)].partial_cmp(&m[(i, i)]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m[(i, i)]).collect();
    let vectors = DenseMatrix::from_fn(n, n, |r, c| v[(r, order[c])]);
    SymmetricEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_decomposition(a: &DenseMatrix, eig: &SymmetricEigen, tol: f64) {
        let n = a.rows();
        // A v_i = λ_i v_i for every eigenpair.
        for i in 0..n {
            let vi = eig.vectors.col(i);
            let mut av = vec![0.0; n];
            a.matvec(&vi, &mut av);
            for r in 0..n {
                assert!(
                    (av[r] - eig.values[i] * vi[r]).abs() < tol,
                    "eigenpair {i} violated at row {r}"
                );
            }
        }
    }

    #[test]
    fn diagonal_matrix_eigenvalues() {
        let a =
            DenseMatrix::from_row_major(3, 3, vec![2.0, 0.0, 0.0, 0.0, 5.0, 0.0, 0.0, 0.0, 1.0]);
        let eig = jacobi_eigen(&a, 30, 1e-14);
        assert_eq!(eig.values, vec![5.0, 2.0, 1.0]);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 3 and 1.
        let a = DenseMatrix::from_row_major(2, 2, vec![2.0, 1.0, 1.0, 2.0]);
        let eig = jacobi_eigen(&a, 30, 1e-14);
        assert!((eig.values[0] - 3.0).abs() < 1e-12);
        assert!((eig.values[1] - 1.0).abs() < 1e-12);
        check_decomposition(&a, &eig, 1e-10);
    }

    #[test]
    fn random_symmetric_decomposes() {
        let n = 10;
        let mut seed = 7u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let raw = DenseMatrix::from_fn(n, n, |_, _| next());
        // Symmetrize.
        let a = DenseMatrix::from_fn(n, n, |r, c| 0.5 * (raw[(r, c)] + raw[(c, r)]));
        let eig = jacobi_eigen(&a, 50, 1e-14);
        check_decomposition(&a, &eig, 1e-8);
        // Eigenvalues sorted descending.
        for w in eig.values.windows(2) {
            assert!(w[0] >= w[1] - 1e-12);
        }
        // Trace preserved.
        let trace: f64 = (0..n).map(|i| a[(i, i)]).sum();
        let sum: f64 = eig.values.iter().sum();
        assert!((trace - sum).abs() < 1e-8);
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a =
            DenseMatrix::from_row_major(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 1.0, 0.5, 1.0, 2.0]);
        let eig = jacobi_eigen(&a, 50, 1e-14);
        let g = eig.vectors.transpose().matmul(&eig.vectors);
        assert!(g.max_abs_diff(&DenseMatrix::identity(3)) < 1e-10);
    }
}
