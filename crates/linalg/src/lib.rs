//! Dense linear algebra substrate for the long-tail recommendation workspace.
//!
//! No external linear algebra crates are available offline, so the kernels
//! the paper's algorithms need are implemented here from scratch:
//!
//! * [`DenseMatrix`] — row-major dense storage with the handful of products
//!   the solvers need;
//! * [`vector`] — BLAS-1 helpers plus the Shannon [`vector::entropy`] used by
//!   the Absorbing Cost models (Eq. 10–11);
//! * [`lu`] — LU with partial pivoting for exact hitting/absorbing times;
//! * [`qr`] — thin modified Gram-Schmidt QR;
//! * [`eigen`] — cyclic Jacobi symmetric eigendecomposition;
//! * [`svd`] — randomized truncated SVD over an abstract [`LinearOp`]
//!   (PureSVD's factorization backend);
//! * [`ops`] — the [`LinearOp`] trait for matrix-free operators.

#![warn(missing_docs)]

pub mod dense;
pub mod eigen;
pub mod lu;
pub mod ops;
pub mod qr;
pub mod svd;
pub mod vector;

pub use dense::DenseMatrix;
pub use eigen::{jacobi_eigen, SymmetricEigen};
pub use lu::{solve, LinalgError, LuDecomposition};
pub use ops::LinearOp;
pub use qr::{thin_qr, ThinQr};
pub use svd::{randomized_svd, SvdConfig, TruncatedSvd};
