//! LU decomposition with partial pivoting.
//!
//! The exact hitting/absorbing time of §3.3/§4.1 is the solution of the
//! linear system `(I - P_TT) h = 1` over the transient states (Kemeny &
//! Snell 1976, the paper's \[13\]). Subgraphs are small (µ item nodes plus
//! their raters), so a dense LU with partial pivoting is both simple and
//! exact — it is the reference the truncated iteration is validated against.

use crate::dense::DenseMatrix;

/// Error raised when a factorization or solve cannot proceed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinalgError {
    /// The matrix is singular to working precision (pivot below threshold).
    Singular {
        /// Elimination column where the zero pivot appeared.
        column: usize,
    },
    /// Input dimensions are inconsistent.
    DimensionMismatch {
        /// Human-readable description of the mismatch.
        what: &'static str,
    },
}

impl std::fmt::Display for LinalgError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinalgError::Singular { column } => {
                write!(f, "matrix is singular (zero pivot at column {column})")
            }
            LinalgError::DimensionMismatch { what } => write!(f, "dimension mismatch: {what}"),
        }
    }
}

impl std::error::Error for LinalgError {}

/// An LU factorization `P A = L U` of a square matrix.
#[derive(Debug, Clone)]
pub struct LuDecomposition {
    /// Packed L (unit lower, below diagonal) and U (upper incl. diagonal).
    lu: DenseMatrix,
    /// Row permutation: row `i` of `PA` is row `perm[i]` of `A`.
    perm: Vec<usize>,
}

/// Pivots smaller than this are treated as exact zeros.
const PIVOT_EPS: f64 = 1e-12;

impl LuDecomposition {
    /// Factor a square matrix.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Singular`] if a pivot underflows `1e-12`,
    /// [`LinalgError::DimensionMismatch`] if the matrix is not square.
    pub fn new(a: &DenseMatrix) -> Result<Self, LinalgError> {
        if a.rows() != a.cols() {
            return Err(LinalgError::DimensionMismatch {
                what: "LU requires a square matrix",
            });
        }
        let n = a.rows();
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        for k in 0..n {
            // Partial pivoting: bring the largest |entry| in column k to the
            // diagonal for numerical stability.
            let mut pivot_row = k;
            let mut pivot_val = lu[(k, k)].abs();
            for r in k + 1..n {
                let v = lu[(r, k)].abs();
                if v > pivot_val {
                    pivot_val = v;
                    pivot_row = r;
                }
            }
            if pivot_val < PIVOT_EPS {
                return Err(LinalgError::Singular { column: k });
            }
            if pivot_row != k {
                perm.swap(k, pivot_row);
                for c in 0..n {
                    let tmp = lu[(k, c)];
                    lu[(k, c)] = lu[(pivot_row, c)];
                    lu[(pivot_row, c)] = tmp;
                }
            }
            let pivot = lu[(k, k)];
            for r in k + 1..n {
                let factor = lu[(r, k)] / pivot;
                lu[(r, k)] = factor;
                for c in k + 1..n {
                    let delta = factor * lu[(k, c)];
                    lu[(r, c)] -= delta;
                }
            }
        }
        Ok(Self { lu, perm })
    }

    /// Solve `A x = b`.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b` has the wrong length.
    pub fn solve(&self, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
        let n = self.lu.rows();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                what: "rhs length must equal matrix order",
            });
        }
        // Forward substitution with permuted rhs: L y = P b.
        let mut x: Vec<f64> = (0..n).map(|i| b[self.perm[i]]).collect();
        for r in 1..n {
            let mut acc = x[r];
            for (c, &xc) in x[..r].iter().enumerate() {
                acc -= self.lu[(r, c)] * xc;
            }
            x[r] = acc;
        }
        // Back substitution: U x = y.
        for r in (0..n).rev() {
            let mut acc = x[r];
            for (k, &xc) in x[r + 1..].iter().enumerate() {
                acc -= self.lu[(r, r + 1 + k)] * xc;
            }
            x[r] = acc / self.lu[(r, r)];
        }
        Ok(x)
    }

    /// Order of the factored matrix.
    #[inline]
    pub fn order(&self) -> usize {
        self.lu.rows()
    }
}

/// One-shot convenience: factor and solve `A x = b`.
///
/// # Errors
///
/// Propagates factorization and dimension errors.
pub fn solve(a: &DenseMatrix, b: &[f64]) -> Result<Vec<f64>, LinalgError> {
    LuDecomposition::new(a)?.solve(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &DenseMatrix, x: &[f64], b: &[f64]) -> f64 {
        let mut ax = vec![0.0; b.len()];
        a.matvec(x, &mut ax);
        crate::vector::max_abs_diff(&ax, b)
    }

    #[test]
    fn solve_identity() {
        let a = DenseMatrix::identity(3);
        let x = solve(&a, &[1.0, 2.0, 3.0]).unwrap();
        assert_eq!(x, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn solve_known_system() {
        // 2x + y = 5; x + 3y = 10  => x = 1, y = 3.
        let a = DenseMatrix::from_row_major(2, 2, vec![2.0, 1.0, 1.0, 3.0]);
        let x = solve(&a, &[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_requires_pivoting() {
        // Zero on the leading diagonal forces a row swap.
        let a = DenseMatrix::from_row_major(2, 2, vec![0.0, 1.0, 1.0, 0.0]);
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert_eq!(x, vec![3.0, 2.0]);
    }

    #[test]
    fn singular_matrix_reports_error() {
        let a = DenseMatrix::from_row_major(2, 2, vec![1.0, 2.0, 2.0, 4.0]);
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn non_square_rejected() {
        let a = DenseMatrix::zeros(2, 3);
        assert!(matches!(
            LuDecomposition::new(&a),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn wrong_rhs_length_rejected() {
        let a = DenseMatrix::identity(2);
        let lu = LuDecomposition::new(&a).unwrap();
        assert!(matches!(
            lu.solve(&[1.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn random_system_small_residual() {
        // Fixed pseudo-random values; diagonally dominated so well-conditioned.
        let n = 12;
        let mut seed = 42u64;
        let mut next = move || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64 / (1u64 << 31) as f64) - 0.5
        };
        let mut a = DenseMatrix::from_fn(n, n, |_, _| next());
        for i in 0..n {
            a[(i, i)] += n as f64;
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = solve(&a, &b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-9);
    }

    #[test]
    fn factor_once_solve_many() {
        let a = DenseMatrix::from_row_major(2, 2, vec![4.0, 1.0, 2.0, 3.0]);
        let lu = LuDecomposition::new(&a).unwrap();
        for b in [[1.0, 0.0], [0.0, 1.0], [5.0, 5.0]] {
            let x = lu.solve(&b).unwrap();
            assert!(residual(&a, &x, &b) < 1e-12);
        }
    }
}
