//! Abstract linear operator.
//!
//! The randomized SVD only needs products `A x` and `Aᵀ x`, never the entries
//! of `A`. Abstracting over a [`LinearOp`] lets PureSVD run directly on the
//! sparse CSR rating matrix (adapter in `longtail-core`) while tests use
//! small dense matrices.

use crate::dense::DenseMatrix;

/// A real linear operator `A : R^cols -> R^rows` exposing forward and
/// transposed products.
pub trait LinearOp {
    /// Output dimension of the forward product.
    fn rows(&self) -> usize;
    /// Input dimension of the forward product.
    fn cols(&self) -> usize;
    /// `y = A x`. Implementations may assume `x.len() == cols()` and
    /// `y.len() == rows()`.
    fn matvec(&self, x: &[f64], y: &mut [f64]);
    /// `y = Aᵀ x`. Implementations may assume `x.len() == rows()` and
    /// `y.len() == cols()`.
    fn matvec_t(&self, x: &[f64], y: &mut [f64]);
}

impl LinearOp for DenseMatrix {
    fn rows(&self) -> usize {
        DenseMatrix::rows(self)
    }

    fn cols(&self) -> usize {
        DenseMatrix::cols(self)
    }

    fn matvec(&self, x: &[f64], y: &mut [f64]) {
        DenseMatrix::matvec(self, x, y);
    }

    fn matvec_t(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), DenseMatrix::rows(self), "matvec_t input length");
        assert_eq!(y.len(), DenseMatrix::cols(self), "matvec_t output length");
        y.fill(0.0);
        for (r, &xr) in x.iter().enumerate() {
            if xr == 0.0 {
                continue;
            }
            crate::vector::axpy(xr, self.row(r), y);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dense_matvec_t_matches_transpose() {
        let a = DenseMatrix::from_row_major(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let x = [1.0, -1.0];
        let mut y = [0.0; 3];
        LinearOp::matvec_t(&a, &x, &mut y);
        let t = a.transpose();
        let mut expected = [0.0; 3];
        DenseMatrix::matvec(&t, &x, &mut expected);
        assert_eq!(y, expected);
    }
}
