//! Thin QR factorization by modified Gram-Schmidt.
//!
//! Used to re-orthonormalize the subspace basis between the power iterations
//! of the randomized SVD (PureSVD substrate). Matrices are tall and thin
//! (`n x (f + oversample)` with f ≤ a few hundred), where modified
//! Gram-Schmidt with a second reorthogonalization pass is numerically
//! adequate and much simpler than Householder.

use crate::dense::DenseMatrix;
use crate::vector;

/// Result of a thin QR factorization `A = Q R`.
#[derive(Debug, Clone)]
pub struct ThinQr {
    /// `rows x k` matrix with orthonormal columns.
    pub q: DenseMatrix,
    /// `k x k` upper-triangular factor.
    pub r: DenseMatrix,
}

/// Factor `a` (`m x k`, `m >= k`) as `Q R` with orthonormal `Q`.
///
/// Rank-deficient columns (norm below `1e-12` after projection) are replaced
/// by zero columns in `Q` with a zero diagonal in `R`; downstream SVD code
/// treats such directions as discarded.
///
/// # Panics
///
/// Panics if `a.rows() < a.cols()`.
pub fn thin_qr(a: &DenseMatrix) -> ThinQr {
    let m = a.rows();
    let k = a.cols();
    assert!(m >= k, "thin QR requires a tall matrix ({m} < {k})");
    // Work column-wise: copy columns out once, orthogonalize in place.
    let mut cols: Vec<Vec<f64>> = (0..k).map(|c| a.col(c)).collect();
    let mut r = DenseMatrix::zeros(k, k);

    for j in 0..k {
        let original_norm = vector::norm2(&cols[j]);
        // Two MGS passes ("twice is enough") against all previous columns.
        for _pass in 0..2 {
            for i in 0..j {
                let (head, tail) = cols.split_at_mut(j);
                let proj = vector::dot(&head[i], &tail[0]);
                r[(i, j)] += proj;
                vector::axpy(-proj, &head[i], &mut tail[0]);
            }
        }
        // A residual that lost ~all of its original mass is numerically in
        // the span of the previous columns; normalizing it would promote
        // round-off noise to a (non-orthogonal!) unit basis vector.
        let residual_norm = vector::norm2(&cols[j]);
        if residual_norm <= 1e-12_f64.max(1e-10 * original_norm) {
            cols[j].fill(0.0);
            r[(j, j)] = 0.0;
        } else {
            vector::normalize(&mut cols[j]);
            r[(j, j)] = residual_norm;
        }
    }

    let mut q = DenseMatrix::zeros(m, k);
    for (j, col) in cols.iter().enumerate() {
        for (i, &v) in col.iter().enumerate() {
            q[(i, j)] = v;
        }
    }
    ThinQr { q, r }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn orthonormality_defect(q: &DenseMatrix) -> f64 {
        let g = q.transpose().matmul(q);
        let k = g.rows();
        let mut worst: f64 = 0.0;
        for i in 0..k {
            for j in 0..k {
                let expected = if i == j { 1.0 } else { 0.0 };
                worst = worst.max((g[(i, j)] - expected).abs());
            }
        }
        worst
    }

    #[test]
    fn qr_reconstructs_input() {
        let a = DenseMatrix::from_row_major(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 9.0]);
        let ThinQr { q, r } = thin_qr(&a);
        let qr = q.matmul(&r);
        assert!(qr.max_abs_diff(&a) < 1e-10);
    }

    #[test]
    fn q_columns_are_orthonormal() {
        let a = DenseMatrix::from_fn(20, 5, |r, c| ((r * 7 + c * 13) % 11) as f64 - 5.0);
        let ThinQr { q, .. } = thin_qr(&a);
        assert!(orthonormality_defect(&q) < 1e-10);
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = DenseMatrix::from_fn(6, 3, |r, c| {
            (r + 2 * c + 1) as f64 * if r % 2 == 0 { 1.0 } else { -0.5 }
        });
        let ThinQr { r, .. } = thin_qr(&a);
        for i in 0..r.rows() {
            for j in 0..i {
                assert_eq!(r[(i, j)], 0.0, "R not upper triangular at ({i},{j})");
            }
        }
    }

    #[test]
    fn rank_deficient_columns_become_zero() {
        // Second column is 2x the first: rank 1.
        let a = DenseMatrix::from_row_major(3, 2, vec![1.0, 2.0, 2.0, 4.0, 3.0, 6.0]);
        let ThinQr { q, r } = thin_qr(&a);
        assert_eq!(r[(1, 1)], 0.0);
        for i in 0..3 {
            assert_eq!(q[(i, 1)], 0.0);
        }
        // Reconstruction still holds.
        assert!(q.matmul(&r).max_abs_diff(&a) < 1e-10);
    }

    #[test]
    #[should_panic(expected = "tall matrix")]
    fn wide_matrix_rejected() {
        thin_qr(&DenseMatrix::zeros(2, 3));
    }
}
