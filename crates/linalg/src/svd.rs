//! Randomized truncated SVD (Halko, Martinsson & Tropp 2011).
//!
//! PureSVD — the strongest matrix-factorization baseline in the paper's
//! evaluation (§5.1.1, following Cremonesi et al. 2010) — needs the top-f
//! singular triplets of the zero-filled rating matrix. The rating matrix is
//! sparse and only reachable through matvec products, so we use randomized
//! range finding with power iterations:
//!
//! 1. sketch `Y = A Ω` with a Gaussian test matrix `Ω`;
//! 2. alternate `Q ← qr(A qr(Aᵀ Q))` a few times to sharpen the spectrum;
//! 3. form the small Gram matrix `B Bᵀ = (Qᵀ A)(Qᵀ A)ᵀ` and eigendecompose
//!    it by Jacobi rotation to recover singular values and both factor sets.

use crate::dense::DenseMatrix;
use crate::eigen::jacobi_eigen;
use crate::ops::LinearOp;
use crate::qr::thin_qr;
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// Truncated singular value decomposition `A ≈ U diag(σ) Vᵀ`.
#[derive(Debug, Clone)]
pub struct TruncatedSvd {
    /// Left singular vectors, `rows x rank`, orthonormal columns.
    pub u: DenseMatrix,
    /// Singular values, descending, length `rank`.
    pub singular_values: Vec<f64>,
    /// Right singular vectors, `cols x rank`, orthonormal columns.
    pub v: DenseMatrix,
}

/// Configuration of the randomized SVD.
#[derive(Debug, Clone, Copy)]
pub struct SvdConfig {
    /// Number of singular triplets to keep.
    pub rank: usize,
    /// Extra sketch columns beyond `rank` (8–10 is the standard choice).
    pub oversample: usize,
    /// Number of power iterations (each sharpens the spectral decay; 2–6).
    pub power_iterations: usize,
    /// RNG seed for the Gaussian sketch — fixed for reproducibility.
    pub seed: u64,
}

impl SvdConfig {
    /// A config with the given rank and sensible defaults elsewhere.
    pub fn with_rank(rank: usize) -> Self {
        Self {
            rank,
            oversample: 8,
            power_iterations: 4,
            seed: 0x5eed_5eed,
        }
    }
}

/// Compute a truncated SVD of `a`.
///
/// The returned rank is `min(config.rank, min(rows, cols))`; directions whose
/// singular value collapses below `1e-10 * σ_max` are dropped, so the result
/// can be thinner than requested for low-rank inputs.
///
/// # Panics
///
/// Panics if `config.rank == 0` or the operator has a zero dimension.
pub fn randomized_svd(a: &dyn LinearOp, config: &SvdConfig) -> TruncatedSvd {
    let m = a.rows();
    let n = a.cols();
    assert!(config.rank > 0, "rank must be positive");
    assert!(m > 0 && n > 0, "operator must have positive dimensions");
    let target = config.rank.min(m.min(n));
    let sketch = (target + config.oversample).min(m.min(n));

    let mut rng = StdRng::seed_from_u64(config.seed);

    // Stage 1: range finder. Y = A Ω, column by column.
    let mut y = DenseMatrix::zeros(m, sketch);
    {
        let mut omega_col = vec![0.0; n];
        let mut y_col = vec![0.0; m];
        for j in 0..sketch {
            for w in omega_col.iter_mut() {
                *w = gaussian(&mut rng);
            }
            a.matvec(&omega_col, &mut y_col);
            for i in 0..m {
                y[(i, j)] = y_col[i];
            }
        }
    }
    let mut q = thin_qr(&y).q;

    // Stage 2: power iterations with re-orthonormalization each half-step.
    let mut z = DenseMatrix::zeros(n, sketch);
    for _ in 0..config.power_iterations {
        apply_columns(a, &q, &mut z, true);
        let qz = thin_qr(&z).q;
        apply_columns(a, &qz, &mut y, false);
        q = thin_qr(&y).q;
    }

    // Stage 3: project. Bᵀ = Aᵀ Q is n x sketch; the small Gram matrix
    // Bᵀᵀ Bᵀ = B Bᵀ is sketch x sketch.
    let mut bt = DenseMatrix::zeros(n, sketch);
    apply_columns(a, &q, &mut bt, true);
    let gram = bt.transpose().matmul(&bt);
    let eig = jacobi_eigen(&gram, 60, 1e-13);

    // σ_i = sqrt(λ_i); U = Q W; V = Bᵀ W Σ⁻¹.
    let sigma_max = eig.values.first().copied().unwrap_or(0.0).max(0.0).sqrt();
    let cutoff = sigma_max * 1e-10;
    let mut kept = 0usize;
    let mut singular_values = Vec::with_capacity(target);
    for i in 0..target {
        let s = eig.values[i].max(0.0).sqrt();
        if s <= cutoff {
            break;
        }
        singular_values.push(s);
        kept = i + 1;
    }

    let w_kept = DenseMatrix::from_fn(sketch, kept, |r, c| eig.vectors[(r, c)]);
    let u = q.matmul(&w_kept);
    let mut v = bt.matmul(&w_kept);
    for j in 0..kept {
        let inv = 1.0 / singular_values[j];
        for i in 0..n {
            v[(i, j)] *= inv;
        }
    }

    TruncatedSvd {
        u,
        singular_values,
        v,
    }
}

impl TruncatedSvd {
    /// Number of singular triplets actually kept.
    #[inline]
    pub fn rank(&self) -> usize {
        self.singular_values.len()
    }

    /// Reconstruct the dense approximation `U diag(σ) Vᵀ` (tests / tiny
    /// matrices only).
    pub fn reconstruct(&self) -> DenseMatrix {
        let m = self.u.rows();
        let n = self.v.rows();
        let k = self.rank();
        let mut out = DenseMatrix::zeros(m, n);
        for r in 0..m {
            for c in 0..n {
                let mut acc = 0.0;
                for j in 0..k {
                    acc += self.u[(r, j)] * self.singular_values[j] * self.v[(c, j)];
                }
                out[(r, c)] = acc;
            }
        }
        out
    }
}

/// For each column `x` of `src`, store `A x` (or `Aᵀ x`) into `dst`.
fn apply_columns(a: &dyn LinearOp, src: &DenseMatrix, dst: &mut DenseMatrix, transpose: bool) {
    let in_len = if transpose { a.rows() } else { a.cols() };
    let out_len = if transpose { a.cols() } else { a.rows() };
    debug_assert_eq!(src.rows(), in_len);
    debug_assert_eq!(dst.rows(), out_len);
    debug_assert_eq!(src.cols(), dst.cols());
    let mut x = vec![0.0; in_len];
    let mut y = vec![0.0; out_len];
    for j in 0..src.cols() {
        for (i, xi) in x.iter_mut().enumerate() {
            *xi = src[(i, j)];
        }
        if transpose {
            a.matvec_t(&x, &mut y);
        } else {
            a.matvec(&x, &mut y);
        }
        for (i, &yi) in y.iter().enumerate() {
            dst[(i, j)] = yi;
        }
    }
}

/// Standard normal sample by Box-Muller (the offline `rand` has no `Normal`
/// distribution; `rand_distr` is not available in this environment).
fn gaussian(rng: &mut StdRng) -> f64 {
    loop {
        let u1: f64 = rng.random();
        if u1 <= f64::MIN_POSITIVE {
            continue;
        }
        let u2: f64 = rng.random();
        return (-2.0f64 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn low_rank_matrix(m: usize, n: usize, rank: usize) -> DenseMatrix {
        // Sum of `rank` outer products with decaying strength.
        let mut out = DenseMatrix::zeros(m, n);
        for k in 0..rank {
            let scale = 10.0 / (k + 1) as f64;
            for r in 0..m {
                let ur = ((r * (k + 3) + 7) % 13) as f64 / 13.0 - 0.5;
                for c in 0..n {
                    let vc = ((c * (k + 5) + 3) % 17) as f64 / 17.0 - 0.5;
                    out[(r, c)] += scale * ur * vc;
                }
            }
        }
        out
    }

    #[test]
    fn exact_recovery_of_low_rank() {
        let a = low_rank_matrix(30, 20, 3);
        let svd = randomized_svd(&a, &SvdConfig::with_rank(3));
        assert!(svd.rank() <= 3);
        let err = svd.reconstruct().max_abs_diff(&a);
        assert!(err < 1e-8, "reconstruction error {err}");
    }

    #[test]
    fn singular_values_descending_and_positive() {
        let a = low_rank_matrix(25, 25, 5);
        let svd = randomized_svd(&a, &SvdConfig::with_rank(5));
        for w in svd.singular_values.windows(2) {
            assert!(w[0] >= w[1]);
        }
        assert!(svd.singular_values.iter().all(|&s| s > 0.0));
    }

    #[test]
    fn factors_are_orthonormal() {
        let a = low_rank_matrix(40, 18, 4);
        let svd = randomized_svd(&a, &SvdConfig::with_rank(4));
        let k = svd.rank();
        let gu = svd.u.transpose().matmul(&svd.u);
        let gv = svd.v.transpose().matmul(&svd.v);
        assert!(gu.max_abs_diff(&DenseMatrix::identity(k)) < 1e-8);
        assert!(gv.max_abs_diff(&DenseMatrix::identity(k)) < 1e-8);
    }

    #[test]
    fn truncation_captures_dominant_directions() {
        let a = low_rank_matrix(30, 30, 6);
        let full = randomized_svd(&a, &SvdConfig::with_rank(6));
        let trunc = randomized_svd(&a, &SvdConfig::with_rank(2));
        // Top-2 singular values agree with the rank-6 run.
        for i in 0..2 {
            assert!((full.singular_values[i] - trunc.singular_values[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = low_rank_matrix(20, 15, 3);
        let s1 = randomized_svd(&a, &SvdConfig::with_rank(3));
        let s2 = randomized_svd(&a, &SvdConfig::with_rank(3));
        assert_eq!(s1.singular_values, s2.singular_values);
        assert_eq!(s1.u.max_abs_diff(&s2.u), 0.0);
    }

    #[test]
    fn rank_capped_by_dimensions() {
        let a = low_rank_matrix(5, 4, 4);
        let svd = randomized_svd(&a, &SvdConfig::with_rank(100));
        assert!(svd.rank() <= 4);
    }

    #[test]
    fn zero_matrix_yields_empty_rank() {
        let a = DenseMatrix::zeros(6, 6);
        let svd = randomized_svd(&a, &SvdConfig::with_rank(3));
        assert_eq!(svd.rank(), 0);
    }
}
