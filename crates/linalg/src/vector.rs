//! BLAS-1 style vector kernels shared across the workspace.

/// Dot product of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "dot length mismatch");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// `y += alpha * x`.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn axpy(alpha: f64, x: &[f64], y: &mut [f64]) {
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    for (yi, &xi) in y.iter_mut().zip(x.iter()) {
        *yi += alpha * xi;
    }
}

/// `x *= alpha`.
#[inline]
pub fn scale(alpha: f64, x: &mut [f64]) {
    for xi in x.iter_mut() {
        *xi *= alpha;
    }
}

/// Euclidean norm.
#[inline]
pub fn norm2(x: &[f64]) -> f64 {
    dot(x, x).sqrt()
}

/// L1 norm.
#[inline]
pub fn norm1(x: &[f64]) -> f64 {
    x.iter().map(|v| v.abs()).sum()
}

/// Normalize to unit Euclidean length; returns the original norm. Vectors
/// with norm below `1e-300` are left untouched and `0.0` is returned.
pub fn normalize(x: &mut [f64]) -> f64 {
    let n = norm2(x);
    if n > 1e-300 {
        scale(1.0 / n, x);
        n
    } else {
        0.0
    }
}

/// Normalize in L1 so entries sum to 1 (probability simplex projection for
/// non-negative inputs); no-op on all-zero vectors.
pub fn normalize_l1(x: &mut [f64]) {
    let n = norm1(x);
    if n > 1e-300 {
        scale(1.0 / n, x);
    }
}

/// Maximum absolute difference between two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[inline]
pub fn max_abs_diff(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "max_abs_diff length mismatch");
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs())
        .fold(0.0, f64::max)
}

/// Shannon entropy `-Σ p_i ln p_i` of a probability vector (entries assumed
/// non-negative; zero entries contribute nothing). This is the form used for
/// user entropy in Eq. 10 and Eq. 11.
pub fn entropy(p: &[f64]) -> f64 {
    p.iter().filter(|&&v| v > 0.0).map(|&v| -v * v.ln()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_known() {
        assert_eq!(dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn axpy_accumulates() {
        let mut y = vec![1.0, 1.0];
        axpy(2.0, &[3.0, -1.0], &mut y);
        assert_eq!(y, vec![7.0, -1.0]);
    }

    #[test]
    fn normalize_unit_norm() {
        let mut x = vec![3.0, 4.0];
        let n = normalize(&mut x);
        assert_eq!(n, 5.0);
        assert!((norm2(&x) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut x = vec![0.0, 0.0];
        assert_eq!(normalize(&mut x), 0.0);
        assert_eq!(x, vec![0.0, 0.0]);
    }

    #[test]
    fn normalize_l1_simplex() {
        let mut x = vec![1.0, 3.0];
        normalize_l1(&mut x);
        assert_eq!(x, vec![0.25, 0.75]);
    }

    #[test]
    fn entropy_uniform_is_ln_n() {
        let p = vec![0.25; 4];
        assert!((entropy(&p) - 4.0f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn entropy_point_mass_is_zero() {
        assert_eq!(entropy(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn entropy_increases_with_spread() {
        assert!(entropy(&[0.5, 0.5]) > entropy(&[0.9, 0.1]));
    }
}
