//! Property tests: linear-algebra kernels against their defining identities.

use longtail_linalg::dense::DenseMatrix;
use longtail_linalg::lu::LuDecomposition;
use longtail_linalg::qr::thin_qr;
use longtail_linalg::vector;
use proptest::prelude::*;

/// A random well-conditioned (diagonally dominant) square matrix.
fn dominant_matrix(n: usize) -> impl Strategy<Value = DenseMatrix> {
    prop::collection::vec(-1.0f64..1.0, n * n).prop_map(move |data| {
        let mut m = DenseMatrix::from_row_major(n, n, data);
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

proptest! {
    #[test]
    fn lu_solves_dominant_systems(a in dominant_matrix(6), b in prop::collection::vec(-5.0f64..5.0, 6)) {
        let lu = LuDecomposition::new(&a).unwrap();
        let x = lu.solve(&b).unwrap();
        let mut ax = vec![0.0; 6];
        a.matvec(&x, &mut ax);
        prop_assert!(vector::max_abs_diff(&ax, &b) < 1e-8);
    }

    #[test]
    fn qr_reconstructs_and_orthonormalizes(data in prop::collection::vec(-2.0f64..2.0, 8 * 3)) {
        let a = DenseMatrix::from_row_major(8, 3, data);
        let qr = thin_qr(&a);
        // A = QR.
        prop_assert!(qr.q.matmul(&qr.r).max_abs_diff(&a) < 1e-8);
        // QᵀQ has unit diagonal for kept columns, zeros elsewhere.
        let g = qr.q.transpose().matmul(&qr.q);
        for i in 0..3 {
            for j in 0..3 {
                let expected = if i == j && qr.r[(i, i)] != 0.0 { 1.0 } else { 0.0 };
                prop_assert!((g[(i, j)] - expected).abs() < 1e-8, "G[{i}{j}] = {}", g[(i, j)]);
            }
        }
    }

    #[test]
    fn matmul_is_associative_with_vectors(
        data in prop::collection::vec(-2.0f64..2.0, 4 * 4),
        x in prop::collection::vec(-2.0f64..2.0, 4),
    ) {
        // (A·A)·x == A·(A·x)
        let a = DenseMatrix::from_row_major(4, 4, data);
        let aa = a.matmul(&a);
        let mut lhs = vec![0.0; 4];
        aa.matvec(&x, &mut lhs);
        let mut tmp = vec![0.0; 4];
        a.matvec(&x, &mut tmp);
        let mut rhs = vec![0.0; 4];
        a.matvec(&tmp, &mut rhs);
        prop_assert!(vector::max_abs_diff(&lhs, &rhs) < 1e-8);
    }

    #[test]
    fn entropy_is_maximal_at_uniform(weights in prop::collection::vec(0.01f64..1.0, 5)) {
        let mut p = weights;
        vector::normalize_l1(&mut p);
        let e = vector::entropy(&p);
        prop_assert!(e >= -1e-12);
        prop_assert!(e <= 5.0f64.ln() + 1e-9);
    }

    #[test]
    fn normalize_produces_unit_vectors(x in prop::collection::vec(-10.0f64..10.0, 6)) {
        prop_assume!(vector::norm2(&x) > 1e-6);
        let mut v = x;
        let n = vector::normalize(&mut v);
        prop_assert!(n > 0.0);
        prop_assert!((vector::norm2(&v) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn dot_is_bilinear(
        a in prop::collection::vec(-3.0f64..3.0, 5),
        b in prop::collection::vec(-3.0f64..3.0, 5),
        c in -2.0f64..2.0,
    ) {
        let scaled: Vec<f64> = a.iter().map(|v| v * c).collect();
        let lhs = vector::dot(&scaled, &b);
        let rhs = c * vector::dot(&a, &b);
        prop_assert!((lhs - rhs).abs() < 1e-8);
    }
}
