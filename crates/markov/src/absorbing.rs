//! Absorbing random walks: truncated and exact absorbing times and costs.
//!
//! Definitions 2–3 of the paper: given absorbing nodes `S`, the absorbing
//! time `AT(S|i)` is the expected number of steps before a walker starting at
//! `i` first reaches `S`; the absorbing cost `AC(S|i)` generalizes the +1 per
//! hop to an arbitrary per-hop charge (Eq. 8). Both satisfy a first-step
//! recurrence (Eq. 6 / Eq. 9) that this module evaluates two ways:
//!
//! * **truncated** — iterate the dynamic program a fixed `τ` times
//!   (Algorithm 1). `O(τ·m)`, and after ~15 iterations the *ranking* of item
//!   nodes is stable, which is all recommendation needs;
//! * **exact** — solve the linear system `(I - P_TT) x = r` over transient
//!   states with dense LU. `O(n³)`, used on small subgraphs, as ground truth
//!   in tests, and to reproduce the Figure 2 worked example.

use crate::cost::{CostModel, UnitCost};
use crate::dp::{truncated_costs_into, DpBuffers};
use longtail_graph::{Adjacency, TransitionMatrix};
use longtail_linalg::dense::DenseMatrix;
use longtail_linalg::lu::{LinalgError, LuDecomposition};
use std::borrow::Cow;

/// An absorbing random walk over a fixed transition kernel and absorbing
/// set.
///
/// This is the convenient owned API: each walk normalizes (or borrows) its
/// kernel once and every query method allocates its own result vector. The
/// allocation-free hot path used by batch scoring lives in [`crate::dp`];
/// both share the same iteration kernel.
#[derive(Debug, Clone)]
pub struct AbsorbingWalk<'a> {
    kernel: Cow<'a, TransitionMatrix>,
    absorbing: Vec<bool>,
    n_absorbing: usize,
}

impl<'a> AbsorbingWalk<'a> {
    /// Create a walk absorbed by `absorbing_nodes`, normalizing `adj` into
    /// a transition kernel once up front.
    ///
    /// # Panics
    ///
    /// Panics if the absorbing set is empty or contains out-of-range ids.
    pub fn new(adj: &'a Adjacency, absorbing_nodes: &[usize]) -> Self {
        Self::with_kernel(
            Cow::Owned(TransitionMatrix::from_adjacency(adj)),
            absorbing_nodes,
        )
    }

    /// Create a walk over a pre-built kernel, avoiding renormalization.
    ///
    /// # Panics
    ///
    /// Panics if the absorbing set is empty or contains out-of-range ids.
    pub fn from_kernel(kernel: &'a TransitionMatrix, absorbing_nodes: &[usize]) -> Self {
        Self::with_kernel(Cow::Borrowed(kernel), absorbing_nodes)
    }

    fn with_kernel(kernel: Cow<'a, TransitionMatrix>, absorbing_nodes: &[usize]) -> Self {
        assert!(
            !absorbing_nodes.is_empty(),
            "absorbing set must be non-empty"
        );
        let n = kernel.n_nodes();
        let mut absorbing = vec![false; n];
        let mut n_absorbing = 0;
        for &node in absorbing_nodes {
            assert!(node < n, "absorbing node {node} out of range");
            if !absorbing[node] {
                absorbing[node] = true;
                n_absorbing += 1;
            }
        }
        Self {
            kernel,
            absorbing,
            n_absorbing,
        }
    }

    /// Whether `node` is absorbing.
    #[inline]
    pub fn is_absorbing(&self, node: usize) -> bool {
        self.absorbing[node]
    }

    /// The walk's (pre-normalized) transition kernel.
    #[inline]
    pub fn kernel(&self) -> &TransitionMatrix {
        &self.kernel
    }

    /// Number of distinct absorbing nodes.
    #[inline]
    pub fn n_absorbing(&self) -> usize {
        self.n_absorbing
    }

    /// Truncated absorbing times after `iterations` rounds of the dynamic
    /// program (Algorithm 1, steps 3–4): start from `AT_0 ≡ 0` and apply
    /// `AT_{t+1}(i) = 1 + Σ_j p_ij AT_t(j)` on non-absorbing nodes.
    ///
    /// Nodes that cannot reach `S` keep growing with `t`; zero-degree
    /// non-absorbing nodes are reported as `f64::INFINITY`. Larger `τ` only
    /// sharpens values; the induced item ranking typically stabilizes by
    /// `τ ≈ 15` (validated against [`AbsorbingWalk::exact_times`] in tests).
    pub fn truncated_times(&self, iterations: usize) -> Vec<f64> {
        self.truncated_costs(&UnitCost, iterations)
    }

    /// Truncated absorbing costs under `cost` (Eq. 9 with `τ` iterations).
    ///
    /// Delegates to the buffer-reusing kernel in [`crate::dp`]; this
    /// convenience form pays one `DpBuffers` allocation per call.
    pub fn truncated_costs(&self, cost: &dyn CostModel, iterations: usize) -> Vec<f64> {
        let mut bufs = DpBuffers::new();
        truncated_costs_into(&self.kernel, &self.absorbing, cost, iterations, &mut bufs).to_vec()
    }

    /// Exact absorbing times by solving `(I - P_TT) x = 1` over transient
    /// states (Kemeny & Snell; the paper's Eq. 6).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Singular`] when some transient state cannot
    /// reach the absorbing set (the system is then genuinely singular).
    pub fn exact_times(&self) -> Result<Vec<f64>, LinalgError> {
        self.exact_costs(&UnitCost)
    }

    /// Exact absorbing costs: solve `(I - P_TT) x = r` with
    /// `r_i = Σ_j p_ij · entry_cost(j)`.
    ///
    /// # Errors
    ///
    /// Same as [`AbsorbingWalk::exact_times`].
    pub fn exact_costs(&self, cost: &dyn CostModel) -> Result<Vec<f64>, LinalgError> {
        let n = self.kernel.n_nodes();
        // Transient states: non-absorbing with at least one edge. Dangling
        // nodes are excluded and reported as infinite.
        let transient: Vec<usize> = (0..n)
            .filter(|&i| !self.absorbing[i] && !self.kernel.is_dangling(i))
            .collect();
        let index_of: Vec<Option<usize>> = {
            let mut map = vec![None; n];
            for (k, &node) in transient.iter().enumerate() {
                map[node] = Some(k);
            }
            map
        };

        let t = transient.len();
        let mut system = DenseMatrix::identity(t);
        let mut rhs = vec![0.0; t];
        for (row, &i) in transient.iter().enumerate() {
            let (cols, probs) = self.kernel.row(i);
            let mut immediate = 0.0;
            for (&j, &p) in cols.iter().zip(probs) {
                immediate += p * cost.entry_cost(j as usize);
                if let Some(col) = index_of[j as usize] {
                    system[(row, col)] -= p;
                }
            }
            rhs[row] = immediate;
        }

        let solution = LuDecomposition::new(&system)?.solve(&rhs)?;
        let mut out = vec![f64::INFINITY; n];
        for (k, &node) in transient.iter().enumerate() {
            out[node] = solution[k];
        }
        for (o, &is_absorbing) in out.iter_mut().zip(&self.absorbing) {
            if is_absorbing {
                *o = 0.0;
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::PerNodeCost;
    use longtail_graph::{BipartiteGraph, CsrMatrix};

    /// Path graph 0 - 1 - 2 with unit weights; absorbing at node 0.
    fn path3() -> Adjacency {
        let csr =
            CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        Adjacency::from_symmetric_csr(csr)
    }

    /// The paper's Figure 2 example: 5 users x 6 movies.
    fn figure2() -> (BipartiteGraph, Adjacency) {
        let ratings = [
            (0, 0, 5.0),
            (0, 1, 3.0),
            (0, 4, 3.0),
            (0, 5, 5.0),
            (1, 0, 5.0),
            (1, 1, 4.0),
            (1, 2, 5.0),
            (1, 4, 4.0),
            (1, 5, 5.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
            (2, 2, 4.0),
            (3, 2, 5.0),
            (3, 3, 5.0),
            (4, 1, 4.0),
            (4, 2, 5.0),
        ];
        let g = BipartiteGraph::from_ratings(5, 6, &ratings);
        let adj = Adjacency::from_bipartite(&g);
        (g, adj)
    }

    #[test]
    fn path_graph_exact_times() {
        // From node 1 the walk hits 0 with prob 1/2 per attempt:
        // h1 = 1 + h2/2, h2 = 1 + h1  =>  h1 = 3, h2 = 4.
        let adj = path3();
        let walk = AbsorbingWalk::new(&adj, &[0]);
        let h = walk.exact_times().unwrap();
        assert_eq!(h[0], 0.0);
        assert!((h[1] - 3.0).abs() < 1e-10);
        assert!((h[2] - 4.0).abs() < 1e-10);
    }

    #[test]
    fn truncated_converges_to_exact() {
        let adj = path3();
        let walk = AbsorbingWalk::new(&adj, &[0]);
        let exact = walk.exact_times().unwrap();
        let approx = walk.truncated_times(2000);
        for i in 0..3 {
            assert!((approx[i] - exact[i]).abs() < 1e-6, "node {i}");
        }
    }

    #[test]
    fn truncated_is_monotone_in_iterations() {
        let (_, adj) = figure2();
        let walk = AbsorbingWalk::new(&adj, &[4]); // absorb at user U5
        let t5 = walk.truncated_times(5);
        let t10 = walk.truncated_times(10);
        let t20 = walk.truncated_times(20);
        for i in 0..adj.n_nodes() {
            assert!(t5[i] <= t10[i] + 1e-12);
            assert!(t10[i] <= t20[i] + 1e-12);
        }
    }

    #[test]
    fn figure2_hitting_times_match_paper() {
        // The paper reports H(U5|M4)=17.7, H(U5|M1)=19.6, H(U5|M5)=20.2,
        // H(U5|M6)=20.3 (§3.3). Hitting time to U5 is the absorbing time
        // with S = {U5}. A τ=60 truncation reproduces those numbers to
        // ±0.05 (17.75 / 19.63 / 20.24 / 20.33), so that is evidently the
        // computation behind the paper's figures; the exact linear solve
        // lands ~0.8 steps above (18.40 / 20.39 / 21.02 / 21.12) with the
        // identical ordering and pairwise gaps.
        let (g, adj) = figure2();
        let walk = AbsorbingWalk::new(&adj, &[g.user_node(4)]);
        let h = walk.truncated_times(60);
        let m = |i: u32| h[g.item_node(i)];
        assert!((m(3) - 17.7).abs() < 0.1, "H(U5|M4) = {}", m(3));
        assert!((m(0) - 19.6).abs() < 0.1, "H(U5|M1) = {}", m(0));
        assert!((m(4) - 20.2).abs() < 0.1, "H(U5|M5) = {}", m(4));
        assert!((m(5) - 20.3).abs() < 0.1, "H(U5|M6) = {}", m(5));
        // The induced recommendation order of §3.3: the niche movie M4 wins,
        // under both the truncated and the exact computation.
        assert!(m(3) < m(0) && m(0) < m(4) && m(4) < m(5));
        let e = walk.exact_times().unwrap();
        let me = |i: u32| e[g.item_node(i)];
        assert!(me(3) < me(0) && me(0) < me(4) && me(4) < me(5));
    }

    #[test]
    fn truncated_ranking_matches_exact_at_tau_15() {
        // The paper claims τ = 15 already reproduces the exact ranking.
        let (g, adj) = figure2();
        let walk = AbsorbingWalk::new(&adj, &[g.user_node(4)]);
        let exact = walk.exact_times().unwrap();
        let approx = walk.truncated_times(15);
        let unrated = [0u32, 3, 4, 5];
        let mut exact_order: Vec<u32> = unrated.to_vec();
        exact_order.sort_by(|&a, &b| {
            exact[g.item_node(a)]
                .partial_cmp(&exact[g.item_node(b)])
                .unwrap()
        });
        let mut approx_order: Vec<u32> = unrated.to_vec();
        approx_order.sort_by(|&a, &b| {
            approx[g.item_node(a)]
                .partial_cmp(&approx[g.item_node(b)])
                .unwrap()
        });
        assert_eq!(exact_order, approx_order);
    }

    #[test]
    fn absorbing_nodes_have_zero_time() {
        let (g, adj) = figure2();
        let s = [g.item_node(1), g.item_node(2)];
        let walk = AbsorbingWalk::new(&adj, &s);
        let t = walk.truncated_times(15);
        assert_eq!(t[s[0]], 0.0);
        assert_eq!(t[s[1]], 0.0);
        let e = walk.exact_times().unwrap();
        assert_eq!(e[s[0]], 0.0);
        assert_eq!(e[s[1]], 0.0);
    }

    #[test]
    fn unit_cost_equals_time() {
        let (g, adj) = figure2();
        let walk = AbsorbingWalk::new(&adj, &[g.item_node(1)]);
        let t = walk.truncated_times(25);
        let c = walk.truncated_costs(&UnitCost, 25);
        assert_eq!(t, c);
        let te = walk.exact_times().unwrap();
        let ce = walk.exact_costs(&UnitCost).unwrap();
        for i in 0..adj.n_nodes() {
            assert!((te[i] - ce[i]).abs() < 1e-10);
        }
    }

    #[test]
    fn scaled_costs_scale_solution() {
        // entry_cost ≡ 2 must double every absorbing time.
        let (g, adj) = figure2();
        let walk = AbsorbingWalk::new(&adj, &[g.user_node(0)]);
        let times = walk.exact_times().unwrap();
        let double = PerNodeCost::new(vec![2.0; adj.n_nodes()]);
        let costs = walk.exact_costs(&double).unwrap();
        for i in 0..adj.n_nodes() {
            if times[i].is_finite() {
                assert!((costs[i] - 2.0 * times[i]).abs() < 1e-8, "node {i}");
            }
        }
    }

    #[test]
    fn unreachable_nodes_are_infinite_in_exact() {
        // Two components: 0-1 and 2-3; absorb at 0.
        let csr =
            CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0), (1, 0, 1.0), (2, 3, 1.0), (3, 2, 1.0)]);
        let adj = Adjacency::from_symmetric_csr(csr);
        let walk = AbsorbingWalk::new(&adj, &[0]);
        // (I - P_TT) is singular for the unreachable block {2, 3}.
        match walk.exact_times() {
            Err(LinalgError::Singular { .. }) => {}
            Ok(times) => {
                // If pivoting happened to succeed numerically, unreachable
                // nodes must still not carry small finite times.
                assert!(times[2] > 1e6 || times[2].is_infinite());
            }
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn zero_degree_nodes_infinite_in_truncated() {
        let csr = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let adj = Adjacency::from_symmetric_csr(csr);
        let walk = AbsorbingWalk::new(&adj, &[0]);
        let t = walk.truncated_times(10);
        assert!(t[2].is_infinite());
        assert!(t[1].is_finite());
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_absorbing_set_rejected() {
        let adj = path3();
        AbsorbingWalk::new(&adj, &[]);
    }

    #[test]
    fn duplicate_absorbing_nodes_counted_once() {
        let adj = path3();
        let walk = AbsorbingWalk::new(&adj, &[0, 0, 0]);
        assert_eq!(walk.n_absorbing(), 1);
    }
}
