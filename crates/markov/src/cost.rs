//! Transition cost models for the Absorbing Cost recursion (Eq. 8–9).
//!
//! The paper's key observation (§4.2) is that not every hop of the random
//! walk is equally informative: stepping from an item to a *taste-specific*
//! user says more than stepping to an omnivorous one. Eq. 9 encodes this by
//! charging the walk the target user's entropy `E(j)` when it enters user
//! node `j`, and a constant `C` when it enters an item node. Both charges
//! depend only on the node being *entered*, so the model reduces to a
//! per-node entry cost; the expected immediate cost from node `i` is
//! `Σ_j p_ij · entry_cost(j)`.

/// Cost charged when the walker enters a node.
///
/// Absorbing Time is the special case `entry_cost ≡ 1` (every hop costs one
/// step); [`UnitCost`] provides it. The entropy-biased models of §4.2 use
/// [`PerNodeCost`] with user entropies on user nodes and the constant `C` on
/// item nodes.
pub trait CostModel {
    /// Cost of entering `node`.
    fn entry_cost(&self, node: usize) -> f64;

    /// `Some(c)` when every node costs exactly `c` — lets hot loops replace
    /// a per-edge virtual call with a multiply that rounds identically
    /// (`p · c` for the constant `c` equals `p · entry_cost(j)`).
    #[inline]
    fn constant_cost(&self) -> Option<f64> {
        None
    }

    /// The per-node cost table as a raw slice, when one exists — lets hot
    /// loops gather costs directly instead of a virtual call per edge.
    /// Implementations must satisfy `cost_slice()[j] == entry_cost(j)`.
    #[inline]
    fn cost_slice(&self) -> Option<&[f64]> {
        None
    }
}

/// Every hop costs exactly one step: recovers Absorbing *Time* from the
/// Absorbing *Cost* recursion.
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitCost;

impl CostModel for UnitCost {
    #[inline]
    fn entry_cost(&self, _node: usize) -> f64 {
        1.0
    }

    #[inline]
    fn constant_cost(&self) -> Option<f64> {
        Some(1.0)
    }
}

/// Arbitrary per-node entry costs.
#[derive(Debug, Clone)]
pub struct PerNodeCost {
    costs: Vec<f64>,
}

impl PerNodeCost {
    /// Wrap a cost vector (indexed by node id).
    ///
    /// # Panics
    ///
    /// Panics if any cost is negative or non-finite — the absorbing-cost
    /// recursion requires non-negative costs to stay monotone.
    pub fn new(costs: Vec<f64>) -> Self {
        assert!(
            costs.iter().all(|c| c.is_finite() && *c >= 0.0),
            "entry costs must be finite and non-negative"
        );
        Self { costs }
    }

    /// Number of nodes covered.
    #[inline]
    pub fn len(&self) -> usize {
        self.costs.len()
    }

    /// True if no node costs are stored.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.costs.is_empty()
    }
}

impl CostModel for PerNodeCost {
    #[inline]
    fn entry_cost(&self, node: usize) -> f64 {
        self.costs[node]
    }

    #[inline]
    fn cost_slice(&self) -> Option<&[f64]> {
        Some(&self.costs)
    }
}

/// Per-node entry costs borrowed from a caller-owned slice — the
/// allocation-free counterpart of [`PerNodeCost`] for hot paths that refill
/// one cost buffer per query (see `longtail-core`'s `ScoringContext`).
///
/// Unlike [`PerNodeCost::new`] this performs no validation; the caller is
/// responsible for finite, non-negative costs.
#[derive(Debug, Clone, Copy)]
pub struct SliceCost<'a>(pub &'a [f64]);

impl CostModel for SliceCost<'_> {
    #[inline]
    fn entry_cost(&self, node: usize) -> f64 {
        self.0[node]
    }

    #[inline]
    fn cost_slice(&self) -> Option<&[f64]> {
        Some(self.0)
    }
}

/// Build the Eq. 9 entropy cost vector for a bipartite node space: entering
/// user `u` costs `user_entropy[u]`, entering any item costs `item_entry_cost`
/// (the paper's tuning constant `C`).
pub fn entropy_cost(user_entropy: &[f64], n_items: usize, item_entry_cost: f64) -> PerNodeCost {
    let mut costs = Vec::with_capacity(user_entropy.len() + n_items);
    costs.extend_from_slice(user_entropy);
    costs.extend(std::iter::repeat_n(item_entry_cost, n_items));
    PerNodeCost::new(costs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_cost_is_one_everywhere() {
        assert_eq!(UnitCost.entry_cost(0), 1.0);
        assert_eq!(UnitCost.entry_cost(12345), 1.0);
    }

    #[test]
    fn per_node_cost_lookup() {
        let c = PerNodeCost::new(vec![0.5, 2.0, 0.0]);
        assert_eq!(c.entry_cost(1), 2.0);
        assert_eq!(c.entry_cost(2), 0.0);
        assert_eq!(c.len(), 3);
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_cost_rejected() {
        PerNodeCost::new(vec![1.0, -0.1]);
    }

    #[test]
    fn entropy_cost_layout() {
        let c = entropy_cost(&[0.3, 0.9], 3, 1.5);
        assert_eq!(c.entry_cost(0), 0.3); // user 0
        assert_eq!(c.entry_cost(1), 0.9); // user 1
        assert_eq!(c.entry_cost(2), 1.5); // item 0
        assert_eq!(c.entry_cost(4), 1.5); // item 2
        assert_eq!(c.len(), 5);
    }
}
