//! Allocation-free truncated dynamic programs over a pre-normalized kernel.
//!
//! Algorithm 1's inner loop — `AC_{t+1}(i) = r_i + Σ_j p_ij AC_t(j)` — is
//! the hottest code in the system: it runs τ times per query over every edge
//! of the query's subgraph. This module implements it directly over
//! [`TransitionMatrix`] CSR slices (probabilities pre-divided, no hash maps,
//! no per-edge division) with all state in caller-owned [`DpBuffers`], so a
//! steady-state scoring loop performs no allocation at all.
//!
//! Each `p_ij` is the same rounded quotient the old loop recomputed per
//! iteration, so the recursion evaluates the pre-refactor formula; only the
//! within-row summation order differs (a blocked reduction on the fast
//! path), bounding the divergence to last-ulp rounding. The golden tests in
//! `tests/golden_kernel.rs` pin that equivalence against a verbatim copy of
//! the pre-refactor code.
//!
//! # Early termination
//!
//! [`truncated_costs_into`] always runs the full τ iterations — the
//! reference semantics every score is pinned to.
//! [`truncated_costs_converge_into`] is the adaptive serving variant: it
//! tracks the per-iteration sup-norm change `δ_t` and stops as soon as the
//! remaining iterations provably cannot matter. Its soundness rests on three
//! properties of the recursion:
//!
//! * **Monotonicity.** Starting from `AC_0 = 0`, with non-negative entry
//!   costs and a non-negative kernel, `AC_{t+1} − AC_t = P(AC_t − AC_{t−1})
//!   ≥ 0`: values only grow. (Equivalently: the negated *scores* the
//!   recommenders serve only shrink, so an early stop reports each item at
//!   an upper bound of its fixed-τ score.)
//! * **Contraction of increments.** Every kernel row sums to at most 1
//!   (rows are stochastic, or empty for dangling boundary nodes of an
//!   induced subgraph), so `‖AC_{t+q+1} − AC_{t+q}‖_∞ =
//!   ‖P^q (AC_{t+1} − AC_t)‖_∞ ≤ δ_t` for every `q ≥ 0`. After iteration
//!   `t`, no value can move by more than `δ_t · (τ − t)` before the fixed-τ
//!   horizon — the *remaining-change bound* handed to the rank-stability
//!   probe.
//! * **The `∞` front closes before δ is finite.** A node is `∞` exactly
//!   when it can reach a dangling pocket within the iteration count, and
//!   that set grows by one BFS ring per iteration until it is closed. Any
//!   iteration that turns a finite value infinite reports `δ_t = ∞`, so no
//!   stopping rule can fire while the reachable-candidate set is still
//!   changing: once `δ_t` is finite, finite nodes stay finite forever.

use crate::cost::CostModel;
use longtail_graph::TransitionMatrix;

/// Reusable state for the truncated absorbing-walk dynamic program.
///
/// Create once per worker thread and pass to [`truncated_costs_into`] for
/// every query; buffers are resized (retaining capacity) as subgraph sizes
/// vary.
#[derive(Debug, Clone, Default)]
pub struct DpBuffers {
    /// Expected immediate cost of one hop out of each node.
    immediate: Vec<f64>,
    /// DP value vector at the current iteration.
    current: Vec<f64>,
    /// DP value vector being written.
    next: Vec<f64>,
}

impl DpBuffers {
    /// Empty buffers; sized lazily by the first query.
    pub fn new() -> Self {
        Self::default()
    }

    /// The values of the last completed dynamic program.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.current
    }

    /// Cost of local node `local` from the last completed dynamic program:
    /// `Some(cost)` when the truncated walk assigns the node a finite
    /// absorbing cost, `None` when the node can only reach dangling pockets
    /// (`∞`).
    ///
    /// This is the extraction primitive of the fused top-k query path: a
    /// recommender walks the subgraph's item nodes and pulls each one's cost
    /// straight out of the DP state, so no global score vector is ever
    /// materialized.
    #[inline]
    pub fn finite_cost(&self, local: u32) -> Option<f64> {
        let v = self.current[local as usize];
        v.is_finite().then_some(v)
    }
}

/// What the rank-stability probe sees after one completed iteration of
/// [`truncated_costs_converge_into`].
///
/// Two sound remaining-change bounds can be derived from it, both capping
/// how far any value can still move before the fixed-τ horizon:
///
/// * [`DpProbe::global_bound`] — `δ_t · remaining`, valid for every
///   non-negative cost model (sup-norm increments are non-increasing under
///   a row-(sub)stochastic kernel).
/// * [`DpProbe::node_bound`] — `(v_t(i) − v_{t−1}(i)) · remaining`, the
///   node's *own* latest increment extended over the remaining iterations.
///   Valid only for **superharmonic** immediate costs (`P·r ≤ r`
///   elementwise, e.g. [`crate::UnitCost`], whose increments are per-node
///   survival probabilities): then `e_{t+1} = P·e_t ≤ e_t` *per node* by
///   induction, so every future increment of node `i` is at most its
///   current one. Much tighter than the global bound near the absorbing
///   set, where exactly the best-ranked candidates live.
#[derive(Debug, Clone, Copy)]
pub struct DpProbe<'a> {
    /// Current value vector (`v_t`).
    pub values: &'a [f64],
    /// Previous iteration's value vector (`v_{t−1}`).
    pub previous: &'a [f64],
    /// Sup-norm change of the completed iteration (finite when probed).
    pub delta: f64,
    /// Iterations left before the fixed-τ horizon.
    pub remaining: usize,
}

impl DpProbe<'_> {
    /// Remaining-change bound valid for every non-negative cost model.
    #[inline]
    pub fn global_bound(&self) -> f64 {
        self.delta * self.remaining as f64
    }

    /// Per-node remaining-change bound — sound only for superharmonic
    /// immediate costs (see the type docs).
    #[inline]
    pub fn node_bound(&self, local: usize) -> f64 {
        (self.values[local] - self.previous[local]) * self.remaining as f64
    }
}

/// First iteration at which the rank-stability probe is consulted.
const PROBE_START: usize = 6;

/// The δ/scale measurement pass is `O(n)` — noticeable against the sweeps
/// of small, sparse subgraphs — so it only runs every this many iterations
/// (plus on every probe-scheduled and final iteration). The convergence
/// stop can overshoot by at most `DELTA_STRIDE − 1` sweeps.
const DELTA_STRIDE: usize = 4;

/// After a failed probe at iteration `t`, the next probe runs at
/// `t + max(2, t/8)` — a geometric schedule dense enough to overshoot the
/// earliest provable stop by only a few percent while keeping probe
/// overhead negligible for both small and large budgets.
#[inline]
fn next_probe_after(t: usize) -> usize {
    t + (t / 8).max(2)
}

/// Outcome of one [`truncated_costs_converge_into`] run: how many of the τ
/// budgeted iterations actually ran, and which stopping rule ended the walk.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DpRun {
    /// Iterations actually performed (≤ `budget`).
    pub iterations: usize,
    /// The fixed-τ iteration budget the run was allowed.
    pub budget: usize,
    /// The value-convergence rule fired: `δ_t ≤ ε · scale`.
    pub converged: bool,
    /// The caller's rank-stability probe declared the top-k frozen.
    pub rank_frozen: bool,
    /// The caller's cooperative cancellation hook aborted the run (e.g. a
    /// serving deadline expired mid-walk). The value vector is whatever the
    /// last completed sweep produced — a sound *lower* bound on every
    /// fixed-τ value, but not rank-certified; callers must not serve a
    /// ranking from a cancelled run.
    pub cancelled: bool,
    /// Sup-norm change of the last *measured* iteration — δ is measured on
    /// a small stride plus every probe-scheduled and final iteration (`∞`
    /// when no iteration ran, or while the `∞` front was still spreading).
    pub last_delta: f64,
}

impl DpRun {
    /// A run that exhausted `budget` fixed iterations with no adaptive
    /// bookkeeping (the [`truncated_costs_into`] semantics).
    pub fn fixed(budget: usize) -> Self {
        Self {
            iterations: budget,
            budget,
            converged: false,
            rank_frozen: false,
            cancelled: false,
            last_delta: f64::INFINITY,
        }
    }
}

/// Hoist the expected immediate cost of one hop out of each transient node:
/// `Σ_j p_ij · entry_cost(j)`, constant across iterations. Returns whether
/// any transient node is dangling — only then can `∞` enter the recursion.
fn expected_immediate_costs(
    kernel: &TransitionMatrix,
    absorbing: &[bool],
    cost: &dyn CostModel,
    immediate: &mut Vec<f64>,
) -> bool {
    let n = kernel.n_nodes();
    immediate.clear();
    immediate.resize(n, 0.0);
    let constant = cost.constant_cost();
    let cost_table = cost.cost_slice();
    let mut any_infinite = false;
    for i in 0..n {
        if absorbing[i] {
            continue;
        }
        let (cols, probs) = kernel.row(i);
        if cols.is_empty() {
            immediate[i] = f64::INFINITY;
            any_infinite = true;
            continue;
        }
        let mut acc = 0.0;
        // The fast arms round identically to the virtual-call loop: `p · c`
        // and a gathered `p · table[j]` are the same multiplies.
        if let Some(c) = constant {
            for &p in probs {
                acc += p * c;
            }
        } else if let Some(table) = cost_table {
            for (&j, &p) in cols.iter().zip(probs) {
                acc += p * table[j as usize];
            }
        } else {
            for (&j, &p) in cols.iter().zip(probs) {
                acc += p * cost.entry_cost(j as usize);
            }
        }
        immediate[i] = acc;
    }
    any_infinite
}

/// One DP iteration, checked variant: `∞` from unreachable pockets must
/// short-circuit instead of producing NaN via `0.0 · ∞`-adjacent arithmetic.
fn sweep_checked(
    kernel: &TransitionMatrix,
    absorbing: &[bool],
    immediate: &[f64],
    current: &[f64],
    next: &mut [f64],
) {
    for i in 0..kernel.n_nodes() {
        if absorbing[i] {
            next[i] = 0.0;
            continue;
        }
        let (cols, probs) = kernel.row(i);
        if cols.is_empty() {
            next[i] = f64::INFINITY;
            continue;
        }
        let mut acc = 0.0;
        for (&j, &p) in cols.iter().zip(probs) {
            let v = current[j as usize];
            if v.is_finite() {
                acc += p * v;
            } else {
                acc = f64::INFINITY;
                break;
            }
        }
        next[i] = immediate[i] + acc;
    }
}

/// One DP iteration, fast variant: every value provably stays finite (each
/// bounded by τ·max immediate), so the per-edge finiteness branch — and the
/// empty-row probe — drop out of the hot loop entirely. Four accumulators
/// break the floating-point add latency chain that otherwise serializes the
/// row reduction (summation order differs from the checked variant by
/// last-ulp rounding only).
fn sweep_fast(
    kernel: &TransitionMatrix,
    absorbing: &[bool],
    immediate: &[f64],
    current: &[f64],
    next: &mut [f64],
) {
    for i in 0..kernel.n_nodes() {
        if absorbing[i] {
            next[i] = 0.0;
            continue;
        }
        let (cols, probs) = kernel.row(i);
        let mut cols4 = cols.chunks_exact(4);
        let mut probs4 = probs.chunks_exact(4);
        let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0, 0.0, 0.0);
        for (c, p) in (&mut cols4).zip(&mut probs4) {
            a0 += p[0] * current[c[0] as usize];
            a1 += p[1] * current[c[1] as usize];
            a2 += p[2] * current[c[2] as usize];
            a3 += p[3] * current[c[3] as usize];
        }
        let mut acc = (a0 + a1) + (a2 + a3);
        for (&j, &p) in cols4.remainder().iter().zip(probs4.remainder()) {
            acc += p * current[j as usize];
        }
        next[i] = immediate[i] + acc;
    }
}

/// Run the truncated absorbing-cost dynamic program (Eq. 9, Algorithm 1
/// steps 3–4) over `kernel`, absorbing at nodes flagged in `absorbing`,
/// for `iterations` rounds. Returns the value vector, which lives in
/// `bufs` until the next call.
///
/// Dangling non-absorbing nodes get `f64::INFINITY`, as do nodes whose walk
/// can only reach dangling pockets.
///
/// This is the *reference* form: it always performs exactly `iterations`
/// sweeps. Serving paths that only need the fixed-τ ranking (not the exact
/// fixed-τ values) should prefer [`truncated_costs_converge_into`].
///
/// # Panics
///
/// Panics if `absorbing.len() != kernel.n_nodes()`.
pub fn truncated_costs_into<'a>(
    kernel: &TransitionMatrix,
    absorbing: &[bool],
    cost: &dyn CostModel,
    iterations: usize,
    bufs: &'a mut DpBuffers,
) -> &'a [f64] {
    let n = kernel.n_nodes();
    assert_eq!(absorbing.len(), n, "absorbing flag vector length mismatch");

    let DpBuffers {
        immediate,
        current,
        next,
    } = bufs;
    let any_infinite = expected_immediate_costs(kernel, absorbing, cost, immediate);

    current.clear();
    current.resize(n, 0.0);
    next.clear();
    next.resize(n, 0.0);
    for _ in 0..iterations {
        if any_infinite {
            sweep_checked(kernel, absorbing, immediate, current, next);
        } else {
            sweep_fast(kernel, absorbing, immediate, current, next);
        }
        std::mem::swap(current, next);
    }
    current
}

/// The adaptive form of [`truncated_costs_into`]: identical per-iteration
/// arithmetic, but the run stops as soon as the remaining iterations
/// provably cannot matter. Two stopping rules, both derived from the
/// per-iteration sup-norm change `δ_t` (see the module docs for the
/// soundness argument):
///
/// * **Convergence** — `δ_t ≤ ε · scale`, where `scale` is the largest
///   finite value so far (floored at 1, so ε also acts absolutely near
///   zero). Every value is then within `δ_t · (τ − t)` of its fixed-τ
///   counterpart. With `δ_t = 0` the vector is an exact f64 fixed point and
///   the run stops unconditionally, bit-identical to the full run. With
///   `0 < δ_t ≤ ε · scale` the values are converged but near-tied *orders*
///   are not yet certified, so when a rank probe is supplied the stop
///   additionally requires its confirmation (rankings stay fixed-τ
///   identical); without a probe the caller gets plain value-converged
///   semantics. Pass `epsilon < 0` to restrict the rule to exact fixed
///   points.
/// * **Rank stability** — on a geometric schedule (from iteration 6, then
///   ~8 probes per decade), and only once `δ_t` is finite, `probe` (when
///   supplied) receives a [`DpProbe`] carrying the current and previous
///   value vectors plus the remaining iteration count; returning `true`
///   asserts that no admissible ranking outcome can change within the
///   probe's remaining-change bounds and stops the run. The fused serving
///   path uses this to halt the moment its top-k list is frozen.
///
/// A third, *non*-sound exit is cooperative cancellation: `cancel` (when
/// supplied) is consulted on the same measured iterations the δ pass runs
/// on — never inside the hot sweep — and returning `true` aborts the run
/// with [`DpRun::cancelled`] set. The serving layer uses this to stop
/// paying for a walk whose request deadline has already expired; the
/// abandoned values are monotone lower bounds of the fixed-τ values but
/// certify no ranking, so cancelled runs must not be served. An exact
/// fixed point (`δ_t = 0`) still stops as `converged` even when `cancel`
/// fires on the same iteration — the result is bit-identical to the full
/// run, so there is nothing to abandon.
///
/// The values of the stopped run are in `bufs` (as with the fixed form);
/// the returned [`DpRun`] reports iterations spent and which rule fired.
///
/// # Panics
///
/// Panics if `absorbing.len() != kernel.n_nodes()`.
#[allow(clippy::too_many_arguments)]
pub fn truncated_costs_converge_into(
    kernel: &TransitionMatrix,
    absorbing: &[bool],
    cost: &dyn CostModel,
    iterations: usize,
    epsilon: f64,
    mut probe: Option<&mut dyn FnMut(&DpProbe<'_>) -> bool>,
    cancel: Option<&dyn Fn() -> bool>,
    bufs: &mut DpBuffers,
) -> DpRun {
    let n = kernel.n_nodes();
    assert_eq!(absorbing.len(), n, "absorbing flag vector length mismatch");

    let DpBuffers {
        immediate,
        current,
        next,
    } = bufs;
    let any_infinite = expected_immediate_costs(kernel, absorbing, cost, immediate);

    current.clear();
    current.resize(n, 0.0);
    next.clear();
    next.resize(n, 0.0);
    let mut run = DpRun {
        iterations: 0,
        budget: iterations,
        converged: false,
        rank_frozen: false,
        cancelled: false,
        last_delta: f64::INFINITY,
    };
    let mut probe_at = PROBE_START;
    for t in 0..iterations {
        if any_infinite {
            sweep_checked(kernel, absorbing, immediate, current, next);
        } else {
            sweep_fast(kernel, absorbing, immediate, current, next);
        }
        let performed = t + 1;
        let scheduled_probe = probe.is_some() && performed < iterations && performed >= probe_at;
        if !(scheduled_probe || performed % DELTA_STRIDE == 0 || performed == iterations) {
            // Measurement skipped this iteration: the O(n) δ pass is real
            // cost against small subgraphs, and a convergence stop can
            // wait out the stride.
            std::mem::swap(current, next);
            run.iterations = performed;
            continue;
        }
        // δ_t and the value scale, in one O(n) pass over the sweep output. A
        // finite value turning infinite means the ∞ front is still
        // spreading: report δ_t = ∞ so no stopping rule can fire yet.
        // (Absorbing nodes hold 0 in both vectors and drop out of both
        // reductions on their own.)
        let mut delta = 0.0f64;
        let mut scale = 1.0f64;
        if any_infinite {
            for i in 0..n {
                let (new, old) = (next[i], current[i]);
                if new.is_finite() {
                    delta = delta.max((new - old).abs());
                    scale = scale.max(new);
                } else if old.is_finite() {
                    delta = f64::INFINITY;
                }
            }
        } else {
            for i in 0..n {
                delta = delta.max((next[i] - current[i]).abs());
                scale = scale.max(next[i]);
            }
        }
        std::mem::swap(current, next);
        run.iterations = performed;
        run.last_delta = delta;
        // After the swap, `current` holds v_t and `next` v_{t−1}.
        let args = DpProbe {
            values: current,
            previous: next,
            delta,
            remaining: iterations - performed,
        };
        if delta == 0.0 {
            // Exact f64 fixed point: every further sweep reproduces the
            // same vector, so stopping is bit-identical to the full run —
            // no rank confirmation needed (and it outranks cancellation:
            // the finished result costs nothing more to keep).
            run.converged = true;
            break;
        }
        if let Some(cancel) = cancel {
            // Cooperative cancellation rides the measured iterations only,
            // so the hot sweep never pays for the check.
            if cancel() {
                run.cancelled = true;
                break;
            }
        }
        if delta <= epsilon * scale {
            // Value convergence certifies accuracy, not order: near-ties
            // inside the residual drift could still settle differently by
            // the fixed-τ horizon. With a rank probe on hand, stop only if
            // it confirms the ranking is frozen too; without one, the
            // caller asked for value-converged semantics.
            match probe.as_mut() {
                None => {
                    run.converged = true;
                    break;
                }
                Some(probe) => {
                    if delta.is_finite() && probe(&args) {
                        run.converged = true;
                        run.rank_frozen = true;
                        break;
                    }
                }
            }
        } else if scheduled_probe && delta.is_finite() {
            probe_at = next_probe_after(performed);
            if let Some(probe) = probe.as_mut() {
                if probe(&args) {
                    run.rank_frozen = true;
                    break;
                }
            }
        }
    }
    run
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use longtail_graph::{Adjacency, CsrMatrix};

    /// Path graph 0 - 1 - 2 with unit weights.
    fn path3_kernel() -> TransitionMatrix {
        let csr =
            CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        TransitionMatrix::from_adjacency(&Adjacency::from_symmetric_csr(csr))
    }

    #[test]
    fn converges_to_known_times() {
        let kernel = path3_kernel();
        let absorbing = [true, false, false];
        let mut bufs = DpBuffers::new();
        let t = truncated_costs_into(&kernel, &absorbing, &UnitCost, 2000, &mut bufs);
        assert_eq!(t[0], 0.0);
        assert!((t[1] - 3.0).abs() < 1e-6);
        assert!((t[2] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn buffers_are_reusable_across_different_sizes() {
        let kernel = path3_kernel();
        let mut bufs = DpBuffers::new();
        let big =
            truncated_costs_into(&kernel, &[true, false, false], &UnitCost, 50, &mut bufs).to_vec();

        // A smaller, unrelated problem must not see stale state.
        let csr = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let small_kernel = TransitionMatrix::from_adjacency(&Adjacency::from_symmetric_csr(csr));
        let small = truncated_costs_into(&small_kernel, &[true, false], &UnitCost, 50, &mut bufs);
        assert_eq!(small.len(), 2);
        assert_eq!(small[0], 0.0);
        assert!((small[1] - 1.0).abs() < 1e-12);

        // And re-running the first problem reproduces it exactly.
        let again = truncated_costs_into(&kernel, &[true, false, false], &UnitCost, 50, &mut bufs);
        assert_eq!(again, &big[..]);
    }

    #[test]
    fn zero_iterations_returns_zeros() {
        let kernel = path3_kernel();
        let mut bufs = DpBuffers::new();
        let t = truncated_costs_into(&kernel, &[true, false, false], &UnitCost, 0, &mut bufs);
        assert_eq!(t, &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_flag_length_panics() {
        let kernel = path3_kernel();
        truncated_costs_into(&kernel, &[true], &UnitCost, 1, &mut DpBuffers::new());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn converge_wrong_flag_length_panics() {
        let kernel = path3_kernel();
        truncated_costs_converge_into(
            &kernel,
            &[true],
            &UnitCost,
            1,
            1e-9,
            None,
            None,
            &mut DpBuffers::new(),
        );
    }

    #[test]
    fn convergence_early_exit_agrees_with_full_run_within_epsilon() {
        // The convergence rule's contract: every early-exited value is
        // within `δ · (τ − t) ≤ ε · scale · τ` of the full-τ value, and
        // approaches it from below (monotone recursion).
        let kernel = path3_kernel();
        let absorbing = [true, false, false];
        let budget = 2000usize;
        let epsilon = 1e-9;

        let mut adaptive = DpBuffers::new();
        let run = truncated_costs_converge_into(
            &kernel,
            &absorbing,
            &UnitCost,
            budget,
            epsilon,
            None,
            None,
            &mut adaptive,
        );
        assert!(run.converged, "tiny chain must converge within {budget}");
        assert!(!run.rank_frozen);
        assert!(run.iterations < budget, "no iterations saved: {run:?}");
        assert!(run.last_delta <= epsilon * 4.0, "δ at stop: {run:?}");

        let mut full = DpBuffers::new();
        let exact = truncated_costs_into(&kernel, &absorbing, &UnitCost, budget, &mut full);
        let tolerance = epsilon * 4.0 * (budget - run.iterations) as f64;
        for (i, (&a, &e)) in adaptive.values().iter().zip(exact).enumerate() {
            assert!(a <= e + 1e-15, "node {i}: early value {a} above full {e}");
            assert!(e - a <= tolerance, "node {i}: {a} vs {e} (tol {tolerance})");
        }
    }

    #[test]
    fn exact_fixed_point_is_bit_identical_to_full_run() {
        // ε = 0 only stops on δ = 0, i.e. an exact f64 fixed point — from
        // there every further sweep reproduces the same vector, so the
        // early exit is bit-identical to the full run.
        let kernel = path3_kernel();
        let absorbing = [true, false, false];
        let mut adaptive = DpBuffers::new();
        let run = truncated_costs_converge_into(
            &kernel,
            &absorbing,
            &UnitCost,
            100_000,
            0.0,
            None,
            None,
            &mut adaptive,
        );
        assert!(run.converged);
        assert_eq!(run.last_delta, 0.0);
        let mut full = DpBuffers::new();
        let exact = truncated_costs_into(&kernel, &absorbing, &UnitCost, 100_000, &mut full);
        assert_eq!(adaptive.values(), exact);
    }

    #[test]
    fn negative_epsilon_stops_only_at_exact_fixed_points() {
        let kernel = path3_kernel();
        let mut bufs = DpBuffers::new();
        // Within a short budget the chain has not reached its f64 fixed
        // point: ε < 0 must run every iteration, values bit-identical to
        // the fixed form (same sweeps).
        let run = truncated_costs_converge_into(
            &kernel,
            &[true, false, false],
            &UnitCost,
            60,
            -1.0,
            None,
            None,
            &mut bufs,
        );
        assert!(!run.converged && !run.rank_frozen);
        assert_eq!(run.iterations, 60);
        let mut full = DpBuffers::new();
        let exact = truncated_costs_into(&kernel, &[true, false, false], &UnitCost, 60, &mut full);
        assert_eq!(bufs.values(), exact);

        // Over a long budget the iteration map reaches an exact fixed
        // point (δ = 0), where stopping is unconditional even at ε < 0 —
        // and still bit-identical to exhausting the budget.
        let run = truncated_costs_converge_into(
            &kernel,
            &[true, false, false],
            &UnitCost,
            500,
            -1.0,
            None,
            None,
            &mut bufs,
        );
        assert!(run.converged && !run.rank_frozen);
        assert!(run.iterations < 500, "{run:?}");
        assert_eq!(run.last_delta, 0.0);
        let exact = truncated_costs_into(&kernel, &[true, false, false], &UnitCost, 500, &mut full);
        assert_eq!(bufs.values(), exact);
    }

    #[test]
    fn epsilon_convergence_defers_to_a_refusing_probe() {
        // With a probe supplied, value convergence alone must not stop the
        // run: a refusing probe (rank not certified) keeps it iterating
        // until the exact fixed point.
        let kernel = path3_kernel();
        let mut calls = 0usize;
        let mut probe = |_: &DpProbe<'_>| -> bool {
            calls += 1;
            false
        };
        let mut bufs = DpBuffers::new();
        let run = truncated_costs_converge_into(
            &kernel,
            &[true, false, false],
            &UnitCost,
            500,
            1e-6, // loose: value convergence fires long before the fixed point
            Some(&mut probe),
            None,
            &mut bufs,
        );
        assert!(calls > 0);
        assert!(run.converged && !run.rank_frozen, "{run:?}");
        assert_eq!(run.last_delta, 0.0, "only the δ = 0 stop may fire");
        // A loose ε without a probe stops much earlier than the fixed point.
        let mut bufs2 = DpBuffers::new();
        let unconfirmed = truncated_costs_converge_into(
            &kernel,
            &[true, false, false],
            &UnitCost,
            500,
            1e-6,
            None,
            None,
            &mut bufs2,
        );
        assert!(unconfirmed.iterations < run.iterations);
    }

    #[test]
    fn probe_receives_sound_remaining_change_bound() {
        // At every probe call, no final value may exceed current + bound.
        let kernel = path3_kernel();
        let absorbing = [true, false, false];
        let budget = 60usize;
        let mut full = DpBuffers::new();
        let exact =
            truncated_costs_into(&kernel, &absorbing, &UnitCost, budget, &mut full).to_vec();

        let mut calls = 0usize;
        let mut probe = |p: &DpProbe<'_>| -> bool {
            calls += 1;
            let bound = p.global_bound();
            assert!(bound.is_finite() && bound >= 0.0);
            for (i, (&v, &e)) in p.values.iter().zip(&exact).enumerate() {
                if v.is_finite() {
                    assert!(e <= v + bound + 1e-12, "node {i}: {e} > {v} + {bound}");
                    // Unit cost is superharmonic, so the per-node bound is
                    // sound too (and no looser than the global one).
                    let nb = p.node_bound(i);
                    assert!(e <= v + nb + 1e-12, "node {i}: {e} > {v} + node {nb}");
                    assert!(nb <= bound + 1e-12);
                }
            }
            false // never stop: exercise every probed iteration's bound
        };
        let mut bufs = DpBuffers::new();
        let run = truncated_costs_converge_into(
            &kernel,
            &absorbing,
            &UnitCost,
            budget,
            -1.0,
            Some(&mut probe),
            None,
            &mut bufs,
        );
        assert_eq!(run.iterations, budget);
        assert!(calls > 0, "probe never invoked");
    }

    #[test]
    fn probe_stop_is_recorded() {
        let kernel = path3_kernel();
        let mut stop_after = 0usize;
        let mut probe = |_: &DpProbe<'_>| -> bool {
            stop_after += 1;
            stop_after >= 3
        };
        let mut bufs = DpBuffers::new();
        let run = truncated_costs_converge_into(
            &kernel,
            &[true, false, false],
            &UnitCost,
            1000,
            -1.0,
            Some(&mut probe),
            None,
            &mut bufs,
        );
        assert!(run.rank_frozen && !run.converged);
        // The schedule probes at iterations 6, 8, 10; the third call stops
        // the run with 10 iterations performed.
        assert_eq!(run.iterations, 10);
        assert!(run.last_delta.is_finite());
    }

    #[test]
    fn dangling_pocket_takes_checked_path_and_probe_bounds_stay_finite() {
        // Path 0 (absorbing) - 1 - 2 plus an isolated dangling node 3: the
        // checked sweep runs, node 3 is pinned at ∞, and every bound the
        // probe sees is finite (δ = ∞ iterations never consult it).
        let csr =
            CsrMatrix::from_triplets(4, 4, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        let kernel = TransitionMatrix::from_adjacency(&Adjacency::from_symmetric_csr(csr));
        let mut probe_bounds: Vec<f64> = Vec::new();
        let mut probe = |p: &DpProbe<'_>| -> bool {
            probe_bounds.push(p.global_bound());
            false
        };
        let mut bufs = DpBuffers::new();
        let run = truncated_costs_converge_into(
            &kernel,
            &[true, false, false, false],
            &UnitCost,
            50,
            -1.0,
            Some(&mut probe),
            None,
            &mut bufs,
        );
        assert_eq!(run.iterations, 50);
        assert!(bufs.values()[3].is_infinite());
        assert!(bufs.values()[1].is_finite() && bufs.values()[2].is_finite());
        assert!(!probe_bounds.is_empty());
        assert!(probe_bounds.iter().all(|b| b.is_finite()));
    }

    #[test]
    fn cancel_aborts_on_a_measured_iteration() {
        let kernel = path3_kernel();
        // Always-true cancel: the run must stop at the FIRST measured
        // iteration (the δ stride), not at iteration 1 — cancellation only
        // rides the measurement pass.
        let cancel = || true;
        let mut bufs = DpBuffers::new();
        let run = truncated_costs_converge_into(
            &kernel,
            &[true, false, false],
            &UnitCost,
            1000,
            -1.0,
            None,
            Some(&cancel),
            &mut bufs,
        );
        assert!(run.cancelled && !run.converged && !run.rank_frozen);
        assert_eq!(run.iterations, DELTA_STRIDE);

        // A never-firing cancel changes nothing: values bit-identical to
        // the uncancellable run.
        let never = || false;
        let mut with_hook = DpBuffers::new();
        let hooked = truncated_costs_converge_into(
            &kernel,
            &[true, false, false],
            &UnitCost,
            60,
            -1.0,
            None,
            Some(&never),
            &mut with_hook,
        );
        assert!(!hooked.cancelled);
        assert_eq!(hooked.iterations, 60);
        let mut full = DpBuffers::new();
        let exact = truncated_costs_into(&kernel, &[true, false, false], &UnitCost, 60, &mut full);
        assert_eq!(with_hook.values(), exact);
    }

    #[test]
    fn exact_fixed_point_outranks_cancellation() {
        // When δ = 0 on the same measured iteration the cancel hook would
        // fire, the converged stop wins: the result is bit-identical to
        // the full run, so there is nothing to abandon. All-absorbing
        // makes the very first measurement an exact fixed point.
        let kernel = path3_kernel();
        let mut bufs = DpBuffers::new();
        let run = truncated_costs_converge_into(
            &kernel,
            &[true, true, true],
            &UnitCost,
            100_000,
            -1.0,
            None,
            Some(&(|| true)),
            &mut bufs,
        );
        assert!(run.converged && !run.cancelled);
        assert_eq!(run.last_delta, 0.0);
    }

    #[test]
    fn dp_run_fixed_shape() {
        let run = DpRun::fixed(15);
        assert_eq!(run.iterations, 15);
        assert_eq!(run.budget, 15);
        assert!(!run.converged && !run.rank_frozen);
        assert!(run.last_delta.is_infinite());
    }

    #[test]
    fn zero_budget_converge_runs_nothing() {
        let kernel = path3_kernel();
        let mut bufs = DpBuffers::new();
        let run = truncated_costs_converge_into(
            &kernel,
            &[true, false, false],
            &UnitCost,
            0,
            1e-9,
            None,
            None,
            &mut bufs,
        );
        assert_eq!(run.iterations, 0);
        assert!(!run.converged && !run.rank_frozen);
        assert_eq!(bufs.values(), &[0.0, 0.0, 0.0]);
    }
}
