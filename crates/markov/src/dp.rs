//! Allocation-free truncated dynamic programs over a pre-normalized kernel.
//!
//! Algorithm 1's inner loop — `AC_{t+1}(i) = r_i + Σ_j p_ij AC_t(j)` — is
//! the hottest code in the system: it runs τ times per query over every edge
//! of the query's subgraph. This module implements it directly over
//! [`TransitionMatrix`] CSR slices (probabilities pre-divided, no hash maps,
//! no per-edge division) with all state in caller-owned [`DpBuffers`], so a
//! steady-state scoring loop performs no allocation at all.
//!
//! Each `p_ij` is the same rounded quotient the old loop recomputed per
//! iteration, so the recursion evaluates the pre-refactor formula; only the
//! within-row summation order differs (a blocked reduction on the fast
//! path), bounding the divergence to last-ulp rounding. The golden tests in
//! `tests/golden_kernel.rs` pin that equivalence against a verbatim copy of
//! the pre-refactor code.

use crate::cost::CostModel;
use longtail_graph::TransitionMatrix;

/// Reusable state for the truncated absorbing-walk dynamic program.
///
/// Create once per worker thread and pass to [`truncated_costs_into`] for
/// every query; buffers are resized (retaining capacity) as subgraph sizes
/// vary.
#[derive(Debug, Clone, Default)]
pub struct DpBuffers {
    /// Expected immediate cost of one hop out of each node.
    immediate: Vec<f64>,
    /// DP value vector at the current iteration.
    current: Vec<f64>,
    /// DP value vector being written.
    next: Vec<f64>,
}

impl DpBuffers {
    /// Empty buffers; sized lazily by the first query.
    pub fn new() -> Self {
        Self::default()
    }

    /// The values of the last completed dynamic program.
    #[inline]
    pub fn values(&self) -> &[f64] {
        &self.current
    }

    /// Cost of local node `local` from the last completed dynamic program:
    /// `Some(cost)` when the truncated walk assigns the node a finite
    /// absorbing cost, `None` when the node can only reach dangling pockets
    /// (`∞`).
    ///
    /// This is the extraction primitive of the fused top-k query path: a
    /// recommender walks the subgraph's item nodes and pulls each one's cost
    /// straight out of the DP state, so no global score vector is ever
    /// materialized.
    #[inline]
    pub fn finite_cost(&self, local: u32) -> Option<f64> {
        let v = self.current[local as usize];
        v.is_finite().then_some(v)
    }
}

/// Run the truncated absorbing-cost dynamic program (Eq. 9, Algorithm 1
/// steps 3–4) over `kernel`, absorbing at nodes flagged in `absorbing`,
/// for `iterations` rounds. Returns the value vector, which lives in
/// `bufs` until the next call.
///
/// Dangling non-absorbing nodes get `f64::INFINITY`, as do nodes whose walk
/// can only reach dangling pockets.
///
/// # Panics
///
/// Panics if `absorbing.len() != kernel.n_nodes()`.
pub fn truncated_costs_into<'a>(
    kernel: &TransitionMatrix,
    absorbing: &[bool],
    cost: &dyn CostModel,
    iterations: usize,
    bufs: &'a mut DpBuffers,
) -> &'a [f64] {
    let n = kernel.n_nodes();
    assert_eq!(absorbing.len(), n, "absorbing flag vector length mismatch");

    let DpBuffers {
        immediate,
        current,
        next,
    } = bufs;

    // Expected immediate cost of one hop out of each transient node:
    // Σ_j p_ij · entry_cost(j). Constant across iterations, so hoist it.
    // `any_infinite` remembers whether any transient node is dangling — only
    // then can ∞ enter the recursion at all.
    immediate.clear();
    immediate.resize(n, 0.0);
    let constant = cost.constant_cost();
    let cost_table = cost.cost_slice();
    let mut any_infinite = false;
    for i in 0..n {
        if absorbing[i] {
            continue;
        }
        let (cols, probs) = kernel.row(i);
        if cols.is_empty() {
            immediate[i] = f64::INFINITY;
            any_infinite = true;
            continue;
        }
        let mut acc = 0.0;
        // The fast arms round identically to the virtual-call loop: `p · c`
        // and a gathered `p · table[j]` are the same multiplies.
        if let Some(c) = constant {
            for &p in probs {
                acc += p * c;
            }
        } else if let Some(table) = cost_table {
            for (&j, &p) in cols.iter().zip(probs) {
                acc += p * table[j as usize];
            }
        } else {
            for (&j, &p) in cols.iter().zip(probs) {
                acc += p * cost.entry_cost(j as usize);
            }
        }
        immediate[i] = acc;
    }

    current.clear();
    current.resize(n, 0.0);
    next.clear();
    next.resize(n, 0.0);
    for _ in 0..iterations {
        if any_infinite {
            // Checked variant: ∞ from unreachable pockets must short-circuit
            // instead of producing NaN via `0.0 · ∞`-adjacent arithmetic.
            for i in 0..n {
                if absorbing[i] {
                    next[i] = 0.0;
                    continue;
                }
                let (cols, probs) = kernel.row(i);
                if cols.is_empty() {
                    next[i] = f64::INFINITY;
                    continue;
                }
                let mut acc = 0.0;
                for (&j, &p) in cols.iter().zip(probs) {
                    let v = current[j as usize];
                    if v.is_finite() {
                        acc += p * v;
                    } else {
                        acc = f64::INFINITY;
                        break;
                    }
                }
                next[i] = immediate[i] + acc;
            }
        } else {
            // Fast variant: every value provably stays finite (each bounded
            // by τ·max immediate), so the per-edge finiteness branch — and
            // the empty-row probe — drop out of the hot loop entirely. Four
            // accumulators break the floating-point add latency chain that
            // otherwise serializes the row reduction (summation order
            // differs from the checked variant by last-ulp rounding only).
            for i in 0..n {
                if absorbing[i] {
                    next[i] = 0.0;
                    continue;
                }
                let (cols, probs) = kernel.row(i);
                let mut cols4 = cols.chunks_exact(4);
                let mut probs4 = probs.chunks_exact(4);
                let (mut a0, mut a1, mut a2, mut a3) = (0.0f64, 0.0, 0.0, 0.0);
                for (c, p) in (&mut cols4).zip(&mut probs4) {
                    a0 += p[0] * current[c[0] as usize];
                    a1 += p[1] * current[c[1] as usize];
                    a2 += p[2] * current[c[2] as usize];
                    a3 += p[3] * current[c[3] as usize];
                }
                let mut acc = (a0 + a1) + (a2 + a3);
                for (&j, &p) in cols4.remainder().iter().zip(probs4.remainder()) {
                    acc += p * current[j as usize];
                }
                next[i] = immediate[i] + acc;
            }
        }
        std::mem::swap(current, next);
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UnitCost;
    use longtail_graph::{Adjacency, CsrMatrix};

    /// Path graph 0 - 1 - 2 with unit weights.
    fn path3_kernel() -> TransitionMatrix {
        let csr =
            CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 1.0), (2, 1, 1.0)]);
        TransitionMatrix::from_adjacency(&Adjacency::from_symmetric_csr(csr))
    }

    #[test]
    fn converges_to_known_times() {
        let kernel = path3_kernel();
        let absorbing = [true, false, false];
        let mut bufs = DpBuffers::new();
        let t = truncated_costs_into(&kernel, &absorbing, &UnitCost, 2000, &mut bufs);
        assert_eq!(t[0], 0.0);
        assert!((t[1] - 3.0).abs() < 1e-6);
        assert!((t[2] - 4.0).abs() < 1e-6);
    }

    #[test]
    fn buffers_are_reusable_across_different_sizes() {
        let kernel = path3_kernel();
        let mut bufs = DpBuffers::new();
        let big =
            truncated_costs_into(&kernel, &[true, false, false], &UnitCost, 50, &mut bufs).to_vec();

        // A smaller, unrelated problem must not see stale state.
        let csr = CsrMatrix::from_triplets(2, 2, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let small_kernel = TransitionMatrix::from_adjacency(&Adjacency::from_symmetric_csr(csr));
        let small = truncated_costs_into(&small_kernel, &[true, false], &UnitCost, 50, &mut bufs);
        assert_eq!(small.len(), 2);
        assert_eq!(small[0], 0.0);
        assert!((small[1] - 1.0).abs() < 1e-12);

        // And re-running the first problem reproduces it exactly.
        let again = truncated_costs_into(&kernel, &[true, false, false], &UnitCost, 50, &mut bufs);
        assert_eq!(again, &big[..]);
    }

    #[test]
    fn zero_iterations_returns_zeros() {
        let kernel = path3_kernel();
        let mut bufs = DpBuffers::new();
        let t = truncated_costs_into(&kernel, &[true, false, false], &UnitCost, 0, &mut bufs);
        assert_eq!(t, &[0.0, 0.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_flag_length_panics() {
        let kernel = path3_kernel();
        truncated_costs_into(&kernel, &[true], &UnitCost, 1, &mut DpBuffers::new());
    }
}
