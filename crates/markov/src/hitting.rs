//! Hitting time `H(q|j)` (Definition 1, §3.3).
//!
//! The hitting time from `j` to `q` is the expected number of steps a walker
//! starting at `j` takes to first reach `q` — identically the absorbing time
//! with singleton absorbing set `S = {q}`. Eq. 5 explains why small
//! `H(q|j)` favors the long tail: `H(q|j) = π_j / (p_{q,j} π_q)`, i.e. the
//! walk discounts items by their stationary popularity `π_j`.

use crate::absorbing::AbsorbingWalk;
use longtail_graph::Adjacency;
use longtail_linalg::lu::LinalgError;

/// Truncated hitting times from every node to `target` (τ-step dynamic
/// program).
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn truncated_hitting_times(adj: &Adjacency, target: usize, iterations: usize) -> Vec<f64> {
    AbsorbingWalk::new(adj, &[target]).truncated_times(iterations)
}

/// Exact hitting times from every node to `target` via the linear system.
///
/// # Errors
///
/// [`LinalgError::Singular`] when part of the graph cannot reach `target`.
///
/// # Panics
///
/// Panics if `target` is out of range.
pub fn exact_hitting_times(adj: &Adjacency, target: usize) -> Result<Vec<f64>, LinalgError> {
    AbsorbingWalk::new(adj, &[target]).exact_times()
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_graph::CsrMatrix;

    /// Unweighted triangle: by symmetry every hitting time is 2.
    fn triangle() -> Adjacency {
        let csr = CsrMatrix::from_triplets(
            3,
            3,
            &[
                (0, 1, 1.0),
                (1, 0, 1.0),
                (1, 2, 1.0),
                (2, 1, 1.0),
                (0, 2, 1.0),
                (2, 0, 1.0),
            ],
        );
        Adjacency::from_symmetric_csr(csr)
    }

    #[test]
    fn triangle_hitting_time_is_two() {
        let adj = triangle();
        let h = exact_hitting_times(&adj, 0).unwrap();
        assert_eq!(h[0], 0.0);
        assert!((h[1] - 2.0).abs() < 1e-10);
        assert!((h[2] - 2.0).abs() < 1e-10);
    }

    #[test]
    fn truncated_approaches_exact() {
        let adj = triangle();
        let exact = exact_hitting_times(&adj, 0).unwrap();
        let approx = truncated_hitting_times(&adj, 0, 500);
        for i in 0..3 {
            assert!((approx[i] - exact[i]).abs() < 1e-6);
        }
    }

    #[test]
    fn hitting_times_are_asymmetric_on_weighted_graphs() {
        // 0 -(1)- 1 -(10)- 2: the walk leaving 1 strongly prefers 2.
        let csr = CsrMatrix::from_triplets(
            3,
            3,
            &[(0, 1, 1.0), (1, 0, 1.0), (1, 2, 10.0), (2, 1, 10.0)],
        );
        let adj = Adjacency::from_symmetric_csr(csr);
        let to0 = exact_hitting_times(&adj, 0).unwrap();
        let to2 = exact_hitting_times(&adj, 2).unwrap();
        // Reaching the weakly-attached node 0 takes much longer than
        // reaching the strongly-attached node 2.
        assert!(to0[2] > to2[0]);
    }
}
