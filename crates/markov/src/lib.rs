//! Random-walk machinery for long-tail recommendation.
//!
//! Implements the Markov-chain toolkit of §3–4 of *Challenging the Long Tail
//! Recommendation* on top of [`longtail_graph::Adjacency`]:
//!
//! * [`hitting`] — hitting times `H(q|j)` (Definition 1, the HT recommender);
//! * [`absorbing`] — absorbing times and entropy-biased absorbing costs
//!   (Definitions 2–3, Eq. 6–9), each with a truncated `O(τ·m)` dynamic
//!   program and an exact LU-based solver;
//! * [`dp`] — the allocation-free truncated dynamic program over a
//!   pre-normalized [`longtail_graph::TransitionMatrix`], with caller-owned
//!   [`DpBuffers`] (the batch-scoring hot path) and an adaptive
//!   early-terminating form ([`truncated_costs_converge_into`]) that stops
//!   once the remaining iterations provably cannot matter;
//! * [`cost`] — per-node entry-cost models (unit cost ⇒ absorbing time,
//!   entropy cost ⇒ the AC1/AC2 models);
//! * [`pagerank`] — personalized PageRank power iteration (PPR/DPPR
//!   baselines), also available in a kernel-plus-buffers form.
//!
//! Every iteration kernel walks pre-divided probabilities in raw CSR
//! slices; no per-edge division survives on any query path.

#![warn(missing_docs)]

pub mod absorbing;
pub mod cost;
pub mod dp;
pub mod hitting;
pub mod pagerank;

pub use absorbing::AbsorbingWalk;
pub use cost::{entropy_cost, CostModel, PerNodeCost, SliceCost, UnitCost};
pub use dp::{truncated_costs_converge_into, truncated_costs_into, DpBuffers, DpProbe, DpRun};
pub use hitting::{exact_hitting_times, truncated_hitting_times};
pub use pagerank::{
    personalized_pagerank, personalized_pagerank_into, PageRankBuffers, PageRankConfig,
};
