//! Personalized PageRank by power iteration.
//!
//! The paper's strongest non-graph-native baseline pair (§5.1.1): PPR ranks
//! by the stationary distribution of a walk that teleports back to the query
//! user's preference set with probability `1 - λ`, and DPPR divides that
//! score by item popularity (Eq. 15) to push it toward the tail.

use longtail_graph::{Adjacency, TransitionMatrix};

/// Configuration of the personalized PageRank iteration.
#[derive(Debug, Clone, Copy)]
pub struct PageRankConfig {
    /// Damping factor λ: probability of following an edge rather than
    /// teleporting. The paper tunes λ = 0.5 for DPPR.
    pub damping: f64,
    /// Convergence threshold on the L1 change between iterations.
    pub tolerance: f64,
    /// Upper bound on iterations.
    pub max_iterations: usize,
}

impl Default for PageRankConfig {
    fn default() -> Self {
        Self {
            damping: 0.5,
            tolerance: 1e-10,
            max_iterations: 200,
        }
    }
}

/// Personalized PageRank with teleport mass distributed uniformly over
/// `start_nodes`.
///
/// Returns the stationary probabilities of all nodes. Dangling (zero-degree)
/// nodes redistribute their mass to the teleport set, keeping the iteration
/// stochastic.
///
/// # Panics
///
/// Panics if `start_nodes` is empty, contains out-of-range ids, or
/// `damping` is outside `[0, 1)`.
pub fn personalized_pagerank(
    adj: &Adjacency,
    start_nodes: &[usize],
    config: &PageRankConfig,
) -> Vec<f64> {
    let kernel = TransitionMatrix::from_adjacency(adj);
    let mut bufs = PageRankBuffers::new();
    personalized_pagerank_into(&kernel, start_nodes, config, &mut bufs).to_vec()
}

/// Reusable state for the PageRank power iteration: rank, scratch and
/// teleport vectors, allocated once per worker and resized per query.
#[derive(Debug, Clone, Default)]
pub struct PageRankBuffers {
    rank: Vec<f64>,
    next: Vec<f64>,
    teleport: Vec<f64>,
}

impl PageRankBuffers {
    /// Empty buffers; sized lazily by the first query.
    pub fn new() -> Self {
        Self::default()
    }
}

/// [`personalized_pagerank`] over a pre-built kernel with caller-owned
/// buffers: the allocation-free form used by batch scoring. Returns the
/// stationary probabilities, which live in `bufs` until the next call.
///
/// # Panics
///
/// Same contract as [`personalized_pagerank`].
pub fn personalized_pagerank_into<'a>(
    kernel: &TransitionMatrix,
    start_nodes: &[usize],
    config: &PageRankConfig,
    bufs: &'a mut PageRankBuffers,
) -> &'a [f64] {
    let n = kernel.n_nodes();
    assert!(!start_nodes.is_empty(), "start set must be non-empty");
    assert!(
        (0.0..1.0).contains(&config.damping),
        "damping must lie in [0, 1)"
    );
    for &s in start_nodes {
        assert!(s < n, "start node {s} out of range");
    }

    bufs.teleport.clear();
    bufs.teleport.resize(n, 0.0);
    let share = 1.0 / start_nodes.len() as f64;
    for &s in start_nodes {
        bufs.teleport[s] += share;
    }

    let lambda = config.damping;
    bufs.rank.clear();
    bufs.rank.extend_from_slice(&bufs.teleport);
    bufs.next.clear();
    bufs.next.resize(n, 0.0);
    for _ in 0..config.max_iterations {
        // Mass from dangling nodes is re-injected through the teleport
        // vector so that `next` stays a probability distribution.
        let mut dangling = 0.0;
        bufs.next.fill(0.0);
        for i in 0..n {
            let (cols, probs) = kernel.row(i);
            if cols.is_empty() {
                dangling += bufs.rank[i];
                continue;
            }
            let scale = lambda * bufs.rank[i];
            if scale == 0.0 {
                continue;
            }
            for (&j, &p) in cols.iter().zip(probs) {
                bufs.next[j as usize] += scale * p;
            }
        }
        let teleport_mass = 1.0 - lambda + lambda * dangling;
        for i in 0..n {
            bufs.next[i] += teleport_mass * bufs.teleport[i];
        }

        let delta: f64 = bufs
            .rank
            .iter()
            .zip(bufs.next.iter())
            .map(|(a, b)| (a - b).abs())
            .sum();
        std::mem::swap(&mut bufs.rank, &mut bufs.next);
        if delta < config.tolerance {
            break;
        }
    }
    &bufs.rank
}

#[cfg(test)]
mod tests {
    use super::*;
    use longtail_graph::{BipartiteGraph, CsrMatrix};

    fn figure2_adj() -> (BipartiteGraph, Adjacency) {
        let ratings = [
            (0, 0, 5.0),
            (0, 1, 3.0),
            (0, 4, 3.0),
            (0, 5, 5.0),
            (1, 0, 5.0),
            (1, 1, 4.0),
            (1, 2, 5.0),
            (1, 4, 4.0),
            (1, 5, 5.0),
            (2, 0, 4.0),
            (2, 1, 5.0),
            (2, 2, 4.0),
            (3, 2, 5.0),
            (3, 3, 5.0),
            (4, 1, 4.0),
            (4, 2, 5.0),
        ];
        let g = BipartiteGraph::from_ratings(5, 6, &ratings);
        let adj = Adjacency::from_bipartite(&g);
        (g, adj)
    }

    #[test]
    fn ranks_sum_to_one() {
        let (g, adj) = figure2_adj();
        let r = personalized_pagerank(&adj, &[g.user_node(4)], &PageRankConfig::default());
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8, "sum = {sum}");
        assert!(r.iter().all(|&v| v >= 0.0));
    }

    #[test]
    fn teleport_node_dominates_nearby_mass() {
        let (g, adj) = figure2_adj();
        let r = personalized_pagerank(&adj, &[g.user_node(4)], &PageRankConfig::default());
        // The start node has the single largest rank at λ = 0.5.
        let start = g.user_node(4);
        for i in 0..adj.n_nodes() {
            if i != start {
                assert!(r[start] > r[i], "node {i} outranks the teleport node");
            }
        }
    }

    #[test]
    fn personalization_localizes_mass() {
        let (g, adj) = figure2_adj();
        let r_u5 = personalized_pagerank(&adj, &[g.user_node(4)], &PageRankConfig::default());
        // U5 rated M2, M3; M4 is two hops away through U4. Items close to
        // the start accumulate more mass than the far tail item M4.
        assert!(r_u5[g.item_node(1)] > r_u5[g.item_node(3)]);
        assert!(r_u5[g.item_node(2)] > r_u5[g.item_node(3)]);
    }

    #[test]
    fn multiple_start_nodes_split_teleport() {
        let (g, adj) = figure2_adj();
        let r = personalized_pagerank(
            &adj,
            &[g.item_node(1), g.item_node(2)],
            &PageRankConfig::default(),
        );
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8);
        assert!(r[g.item_node(1)] > 0.1 && r[g.item_node(2)] > 0.1);
    }

    #[test]
    fn dangling_nodes_do_not_leak_mass() {
        // Node 2 is isolated.
        let csr = CsrMatrix::from_triplets(3, 3, &[(0, 1, 1.0), (1, 0, 1.0)]);
        let adj = Adjacency::from_symmetric_csr(csr);
        let r = personalized_pagerank(&adj, &[2], &PageRankConfig::default());
        let sum: f64 = r.iter().sum();
        assert!((sum - 1.0).abs() < 1e-8);
        // All teleport mass returns to the isolated start node.
        assert!(r[2] > 0.99);
    }

    #[test]
    fn zero_damping_returns_teleport_vector() {
        let (g, adj) = figure2_adj();
        let config = PageRankConfig {
            damping: 0.0,
            ..PageRankConfig::default()
        };
        let r = personalized_pagerank(&adj, &[g.user_node(0)], &config);
        assert!((r[g.user_node(0)] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_start_set_rejected() {
        let (_, adj) = figure2_adj();
        personalized_pagerank(&adj, &[], &PageRankConfig::default());
    }

    #[test]
    #[should_panic(expected = "damping")]
    fn damping_bounds_enforced() {
        let (g, adj) = figure2_adj();
        let config = PageRankConfig {
            damping: 1.0,
            ..PageRankConfig::default()
        };
        personalized_pagerank(&adj, &[g.user_node(0)], &config);
    }
}
