//! Golden tests: the pre-normalized kernel path must reproduce the
//! pre-refactor `w / d` formulas exactly.
//!
//! The refactor moved every walk onto [`TransitionMatrix`] (probabilities
//! divided once at kernel build) and raw CSR slice loops. These tests pin
//! the equivalence against reference implementations that keep the original
//! shape — per-edge division inside the iteration — on randomly generated
//! bipartite graphs:
//!
//! * truncated times/costs evaluate the identical recursion on identical
//!   probabilities (the kernel stores the same rounded quotient the old
//!   loop recomputed); only the within-row summation order may differ (the
//!   fast path uses a blocked reduction), so values are compared within a
//!   last-ulp-scale relative tolerance;
//! * exact (LU) times go through the same comparison via the public solver;
//! * PageRank regroups `(λ·r/d)·w` into `(λ·r)·(w/d)` and is compared with
//!   an iteration-tolerance bound.

use longtail_graph::{Adjacency, BipartiteGraph, TransitionMatrix};
use longtail_markov::{
    personalized_pagerank, truncated_costs_into, AbsorbingWalk, CostModel, DpBuffers,
    PageRankConfig, PerNodeCost, UnitCost,
};
use proptest::prelude::*;

fn ratings() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0..7u32, 0..8u32, 1.0f64..5.0), 1..50)
}

/// The pre-refactor truncated dynamic program, verbatim: per-edge `w / d`
/// inside every iteration, straight off the adjacency.
fn reference_truncated_costs(
    adj: &Adjacency,
    absorbing: &[bool],
    cost: &dyn CostModel,
    iterations: usize,
) -> Vec<f64> {
    let n = adj.n_nodes();
    let mut immediate = vec![0.0; n];
    for i in 0..n {
        if absorbing[i] {
            continue;
        }
        let d = adj.degree(i);
        if d == 0.0 {
            immediate[i] = f64::INFINITY;
            continue;
        }
        let mut acc = 0.0;
        for (j, w) in adj.neighbors(i) {
            acc += w / d * cost.entry_cost(j as usize);
        }
        immediate[i] = acc;
    }

    let mut current = vec![0.0f64; n];
    let mut next = vec![0.0f64; n];
    for _ in 0..iterations {
        for i in 0..n {
            if absorbing[i] {
                next[i] = 0.0;
                continue;
            }
            let d = adj.degree(i);
            if d == 0.0 {
                next[i] = f64::INFINITY;
                continue;
            }
            let mut acc = 0.0;
            for (j, w) in adj.neighbors(i) {
                let v = current[j as usize];
                if v.is_finite() {
                    acc += w / d * v;
                } else {
                    acc = f64::INFINITY;
                    break;
                }
            }
            next[i] = immediate[i] + acc;
        }
        std::mem::swap(&mut current, &mut next);
    }
    current
}

/// Same values up to the blocked-reduction rounding of the fast DP path:
/// relative error at most a few ulps per iteration, far below 1e-12.
fn assert_values_agree(
    got: &[f64],
    reference: &[f64],
) -> Result<(), proptest::prelude::TestCaseError> {
    prop_assert_eq!(got.len(), reference.len());
    for (i, (&g, &r)) in got.iter().zip(reference.iter()).enumerate() {
        if g.is_finite() || r.is_finite() {
            prop_assert!(
                (g - r).abs() <= 1e-12 * (1.0 + r.abs()),
                "node {}: kernel {} vs reference {}",
                i,
                g,
                r
            );
        }
    }
    Ok(())
}

fn fixture(ts: &[(u32, u32, f64)]) -> (Adjacency, Vec<bool>, usize) {
    let g = BipartiteGraph::from_ratings(7, 8, ts);
    let adj = Adjacency::from_bipartite(&g);
    let seed = g.user_node(ts[0].0);
    let mut absorbing = vec![false; adj.n_nodes()];
    absorbing[seed] = true;
    (adj, absorbing, seed)
}

proptest! {
    #[test]
    fn kernel_truncated_times_match_reference(ts in ratings(), tau in 0..40usize) {
        let (adj, absorbing, seed) = fixture(&ts);
        let reference = reference_truncated_costs(&adj, &absorbing, &UnitCost, tau);

        let kernel = TransitionMatrix::from_adjacency(&adj);
        let mut bufs = DpBuffers::new();
        let got = truncated_costs_into(&kernel, &absorbing, &UnitCost, tau, &mut bufs);
        assert_values_agree(got, &reference)?;

        // And through the public AbsorbingWalk API.
        let walk = AbsorbingWalk::new(&adj, &[seed]);
        assert_values_agree(&walk.truncated_times(tau), &reference)?;
    }

    #[test]
    fn kernel_truncated_costs_match_reference(ts in ratings(), tau in 1..30usize, c in 0.1f64..3.0) {
        let (adj, absorbing, seed) = fixture(&ts);
        // An arbitrary non-uniform per-node cost: distinct per node so a
        // permutation bug cannot cancel out.
        let costs: Vec<f64> = (0..adj.n_nodes()).map(|i| c + 0.13 * i as f64).collect();
        let cost = PerNodeCost::new(costs);
        let reference = reference_truncated_costs(&adj, &absorbing, &cost, tau);

        let walk = AbsorbingWalk::new(&adj, &[seed]);
        assert_values_agree(&walk.truncated_costs(&cost, tau), &reference)?;
    }

    #[test]
    fn kernel_exact_times_match_truncated_limit(ts in ratings()) {
        let (adj, _, seed) = fixture(&ts);
        let walk = AbsorbingWalk::new(&adj, &[seed]);
        if let Ok(exact) = walk.exact_times() {
            // The truncated DP approaches the exact solve from below; after
            // many iterations they must agree on every reachable node.
            let approx = walk.truncated_times(4000);
            for i in 0..adj.n_nodes() {
                if exact[i].is_finite() && exact[i] < 1e3 {
                    prop_assert!(
                        (approx[i] - exact[i]).abs() < 1e-5 * (1.0 + exact[i]),
                        "node {}: truncated {} vs exact {}",
                        i,
                        approx[i],
                        exact[i]
                    );
                }
            }
        }
    }

    #[test]
    // The reference below is a verbatim copy of the pre-refactor iteration;
    // keep its index loops untouched.
    #[allow(clippy::needless_range_loop)]
    fn kernel_pagerank_matches_reference(ts in ratings()) {
        let (adj, _, seed) = fixture(&ts);
        let config = PageRankConfig::default();
        let got = personalized_pagerank(&adj, &[seed], &config);

        // Reference: the pre-refactor per-edge `scale = λ·r/d` iteration.
        let n = adj.n_nodes();
        let mut teleport = vec![0.0; n];
        teleport[seed] = 1.0;
        let lambda = config.damping;
        let mut rank = teleport.clone();
        let mut next = vec![0.0; n];
        for _ in 0..config.max_iterations {
            let mut dangling = 0.0;
            next.fill(0.0);
            for i in 0..n {
                let d = adj.degree(i);
                if d == 0.0 {
                    dangling += rank[i];
                    continue;
                }
                let scale = lambda * rank[i] / d;
                if scale == 0.0 {
                    continue;
                }
                for (j, w) in adj.neighbors(i) {
                    next[j as usize] += scale * w;
                }
            }
            let teleport_mass = 1.0 - lambda + lambda * dangling;
            for i in 0..n {
                next[i] += teleport_mass * teleport[i];
            }
            let delta: f64 = rank.iter().zip(next.iter()).map(|(a, b)| (a - b).abs()).sum();
            std::mem::swap(&mut rank, &mut next);
            if delta < config.tolerance {
                break;
            }
        }

        for i in 0..n {
            prop_assert!(
                (got[i] - rank[i]).abs() < 1e-9,
                "node {}: kernel {} vs reference {}",
                i,
                got[i],
                rank[i]
            );
        }
    }
}
