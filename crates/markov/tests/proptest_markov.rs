//! Property tests: random-walk invariants on arbitrary bipartite graphs.

use longtail_graph::{Adjacency, BipartiteGraph};
use longtail_markov::{personalized_pagerank, AbsorbingWalk, PageRankConfig, PerNodeCost};
use proptest::prelude::*;

fn ratings() -> impl Strategy<Value = Vec<(u32, u32, f64)>> {
    prop::collection::vec((0..6u32, 0..7u32, 1.0f64..5.0), 1..40)
}

/// Build a connected-at-the-seed test fixture: the graph plus a node that is
/// guaranteed to have at least one edge.
fn graph_with_seed(ts: &[(u32, u32, f64)]) -> (Adjacency, usize) {
    let g = BipartiteGraph::from_ratings(6, 7, ts);
    let adj = Adjacency::from_bipartite(&g);
    let seed = g.user_node(ts[0].0);
    (adj, seed)
}

proptest! {
    #[test]
    fn truncated_times_monotone_in_tau(ts in ratings()) {
        let (adj, seed) = graph_with_seed(&ts);
        let walk = AbsorbingWalk::new(&adj, &[seed]);
        let t1 = walk.truncated_times(5);
        let t2 = walk.truncated_times(10);
        for i in 0..adj.n_nodes() {
            if t1[i].is_finite() && t2[i].is_finite() {
                prop_assert!(t1[i] <= t2[i] + 1e-9, "node {i}: {} > {}", t1[i], t2[i]);
            }
        }
    }

    #[test]
    fn truncated_bounded_by_exact(ts in ratings()) {
        let (adj, seed) = graph_with_seed(&ts);
        let walk = AbsorbingWalk::new(&adj, &[seed]);
        if let Ok(exact) = walk.exact_times() {
            let approx = walk.truncated_times(50);
            for i in 0..adj.n_nodes() {
                if exact[i].is_finite() {
                    // The truncated DP approaches the exact value from below.
                    prop_assert!(approx[i] <= exact[i] + 1e-6, "node {i}");
                }
            }
        }
    }

    #[test]
    fn absorbing_nodes_always_zero(ts in ratings(), extra in 0..13usize) {
        let g = BipartiteGraph::from_ratings(6, 7, &ts);
        let adj = Adjacency::from_bipartite(&g);
        let seeds = [g.user_node(ts[0].0), extra % adj.n_nodes()];
        let walk = AbsorbingWalk::new(&adj, &seeds);
        let t = walk.truncated_times(20);
        for &s in &seeds {
            prop_assert_eq!(t[s], 0.0);
        }
    }

    #[test]
    fn costs_scale_linearly(ts in ratings(), scale in 0.5f64..4.0) {
        let (adj, seed) = graph_with_seed(&ts);
        let walk = AbsorbingWalk::new(&adj, &[seed]);
        let base = walk.truncated_times(25);
        let cost = PerNodeCost::new(vec![scale; adj.n_nodes()]);
        let scaled = walk.truncated_costs(&cost, 25);
        for i in 0..adj.n_nodes() {
            if base[i].is_finite() {
                prop_assert!((scaled[i] - scale * base[i]).abs() < 1e-6 * (1.0 + base[i]));
            }
        }
    }

    #[test]
    fn pagerank_is_a_distribution(ts in ratings()) {
        let (adj, seed) = graph_with_seed(&ts);
        let rank = personalized_pagerank(&adj, &[seed], &PageRankConfig::default());
        prop_assert!(rank.iter().all(|&r| r >= -1e-12));
        let sum: f64 = rank.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-6, "sum = {sum}");
    }

    #[test]
    fn pagerank_mass_concentrates_with_damping(ts in ratings()) {
        let (adj, seed) = graph_with_seed(&ts);
        let tight = personalized_pagerank(&adj, &[seed], &PageRankConfig {
            damping: 0.2,
            ..PageRankConfig::default()
        });
        let loose = personalized_pagerank(&adj, &[seed], &PageRankConfig {
            damping: 0.9,
            ..PageRankConfig::default()
        });
        // Lower damping keeps more mass at the teleport node.
        prop_assert!(tight[seed] >= loose[seed] - 1e-9);
    }
}
