//! Per-model circuit breakers: fail fast instead of feeding a bad model.
//!
//! Every registry slot (one per unsharded model, one per shard of a
//! sharded group) owns a [`CircuitBreaker`] fed by the engine with request
//! outcomes — panics, NaN-poisoned responses and in-DP deadline expiries
//! count as failures; served responses count as successes. The breaker
//! walks the classic three-state machine:
//!
//! * **Closed** — traffic flows; outcomes fill a rolling window. Once the
//!   window holds [`BreakerConfig::failure_threshold`] failures, the
//!   breaker trips.
//! * **Open** — requests are refused *before* any queue slot or
//!   [`longtail_core::ScoringContext`] is spent on them
//!   ([`crate::ServeError::CircuitOpen`], or the registered fallback).
//!   After [`BreakerConfig::cooldown`] the next request is admitted as a
//!   probe.
//! * **HalfOpen** — exactly one probe is in flight; everything else is
//!   still refused. The probe's success fully closes the breaker (fresh
//!   window — the recovered model starts with a clean slate); its failure
//!   re-opens it for another cooldown.
//!
//! Breakers are disabled unless the engine is built with
//! [`crate::EngineBuilder::breakers`]: a disabled breaker admits
//! everything and records nothing, so fault tolerance is strictly opt-in
//! and the fault-free serving path is unchanged.

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Tuning of a circuit breaker's trip/recover behaviour (builder
/// `breakers`; one breaker per model, one per shard for sharded models).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Size of the rolling outcome window (most recent requests).
    pub window: usize,
    /// Failures within the window that trip the breaker Closed → Open.
    pub failure_threshold: usize,
    /// How long an open breaker refuses traffic before admitting a
    /// half-open probe.
    pub cooldown: Duration,
}

impl Default for BreakerConfig {
    /// A window of 16 outcomes tripping at 8 failures, with a 100 ms
    /// cooldown — tight enough that a hard-down model stops taking traffic
    /// within a handful of requests, loose enough that isolated failures
    /// (one bad user id) never trip it.
    fn default() -> Self {
        Self {
            window: 16,
            failure_threshold: 8,
            cooldown: Duration::from_millis(100),
        }
    }
}

/// Observable state of a circuit breaker (see the module docs for the
/// transition rules).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerState {
    /// Traffic flows; outcomes fill the rolling window.
    Closed,
    /// Requests are refused fast; a cooldown gates the next probe.
    Open,
    /// One recovery probe is in flight; other requests are still refused.
    HalfOpen,
}

/// What the breaker decided about one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BreakerDecision {
    /// Serve normally (closed breaker, or breakers disabled).
    Allow,
    /// Serve as the half-open recovery probe: the outcome decides whether
    /// the breaker closes or re-opens.
    Probe,
    /// Refuse without serving (open, or half-open with the probe taken).
    Refuse,
}

#[derive(Debug)]
enum State {
    Closed {
        /// Rolling outcome window, `true` = failure.
        window: VecDeque<bool>,
        failures: usize,
    },
    Open {
        since: Instant,
    },
    HalfOpen {
        probe_in_flight: bool,
    },
}

#[derive(Debug)]
struct Inner {
    config: BreakerConfig,
    state: State,
    /// Closed→Open transitions over the breaker's lifetime.
    trips: u64,
}

/// The three-state breaker guarding one registry slot. `None` inner means
/// breakers are disabled for this engine: every request is allowed and no
/// outcome is recorded.
#[derive(Debug)]
pub(crate) struct CircuitBreaker {
    inner: Option<Mutex<Inner>>,
}

impl CircuitBreaker {
    pub(crate) fn new(config: Option<BreakerConfig>) -> Self {
        let inner = config.map(|config| {
            Mutex::new(Inner {
                state: State::Closed {
                    window: VecDeque::with_capacity(config.window),
                    failures: 0,
                },
                config,
                trips: 0,
            })
        });
        Self { inner }
    }

    fn lock(&self) -> Option<std::sync::MutexGuard<'_, Inner>> {
        // No lock-holding path panics; recover from poison regardless.
        self.inner
            .as_ref()
            .map(|m| m.lock().unwrap_or_else(|e| e.into_inner()))
    }

    /// Decide the fate of one request, performing any due state
    /// transition (Open → HalfOpen once the cooldown elapses).
    pub(crate) fn admit(&self) -> BreakerDecision {
        let Some(mut inner) = self.lock() else {
            return BreakerDecision::Allow;
        };
        match &mut inner.state {
            State::Closed { .. } => BreakerDecision::Allow,
            State::Open { since } => {
                if since.elapsed() >= inner.config.cooldown {
                    inner.state = State::HalfOpen {
                        probe_in_flight: true,
                    };
                    BreakerDecision::Probe
                } else {
                    BreakerDecision::Refuse
                }
            }
            State::HalfOpen { probe_in_flight } => {
                if *probe_in_flight {
                    BreakerDecision::Refuse
                } else {
                    *probe_in_flight = true;
                    BreakerDecision::Probe
                }
            }
        }
    }

    /// Read-only admission check for the submit-time fast path: would a
    /// request be refused *right now*? Performs no transition — an open
    /// breaker whose cooldown has elapsed answers `false`, and the worker's
    /// [`CircuitBreaker::admit`] turns that request into the probe.
    pub(crate) fn would_refuse(&self) -> bool {
        let Some(inner) = self.lock() else {
            return false;
        };
        match &inner.state {
            State::Closed { .. } => false,
            State::Open { since } => since.elapsed() < inner.config.cooldown,
            State::HalfOpen { probe_in_flight } => *probe_in_flight,
        }
    }

    /// Record a served response. A successful half-open probe fully closes
    /// the breaker: fresh window, zero remembered failures.
    pub(crate) fn record_success(&self, probe: bool) {
        let Some(mut inner) = self.lock() else { return };
        let cap = inner.config.window;
        match &mut inner.state {
            State::Closed { window, failures } => {
                Self::push_outcome(window, failures, cap, false);
            }
            State::HalfOpen { .. } if probe => {
                inner.state = State::Closed {
                    window: VecDeque::with_capacity(inner.config.window),
                    failures: 0,
                };
            }
            // A non-probe straggler (admitted before the trip) finishing
            // while half-open or open carries no fresh evidence the probe
            // isn't about to produce; ignore it.
            State::HalfOpen { .. } | State::Open { .. } => {}
        }
    }

    /// Record a model failure (panic, poisoned scores, in-DP deadline
    /// expiry). Trips a closed breaker at the window threshold; re-opens a
    /// half-open one whose probe failed. Straggler failures while half-open
    /// also re-open — a model still failing is not recovered.
    pub(crate) fn record_failure(&self, probe: bool) {
        let _ = probe;
        let Some(mut inner) = self.lock() else { return };
        let cap = inner.config.window;
        let threshold = inner.config.failure_threshold;
        match &mut inner.state {
            State::Closed { window, failures } => {
                Self::push_outcome(window, failures, cap, true);
                if *failures >= threshold {
                    inner.state = State::Open {
                        since: Instant::now(),
                    };
                    inner.trips += 1;
                }
            }
            State::HalfOpen { .. } => {
                inner.state = State::Open {
                    since: Instant::now(),
                };
                inner.trips += 1;
            }
            State::Open { .. } => {}
        }
    }

    fn push_outcome(window: &mut VecDeque<bool>, failures: &mut usize, cap: usize, failed: bool) {
        window.push_back(failed);
        *failures += usize::from(failed);
        while window.len() > cap {
            if let Some(evicted) = window.pop_front() {
                *failures -= usize::from(evicted);
            }
        }
    }

    /// Restore a probe token that will never report: the probing attempt
    /// died without recording an outcome (worker kill, or an unwind
    /// escaping between take and record). The breaker re-opens for a fresh
    /// cooldown — the next admission after it becomes the new probe —
    /// instead of wedging HalfOpen forever with its only probe slot
    /// leaked. A no-op in every other state (the probe recorded normally
    /// before the pledge dropped) and not counted as a trip (no outcome
    /// was observed).
    pub(crate) fn abandon_probe(&self) {
        let Some(mut inner) = self.lock() else { return };
        if let State::HalfOpen {
            probe_in_flight: true,
        } = inner.state
        {
            inner.state = State::Open {
                since: Instant::now(),
            };
        }
    }

    /// Current observable state (a disabled breaker reads Closed).
    pub(crate) fn state(&self) -> BreakerState {
        match self.lock().as_deref() {
            None
            | Some(Inner {
                state: State::Closed { .. },
                ..
            }) => BreakerState::Closed,
            Some(Inner {
                state: State::Open { .. },
                ..
            }) => BreakerState::Open,
            Some(Inner {
                state: State::HalfOpen { .. },
                ..
            }) => BreakerState::HalfOpen,
        }
    }

    /// Lifetime Closed→Open trip count (0 for a disabled breaker).
    pub(crate) fn trips(&self) -> u64 {
        self.lock().map_or(0, |inner| inner.trips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config(window: usize, threshold: usize, cooldown: Duration) -> Option<BreakerConfig> {
        Some(BreakerConfig {
            window,
            failure_threshold: threshold,
            cooldown,
        })
    }

    #[test]
    fn disabled_breaker_always_allows() {
        let b = CircuitBreaker::new(None);
        for _ in 0..10 {
            assert_eq!(b.admit(), BreakerDecision::Allow);
            b.record_failure(false);
        }
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(!b.would_refuse());
        assert_eq!(b.trips(), 0);
    }

    #[test]
    fn trips_at_threshold_and_refuses() {
        let b = CircuitBreaker::new(config(4, 2, Duration::from_secs(60)));
        assert_eq!(b.admit(), BreakerDecision::Allow);
        b.record_failure(false);
        assert_eq!(b.state(), BreakerState::Closed, "one failure is tolerated");
        b.record_failure(false);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert_eq!(b.admit(), BreakerDecision::Refuse);
        assert!(b.would_refuse());
    }

    #[test]
    fn window_forgets_old_failures() {
        let b = CircuitBreaker::new(config(3, 2, Duration::from_secs(60)));
        b.record_failure(false);
        b.record_success(false);
        b.record_success(false);
        // The failure has rolled out of the 3-wide window.
        b.record_failure(false);
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn cooldown_admits_one_probe_then_success_fully_closes() {
        let b = CircuitBreaker::new(config(4, 2, Duration::ZERO));
        b.record_failure(false);
        b.record_failure(false);
        assert_eq!(b.state(), BreakerState::Open);
        // Zero cooldown: the next admission is the probe; concurrent
        // requests are still refused while it is in flight.
        assert!(!b.would_refuse(), "cooldown elapsed: submit may pass");
        assert_eq!(b.admit(), BreakerDecision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert_eq!(b.admit(), BreakerDecision::Refuse);
        assert!(b.would_refuse());

        b.record_success(true);
        assert_eq!(b.state(), BreakerState::Closed);
        // FULLY closed: the pre-trip failures are forgotten with the old
        // window, so one fresh failure sits at 1 of 2 — below threshold —
        // instead of instantly re-tripping on stale history.
        b.record_failure(false);
        assert_eq!(b.state(), BreakerState::Closed);
        b.record_failure(false);
        assert_eq!(b.state(), BreakerState::Open, "fresh window still counts");
    }

    #[test]
    fn failed_probe_reopens() {
        let b = CircuitBreaker::new(config(2, 1, Duration::ZERO));
        b.record_failure(false);
        assert_eq!(b.admit(), BreakerDecision::Probe);
        b.record_failure(true);
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 2);
        // A new cooldown gates the next probe (zero here, so immediate).
        assert_eq!(b.admit(), BreakerDecision::Probe);
    }

    /// Regression test for the half-open wedge: a probe that dies without
    /// recording an outcome must hand its token back, or the breaker
    /// refuses every request forever.
    #[test]
    fn abandoned_probe_reopens_instead_of_wedging() {
        let b = CircuitBreaker::new(config(2, 1, Duration::ZERO));
        b.record_failure(false);
        assert_eq!(b.admit(), BreakerDecision::Probe);
        assert_eq!(b.state(), BreakerState::HalfOpen);
        // Without abandon_probe, this breaker would now refuse forever:
        // no transition out of HalfOpen ever fires without an outcome.
        assert_eq!(b.admit(), BreakerDecision::Refuse);
        b.abandon_probe();
        assert_eq!(b.state(), BreakerState::Open, "token restored via Open");
        assert_eq!(b.trips(), 1, "an abandoned probe is not a trip");
        // Zero cooldown: the next admission becomes a fresh probe, and a
        // successful one still closes the breaker — full recovery.
        assert_eq!(b.admit(), BreakerDecision::Probe);
        b.record_success(true);
        assert_eq!(b.state(), BreakerState::Closed);
        // Abandoning when no probe is pending is a no-op.
        b.abandon_probe();
        assert_eq!(b.state(), BreakerState::Closed);
    }

    #[test]
    fn open_before_cooldown_refuses() {
        let b = CircuitBreaker::new(config(2, 1, Duration::from_secs(3600)));
        b.record_failure(false);
        assert_eq!(b.admit(), BreakerDecision::Refuse);
        assert_eq!(b.state(), BreakerState::Open);
    }
}
