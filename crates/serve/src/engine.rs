//! The serving engine: model registry, request execution, the persistent
//! worker pool and the async submission front-end.

use crate::pool::ContextPool;
use crate::queue::{Admission, AdmissionPolicy, Job, JobQueue};
use crate::request::{RecommendRequest, RecommendResponse, ServeError};
use crate::router::ShardRouter;
use crate::submit::{EngineCounters, EngineStats, PendingResponse};
use longtail_core::{DpStopping, DpTelemetry, RecommendOptions, Recommender};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;
use std::time::Instant;

/// A recommender shared between the engine's caller threads and pool
/// workers. Every concrete recommender in `longtail-core` is an immutable
/// model after construction, hence `Send + Sync`.
pub type SharedRecommender = Arc<dyn Recommender + Send + Sync>;

/// One registry slot: a single model, or a user-sharded group of them.
enum ModelEntry {
    Single(SharedRecommender),
    Sharded {
        router: Arc<dyn ShardRouter>,
        shards: Vec<SharedRecommender>,
    },
}

impl ModelEntry {
    /// The recommender (and shard index, for sharded entries) owning
    /// `user`'s requests.
    fn resolve(&self, user: u32) -> (&SharedRecommender, Option<usize>) {
        match self {
            Self::Single(rec) => (rec, None),
            Self::Sharded { router, shards } => {
                let shard = router.route(user, shards.len());
                assert!(
                    shard < shards.len(),
                    "router returned shard {shard} for {} shards",
                    shards.len()
                );
                (&shards[shard], Some(shard))
            }
        }
    }
}

/// Registry + pools + counters — the part of the engine shared with worker
/// threads.
struct EngineCore {
    models: HashMap<String, ModelEntry>,
    default_stopping: DpStopping,
    contexts: ContextPool,
    /// Engine-lifetime [`DpTelemetry`], merged across every request served
    /// by any caller thread or pool worker.
    aggregate: Mutex<DpTelemetry>,
    /// Saturation/shed/deadline counters (see [`EngineStats`]).
    counters: EngineCounters,
}

impl EngineCore {
    /// Serve one *admitted* request on the calling thread — the shared path
    /// of pool workers and the inline `recommend`: the dequeue-time
    /// deadline check, then execution, with the outcome counted.
    fn serve_admitted(&self, req: &RecommendRequest) -> Result<RecommendResponse, ServeError> {
        if req.deadline.is_some_and(|d| Instant::now() >= d) {
            // Shed before any scoring work: an expired request's answer
            // could not be used, so the DP never runs for it.
            EngineCounters::bump(&self.counters.expired_at_dequeue);
            return Err(ServeError::DeadlineExceeded);
        }
        let result = self.execute(req);
        EngineCounters::bump(match &result {
            Ok(_) => &self.counters.completed,
            Err(ServeError::DeadlineExceeded) => &self.counters.expired_in_dp,
            Err(_) => &self.counters.failed,
        });
        result
    }

    /// Serve one request on the calling thread through a pooled context.
    fn execute(&self, req: &RecommendRequest) -> Result<RecommendResponse, ServeError> {
        let entry = self
            .models
            .get(&req.model)
            .ok_or_else(|| ServeError::UnknownModel(req.model.clone()))?;
        let (rec, shard) = entry.resolve(req.user);

        // Normalize the request's exclusion set to the sorted/deduped form
        // RecommendOptions requires. Only requests that actually exclude
        // anything pay the copy.
        let mut exclude_sorted;
        let exclude: &[u32] = if req.exclude.is_empty() {
            &[]
        } else {
            exclude_sorted = req.exclude.clone();
            exclude_sorted.sort_unstable();
            exclude_sorted.dedup();
            &exclude_sorted
        };
        let opts = RecommendOptions {
            stopping: req.stopping.unwrap_or(self.default_stopping),
            exclude,
            deadline: req.deadline,
        };

        let mut ctx = self.contexts.checkout();
        let before = ctx.dp_telemetry();
        let mut items = Vec::new();
        // A panicking query (e.g. an out-of-range user id) must not take a
        // long-lived pool worker — or a whole batch — down with it: catch
        // it and fail only this request. The context is NOT checked back in
        // on panic (its buffers may be mid-update); dropping it costs one
        // warm context, nothing else. The shared state touched below the
        // catch (pool, aggregate) is only ever locked around non-panicking
        // code, so observing it after an unwind is sound.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            rec.recommend_into(req.user, req.k, &opts, &mut ctx, &mut items);
        }));
        if let Err(payload) = outcome {
            return Err(ServeError::RequestPanicked(panic_message(&payload)));
        }
        let telemetry = ctx.dp_telemetry().since(&before);
        self.contexts.checkin(ctx);
        self.aggregate.lock().merge(&telemetry);

        if telemetry.deadline_expired > 0 {
            // The walk DP cancelled cooperatively: the collected list ranks
            // partially-iterated values and must not be served.
            return Err(ServeError::DeadlineExceeded);
        }

        Ok(RecommendResponse {
            items,
            model: rec.name(),
            shard,
            telemetry,
        })
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// The multi-model serving engine.
///
/// An `Engine` owns a registry of named models (optionally sharded by a
/// [`ShardRouter`]), a [`ContextPool`] of reusable scoring contexts, and —
/// unless built with `workers(0)` — a pool of persistent worker threads
/// draining a **bounded admission queue**. Three request paths:
///
/// * [`Engine::recommend`] — inline on the calling thread (lowest latency);
/// * [`Engine::submit`] — non-blocking enqueue, returning a
///   [`PendingResponse`] handle; the queue's [`AdmissionPolicy`] decides
///   what a full queue does, and per-request deadlines shed work that can
///   no longer answer in time;
/// * [`Engine::recommend_batch`] — fan-out over `submit` plus an in-order
///   drain, i.e. the blocking convenience form of the async path.
///
/// Output equivalence is a pinned contract: for any request the engine
/// *answers*, the response's `items` are exactly what the routed
/// recommender's [`Recommender::recommend_into`] produces with the
/// request's effective [`RecommendOptions`] — the engine adds routing,
/// pooling, admission control and telemetry, never ranking changes.
/// Requests it cannot answer in time fail typed instead
/// ([`ServeError::Overloaded`] / [`ServeError::DeadlineExceeded`]).
///
/// ```
/// use longtail_core::{GraphRecConfig, HittingTimeRecommender};
/// use longtail_data::{Dataset, Rating};
/// use longtail_serve::{Engine, RecommendRequest};
/// use std::sync::Arc;
///
/// let ratings = [
///     Rating { user: 0, item: 0, value: 5.0 },
///     Rating { user: 1, item: 0, value: 4.0 },
///     Rating { user: 1, item: 1, value: 5.0 },
/// ];
/// let train = Dataset::from_ratings(2, 2, &ratings);
/// let engine = Engine::builder()
///     .model("HT", Arc::new(HittingTimeRecommender::new(&train, GraphRecConfig::default())))
///     .workers(2)
///     .build();
/// // Async submission: enqueue now, claim the response when needed.
/// let pending = engine.submit(RecommendRequest::new("HT", 0, 5)).unwrap();
/// let response = pending.wait().unwrap();
/// assert_eq!(response.items[0].item, 1);
/// ```
pub struct Engine {
    core: Arc<EngineCore>,
    /// Bounded job queue feeding the worker pool; `None` when built with 0
    /// workers (submissions then run inline).
    queue: Option<Arc<JobQueue>>,
    policy: AdmissionPolicy,
    workers: Vec<JoinHandle<()>>,
}

impl Engine {
    /// Start configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Serve one request inline on the calling thread, through a pooled
    /// context — the low-latency path. The worker pool and admission queue
    /// are not involved; the request's deadline still applies (both before
    /// execution and inside the walk DP).
    pub fn recommend(&self, req: &RecommendRequest) -> Result<RecommendResponse, ServeError> {
        EngineCounters::bump(&self.core.counters.submitted);
        self.core.serve_admitted(req)
    }

    /// Submit one request to the worker pool without waiting for it: the
    /// returned [`PendingResponse`] yields the response (or typed failure)
    /// via `try_recv`/`wait_timeout`/`wait`.
    ///
    /// Admission is governed by the engine's [`AdmissionPolicy`] when the
    /// bounded queue is full: `Block` waits for a slot (the only way this
    /// method blocks), `Reject` returns [`ServeError::Overloaded`]
    /// immediately, and `ShedOldest` admits this request by resolving the
    /// oldest queued request's handle with `Overloaded`. An engine built
    /// with `workers(0)` has no queue and serves submissions synchronously
    /// on the calling thread (the handle comes back already resolved).
    pub fn submit(&self, request: RecommendRequest) -> Result<PendingResponse, ServeError> {
        let Some(queue) = &self.queue else {
            EngineCounters::bump(&self.core.counters.submitted);
            return Ok(PendingResponse::ready(self.core.serve_admitted(&request)));
        };
        let (reply, rx) = mpsc::channel();
        match queue.push(Job { request, reply }, self.policy) {
            Admission::Enqueued => {
                EngineCounters::bump(&self.core.counters.submitted);
                Ok(PendingResponse::new(rx))
            }
            Admission::Shed(victim) => {
                EngineCounters::bump(&self.core.counters.submitted);
                EngineCounters::bump(&self.core.counters.shed);
                victim.refuse(ServeError::Overloaded);
                Ok(PendingResponse::new(rx))
            }
            Admission::Rejected => {
                EngineCounters::bump(&self.core.counters.rejected);
                Err(ServeError::Overloaded)
            }
            Admission::Closed => Err(ServeError::ShuttingDown),
        }
    }

    /// Serve a batch as fan-out over [`Engine::submit`] plus an in-order
    /// drain (or inline, in order, when built with `workers(0)`).
    ///
    /// `results[j]` answers `requests[j]`; per-request failures (unknown
    /// model, shed, expired) are returned in place, never aborting the rest
    /// of the batch. Under the default [`AdmissionPolicy::Block`] every
    /// request is admitted and the batch behaves exactly like the blocking
    /// API of previous releases; under `Reject`/`ShedOldest` a saturated
    /// queue surfaces [`ServeError::Overloaded`] in the affected slots.
    pub fn recommend_batch(
        &self,
        requests: Vec<RecommendRequest>,
    ) -> Vec<Result<RecommendResponse, ServeError>> {
        let pending: Vec<Result<PendingResponse, ServeError>> =
            requests.into_iter().map(|r| self.submit(r)).collect();
        pending
            .into_iter()
            .map(|p| match p {
                Ok(handle) => handle.wait(),
                Err(refused) => Err(refused),
            })
            .collect()
    }

    /// Names of every registered model, sorted.
    pub fn models(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.core.models.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Number of persistent worker threads.
    pub fn n_workers(&self) -> usize {
        self.workers.len()
    }

    /// Number of submitted requests currently waiting in the admission
    /// queue (0 for a zero-worker engine).
    pub fn queue_depth(&self) -> usize {
        self.queue.as_ref().map_or(0, |q| q.depth())
    }

    /// Engine-lifetime [`DpTelemetry`], merged (via [`DpTelemetry::merge`])
    /// across every request served so far — inline and pool-worker alike.
    pub fn telemetry(&self) -> DpTelemetry {
        *self.core.aggregate.lock()
    }

    /// Engine-lifetime [`EngineStats`]: submission, saturation, shed and
    /// deadline counters. Monotone — diff snapshots with
    /// [`EngineStats::since`] to scope them to a traffic window.
    pub fn stats(&self) -> EngineStats {
        self.core.counters.snapshot()
    }

    /// Zero the engine-lifetime telemetry (e.g. between benchmark phases).
    /// [`Engine::stats`] counters are intentionally not reset (they are
    /// monotone; use [`EngineStats::since`]).
    pub fn reset_telemetry(&self) {
        *self.core.aggregate.lock() = DpTelemetry::default();
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Bounded-time shutdown: close the queue and cancel every
        // not-yet-started request (each pending handle resolves
        // `ShuttingDown`), so the join below waits only for the at most
        // `n_workers` requests already mid-execution — never for a backlog.
        if let Some(queue) = &self.queue {
            for job in queue.close_and_drain() {
                EngineCounters::bump(&self.core.counters.cancelled_at_shutdown);
                job.refuse(ServeError::ShuttingDown);
            }
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

/// What a pool worker does for its whole life: pull jobs off the bounded
/// queue, serve them through the core, reply. Ends when the engine closes
/// the queue and the backlog is cancelled.
fn worker_loop(core: Arc<EngineCore>, queue: Arc<JobQueue>) {
    while let Some(job) = queue.pop() {
        // A closed reply channel means the submitter dropped its handle
        // (gave up on the result); the work still ran, the reply just has
        // no audience.
        let result = core.serve_admitted(&job.request);
        let _ = job.reply.send(result);
    }
}

/// Configures and builds an [`Engine`].
pub struct EngineBuilder {
    models: HashMap<String, ModelEntry>,
    workers: Option<usize>,
    max_idle_contexts: Option<usize>,
    default_stopping: DpStopping,
    queue_capacity: usize,
    policy: AdmissionPolicy,
}

impl EngineBuilder {
    /// Queued (not yet started) requests the admission queue holds before
    /// the [`AdmissionPolicy`] engages.
    pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

    /// An empty registry with defaults: one worker per available core, a
    /// context pool sized to the workers, adaptive stopping, a
    /// 1024-request admission queue under [`AdmissionPolicy::Block`].
    pub fn new() -> Self {
        Self {
            models: HashMap::new(),
            workers: None,
            max_idle_contexts: None,
            default_stopping: DpStopping::default(),
            queue_capacity: Self::DEFAULT_QUEUE_CAPACITY,
            policy: AdmissionPolicy::default(),
        }
    }

    /// Register `rec` under `name`, replacing any previous registration of
    /// that name.
    pub fn model(mut self, name: impl Into<String>, rec: SharedRecommender) -> Self {
        self.models.insert(name.into(), ModelEntry::Single(rec));
        self
    }

    /// Register a user-sharded model group under `name`: requests route to
    /// `shards[router.route(user, shards.len())]`.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn sharded_model(
        mut self,
        name: impl Into<String>,
        router: Arc<dyn ShardRouter>,
        shards: Vec<SharedRecommender>,
    ) -> Self {
        assert!(!shards.is_empty(), "a sharded model needs at least 1 shard");
        self.models
            .insert(name.into(), ModelEntry::Sharded { router, shards });
        self
    }

    /// Number of persistent worker threads backing [`Engine::submit`] and
    /// [`Engine::recommend_batch`]. `0` disables the pool (submissions and
    /// batches run inline on the calling thread). Defaults to the
    /// available parallelism.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Capacity of the bounded admission queue — how many submitted
    /// requests may wait for a worker before the [`AdmissionPolicy`]
    /// engages. Defaults to
    /// [`EngineBuilder::DEFAULT_QUEUE_CAPACITY`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 (a queue that can hold nothing cannot admit).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        assert!(n > 0, "queue capacity must be at least 1");
        self.queue_capacity = n;
        self
    }

    /// Backpressure policy applied by [`Engine::submit`] when the admission
    /// queue is full. Defaults to [`AdmissionPolicy::Block`].
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Cap on idle [`longtail_core::ScoringContext`]s the engine retains
    /// between requests. Defaults to `workers + 2` (every worker plus a
    /// couple of inline callers stay warm).
    pub fn max_idle_contexts(mut self, n: usize) -> Self {
        self.max_idle_contexts = Some(n);
        self
    }

    /// The [`DpStopping`] applied to requests that don't override it.
    /// Defaults to [`DpStopping::adaptive`].
    pub fn default_stopping(mut self, stopping: DpStopping) -> Self {
        self.default_stopping = stopping;
        self
    }

    /// Spawn the worker pool and finish the engine.
    pub fn build(self) -> Engine {
        let workers = self
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
        let core = Arc::new(EngineCore {
            models: self.models,
            default_stopping: self.default_stopping,
            contexts: ContextPool::new(self.max_idle_contexts.unwrap_or(workers + 2)),
            aggregate: Mutex::new(DpTelemetry::default()),
            counters: EngineCounters::default(),
        });
        let queue = (workers > 0).then(|| Arc::new(JobQueue::new(self.queue_capacity)));
        let handles = match &queue {
            Some(queue) => (0..workers)
                .map(|_| {
                    let core = Arc::clone(&core);
                    let queue = Arc::clone(queue);
                    std::thread::spawn(move || worker_loop(core, queue))
                })
                .collect(),
            None => Vec::new(),
        };
        Engine {
            core,
            queue,
            policy: self.policy,
            workers: handles,
        }
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}
