//! The serving engine: model registry, request execution, the persistent
//! worker pool, the async submission front-end, and the fault-tolerance
//! layer (circuit breakers, retries, degraded-mode fallback, worker
//! supervision).

use crate::breaker::{BreakerConfig, BreakerDecision, BreakerState, CircuitBreaker};
use crate::faults::WORKER_KILL_MARK;
use crate::ingest::{CompactionReport, DeltaSnapshot, DeltaStore};
use crate::pool::ContextPool;
use crate::queue::{Admission, AdmissionPolicy, Job, JobQueue};
use crate::request::{RecommendRequest, RecommendResponse, RetryPolicy, ServeError};
use crate::router::ShardRouter;
use crate::sched::{Priority, SchedPolicy, ServiceEwma};
use crate::submit::{EngineCounters, EngineStats, PendingResponse};
use longtail_core::{
    DpStopping, DpTelemetry, RecommendOptions, Recommender, RerankIndex, RerankPolicy, Reranker,
};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Weak};
use std::thread::JoinHandle;
use std::time::Instant;

/// A recommender shared between the engine's caller threads and pool
/// workers. Every concrete recommender in `longtail-core` is an immutable
/// model after construction, hence `Send + Sync`.
pub type SharedRecommender = Arc<dyn Recommender + Send + Sync>;

/// Where a deployed model version came from — snapshot provenance for
/// operators ([`ModelHealth`]) to tell what is actually serving.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ModelProvenance {
    /// Trained (or constructed) in this process and registered directly.
    InProcess,
    /// Loaded from a snapshot file at this path.
    Snapshot(PathBuf),
}

impl std::fmt::Display for ModelProvenance {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ModelProvenance::InProcess => write!(f, "trained in-process"),
            ModelProvenance::Snapshot(path) => write!(f, "snapshot {}", path.display()),
        }
    }
}

/// One *published version* of a servable unit: the recommender, its
/// provenance, and the circuit breaker guarding it (disabled unless the
/// engine was built with breakers).
///
/// Versions are immutable once published. Requests pin the version they
/// resolved at dequeue by holding its `Arc` across execution, so a deploy
/// never changes what an in-flight request serves; the old version retires
/// when its last borrow drops.
///
/// **Breaker policy:** each version gets a *fresh* breaker — failure
/// evidence against version `v` says nothing about version `v+1`, and a
/// rollback deserves a clean slate too.
struct ModelVersion {
    version: u32,
    rec: SharedRecommender,
    breaker: CircuitBreaker,
}

/// One deploy-history entry. The `Weak` handle is the retirement witness:
/// once the version is no longer active and its last in-flight borrow
/// drops, the strong count hits zero and the model's memory is freed — the
/// history row stays, the model does not.
struct DeployRecord {
    version: u32,
    provenance: ModelProvenance,
    handle: Weak<ModelVersion>,
}

/// One deploy-history row of a servable unit, as reported by
/// [`ModelHealth::deploy_history`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VersionRecord {
    /// Version number (1 is the build-time registration; each deploy
    /// increments).
    pub version: u32,
    /// Where this version came from.
    pub provenance: ModelProvenance,
    /// `true` once the version is fully retired: no longer active *and*
    /// no in-flight request still holds it.
    pub retired: bool,
}

/// One servable unit as a *version chain*: the atomically swappable active
/// version plus the deploy history. This is arc-swap semantics with a
/// `Mutex<Arc<_>>`: readers clone the `Arc` under a lock held for
/// nanoseconds, writers swap the `Arc` in place — no reader ever blocks on
/// model execution, and no deploy ever waits for in-flight requests.
struct ModelSlot {
    active: Mutex<Arc<ModelVersion>>,
    /// Every version ever published for this unit, oldest first (the
    /// active one is the last entry).
    history: Mutex<Vec<DeployRecord>>,
}

impl ModelSlot {
    fn new(
        rec: SharedRecommender,
        breaker_config: Option<BreakerConfig>,
        provenance: ModelProvenance,
    ) -> Self {
        let version = Arc::new(ModelVersion {
            version: 1,
            rec,
            breaker: CircuitBreaker::new(breaker_config),
        });
        let record = DeployRecord {
            version: 1,
            provenance,
            handle: Arc::downgrade(&version),
        };
        Self {
            active: Mutex::new(version),
            history: Mutex::new(vec![record]),
        }
    }

    /// The currently active version, pinned: the returned `Arc` keeps this
    /// exact version alive for as long as the caller holds it, across any
    /// number of concurrent deploys.
    fn active(&self) -> Arc<ModelVersion> {
        Arc::clone(&self.active.lock())
    }

    /// Atomically publish a new version: requests that resolve after this
    /// call route to it, requests already holding the previous `Arc`
    /// finish on the version they resolved. Returns the new version
    /// number.
    fn publish(
        &self,
        rec: SharedRecommender,
        breaker_config: Option<BreakerConfig>,
        provenance: ModelProvenance,
    ) -> u32 {
        // Lock order: history before active (matched by `records`, the
        // only other place both are held).
        let mut history = self.history.lock();
        let version = history.last().map_or(0, |r| r.version) + 1;
        let fresh = Arc::new(ModelVersion {
            version,
            rec,
            breaker: CircuitBreaker::new(breaker_config),
        });
        history.push(DeployRecord {
            version,
            provenance,
            handle: Arc::downgrade(&fresh),
        });
        *self.active.lock() = fresh;
        version
    }

    /// The deploy history as public rows, plus the active version number.
    fn records(&self) -> (u32, Vec<VersionRecord>) {
        let history = self.history.lock();
        let active = self.active.lock().version;
        let rows = history
            .iter()
            .map(|r| VersionRecord {
                version: r.version,
                provenance: r.provenance.clone(),
                retired: r.version != active && r.handle.strong_count() == 0,
            })
            .collect();
        (active, rows)
    }
}

/// One registry slot: a single model, or a user-sharded group of them.
/// Sharded groups carry one version chain (and therefore one breaker) per
/// shard — a down shard stops taking its users' traffic without opening
/// the whole group, and each shard deploys independently.
enum ModelEntry {
    Single(ModelSlot),
    Sharded {
        router: Arc<dyn ShardRouter>,
        shards: Vec<ModelSlot>,
    },
}

impl ModelEntry {
    /// Pin the active version (and shard index, for sharded entries)
    /// owning `user`'s requests. The returned `Arc` is the request's
    /// version for its whole execution — deploys that land later swap the
    /// slot, not this pin.
    fn resolve(&self, user: u32) -> (Arc<ModelVersion>, Option<usize>) {
        match self {
            Self::Single(slot) => (slot.active(), None),
            Self::Sharded { router, shards } => {
                let shard = router.route(user, shards.len());
                assert!(
                    shard < shards.len(),
                    "router returned shard {shard} for {} shards",
                    shards.len()
                );
                (shards[shard].active(), Some(shard))
            }
        }
    }

    /// The unit slots (length 1 for unsharded models).
    fn slots(&self) -> Vec<&ModelSlot> {
        match self {
            Self::Single(slot) => vec![slot],
            Self::Sharded { shards, .. } => shards.iter().collect(),
        }
    }

    /// Breaker state per servable unit's *active version* (length 1 for
    /// unsharded models).
    fn breaker_states(&self) -> Vec<BreakerState> {
        self.slots()
            .into_iter()
            .map(|s| s.active().breaker.state())
            .collect()
    }

    /// Lifetime Closed→Open trips of the entry's *active* breakers.
    /// Breakers reset per deploy, so this counts trips since each unit's
    /// last deploy.
    fn breaker_trips(&self) -> u64 {
        self.slots()
            .into_iter()
            .map(|s| s.active().breaker.trips())
            .sum()
    }
}

/// Registry + pools + counters — the part of the engine shared with worker
/// threads.
struct EngineCore {
    models: HashMap<String, ModelEntry>,
    /// Streaming-ingest stores by registry name: requests for these models
    /// serve base + delta-overlay at a pinned `(version, epoch)` pair, and
    /// [`Engine::compact_and_deploy`] folds their deltas into rebuilt
    /// bases.
    deltas: HashMap<String, Arc<DeltaStore>>,
    /// Degraded-mode routing: primary registry name → fallback registry
    /// name, consulted when the primary's breaker is open or its retries
    /// are exhausted.
    fallbacks: HashMap<String, String>,
    /// The engine-wide breaker configuration, kept so every deployed
    /// version gets a fresh breaker armed the same way as build-time ones
    /// (`None` = breakers disabled, including on deployed versions).
    breaker_config: Option<BreakerConfig>,
    default_stopping: DpStopping,
    default_retry: RetryPolicy,
    /// Long-tail re-rank indexes by registry name: a request is only
    /// re-ranked when its routed model has one (the index is built against
    /// that model's training graph, so applying it elsewhere would score
    /// similarity on the wrong bipartite structure).
    rerank_indexes: HashMap<String, Arc<RerankIndex>>,
    /// Engine-wide re-rank default, the last resort of the resolution
    /// chain: request override → QoS-class default → this.
    default_rerank: Option<RerankPolicy>,
    /// Per-QoS-class re-rank defaults, indexed by [`Priority::index`].
    class_rerank: [Option<RerankPolicy>; Priority::COUNT],
    contexts: ContextPool,
    /// Engine-lifetime [`DpTelemetry`], merged across every request served
    /// by any caller thread or pool worker.
    aggregate: Mutex<DpTelemetry>,
    /// Saturation/shed/deadline/fault counters (see [`EngineStats`]).
    counters: EngineCounters,
    /// Workers that exited without a clean shutdown, pending respawn by
    /// supervision (see [`Engine::health`]).
    workers_dead: AtomicU64,
    /// Dequeue ordering policy; slack shedding is active only under
    /// [`SchedPolicy::Qos`].
    sched: SchedPolicy,
    /// EWMA of per-model service times — the evidence slack shedding
    /// consults before spending scoring work on a doomed deadline.
    service_times: ServiceEwma,
}

impl EngineCore {
    /// Serve one *admitted* request on the calling thread — the shared path
    /// of pool workers and the inline `recommend`: the dequeue-time
    /// deadline and slack checks, then execution, with the outcome counted
    /// (globally and in the request's class ledger). `enqueued_at` anchors
    /// the class latency histogram: queueing time is part of the latency a
    /// caller observes.
    fn serve_admitted(
        &self,
        req: &RecommendRequest,
        enqueued_at: Instant,
    ) -> Result<RecommendResponse, ServeError> {
        let class = self.counters.class(req.priority);
        if req.deadline.is_some_and(|d| Instant::now() >= d) {
            // Shed before any scoring work: an expired request's answer
            // could not be used, so the DP never runs for it.
            EngineCounters::bump(&self.counters.expired_at_dequeue);
            EngineCounters::bump(&class.expired);
            return Err(ServeError::DeadlineExceeded);
        }
        // Slack-based shedding (Qos only): when the EWMA of this model's
        // observed service time says even starting now cannot make the
        // deadline, drop the request before any scoring runs — the worker
        // time saved serves a request that still can. No estimate (a model
        // never successfully served) means no shedding: the engine never
        // refuses on zero evidence.
        if self.sched == SchedPolicy::Qos {
            if let (Some(deadline), Some(estimate)) =
                (req.deadline, self.service_times.estimate(&req.model))
            {
                if Instant::now() + estimate >= deadline {
                    EngineCounters::bump(&self.counters.shed);
                    EngineCounters::bump(&self.counters.shed_unmeetable);
                    EngineCounters::bump(&class.shed);
                    return Err(ServeError::DeadlineExceeded);
                }
            }
        }
        let started = Instant::now();
        let result = self.execute(req);
        match &result {
            Ok(resp) => {
                EngineCounters::bump(&self.counters.completed);
                EngineCounters::bump(&class.served);
                class.latency.record(enqueued_at.elapsed());
                // Service time excludes queueing (started, not
                // enqueued_at): the estimate answers "what would one more
                // admission cost", not "how long was the queue".
                self.service_times
                    .observe(&req.model, started.elapsed().as_secs_f64());
                if resp.degraded {
                    EngineCounters::bump(&self.counters.degraded);
                }
            }
            Err(ServeError::DeadlineExceeded) => {
                EngineCounters::bump(&self.counters.expired_in_dp);
                EngineCounters::bump(&class.expired);
            }
            Err(ServeError::RequestPanicked(_)) => {
                EngineCounters::bump(&self.counters.panicked);
                EngineCounters::bump(&class.failed);
            }
            Err(_) => {
                EngineCounters::bump(&self.counters.failed);
                EngineCounters::bump(&class.failed);
            }
        }
        result
    }

    /// Serve one request on the calling thread: breaker admission, the
    /// bounded retry loop, and degraded-mode fallback when the primary is
    /// unavailable.
    fn execute(&self, req: &RecommendRequest) -> Result<RecommendResponse, ServeError> {
        let entry = self
            .models
            .get(&req.model)
            .ok_or_else(|| ServeError::UnknownModel(req.model.clone()))?;
        // Version pinning: this `Arc` is the request's model for its whole
        // execution — retries included. A deploy landing mid-request swaps
        // the slot's active version, never this pin, so the response is
        // served entirely by (and attributed to) one version.
        //
        // With a delta store attached, the pin is the *pair* (version,
        // delta epoch), taken by the loop below: a delta snapshot is only
        // accepted when its `base_version` matches the resolved version,
        // so a request can never score a delta against the wrong base —
        // not even in the window where a compaction has published the
        // rebuilt model but not yet committed the residual delta. The
        // mismatch window is the microseconds between those two steps, so
        // the loop converges immediately; the bounded fallback (serve the
        // pinned base without the delta, no epoch claimed) only triggers
        // if an out-of-band `deploy` permanently desynced the store.
        let (version, shard, snap) = match self.deltas.get(&req.model) {
            None => {
                let (version, shard) = entry.resolve(req.user);
                (version, shard, None)
            }
            Some(store) => {
                let mut spins = 0u32;
                loop {
                    let (version, shard) = entry.resolve(req.user);
                    let snap = store.snapshot();
                    if snap.base_version == version.version {
                        break (version, shard, Some(snap));
                    }
                    spins += 1;
                    if spins >= 1024 {
                        break (version, shard, None);
                    }
                    std::thread::yield_now();
                }
            }
        };

        // Breaker admission happens before any queueing cost is sunk into
        // the request — an open breaker costs neither a ScoringContext nor
        // a scoring attempt.
        let decision = version.breaker.admit();
        if decision == BreakerDecision::Refuse {
            return self.answer_unavailable(req, ServeError::CircuitOpen);
        }
        let probe = decision == BreakerDecision::Probe;
        // The half-open probe token is held under an RAII pledge from here
        // until its outcome is recorded: should this frame die without
        // recording (a kill-marked worker death, an unwind a future edit
        // lets slip between take and record), the drop restores the
        // breaker to Open instead of leaving it wedged HalfOpen forever
        // with its only probe slot leaked.
        let mut pledge = ProbePledge {
            breaker: &version.breaker,
            armed: probe,
        };

        // The request's exclusion set was normalized once at build time
        // (`RecommendRequest::excluding`), so every attempt — retries
        // included — borrows it for free.
        let mut opts = RecommendOptions::new()
            .stopping(req.stopping.unwrap_or(self.default_stopping))
            .exclude(&req.exclude);
        opts.deadline = req.deadline;
        opts.recency = req.recency;
        // Resolve the effective re-rank policy: request override → the
        // request's QoS-class default → the engine-wide default. It binds
        // only when the routed model has a rerank index registered — the
        // index is built on that model's training graph.
        if let Some(policy) = req
            .rerank
            .or(self.class_rerank[req.priority.index()])
            .or(self.default_rerank)
            .filter(|p| p.is_enabled())
        {
            if let Some(index) = self.rerank_indexes.get(&req.model) {
                opts = opts.rerank(Reranker::new(index, policy));
            }
        }

        let retry = req.retry.unwrap_or(self.default_retry);
        let mut attempt_no: u32 = 0;
        let last_err = loop {
            attempt_no += 1;
            // The breaker is fed per attempt: each one is independent
            // evidence about the model. Only the first attempt can be the
            // half-open probe.
            let probe = probe && attempt_no == 1;
            match self.attempt(&version, shard, req, &opts, snap.as_ref()) {
                Ok(resp) => {
                    version.breaker.record_success(probe);
                    pledge.settle();
                    return Ok(resp);
                }
                Err(err) => {
                    version.breaker.record_failure(probe);
                    pledge.settle();
                    if !retryable(&err) || attempt_no >= retry.max_attempts {
                        break err;
                    }
                    // A retry only needs to *start* before the deadline —
                    // the walk DP cancels cooperatively mid-flight if it
                    // then expires. Only a deadline already in the past
                    // abandons the retry; a backoff pause that would not
                    // fit in the remaining time is skipped (retry
                    // immediately) rather than turning a servable retry
                    // into a guaranteed expiry.
                    let pause = match req.deadline {
                        Some(deadline) => {
                            let now = Instant::now();
                            if now >= deadline {
                                break err;
                            }
                            now + retry.backoff < deadline
                        }
                        None => true,
                    };
                    if pause && !retry.backoff.is_zero() {
                        std::thread::sleep(retry.backoff);
                    }
                    EngineCounters::bump(&self.counters.retries);
                }
            }
        };
        match last_err {
            // Out of time: a fallback answer would also arrive too late.
            ServeError::DeadlineExceeded => Err(ServeError::DeadlineExceeded),
            err => self.answer_unavailable(req, err),
        }
    }

    /// The primary cannot answer (`why`: open breaker, or the error its
    /// last attempt produced): serve the registered fallback flagged
    /// degraded, or surface `why` if there is none (or the fallback itself
    /// fails).
    ///
    /// The fallback is the last resort, so it gets exactly one attempt and
    /// no breaker bookkeeping — tripping a breaker on the availability
    /// floor would only convert degraded answers into errors.
    fn answer_unavailable(
        &self,
        req: &RecommendRequest,
        why: ServeError,
    ) -> Result<RecommendResponse, ServeError> {
        let Some(entry) = self
            .fallbacks
            .get(&req.model)
            .and_then(|name| self.models.get(name))
        else {
            if why == ServeError::CircuitOpen {
                EngineCounters::bump(&self.counters.circuit_open);
            }
            return Err(why);
        };
        let (version, shard) = entry.resolve(req.user);
        // The fallback honors the request's exclusions (already normalized
        // at build time) but is never re-ranked: a degraded answer is the
        // availability floor, and no rerank index binds to the fallback's
        // graph anyway.
        let mut opts = RecommendOptions::new()
            .stopping(req.stopping.unwrap_or(self.default_stopping))
            .exclude(&req.exclude);
        opts.deadline = req.deadline;
        opts.recency = req.recency;
        // The fallback serves its own frozen base — no delta snapshot, no
        // epoch claim — even when the primary had ingest attached: a
        // degraded answer makes no epoch-consistency promise.
        match self.attempt(&version, shard, req, &opts, None) {
            // The struct update keeps the fallback's own `version` field:
            // the response reports the version that actually served it.
            Ok(resp) => Ok(RecommendResponse {
                degraded: true,
                ..resp
            }),
            // The fallback failing is not the story: report why the
            // primary was unavailable.
            Err(_) => Err(why),
        }
    }

    /// One serving attempt through a pooled context: catch panics, refuse
    /// poisoned scores, detect cooperative deadline cancellation.
    fn attempt(
        &self,
        version: &ModelVersion,
        shard: Option<usize>,
        req: &RecommendRequest,
        opts: &RecommendOptions<'_>,
        snap: Option<&DeltaSnapshot>,
    ) -> Result<RecommendResponse, ServeError> {
        let mut ctx = self.contexts.checkout();
        let before = ctx.dp_telemetry();
        let mut items = Vec::new();
        // A panicking query (e.g. an out-of-range user id) must not take a
        // long-lived pool worker — or a whole batch — down with it: catch
        // it and fail only this attempt. The context is NOT checked back in
        // on panic (its buffers may be mid-update); dropping it costs one
        // warm context, nothing else. The shared state touched below the
        // catch (pool, aggregate) is only ever locked around non-panicking
        // code, so observing it after an unwind is sound.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            match snap {
                // The streaming path: score over base + the pinned delta
                // epoch. An empty delta short-circuits to the plain path
                // inside recommend_delta_into, so the epoch is still
                // reported without overlay overhead.
                Some(snap) => version.rec.recommend_delta_into(
                    &snap.delta,
                    req.user,
                    req.k,
                    opts,
                    &mut ctx,
                    &mut items,
                ),
                None => version
                    .rec
                    .recommend_into(req.user, req.k, opts, &mut ctx, &mut items),
            }
        }));
        if let Err(payload) = outcome {
            EngineCounters::bump(&self.counters.contexts_discarded);
            // `&*payload`, not `&payload`: the latter would unsize-coerce
            // the Box itself to `&dyn Any` and every downcast inside would
            // miss the real payload.
            return Err(ServeError::RequestPanicked(panic_message(&*payload)));
        }
        // Read the re-rank provenance off the context before it goes back
        // to the pool — the next query overwrites the trace.
        let provenance = opts.rerank.is_some().then(|| ctx.rerank_trace().to_vec());
        let telemetry = ctx.dp_telemetry().since(&before);
        self.contexts.checkin(ctx);
        self.aggregate.lock().merge(&telemetry);

        if telemetry.deadline_expired > 0 {
            // The walk DP cancelled cooperatively: the collected list ranks
            // partially-iterated values and must not be served.
            return Err(ServeError::DeadlineExceeded);
        }
        // The shared TopKCollector never admits non-finite scores, so any
        // NaN/−∞ here is poison from a buggy (or fault-injected) custom
        // path — refuse it rather than serve garbage ranks.
        if items.iter().any(|item| !item.score.is_finite()) {
            return Err(ServeError::PoisonedScores);
        }

        Ok(RecommendResponse {
            items,
            model: version.rec.name(),
            version: version.version,
            shard,
            epoch: snap.map(|s| s.epoch),
            telemetry,
            provenance,
            degraded: false,
        })
    }
}

/// RAII guard for the half-open probe token: armed while a probe's
/// outcome is pending, disarmed ([`ProbePledge::settle`]) the moment the
/// breaker records it. Dropping an armed pledge — the probing frame died
/// without recording — hands the token back via
/// [`CircuitBreaker::abandon_probe`] so the breaker re-opens for a fresh
/// cooldown instead of refusing everything forever.
struct ProbePledge<'a> {
    breaker: &'a CircuitBreaker,
    armed: bool,
}

impl ProbePledge<'_> {
    fn settle(&mut self) {
        self.armed = false;
    }
}

impl Drop for ProbePledge<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.breaker.abandon_probe();
        }
    }
}

/// Whether a retry could change this outcome: model faults (panics,
/// poisoned scores) are transient-able; everything else is deterministic
/// (unknown model) or already out of time (deadline).
fn retryable(err: &ServeError) -> bool {
    matches!(
        err,
        ServeError::RequestPanicked(_) | ServeError::PoisonedScores
    )
}

/// Best-effort extraction of a panic payload's message; non-string
/// payloads report their type name when it is a commonly-panicked type,
/// falling back to the opaque [`std::any::TypeId`].
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        return (*s).to_string();
    }
    if let Some(s) = payload.downcast_ref::<String>() {
        return s.clone();
    }
    macro_rules! probe {
        ($($ty:ty),* $(,)?) => {
            $(if payload.is::<$ty>() {
                return format!(
                    "non-string panic payload of type {}",
                    std::any::type_name::<$ty>()
                );
            })*
        };
    }
    probe!(
        i8,
        i16,
        i32,
        i64,
        i128,
        isize,
        u8,
        u16,
        u32,
        u64,
        u128,
        usize,
        f32,
        f64,
        bool,
        char,
        (),
        std::io::Error,
        Box<dyn std::error::Error + Send + Sync>,
    );
    format!("non-string panic payload ({:?})", payload.type_id())
}

/// Point-in-time health snapshot of one registered model (or sharded
/// group) — see [`Engine::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ModelHealth {
    /// Registry name of the model.
    pub name: String,
    /// Breaker state per servable unit: one entry for unsharded models,
    /// one per shard for sharded groups. All-`Closed` when breakers are
    /// disabled. Reflects each unit's *active version* (breakers reset per
    /// deploy).
    pub breakers: Vec<BreakerState>,
    /// Registry name of the fallback that answers (degraded) when this
    /// model is unavailable, if one is registered.
    pub fallback: Option<String>,
    /// Closed→Open breaker trips of the active versions, summed over
    /// shards (since each unit's last deploy — breakers reset per deploy).
    pub breaker_trips: u64,
    /// Active version per servable unit, parallel to `breakers` (`name@v`
    /// in operator-speak: entry `i` serves as `name@versions[i]`).
    pub versions: Vec<u32>,
    /// Provenance of each unit's active version, parallel to `versions`.
    pub provenance: Vec<ModelProvenance>,
    /// Full deploy history per servable unit, oldest first — every version
    /// ever published, with its provenance and whether it has fully
    /// retired (no longer active, last in-flight borrow dropped).
    pub deploy_history: Vec<Vec<VersionRecord>>,
}

/// Point-in-time health snapshot of an [`Engine`], read via
/// [`Engine::health`] — what an operator's probe endpoint would export.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EngineHealth {
    /// Per-model breaker states and fallback routing, sorted by name.
    pub models: Vec<ModelHealth>,
    /// Requests waiting in the admission queue right now.
    pub queue_depth: usize,
    /// The same waiting requests sliced by [`Priority`] class (indexed by
    /// [`Priority::index`]) — a backlog concentrating in `Interactive` is
    /// an overload signal even while the total depth looks modest.
    pub queue_depth_by_class: [usize; Priority::COUNT],
    /// Live worker threads (after this snapshot's supervision pass — taking
    /// a snapshot respawns any dead workers it finds).
    pub workers_alive: usize,
    /// The worker count the engine was built with and supervision
    /// maintains.
    pub workers_configured: usize,
    /// Engine-lifetime serving counters at snapshot time.
    pub stats: EngineStats,
}

impl EngineHealth {
    /// `true` when nothing is degraded: every breaker closed and the full
    /// configured worker pool alive.
    pub fn all_healthy(&self) -> bool {
        self.workers_alive == self.workers_configured
            && self
                .models
                .iter()
                .all(|m| m.breakers.iter().all(|b| *b == BreakerState::Closed))
    }
}

/// The multi-model serving engine.
///
/// An `Engine` owns a registry of named models (optionally sharded by a
/// [`ShardRouter`]), a [`ContextPool`] of reusable scoring contexts, and —
/// unless built with `workers(0)` — a pool of persistent worker threads
/// draining a **bounded admission queue**. Three request paths:
///
/// * [`Engine::recommend`] — inline on the calling thread (lowest latency);
/// * [`Engine::submit`] — non-blocking enqueue, returning a
///   [`PendingResponse`] handle; the queue's [`AdmissionPolicy`] decides
///   what a full queue does, the engine's [`SchedPolicy`] decides dequeue
///   order (strict [`Priority`] classes with EDF within a class, by
///   default), and per-request deadlines shed work that can no longer
///   answer in time — at dequeue, by slack-based shedding when the
///   model's observed service time says the deadline is unmeetable, and
///   cooperatively inside the walk DP;
/// * [`Engine::recommend_batch`] — fan-out over `submit` plus an in-order
///   drain, i.e. the blocking convenience form of the async path.
///
/// Output equivalence is a pinned contract: for any request the engine
/// *answers non-degraded*, the response's `items` are exactly what the
/// routed recommender's [`Recommender::recommend_into`] produces with the
/// request's effective [`RecommendOptions`] — the engine adds routing,
/// pooling, admission control and telemetry, never ranking changes.
/// Requests it cannot answer in time fail typed instead
/// ([`ServeError::Overloaded`] / [`ServeError::DeadlineExceeded`]).
///
/// **Fault tolerance** is opt-in per engine: [`EngineBuilder::breakers`]
/// arms a circuit breaker per model/shard (open breaker → fail fast with
/// [`ServeError::CircuitOpen`] before any queue slot or context is spent),
/// [`EngineBuilder::default_retry`] retries model faults on fresh
/// contexts, and [`EngineBuilder::fallback`] routes unavailable primaries
/// to a degraded-mode stand-in (responses flagged
/// [`RecommendResponse::degraded`]). Worker threads are supervised:
/// [`Engine::health`] (and every `submit`) respawns dead workers to keep
/// the pool at its configured size.
///
/// ```
/// use longtail_core::{GraphRecConfig, HittingTimeRecommender};
/// use longtail_data::{Dataset, Rating};
/// use longtail_serve::{Engine, RecommendRequest};
/// use std::sync::Arc;
///
/// let ratings = [
///     Rating { user: 0, item: 0, value: 5.0 },
///     Rating { user: 1, item: 0, value: 4.0 },
///     Rating { user: 1, item: 1, value: 5.0 },
/// ];
/// let train = Dataset::from_ratings(2, 2, &ratings);
/// let engine = Engine::builder()
///     .model("HT", Arc::new(HittingTimeRecommender::new(&train, GraphRecConfig::default())))
///     .workers(2)
///     .build();
/// // Async submission: enqueue now, claim the response when needed.
/// let pending = engine.submit(RecommendRequest::new("HT", 0, 5)).unwrap();
/// let response = pending.wait().unwrap();
/// assert_eq!(response.items[0].item, 1);
/// assert!(!response.degraded);
/// ```
pub struct Engine {
    core: Arc<EngineCore>,
    /// Bounded job queue feeding the worker pool; `None` when built with 0
    /// workers (submissions then run inline).
    queue: Option<Arc<JobQueue>>,
    policy: AdmissionPolicy,
    /// The pool, under a lock so supervision can swap dead handles for
    /// fresh ones.
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// The size supervision maintains the pool at.
    configured_workers: usize,
}

impl Engine {
    /// Start configuring an engine.
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Serve one request inline on the calling thread, through a pooled
    /// context — the low-latency path. The worker pool and admission queue
    /// are not involved; the request's deadline still applies (both before
    /// execution and inside the walk DP).
    pub fn recommend(&self, req: &RecommendRequest) -> Result<RecommendResponse, ServeError> {
        EngineCounters::bump(&self.core.counters.submitted);
        EngineCounters::bump(&self.core.counters.class(req.priority).submitted);
        self.core.serve_admitted(req, Instant::now())
    }

    /// Submit one request to the worker pool without waiting for it: the
    /// returned [`PendingResponse`] yields the response (or typed failure)
    /// via `try_recv`/`wait_timeout`/`wait`.
    ///
    /// Admission is governed by the engine's [`AdmissionPolicy`] when the
    /// bounded queue is full: `Block` waits for a slot (the only way this
    /// method blocks), `Reject` returns [`ServeError::Overloaded`]
    /// immediately, and `ShedOldest` admits this request by resolving the
    /// oldest queued request's handle with `Overloaded`. An engine built
    /// with `workers(0)` has no queue and serves submissions synchronously
    /// on the calling thread (the handle comes back already resolved).
    ///
    /// Two fault-tolerance hooks run here: dead workers detected by
    /// supervision are respawned before the request enqueues, and a
    /// request routed to a model whose breaker is open **with no fallback
    /// registered** is refused with [`ServeError::CircuitOpen`]
    /// immediately — before it spends a queue slot — rather than queueing
    /// work that a worker would refuse anyway.
    pub fn submit(&self, request: RecommendRequest) -> Result<PendingResponse, ServeError> {
        self.respawn_dead_workers();
        // Fail fast on an open breaker (unless a fallback will answer):
        // read-only check, the authoritative transition still happens at
        // the worker's admit().
        if !self.core.fallbacks.contains_key(&request.model) {
            if let Some(entry) = self.core.models.get(&request.model) {
                let (version, _) = entry.resolve(request.user);
                if version.breaker.would_refuse() {
                    EngineCounters::bump(&self.core.counters.circuit_open);
                    return Err(ServeError::CircuitOpen);
                }
            }
        }
        let Some(queue) = &self.queue else {
            EngineCounters::bump(&self.core.counters.submitted);
            EngineCounters::bump(&self.core.counters.class(request.priority).submitted);
            return Ok(PendingResponse::ready(
                self.core.serve_admitted(&request, Instant::now()),
            ));
        };
        let priority = request.priority;
        let (reply, rx) = mpsc::channel();
        match queue.push(Job::new(request, reply), self.policy) {
            Admission::Enqueued => {
                EngineCounters::bump(&self.core.counters.submitted);
                EngineCounters::bump(&self.core.counters.class(priority).submitted);
                Ok(PendingResponse::new(rx))
            }
            Admission::Shed(victim) => {
                EngineCounters::bump(&self.core.counters.submitted);
                EngineCounters::bump(&self.core.counters.class(priority).submitted);
                EngineCounters::bump(&self.core.counters.shed);
                EngineCounters::bump(&self.core.counters.class(victim.request.priority).shed);
                victim.refuse(ServeError::Overloaded);
                Ok(PendingResponse::new(rx))
            }
            Admission::Rejected => {
                EngineCounters::bump(&self.core.counters.rejected);
                Err(ServeError::Overloaded)
            }
            Admission::Closed => Err(ServeError::ShuttingDown),
        }
    }

    /// Serve a batch as fan-out over [`Engine::submit`] plus an in-order
    /// drain (or inline, in order, when built with `workers(0)`).
    ///
    /// `results[j]` answers `requests[j]`; per-request failures (unknown
    /// model, shed, expired) are returned in place, never aborting the rest
    /// of the batch. Under the default [`AdmissionPolicy::Block`] every
    /// request is admitted and the batch behaves exactly like the blocking
    /// API of previous releases; under `Reject`/`ShedOldest` a saturated
    /// queue surfaces [`ServeError::Overloaded`] in the affected slots.
    pub fn recommend_batch(
        &self,
        requests: Vec<RecommendRequest>,
    ) -> Vec<Result<RecommendResponse, ServeError>> {
        let pending: Vec<Result<PendingResponse, ServeError>> =
            requests.into_iter().map(|r| self.submit(r)).collect();
        pending
            .into_iter()
            .map(|p| match p {
                Ok(handle) => handle.wait(),
                Err(refused) => Err(refused),
            })
            .collect()
    }

    /// Names of every registered model, sorted.
    pub fn models(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.core.models.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Atomically publish a new version of the unsharded model `name`,
    /// returning the version number it is now serving as (`name@v`).
    ///
    /// Hot swap semantics: requests already executing (or dequeued)
    /// finished resolving their version and complete on it; requests that
    /// resolve after this call route to the new version; the old version
    /// retires — is dropped — when its last in-flight pin releases.
    /// Nothing in flight is lost or torn between versions.
    ///
    /// Carryover policy, per state kind:
    ///
    /// * **circuit breaker** — *resets*: the new version gets a fresh
    ///   breaker armed with the engine's build-time config, because
    ///   failure evidence against the old model says nothing about the
    ///   new one;
    /// * **service-time EWMA** (slack shedding) — *carries over*: it is
    ///   keyed by model name and the old estimate is a better prior than
    ///   cold-starting deadline admission;
    /// * **stats ledgers** ([`EngineStats`], per-class ledgers) — *carry
    ///   over*: they are engine-lifetime monotone counters, diffable with
    ///   [`EngineStats::since`].
    ///
    /// Errors with [`ServeError::UnknownModel`] if `name` was never
    /// registered.
    ///
    /// # Panics
    ///
    /// Panics if `name` is registered as a sharded group — shard deploys
    /// must name their shard via [`Engine::deploy_shard`] (deploying one
    /// model over N shards is a topology change, not a version bump).
    pub fn deploy(&self, name: &str, rec: SharedRecommender) -> Result<u32, ServeError> {
        self.deploy_from(name, rec, ModelProvenance::InProcess)
    }

    /// [`Engine::deploy`] with explicit provenance — pass
    /// [`ModelProvenance::Snapshot`] when the model was loaded from a
    /// snapshot file so [`Engine::health`] can report where each live
    /// version came from.
    pub fn deploy_from(
        &self,
        name: &str,
        rec: SharedRecommender,
        provenance: ModelProvenance,
    ) -> Result<u32, ServeError> {
        match self.core.models.get(name) {
            None => Err(ServeError::UnknownModel(name.to_string())),
            Some(ModelEntry::Single(slot)) => {
                Ok(slot.publish(rec, self.core.breaker_config, provenance))
            }
            Some(ModelEntry::Sharded { .. }) => {
                panic!("model {name:?} is sharded; deploy per shard with deploy_shard")
            }
        }
    }

    /// Atomically publish a new version of shard `shard` of the sharded
    /// group `name`. Same swap semantics and carryover policy as
    /// [`Engine::deploy`]; each shard's version chain advances
    /// independently.
    ///
    /// Errors with [`ServeError::UnknownModel`] if `name` was never
    /// registered.
    ///
    /// # Panics
    ///
    /// Panics if `name` is unsharded or `shard` is out of range (topology
    /// mismatches are programming errors, consistent with the builder's
    /// shape asserts).
    pub fn deploy_shard(
        &self,
        name: &str,
        shard: usize,
        rec: SharedRecommender,
    ) -> Result<u32, ServeError> {
        self.deploy_shard_from(name, shard, rec, ModelProvenance::InProcess)
    }

    /// [`Engine::deploy_shard`] with explicit provenance (see
    /// [`Engine::deploy_from`]).
    pub fn deploy_shard_from(
        &self,
        name: &str,
        shard: usize,
        rec: SharedRecommender,
        provenance: ModelProvenance,
    ) -> Result<u32, ServeError> {
        match self.core.models.get(name) {
            None => Err(ServeError::UnknownModel(name.to_string())),
            Some(ModelEntry::Single(_)) => {
                panic!("model {name:?} is not sharded; use deploy")
            }
            Some(ModelEntry::Sharded { shards, .. }) => {
                let slot = shards.get(shard).unwrap_or_else(|| {
                    panic!("shard {shard} out of range for {} shards", shards.len())
                });
                Ok(slot.publish(rec, self.core.breaker_config, provenance))
            }
        }
    }

    /// The streaming-ingest store attached to model `name`
    /// ([`crate::EngineBuilder::ingest`]), for appending ratings and
    /// reading ingest state; `None` when the model has no ingest.
    pub fn delta_store(&self, name: &str) -> Option<&Arc<DeltaStore>> {
        self.core.deltas.get(name)
    }

    /// Fold model `name`'s accumulated delta into a freshly built base and
    /// hot-swap it in — the compaction step of the streaming-ingest loop.
    ///
    /// Three phases:
    ///
    /// 1. **Fold** (store lock, microseconds): publish every pending
    ///    append, snapshot the union dataset `base ⊎ delta`.
    /// 2. **Build** (no locks): `build(&union)` constructs the new model —
    ///    the expensive part; appends and queries proceed untouched, served
    ///    by the old base + the still-growing delta.
    /// 3. **Commit** (store lock, microseconds): publish the new model
    ///    through the [`Engine::deploy`] hot-swap path as version `v+1`,
    ///    swap in the residual delta (appends that raced the build),
    ///    advance the epoch and log `(epoch, v+1)`.
    ///
    /// Zero lost requests: in-flight queries finish on the `(version,
    /// epoch)` pair they pinned; queries landing in the publish→commit
    /// window retry their pin (see `execute`) and come out on the new
    /// pair; appends racing the build survive as the residual delta.
    /// Concurrent compactions of one store serialize.
    ///
    /// Errors with [`ServeError::UnknownModel`] if `name` has no ingest
    /// store attached.
    ///
    /// # Panics
    ///
    /// Propagates panics from `build` (phase 2 holds no locks, so the
    /// store and engine stay consistent — the compaction just never
    /// commits).
    pub fn compact_and_deploy(
        &self,
        name: &str,
        build: impl FnOnce(&longtail_data::Dataset) -> SharedRecommender,
    ) -> Result<CompactionReport, ServeError> {
        let store = self
            .core
            .deltas
            .get(name)
            .ok_or_else(|| ServeError::UnknownModel(name.to_string()))?;
        let _serialize = store.lock_for_compaction();
        let (union, folded) = store.begin_compaction();
        let rec = build(&union);
        let commit_started = Instant::now();
        let version = self.deploy(name, rec)?;
        let (epoch, remaining) = store.commit_compaction(union, version);
        Ok(CompactionReport {
            version,
            epoch,
            folded,
            remaining,
            publish_seconds: commit_started.elapsed().as_secs_f64(),
        })
    }

    /// Number of live worker threads (the configured count, except in the
    /// window between a worker dying and supervision respawning it).
    pub fn n_workers(&self) -> usize {
        self.workers
            .lock()
            .iter()
            .filter(|w| !w.is_finished())
            .count()
    }

    /// Number of submitted requests currently waiting in the admission
    /// queue (0 for a zero-worker engine).
    pub fn queue_depth(&self) -> usize {
        self.queue.as_ref().map_or(0, |q| q.depth())
    }

    /// Waiting requests per [`Priority`] class (indexed by
    /// [`Priority::index`]; all zero for a zero-worker engine).
    pub fn queue_depth_by_class(&self) -> [usize; Priority::COUNT] {
        self.queue
            .as_ref()
            .map_or([0; Priority::COUNT], |q| q.depth_by_class())
    }

    /// Engine-lifetime [`DpTelemetry`], merged (via [`DpTelemetry::merge`])
    /// across every request served so far — inline and pool-worker alike.
    pub fn telemetry(&self) -> DpTelemetry {
        *self.core.aggregate.lock()
    }

    /// Engine-lifetime [`EngineStats`]: submission, saturation, shed,
    /// deadline and fault counters, plus the ingest counters summed over
    /// every attached [`DeltaStore`]. Monotone (`ingest.delta_edges_live`
    /// excepted — a gauge) — diff snapshots with [`EngineStats::since`] to
    /// scope them to a traffic window.
    pub fn stats(&self) -> EngineStats {
        let mut stats = self.core.counters.snapshot();
        for store in self.core.deltas.values() {
            stats.ingest.merge(&store.stats());
        }
        stats
    }

    /// Health snapshot: per-model breaker states and fallback routing,
    /// queue depth, worker liveness and the stats counters. Taking a
    /// snapshot runs a supervision pass first, so any dead worker it
    /// reports on has already been replaced (visible in
    /// `stats.workers_restarted`).
    pub fn health(&self) -> EngineHealth {
        self.respawn_dead_workers();
        let mut models: Vec<ModelHealth> = self
            .core
            .models
            .iter()
            .map(|(name, entry)| {
                let mut versions = Vec::new();
                let mut provenance = Vec::new();
                let mut deploy_history = Vec::new();
                for slot in entry.slots() {
                    let (active, records) = slot.records();
                    versions.push(active);
                    provenance.push(
                        records
                            .iter()
                            .find(|r| r.version == active)
                            .map(|r| r.provenance.clone())
                            .unwrap_or(ModelProvenance::InProcess),
                    );
                    deploy_history.push(records);
                }
                ModelHealth {
                    name: name.clone(),
                    breakers: entry.breaker_states(),
                    fallback: self.core.fallbacks.get(name).cloned(),
                    breaker_trips: entry.breaker_trips(),
                    versions,
                    provenance,
                    deploy_history,
                }
            })
            .collect();
        models.sort_by(|a, b| a.name.cmp(&b.name));
        EngineHealth {
            models,
            queue_depth: self.queue_depth(),
            queue_depth_by_class: self.queue_depth_by_class(),
            workers_alive: self.n_workers(),
            workers_configured: self.configured_workers,
            stats: self.stats(),
        }
    }

    /// Zero the engine-lifetime telemetry (e.g. between benchmark phases).
    /// [`Engine::stats`] counters are intentionally not reset (they are
    /// monotone; use [`EngineStats::since`]).
    pub fn reset_telemetry(&self) {
        *self.core.aggregate.lock() = DpTelemetry::default();
    }

    /// Supervision: replace dead worker threads with fresh ones so the
    /// pool stays at its configured size. Runs on every `submit` (cheap: a
    /// single atomic load when nothing died) and on [`Engine::health`].
    fn respawn_dead_workers(&self) {
        if self.core.workers_dead.load(Ordering::Relaxed) == 0 {
            return;
        }
        let Some(queue) = &self.queue else { return };
        let mut workers = self.workers.lock();
        let mut respawned: u64 = 0;
        for handle in workers.iter_mut() {
            if handle.is_finished() {
                let fresh = spawn_worker(Arc::clone(&self.core), Arc::clone(queue));
                let dead = std::mem::replace(handle, fresh);
                let _ = dead.join();
                EngineCounters::bump(&self.core.counters.workers_restarted);
                respawned += 1;
            }
        }
        if respawned > 0 {
            // A death notice can land before `is_finished()` flips; leave
            // any unmatched notices for the next pass (still under the
            // workers lock, so the subtraction cannot race another pass).
            let pending = self.core.workers_dead.load(Ordering::Relaxed);
            self.core
                .workers_dead
                .fetch_sub(respawned.min(pending), Ordering::Relaxed);
        }
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Bounded-time shutdown: close the queue and cancel every
        // not-yet-started request (each pending handle resolves
        // `ShuttingDown`), so the join below waits only for the at most
        // `n_workers` requests already mid-execution — never for a backlog.
        if let Some(queue) = &self.queue {
            for job in queue.close_and_drain() {
                EngineCounters::bump(&self.core.counters.cancelled_at_shutdown);
                EngineCounters::bump(&self.core.counters.class(job.request.priority).failed);
                job.refuse(ServeError::ShuttingDown);
            }
        }
        for worker in self.workers.lock().drain(..) {
            let _ = worker.join();
        }
    }
}

fn spawn_worker(core: Arc<EngineCore>, queue: Arc<JobQueue>) -> JoinHandle<()> {
    std::thread::spawn(move || worker_loop(core, queue))
}

/// What a pool worker does for its whole life: pull jobs off the bounded
/// queue, serve them through the core, reply. Ends when the engine closes
/// the queue and the backlog is cancelled — or abnormally, on a
/// [`WORKER_KILL_MARK`] panic, in which case a death notice is left for
/// supervision to respawn the thread.
fn worker_loop(core: Arc<EngineCore>, queue: Arc<JobQueue>) {
    /// Drop guard: any exit from the loop that isn't the clean
    /// queue-closed shutdown files a death notice — including unwinds this
    /// function didn't anticipate.
    struct DeathNotice {
        core: Arc<EngineCore>,
        armed: bool,
    }
    impl Drop for DeathNotice {
        fn drop(&mut self) {
            if self.armed {
                self.core.workers_dead.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
    let mut notice = DeathNotice {
        core: Arc::clone(&core),
        armed: true,
    };
    while let Some(job) = queue.pop() {
        // A closed reply channel means the submitter dropped its handle
        // (gave up on the result); the work still ran, the reply just has
        // no audience.
        let result = core.serve_admitted(&job.request, job.enqueued_at);
        // A kill-marked panic emulates a fault unwind-catching cannot
        // contain: answer the request, then die (armed notice → respawn).
        let fatal = matches!(
            &result,
            Err(ServeError::RequestPanicked(msg)) if msg.contains(WORKER_KILL_MARK)
        );
        let _ = job.reply.send(result);
        if fatal {
            return;
        }
    }
    notice.armed = false;
}

/// Configures and builds an [`Engine`].
pub struct EngineBuilder {
    models: HashMap<String, BuilderEntry>,
    fallbacks: HashMap<String, String>,
    deltas: HashMap<String, Arc<DeltaStore>>,
    workers: Option<usize>,
    max_idle_contexts: Option<usize>,
    default_stopping: DpStopping,
    default_retry: RetryPolicy,
    rerank_indexes: HashMap<String, Arc<RerankIndex>>,
    default_rerank: Option<RerankPolicy>,
    class_rerank: [Option<RerankPolicy>; Priority::COUNT],
    breakers: Option<BreakerConfig>,
    queue_capacity: usize,
    policy: AdmissionPolicy,
    sched: SchedPolicy,
    model_quota: Option<usize>,
}

/// Builder-side registry entries (breakers attach at build, once the
/// engine-wide [`BreakerConfig`] is known). Each carries the provenance
/// version 1 will report — `InProcess` unless registered via the `_from`
/// variants.
enum BuilderEntry {
    Single(SharedRecommender, ModelProvenance),
    Sharded {
        router: Arc<dyn ShardRouter>,
        shards: Vec<(SharedRecommender, ModelProvenance)>,
    },
}

impl EngineBuilder {
    /// Queued (not yet started) requests the admission queue holds before
    /// the [`AdmissionPolicy`] engages.
    pub const DEFAULT_QUEUE_CAPACITY: usize = 1024;

    /// An empty registry with defaults: one worker per available core, a
    /// context pool sized to the workers, adaptive stopping, a
    /// 1024-request admission queue under [`AdmissionPolicy::Block`], and
    /// fault tolerance off (no breakers, no retries, no fallbacks).
    pub fn new() -> Self {
        Self {
            models: HashMap::new(),
            fallbacks: HashMap::new(),
            deltas: HashMap::new(),
            workers: None,
            max_idle_contexts: None,
            default_stopping: DpStopping::default(),
            default_retry: RetryPolicy::default(),
            rerank_indexes: HashMap::new(),
            default_rerank: None,
            class_rerank: [None; Priority::COUNT],
            breakers: None,
            queue_capacity: Self::DEFAULT_QUEUE_CAPACITY,
            policy: AdmissionPolicy::default(),
            sched: SchedPolicy::default(),
            model_quota: None,
        }
    }

    /// Register `rec` under `name`, replacing any previous registration of
    /// that name. Provenance reports as "trained in-process"; use
    /// [`EngineBuilder::model_from`] for snapshot-loaded models.
    pub fn model(self, name: impl Into<String>, rec: SharedRecommender) -> Self {
        self.model_from(name, rec, ModelProvenance::InProcess)
    }

    /// [`EngineBuilder::model`] with explicit provenance — pass
    /// [`ModelProvenance::Snapshot`] when `rec` was loaded from a snapshot
    /// file so [`Engine::health`] reports where version 1 came from.
    pub fn model_from(
        mut self,
        name: impl Into<String>,
        rec: SharedRecommender,
        provenance: ModelProvenance,
    ) -> Self {
        self.models
            .insert(name.into(), BuilderEntry::Single(rec, provenance));
        self
    }

    /// Register a user-sharded model group under `name`: requests route to
    /// `shards[router.route(user, shards.len())]`. Provenance reports as
    /// "trained in-process"; use [`EngineBuilder::sharded_model_from`] for
    /// snapshot-loaded shards.
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn sharded_model(
        self,
        name: impl Into<String>,
        router: Arc<dyn ShardRouter>,
        shards: Vec<SharedRecommender>,
    ) -> Self {
        let shards = shards
            .into_iter()
            .map(|rec| (rec, ModelProvenance::InProcess))
            .collect();
        self.sharded_model_from(name, router, shards)
    }

    /// [`EngineBuilder::sharded_model`] with per-shard provenance (see
    /// [`EngineBuilder::model_from`]).
    ///
    /// # Panics
    ///
    /// Panics if `shards` is empty.
    pub fn sharded_model_from(
        mut self,
        name: impl Into<String>,
        router: Arc<dyn ShardRouter>,
        shards: Vec<(SharedRecommender, ModelProvenance)>,
    ) -> Self {
        assert!(!shards.is_empty(), "a sharded model needs at least 1 shard");
        self.models
            .insert(name.into(), BuilderEntry::Sharded { router, shards });
        self
    }

    /// Attach a streaming-ingest [`DeltaStore`] to the registered model
    /// `name`: its requests then serve base + delta-overlay at a pinned
    /// `(version, epoch)` pair (responses carry
    /// [`RecommendResponse::epoch`]), and
    /// [`Engine::compact_and_deploy`] folds the delta into rebuilt bases.
    /// The store should be constructed over the same dataset the model was
    /// trained on. Keep a clone of the `Arc` (or fetch it back via
    /// [`Engine::delta_store`]) to append ratings.
    ///
    /// Build-time panics if `name` is unregistered or sharded (per-shard
    /// ingest is a topology question this store does not answer).
    pub fn ingest(mut self, name: impl Into<String>, store: Arc<DeltaStore>) -> Self {
        self.deltas.insert(name.into(), store);
        self
    }

    /// Arm a circuit breaker (with this config) on every registered model
    /// and shard. Without this call breakers are disabled: nothing is
    /// recorded, nothing ever refuses, the fault-free path is unchanged.
    pub fn breakers(mut self, config: BreakerConfig) -> Self {
        self.breakers = Some(config);
        self
    }

    /// Serve requests for `primary` from `fallback` (flagged
    /// [`RecommendResponse::degraded`]) when the primary's breaker is open
    /// or its retries are exhausted. Both names refer to registered
    /// models; registration order does not matter, but both must exist by
    /// [`EngineBuilder::build`] time.
    pub fn fallback(mut self, primary: impl Into<String>, fallback: impl Into<String>) -> Self {
        self.fallbacks.insert(primary.into(), fallback.into());
        self
    }

    /// The [`RetryPolicy`] applied to requests that don't carry their own
    /// ([`RecommendRequest::with_retry`]). Defaults to no retries.
    pub fn default_retry(mut self, retry: RetryPolicy) -> Self {
        self.default_retry = retry;
        self
    }

    /// Attach a long-tail [`RerankIndex`] to the registered model `name`.
    /// Requests routed to that model are re-ranked whenever an enabled
    /// [`RerankPolicy`] resolves for them (request override →
    /// [`EngineBuilder::class_rerank`] → [`EngineBuilder::default_rerank`]);
    /// models without an index always serve raw fused order. The index
    /// must be built over the same training data as the model — its
    /// similarity and popularity statistics describe that graph.
    ///
    /// Build-time panics if `name` is unregistered.
    pub fn rerank_index(mut self, name: impl Into<String>, index: Arc<RerankIndex>) -> Self {
        self.rerank_indexes.insert(name.into(), index);
        self
    }

    /// The engine-wide default [`RerankPolicy`], applied to requests that
    /// carry no override and whose QoS class sets none. Defaults to no
    /// re-ranking.
    pub fn default_rerank(mut self, policy: RerankPolicy) -> Self {
        self.default_rerank = Some(policy);
        self
    }

    /// The default [`RerankPolicy`] of one QoS class — e.g. re-rank
    /// `Batch`/`Background` list regeneration for catalog coverage while
    /// `Interactive` traffic stays on the raw low-latency path. A request's
    /// own [`RecommendRequest::with_rerank`] still wins.
    pub fn class_rerank(mut self, class: Priority, policy: RerankPolicy) -> Self {
        self.class_rerank[class.index()] = Some(policy);
        self
    }

    /// Number of persistent worker threads backing [`Engine::submit`] and
    /// [`Engine::recommend_batch`]. `0` disables the pool (submissions and
    /// batches run inline on the calling thread). Defaults to the
    /// available parallelism.
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = Some(n);
        self
    }

    /// Capacity of the bounded admission queue — how many submitted
    /// requests may wait for a worker before the [`AdmissionPolicy`]
    /// engages. Defaults to
    /// [`EngineBuilder::DEFAULT_QUEUE_CAPACITY`].
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 (a queue that can hold nothing cannot admit).
    pub fn queue_capacity(mut self, n: usize) -> Self {
        assert!(n > 0, "queue capacity must be at least 1");
        self.queue_capacity = n;
        self
    }

    /// Backpressure policy applied by [`Engine::submit`] when the admission
    /// queue is full. Defaults to [`AdmissionPolicy::Block`].
    pub fn admission(mut self, policy: AdmissionPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Dequeue ordering of the admission queue. Defaults to
    /// [`SchedPolicy::Qos`] (strict priority classes, EDF within a class,
    /// slack-based shedding) — which degrades to exact FIFO for workloads
    /// that set no priorities and no deadlines. [`SchedPolicy::Fifo`]
    /// forces literal arrival order and disables slack shedding (the
    /// measurable baseline).
    pub fn scheduling(mut self, sched: SchedPolicy) -> Self {
        self.sched = sched;
        self
    }

    /// Cap the number of *waiting* queued requests any single model (or
    /// sharded group) may hold, so one hot model's burst cannot occupy the
    /// whole admission queue and starve every other model behind it. A
    /// model at its quota is treated as "queue full" for its own requests
    /// — the [`AdmissionPolicy`] engages, with `ShedOldest` evicting
    /// within the same model — while other models' requests still enter
    /// freely. Defaults to no quota.
    ///
    /// # Panics
    ///
    /// Panics if `n` is 0 (no model could ever enqueue anything).
    pub fn model_quota(mut self, n: usize) -> Self {
        assert!(n > 0, "a zero model quota could admit nothing");
        self.model_quota = Some(n);
        self
    }

    /// Cap on idle [`longtail_core::ScoringContext`]s the engine retains
    /// between requests. Defaults to `workers + 2` (every worker plus a
    /// couple of inline callers stay warm).
    pub fn max_idle_contexts(mut self, n: usize) -> Self {
        self.max_idle_contexts = Some(n);
        self
    }

    /// The [`DpStopping`] applied to requests that don't override it.
    /// Defaults to [`DpStopping::adaptive`].
    pub fn default_stopping(mut self, stopping: DpStopping) -> Self {
        self.default_stopping = stopping;
        self
    }

    /// Spawn the worker pool and finish the engine.
    ///
    /// # Panics
    ///
    /// Panics if a [`EngineBuilder::fallback`] registration names an
    /// unregistered model, maps a model to itself, an
    /// [`EngineBuilder::ingest`] attachment names an unregistered or
    /// sharded model, or a [`EngineBuilder::rerank_index`] attachment
    /// names an unregistered model.
    pub fn build(self) -> Engine {
        for name in self.rerank_indexes.keys() {
            assert!(
                self.models.contains_key(name),
                "rerank index attached to unknown model {name:?}"
            );
        }
        for name in self.deltas.keys() {
            match self.models.get(name) {
                Some(BuilderEntry::Single(..)) => {}
                Some(BuilderEntry::Sharded { .. }) => {
                    panic!("ingest store attached to sharded model {name:?}; ingest requires an unsharded registration")
                }
                None => panic!("ingest store attached to unknown model {name:?}"),
            }
        }
        for (primary, fallback) in &self.fallbacks {
            assert!(
                self.models.contains_key(primary),
                "fallback registered for unknown model {primary:?}"
            );
            assert!(
                self.models.contains_key(fallback),
                "fallback {fallback:?} (for {primary:?}) is not a registered model"
            );
            assert!(
                primary != fallback,
                "model {primary:?} cannot be its own fallback"
            );
        }
        let breakers = self.breakers;
        // Build-time registrations start every version chain at version 1,
        // with the provenance the registration declared.
        let slot = |(rec, provenance): (SharedRecommender, ModelProvenance)| {
            ModelSlot::new(rec, breakers, provenance)
        };
        let models = self
            .models
            .into_iter()
            .map(|(name, entry)| {
                let entry = match entry {
                    BuilderEntry::Single(rec, prov) => ModelEntry::Single(slot((rec, prov))),
                    BuilderEntry::Sharded { router, shards } => ModelEntry::Sharded {
                        router,
                        shards: shards.into_iter().map(slot).collect(),
                    },
                };
                (name, entry)
            })
            .collect();
        let workers = self
            .workers
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |p| p.get()));
        let core = Arc::new(EngineCore {
            models,
            deltas: self.deltas,
            fallbacks: self.fallbacks,
            breaker_config: breakers,
            default_stopping: self.default_stopping,
            default_retry: self.default_retry,
            rerank_indexes: self.rerank_indexes,
            default_rerank: self.default_rerank,
            class_rerank: self.class_rerank,
            contexts: ContextPool::new(self.max_idle_contexts.unwrap_or(workers + 2)),
            aggregate: Mutex::new(DpTelemetry::default()),
            counters: EngineCounters::default(),
            workers_dead: AtomicU64::new(0),
            sched: self.sched,
            service_times: ServiceEwma::new(),
        });
        let queue = (workers > 0).then(|| {
            Arc::new(JobQueue::new(
                self.queue_capacity,
                self.sched,
                self.model_quota,
            ))
        });
        let handles = match &queue {
            Some(queue) => (0..workers)
                .map(|_| spawn_worker(Arc::clone(&core), Arc::clone(queue)))
                .collect(),
            None => Vec::new(),
        };
        Engine {
            core,
            queue,
            policy: self.policy,
            workers: Mutex::new(handles),
            configured_workers: workers,
        }
    }
}

impl Default for EngineBuilder {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panic_message_reports_common_payload_types() {
        let caught =
            std::panic::catch_unwind(|| std::panic::panic_any(42i32)).expect_err("panicked");
        assert!(panic_message(&*caught).contains("i32"));
        let caught =
            std::panic::catch_unwind(|| std::panic::panic_any(1.5f64)).expect_err("panicked");
        assert!(panic_message(&*caught).contains("f64"));
        let caught = std::panic::catch_unwind(|| panic!("plain {}", "message")).unwrap_err();
        assert_eq!(panic_message(&*caught), "plain message");
    }
}
